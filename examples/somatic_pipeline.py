"""Somatic variant calling with and without INDEL realignment.

The paper's motivating workload: "somatic variant calls (i.e. identified
cancer mutations) must contain as few errors as possible." This example
simulates a tumor sample with low-fraction somatic variants, runs the
full alignment-refinement pipeline (sort -> duplicate marking -> INDEL
realignment -> BQSR) with the realignment stage on the simulated FPGA,
and shows the precision/recall improvement IR delivers at the variant
level.

Run:  python examples/somatic_pipeline.py
"""

from repro.core.system import SystemConfig
from repro.genomics.simulate import SimulationProfile, simulate_sample
from repro.refinement.pipeline import RefinementPipeline
from repro.variants.caller import SomaticCaller
from repro.variants.evaluation import evaluate_calls
from repro.variants.vcf import format_vcf


def main():
    profile = SimulationProfile(
        coverage=45,
        indel_rate=8e-4,
        snp_rate=1.2e-3,
        somatic_fraction_range=(0.25, 0.9),  # subclonal tumor fractions
        aligner_indel_accuracy=0.45,
        hotspot_mass=0.1,
    )
    sample = simulate_sample({"chr17": 30_000}, profile=profile, seed=23)
    indels = sum(1 for v in sample.truth_variants if v.is_indel)
    print(f"tumor sample: {len(sample.reads)} reads at "
          f"{profile.coverage:.0f}x, {len(sample.truth_variants)} somatic "
          f"truth variants ({indels} INDELs)")

    caller = SomaticCaller(sample.reference)

    # --- naive calling on raw alignments --------------------------------
    raw_calls = caller.call(sample.reads)
    raw = evaluate_calls(raw_calls, sample.truth_variants)
    print(f"\nwithout refinement: precision {raw.precision:.2f}, "
          f"recall {raw.recall:.2f}, F1 {raw.f1:.2f} "
          f"({len(raw.false_positives)} false calls)")

    # --- the full refinement pipeline, IR on the accelerator ------------
    pipeline = RefinementPipeline(
        sample.reference, use_accelerator=True,
        system_config=SystemConfig.iracc(),
    )
    refined = pipeline.run(sample.reads)
    print(f"\nrefinement pipeline stages:")
    for stage in refined.stages:
        print(f"  {stage.stage:36s} {stage.seconds:7.3f}s "
              f"({refined.fraction(stage.stage):5.1%})")
    print(f"  duplicates marked: "
          f"{refined.duplicate_report.duplicates_marked}")
    print(f"  reads realigned:   "
          f"{refined.realigner_report.reads_realigned}")

    post_calls = caller.call(refined.reads)
    post = evaluate_calls(post_calls, sample.truth_variants)
    print(f"\nwith IR + refinement: precision {post.precision:.2f}, "
          f"recall {post.recall:.2f}, F1 {post.f1:.2f} "
          f"({len(post.false_positives)} false calls)")
    print(f"false positives removed by refinement: "
          f"{len(raw.false_positives) - len(post.false_positives)}")

    # --- somatic hard filters on top --------------------------------
    from repro.variants.filters import apply_filters

    filtered = apply_filters(post_calls)
    final = evaluate_calls(filtered.passed, sample.truth_variants)
    print(f"\nafter somatic filters: precision {final.precision:.2f}, "
          f"recall {final.recall:.2f}, F1 {final.f1:.2f}")
    rejections = filtered.rejections_by_reason()
    if rejections:
        print(f"filter rejections: {rejections}")

    print("\nfirst VCF records of the refined call set:")
    vcf_lines = format_vcf(post_calls[:5], sample.reference).splitlines()
    for line in vcf_lines:
        if not line.startswith("##"):
            print(f"  {line}")


if __name__ == "__main__":
    main()
