"""FASTQ to VCF: the complete Figure 1 flow on owned components.

Runs all three of the paper's pipelines end to end with no simulated
alignments -- the reads start as unaligned FASTQ and go through:

1. **primary alignment** (pipeline 1): the seed-and-extend aligner
   (suffix-array seeding + affine Smith-Waterman extension);
2. **alignment refinement** (pipeline 2): sort, duplicate marking,
   INDEL realignment on the FPGA system model, BQSR;
3. **variant calling** (pipeline 3): the somatic caller, evaluated
   against the simulator's truth set.

Per-stage work counters show where the time goes, mirroring Figure 2's
breakdown on a laptop-scale sample.

Run:  python examples/fastq_to_vcf.py
"""

import time

import numpy as np

from repro.align.seed_extend import SeedAndExtendAligner
from repro.core.system import SystemConfig
from repro.genomics.fastq import FastqRecord
from repro.genomics.reference import ReferenceGenome
from repro.genomics.simulate import ReadSimulator, SimulationProfile
from repro.refinement.pipeline import RefinementPipeline
from repro.variants.caller import SomaticCaller
from repro.variants.evaluation import evaluate_calls


def make_fastq_sample(seed: int = 31):
    """Simulate a donor genome and strip the reads back to FASTQ."""
    rng = np.random.default_rng(seed)
    reference = ReferenceGenome.random({"chr20": 8_000}, rng)
    profile = SimulationProfile(
        read_length=100, coverage=25, indel_rate=1.2e-3, snp_rate=1e-3,
        hotspot_mass=0.0, base_error_rate=0.003,
    )
    simulator = ReadSimulator(reference, profile, seed=seed + 1)
    sample = simulator.simulate()
    records = [
        FastqRecord(read.name, read.seq, read.quals) for read in sample.reads
    ]
    return reference, records, sample.truth_variants


def main():
    reference, records, truth = make_fastq_sample()
    print(f"input: {len(records)} FASTQ reads, "
          f"{len(truth)} truth variants "
          f"({sum(1 for v in truth if v.is_indel)} INDELs)")

    # --- pipeline 1: primary alignment ---------------------------------
    start = time.perf_counter()
    aligner = SeedAndExtendAligner(reference)
    aligned = aligner.align(records)
    align_seconds = time.perf_counter() - start
    mapped = [read for read in aligned if read.is_mapped]
    stats = aligner.stats
    print(f"\nprimary alignment: {len(mapped)}/{len(aligned)} mapped "
          f"in {align_seconds:.1f}s")
    print(f"  seeds generated:        {stats.seeds_generated:,}")
    print(f"  suffix-array lookups:   {stats.suffix_array_lookups:,}")
    print(f"  Smith-Waterman cells:   {stats.dp_cells:,}")

    from repro.genomics.stats import compute_stats, format_stats

    print("\nalignment QC:")
    for line in format_stats(compute_stats(mapped, reference)).splitlines():
        print(f"  {line}")

    # --- pipeline 2: alignment refinement ------------------------------
    pipeline = RefinementPipeline(reference, use_accelerator=True,
                                  system_config=SystemConfig.iracc())
    refined = pipeline.run(mapped)
    print("\nalignment refinement:")
    for stage in refined.stages:
        print(f"  {stage.stage:36s} {stage.seconds:7.3f}s "
              f"({refined.fraction(stage.stage):5.1%})")
    print(f"  reads realigned: {refined.realigner_report.reads_realigned}")

    # --- pipeline 3: variant calling ------------------------------------
    caller = SomaticCaller(reference)
    raw_eval = evaluate_calls(caller.call(mapped), truth)
    refined_eval = evaluate_calls(caller.call(refined.reads), truth)
    print(f"\nvariant calling (against truth):")
    print(f"  pre-refinement : precision {raw_eval.precision:.2f} "
          f"recall {raw_eval.recall:.2f} F1 {raw_eval.f1:.2f}")
    print(f"  post-refinement: precision {refined_eval.precision:.2f} "
          f"recall {refined_eval.recall:.2f} F1 {refined_eval.f1:.2f}")


if __name__ == "__main__":
    main()
