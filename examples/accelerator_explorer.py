"""Explore the accelerator's microarchitecture interactively.

Drives the cycle-stepped IR unit the way the paper's Section III does:
programs it through the five RoCC instructions, watches the command
router's handshake, renders Figure 7-style scheduling timelines, and
sweeps the design space (lanes x pruning x scheduling) on one workload.

Run:  python examples/accelerator_explorer.py
"""

import numpy as np

from repro.core.accelerator import IRUnit, UnitConfig
from repro.core.host import plan_targets
from repro.core.isa import target_command_stream
from repro.core.router import RoccCommandRouter
from repro.core.scheduler import ScheduledTarget, schedule_async, schedule_sync
from repro.core.system import AcceleratedIRSystem, SystemConfig
from repro.experiments.reporting import format_table
from repro.workloads.generator import BENCH_PROFILE, synthesize_site
from repro.workloads.toy import figure7_toy_targets


def demonstrate_isa(site):
    """Program one unit through the Table I command sequence."""
    print("=== RoCC command sequence for one target (Table I) ===")
    plan = plan_targets([site])
    commands = target_command_stream(0, site, plan.targets[0].buffer_addrs)
    router = RoccCommandRouter(num_units=1)
    for command in commands:
        started = router.dispatch(command)
        operands = f"rs1={command.rs1_value:<8} rs2={command.rs2_value:<10}"
        note = "-> unit 0 started" if started is not None else ""
        print(f"  {command.funct.name:<10} {operands} {note}")
    result = IRUnit(UnitConfig(lanes=32)).run_site(site, mode="stepped")
    router.complete(0)
    print(f"  response: unit {router.poll_completion()} done, "
          f"{result.cycles.total:,} cycles, "
          f"{int(result.realign.sum())} reads realigned\n")


def demonstrate_scheduling():
    """The Figure 7 toy experiment, rendered."""
    print("=== Figure 7: scheduling the toy workload on 4 units ===")
    unit = IRUnit(UnitConfig(lanes=1))
    targets = [
        ScheduledTarget(index=i, transfer_cycles=120,
                        compute_cycles=unit.run_site(site).cycles.total)
        for i, site in enumerate(figure7_toy_targets())
    ]
    sync = schedule_sync(targets, 4)
    async_ = schedule_async(targets, 4)
    print("synchronous-parallel (note the idle units behind target 3):")
    print(sync.ascii_timeline())
    print(f"  makespan {sync.makespan:,} cycles, "
          f"utilization {sync.utilization:.0%}")
    print("asynchronous-parallel:")
    print(async_.ascii_timeline())
    print(f"  makespan {async_.makespan:,} cycles, "
          f"utilization {async_.utilization:.0%}")
    print(f"  async gain: {sync.makespan / async_.makespan:.2f}x\n")


def sweep_design_space(sites):
    """Lanes x pruning x scheduling, one row per design point."""
    print("=== Design-space sweep (64-site workload, x24 rounds) ===")
    rows = []
    for lanes in (1, 32):
        for prune in (False, True):
            for scheduling in ("sync", "async"):
                config = SystemConfig(
                    name=f"{lanes}l/{'p' if prune else 'np'}/{scheduling}",
                    lanes=lanes, prune=prune, scheduling=scheduling,
                )
                run = AcceleratedIRSystem(config).run(sites, replication=24)
                rows.append([
                    lanes, "on" if prune else "off", scheduling,
                    f"{run.total_seconds * 1e3:.2f} ms",
                    f"{run.utilization:.0%}",
                    f"{run.pruned_fraction:.0%}",
                ])
    print(format_table(
        ["lanes", "pruning", "scheduling", "time", "unit util",
         "work pruned"], rows,
    ))


def main():
    rng = np.random.default_rng(11)
    site = synthesize_site(rng, BENCH_PROFILE, complexity=0.6)
    demonstrate_isa(site)
    demonstrate_scheduling()
    sites = [synthesize_site(rng, BENCH_PROFILE) for _ in range(64)]
    sweep_design_space(sites)


if __name__ == "__main__":
    main()
