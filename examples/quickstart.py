"""Quickstart: realign one INDEL site in software and on the simulated FPGA.

Walks the library's core loop end to end in under a minute:

1. build a tiny reference with a known 6-base deletion;
2. simulate a read pileup where half the INDEL-carrying reads were
   misaligned by the primary aligner (gap-free alignments full of
   mismatches -- the error INDEL realignment exists to fix);
3. run the software realigner (the paper's Algorithms 1 + 2);
4. run the same sites through the 32-unit FPGA accelerator model and
   check the outputs are bit-identical, then compare modelled runtimes.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.baselines.gatk3 import Gatk3Baseline
from repro.core.system import AcceleratedIRSystem, AcceleratedRealigner, SystemConfig
from repro.genomics.cigar import Cigar
from repro.genomics.read import Read
from repro.genomics.reference import Contig, ReferenceGenome
from repro.genomics.sequence import random_bases
from repro.realign.realigner import IndelRealigner


def build_scenario(seed: int = 7):
    """A 3 kb reference with a 6-base deletion at position 1500."""
    rng = np.random.default_rng(seed)
    ref_seq = random_bases(3_000, rng)
    reference = ReferenceGenome([Contig("demo", ref_seq)])
    donor = ref_seq[:1500] + ref_seq[1506:]  # the sample's true genome

    reads = []
    read_len = 120
    for i, start in enumerate(range(1400, 1500, 6)):
        seq = donor[start : start + read_len]
        quals = np.full(read_len, 32, dtype=np.uint8)
        before_deletion = 1500 - start
        if i % 2 == 0:
            # The aligner got it right: gapped CIGAR.
            cigar = Cigar.parse(f"{before_deletion}M6D{read_len - before_deletion}M")
        else:
            # Misaligned: the INDEL was absorbed into mismatches.
            cigar = Cigar.parse(f"{read_len}M")
        reads.append(Read(f"read{i:02d}", "demo", start, seq, quals, cigar))
    return reference, reads


def main():
    reference, reads = build_scenario()
    misaligned = sum(1 for r in reads if not r.has_indel)
    print(f"pileup: {len(reads)} reads over a 6-base deletion, "
          f"{misaligned} misaligned (gap-free)")

    # --- software INDEL realignment (the GATK3 algorithm) -------------
    realigner = IndelRealigner(reference)
    updated, report = realigner.realign(reads)
    print(f"\nsoftware realigner: {report.targets_identified} target(s), "
          f"{report.sites_built} site(s), {report.reads_realigned} reads "
          f"realigned, {report.unpruned_comparisons:,} base comparisons")
    fixed = sum(
        1 for before, after in zip(reads, updated)
        if not before.has_indel and after.has_indel
    )
    print(f"misaligned reads now carrying the deletion: {fixed}/{misaligned}")

    # --- the same kernel on the accelerated system --------------------
    accelerated = AcceleratedRealigner(reference, SystemConfig.iracc())
    hw_reads, run, _ = accelerated.realign(reads)
    identical = all(
        a.pos == b.pos and str(a.cigar) == str(b.cigar)
        for a, b in zip(updated, hw_reads)
    )
    print(f"\naccelerator outputs bit-identical to software: {identical}")
    print(f"accelerator time ({run.config.num_units} units, "
          f"{run.config.lanes}-wide, async): {run.total_seconds * 1e6:.1f} us")
    print(f"computation pruning eliminated "
          f"{run.pruned_fraction:.0%} of comparisons")

    # --- modelled software baseline ------------------------------------
    _, sites = realigner.build_sites(reads)
    gatk3 = Gatk3Baseline()
    sw_seconds = gatk3.seconds_for_sites([w.site for w in sites])
    print(f"modelled 8-thread GATK3 time: {sw_seconds * 1e6:.1f} us "
          f"(speedup {sw_seconds / run.total_seconds:.1f}x)")


if __name__ == "__main__":
    main()
