"""Plan a whole-genome INDEL realignment job in the cloud.

Reproduces the paper's deployment question: given chromosomes 1-22 of a
60-65x genome, what does INDEL realignment cost on each platform, and
how does the accelerated F1 deployment scale? Uses the per-chromosome
census, the calibrated GATK3/ADAM models, and measured accelerator
throughput from a sampled workload.

Run:  python examples/cloud_cost_planner.py
"""

import numpy as np

from repro.baselines.adam import AdamBaseline
from repro.baselines.gatk3 import Gatk3Baseline
from repro.core.system import AcceleratedIRSystem, SystemConfig
from repro.experiments.reporting import format_table
from repro.perf.instances import F1_2XLARGE, R3_2XLARGE
from repro.perf.model import chromosome_unpruned_comparisons
from repro.workloads.chromosomes import CHROMOSOME_CENSUS
from repro.workloads.generator import BENCH_PROFILE, chromosome_workload


def measure_accelerator_rate(seed: int = 3) -> float:
    """Effective unpruned-equivalent comparisons/second of IR ACC,
    measured on a sampled chromosome-22 workload."""
    census = CHROMOSOME_CENSUS[-1]
    sites = chromosome_workload(census, 64 / census.ir_targets,
                                BENCH_PROFILE, seed=seed)
    run = AcceleratedIRSystem(SystemConfig.iracc()).run(sites, replication=24)
    return run.effective_comparisons_per_second


def main():
    gatk3 = Gatk3Baseline()
    adam = AdamBaseline(gatk3_model=gatk3.model)
    accel_rate = measure_accelerator_rate()
    print(f"measured IR ACC effective rate: {accel_rate:.3g} "
          f"unpruned-equivalent comparisons/s\n")

    rows = []
    totals = {"GATK3": 0.0, "ADAM": 0.0, "IR ACC": 0.0}
    for census in CHROMOSOME_CENSUS:
        work = chromosome_unpruned_comparisons(census)
        gatk3_s = gatk3.model.seconds_for_comparisons(work)
        adam_s = adam.seconds_for_comparisons(work)
        accel_s = work / accel_rate
        totals["GATK3"] += gatk3_s
        totals["ADAM"] += adam_s
        totals["IR ACC"] += accel_s
        rows.append([
            f"chr{census.name}", f"{census.ir_targets:,}",
            f"{gatk3_s / 3600:.1f}h", f"{adam_s / 3600:.1f}h",
            f"{accel_s / 60:.1f}m",
        ])
    print(format_table(
        ["chromosome", "IR targets", "GATK3 (r3)", "ADAM (r3)",
         "IR ACC (f1)"], rows,
    ))

    print("\nwhole-genome totals (chromosomes 1-22):")
    cost_rows = []
    for system, seconds in totals.items():
        instance = F1_2XLARGE if system == "IR ACC" else R3_2XLARGE
        cost_rows.append([
            system, instance.name,
            f"{seconds / 3600:.2f}h", f"${instance.cost(seconds):.2f}",
        ])
    print(format_table(["system", "instance", "time", "cost"], cost_rows))
    iracc_cost = F1_2XLARGE.cost(totals["IR ACC"])
    print(f"\ncost efficiency: {R3_2XLARGE.cost(totals['GATK3']) / iracc_cost:.0f}x "
          f"vs GATK3, {R3_2XLARGE.cost(totals['ADAM']) / iracc_cost:.0f}x vs ADAM "
          f"(paper: 32x and 17x)")

    # Fleet planning: a diagnostic lab's batch of genomes.
    print("\nfleet planning for a 100-genome batch (time vs F1 fleet size):")
    genome_seconds = totals["IR ACC"] * 100
    fleet_rows = []
    for fleet in (1, 4, 16, 64):
        wall = genome_seconds / fleet
        cost = F1_2XLARGE.cost(genome_seconds)  # instance-time is constant
        fleet_rows.append([fleet, f"{wall / 3600:.1f}h", f"${cost:.0f}"])
    print(format_table(["F1 instances", "wall clock", "total cost"],
                       fleet_rows))


if __name__ == "__main__":
    main()
