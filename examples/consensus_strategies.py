"""Observed-INDEL vs de Bruijn-assembly consensus generation.

The paper situates its position-based IR against the graph-based callers
that were emerging at the time (Section II: GATK4's HaplotypeCaller and
Mutect2 assemble haplotypes with de Bruijn graphs, but "in its current
state produces low quality variants and cannot be used for somatic
calling"). The reproduction implements both consensus-generation
strategies behind the same WHD kernel and accelerator; this example runs
them head to head on one simulated sample and reports agreement, work,
and wall-clock.

Run:  python examples/consensus_strategies.py
"""

import time

from repro.experiments.reporting import format_table
from repro.genomics.simulate import SimulationProfile, simulate_sample
from repro.realign.realigner import IndelRealigner
from repro.variants.caller import SomaticCaller
from repro.variants.evaluation import evaluate_calls


def run_strategy(sample, strategy: str):
    realigner = IndelRealigner(sample.reference,
                               consensus_strategy=strategy)
    start = time.perf_counter()
    reads, report = realigner.realign(sample.reads)
    seconds = time.perf_counter() - start
    calls = SomaticCaller(sample.reference).call(reads)
    evaluation = evaluate_calls(calls, sample.truth_variants)
    return reads, report, evaluation, seconds


def main():
    profile = SimulationProfile(
        coverage=25, indel_rate=1e-3, snp_rate=8e-4, hotspot_mass=0.1,
    )
    sample = simulate_sample({"chr9": 12_000}, profile=profile, seed=41)
    print(f"sample: {len(sample.reads)} reads, "
          f"{sum(1 for v in sample.truth_variants if v.is_indel)} truth "
          f"INDELs\n")

    results = {}
    for strategy in ("observed", "assembly"):
        reads, report, evaluation, seconds = run_strategy(sample, strategy)
        results[strategy] = (reads, report, evaluation, seconds)

    rows = []
    for strategy, (reads, report, evaluation, seconds) in results.items():
        rows.append([
            strategy,
            report.sites_built,
            report.reads_realigned,
            f"{report.unpruned_comparisons:,}",
            f"{evaluation.precision:.2f}",
            f"{evaluation.recall:.2f}",
            f"{seconds:.1f}s",
        ])
    print(format_table(
        ["consensus strategy", "sites", "realigned", "kernel comparisons",
         "precision", "recall", "host time"],
        rows,
    ))

    observed_reads = results["observed"][0]
    assembly_reads = results["assembly"][0]
    agree = sum(
        1 for a, b in zip(observed_reads, assembly_reads)
        if a.pos == b.pos and str(a.cigar) == str(b.cigar)
    )
    print(f"\nread placements agreeing between strategies: "
          f"{agree}/{len(observed_reads)} "
          f"({agree / len(observed_reads):.1%})")
    print("\nTakeaway: the CIGAR-observation strategy (what the paper's "
          "hardware accelerates) and local assembly generate largely the "
          "same consensuses on short-INDEL data; assembly pays a much "
          "larger host-side cost, which is the paper's argument for "
          "accelerating the position-based pipeline that somatic callers "
          "still rely on.")


if __name__ == "__main__":
    main()
