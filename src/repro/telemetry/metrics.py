"""First-class metrics derived from a telemetry session.

The raw artifacts are spans and counters; the questions the paper's
evaluation asks (Figure 7: how much of the sea idles under each
scheduling scheme? Section V: how small is the transfer share?) are
*derived* quantities. This module computes them once, from the same
records the exporter writes, so the CLI, the experiments, and the
tests all quote one set of numbers:

- **unit occupancy** -- busy/makespan per unit and its mean, the
  quantitative form of Figure 7's utilization gap;
- **transfer-channel utilization** -- the share of the makespan the
  serialized PCIe channel was occupied (the paper's "only 0.01% of the
  total runtime" claim at full scale);
- **critical path** -- the longest zero-slack chain of spans ending at
  the makespan: each link's start coincides with the previous link's
  end (dispatch follows transfer, or back-to-back occupancy of one
  resource), so the chain is the sequence of events that actually
  gated the run;
- **recovery overhead fraction** -- cycles burned on failed dispatch
  attempts and faulted DMA transfers, as a share of all cycles spent
  (wasted + useful; zero on a fault-free run). Normalizing by spent
  cycles rather than the makespan keeps the fraction in ``[0, 1]``
  even when several units burn failed attempts concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.telemetry.spans import (
    CAT_COMPUTE,
    CAT_FALLBACK,
    CAT_FAULTED,
    CAT_TRANSFER,
    Telemetry,
    TraceSpan,
)


@dataclass(frozen=True)
class ScheduleMetrics:
    """Derived performance metrics for one scheduled run."""

    makespan_ticks: int
    unit_occupancy: Dict[int, float]
    mean_occupancy: float
    channel_utilization: float
    critical_path_ticks: int
    critical_path_spans: int
    recovery_overhead_fraction: float

    def describe(self) -> str:
        occ = ", ".join(
            f"u{unit}={occupancy:.0%}"
            for unit, occupancy in sorted(self.unit_occupancy.items())
        )
        return (
            f"makespan {self.makespan_ticks} ticks; "
            f"mean occupancy {self.mean_occupancy:.1%} ({occ}); "
            f"channel utilization {self.channel_utilization:.1%}; "
            f"critical path {self.critical_path_ticks} ticks over "
            f"{self.critical_path_spans} spans; "
            f"recovery overhead {self.recovery_overhead_fraction:.1%}"
        )


def _critical_path(spans: List[TraceSpan], makespan: int) -> List[TraceSpan]:
    """Longest zero-slack chain ending at the makespan.

    Greedy backward walk: start from the span that ends last; its
    predecessor is any span whose end equals the current span's start
    (ties prefer the longest predecessor, which maximizes the chain's
    accounted cycles). Spans of zero duration cannot anchor the walk.
    """
    if not spans or makespan == 0:
        return []
    by_end: Dict[int, List[TraceSpan]] = {}
    for span in spans:
        by_end.setdefault(span.end, []).append(span)
    current = max(spans, key=lambda s: (s.end, s.duration))
    chain = [current]
    while True:
        candidates = by_end.get(chain[-1].start, [])
        candidates = [s for s in candidates if s is not chain[-1]]
        if not candidates:
            break
        chain.append(max(candidates, key=lambda s: s.duration))
    chain.reverse()
    return chain


def derive_schedule_metrics(telemetry: Telemetry) -> ScheduleMetrics:
    """Compute :class:`ScheduleMetrics` from a recorded session."""
    work_spans = telemetry.spans_in(CAT_COMPUTE, CAT_FAULTED, CAT_FALLBACK)
    transfer_spans = telemetry.spans_in(CAT_TRANSFER)
    makespan = telemetry.makespan_ticks

    occupancy: Dict[int, float] = {}
    total_busy = 0
    real_units = [
        block for block in telemetry.counters.iter_units()
        if block.unit >= 0
    ]
    for block in real_units:
        occupancy[block.unit] = block.occupancy
        total_busy += block.busy_cycles
    if real_units and makespan > 0:
        mean_occupancy = total_busy / (len(real_units) * makespan)
    else:
        mean_occupancy = 0.0

    transfer_busy = sum(span.duration for span in transfer_spans)
    channel_utilization = transfer_busy / makespan if makespan else 0.0

    chain = _critical_path(work_spans + transfer_spans, makespan)
    wasted = sum(
        span.duration for span in telemetry.spans_in(CAT_FAULTED)
    ) + telemetry.counters.get("dma.penalty_cycles")
    useful = sum(
        span.duration
        for span in telemetry.spans_in(CAT_COMPUTE, CAT_FALLBACK)
    )
    spent = wasted + useful
    return ScheduleMetrics(
        makespan_ticks=makespan,
        unit_occupancy=occupancy,
        mean_occupancy=mean_occupancy,
        channel_utilization=channel_utilization,
        critical_path_ticks=sum(span.duration for span in chain),
        critical_path_spans=len(chain),
        recovery_overhead_fraction=(wasted / spent if spent else 0.0),
    )
