"""Zero-overhead-when-disabled instrumentation for the accelerated IR
system: per-unit performance counters, span tracing, derived metrics,
and Chrome trace_event / flat-dict exporters.

Usage::

    from repro.telemetry import Telemetry
    from repro.telemetry.export import write_chrome_trace
    from repro.telemetry.metrics import derive_schedule_metrics

    telemetry = Telemetry(ticks_per_second=config.clock.frequency_hz)
    system.run(sites, telemetry=telemetry)
    print(derive_schedule_metrics(telemetry).describe())
    write_chrome_trace(telemetry, "trace.json")  # open in Perfetto

Every instrumented hot path takes ``telemetry=None`` by default and
guards each event site with a single ``is not None`` check -- with
telemetry off there is no recorder, no allocation, and no measurable
overhead (pinned by ``benchmarks/bench_telemetry.py``); with it on,
functional outputs are byte-identical (pinned by property tests).

See ``docs/TELEMETRY.md`` for counter definitions and the span schema.
"""

from repro.telemetry.counters import (
    CHANNEL_UNIT,
    HOST_UNIT,
    CounterBoard,
    UnitCounters,
)
from repro.telemetry.export import (
    counters_dict,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.metrics import ScheduleMetrics, derive_schedule_metrics
from repro.telemetry.spans import (
    CAT_COMPUTE,
    CAT_ENGINE,
    CAT_FALLBACK,
    CAT_FAULTED,
    CAT_FLEET,
    CAT_RECOVERY,
    CAT_STREAM,
    CAT_TRANSFER,
    Telemetry,
    TraceInstant,
    TraceSpan,
    unit_track,
)

__all__ = [
    "CAT_COMPUTE",
    "CAT_ENGINE",
    "CAT_FALLBACK",
    "CAT_FAULTED",
    "CAT_FLEET",
    "CAT_RECOVERY",
    "CAT_STREAM",
    "CAT_TRANSFER",
    "CHANNEL_UNIT",
    "CounterBoard",
    "HOST_UNIT",
    "ScheduleMetrics",
    "Telemetry",
    "TraceInstant",
    "TraceSpan",
    "UnitCounters",
    "counters_dict",
    "derive_schedule_metrics",
    "to_chrome_trace",
    "unit_track",
    "write_chrome_trace",
]
