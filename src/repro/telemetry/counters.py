"""Per-IR-unit performance counters.

The paper reports only end-to-end totals (Table 2's runtimes, Figure
7's qualitative utilization gap); production accelerator stacks expose
*where cycles go* as first-class hardware counters. This module is that
counter file: one :class:`UnitCounters` block per IR unit -- busy /
idle / stall cycles, targets completed, WHD cells evaluated and pruned,
retries and quarantines -- plus the special tracks for the PCIe transfer
channel and the host software-fallback path.

Counter semantics (all in unit-clock cycles unless noted):

- ``busy_cycles``: cycles the unit held a dispatched target (successful
  *and* failed attempts -- a hung attempt occupies the unit until the
  watchdog reclaims it).
- ``idle_cycles``: ``makespan - busy_cycles``; the complement, so
  ``busy + idle == makespan`` is an invariant pinned by property tests.
- ``stall_cycles``: the subset of idle time spent *between* dispatches
  (waiting on the serialized transfer channel or the synchronous flush
  barrier); the remainder of idle is ramp-in before the first target
  and drain-out after the last. ``stall <= idle`` always.
- ``targets_completed``: dispatches that produced a completion response.
- ``whd_cells_evaluated``: base-pair comparisons the HDC actually
  performed (post-pruning).
- ``whd_cells_pruned``: comparisons computation pruning eliminated
  (``unpruned - evaluated``).
- ``retries`` / ``quarantined``: recovery actions attributed to the
  unit (failed attempts that were requeued; whether the unit left
  service).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterator

#: Pseudo-unit id for the host CPU's software-fallback track (matches
#: repro.resilience.recovery.HOST_UNIT).
HOST_UNIT = -1

#: Pseudo-unit id for the serialized PCIe transfer channel.
CHANNEL_UNIT = -2


@dataclass
class UnitCounters:
    """One IR unit's performance-counter block."""

    unit: int
    busy_cycles: int = 0
    idle_cycles: int = 0
    stall_cycles: int = 0
    targets_completed: int = 0
    whd_cells_evaluated: int = 0
    whd_cells_pruned: int = 0
    retries: int = 0
    quarantined: bool = False

    @property
    def total_cycles(self) -> int:
        return self.busy_cycles + self.idle_cycles

    @property
    def occupancy(self) -> float:
        """Fraction of the run this unit spent computing (in [0, 1])."""
        if self.total_cycles == 0:
            return 0.0
        return self.busy_cycles / self.total_cycles

    @property
    def pruned_fraction(self) -> float:
        total = self.whd_cells_evaluated + self.whd_cells_pruned
        if total == 0:
            return 0.0
        return self.whd_cells_pruned / total

    def as_dict(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in fields(self):
            if f.name == "unit":
                continue
            out[f.name] = int(getattr(self, f.name))
        return out


class CounterBoard:
    """The run's counter file: named scalars plus per-unit blocks.

    Scalar counters are namespaced strings (``"mmio.responses_polled"``,
    ``"dma.bytes_transferred"``, ...); per-unit blocks are created on
    first touch so the board never needs to know the sea's width in
    advance.
    """

    def __init__(self) -> None:
        self.scalars: Dict[str, int] = {}
        self.units: Dict[int, UnitCounters] = {}

    def add(self, name: str, delta: int = 1) -> None:
        self.scalars[name] = self.scalars.get(name, 0) + delta

    def get(self, name: str) -> int:
        return self.scalars.get(name, 0)

    def unit(self, unit_id: int) -> UnitCounters:
        block = self.units.get(unit_id)
        if block is None:
            block = UnitCounters(unit=unit_id)
            self.units[unit_id] = block
        return block

    def iter_units(self) -> Iterator[UnitCounters]:
        for unit_id in sorted(self.units):
            yield self.units[unit_id]

    def flat(self) -> Dict[str, int]:
        """Everything as one flat ``name -> value`` dict.

        Per-unit counters flatten to ``unit{N}.{field}``; the host and
        channel pseudo-units flatten to ``host_sw.*`` / ``channel.*``.
        """
        out = dict(sorted(self.scalars.items()))
        for block in self.iter_units():
            if block.unit == HOST_UNIT:
                prefix = "host_sw"
            elif block.unit == CHANNEL_UNIT:
                prefix = "channel"
            else:
                prefix = f"unit{block.unit}"
            for key, value in block.as_dict().items():
                out[f"{prefix}.{key}"] = value
        return out
