"""Span tracing: the run's timeline as first-class records.

A :class:`Telemetry` session collects everything one run of the
accelerated system observes about itself: complete spans (a named
interval on a named track -- one track per IR unit, one for the PCIe
transfer channel, one for the host software-fallback path), instant
events (watchdog expirations, DMA faults, quarantines), and the
:class:`~repro.telemetry.counters.CounterBoard`.

The instrumentation contract is *zero overhead when disabled*: hot
paths take ``telemetry: Optional[Telemetry] = None`` and guard every
event site with ``if telemetry is not None`` -- no null-object method
calls, no string formatting, nothing on the fault-free fast path when
tracing is off. Property tests pin that enabling telemetry changes no
functional output byte.

Timestamps are integer ticks on the recorder's own timebase --
unit-clock cycles for the cycle model (``ticks_per_second`` from the
:class:`~repro.hw.clock.ClockRecipe`), seconds for fleet timelines
(``ticks_per_second=1``). Exporters use the timebase to emit real
microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.telemetry.counters import (
    CHANNEL_UNIT,
    HOST_UNIT,
    CounterBoard,
    UnitCounters,
)

#: Span categories (Chrome trace_event ``cat`` field).
CAT_COMPUTE = "compute"      # a target computing on an IR unit
CAT_FAULTED = "faulted"      # a failed dispatch attempt (recovery only)
CAT_TRANSFER = "transfer"    # PCIe channel occupancy for one target
CAT_FALLBACK = "fallback"    # software completion on the host CPU
CAT_FLEET = "fleet"          # one job on one fleet instance
CAT_ENGINE = "engine"        # one shard on a host worker process
CAT_STREAM = "stream"        # one chunk in the streaming data plane
CAT_RECOVERY = "recovery"    # a host data-plane recovery action
CAT_SHARD = "shard"          # one chunk on a horizontal shard worker


def unit_track(unit: int) -> str:
    """Canonical track name for a unit id (pseudo-units included)."""
    if unit == HOST_UNIT:
        return "host-sw"
    if unit == CHANNEL_UNIT:
        return "pcie-channel"
    return f"unit {unit}"


@dataclass(frozen=True)
class TraceSpan:
    """One complete interval on one track.

    Frozen and fully hashable so span *sets* can be compared -- the
    acceptance criterion "a fault-free recovery run and schedule_async
    produce identical span sets" is literally ``set(a) == set(b)``.
    """

    name: str
    track: str
    start: int
    end: int
    category: str = CAT_COMPUTE
    args: Tuple[Tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"span {self.name!r} ends before it starts "
                f"({self.start}..{self.end})"
            )

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class TraceInstant:
    """One point event on one track (watchdog expiry, DMA fault, ...)."""

    name: str
    track: str
    ts: int
    category: str = ""
    args: Tuple[Tuple[str, int], ...] = ()


@dataclass
class Telemetry:
    """One run's telemetry session: spans + instants + counters."""

    ticks_per_second: Optional[float] = None
    label: str = "repro"
    spans: List[TraceSpan] = field(default_factory=list)
    instants: List[TraceInstant] = field(default_factory=list)
    counters: CounterBoard = field(default_factory=CounterBoard)

    # -- recording ------------------------------------------------------
    def span(self, name: str, track: str, start: int, end: int,
             category: str = CAT_COMPUTE, **args: int) -> TraceSpan:
        record = TraceSpan(name=name, track=track, start=start, end=end,
                           category=category,
                           args=tuple(sorted(args.items())))
        self.spans.append(record)
        return record

    def instant(self, name: str, track: str, ts: int,
                category: str = "", **args: int) -> TraceInstant:
        record = TraceInstant(name=name, track=track, ts=ts,
                              category=category,
                              args=tuple(sorted(args.items())))
        self.instants.append(record)
        return record

    def count(self, name: str, delta: int = 1) -> None:
        self.counters.add(name, delta)

    def unit(self, unit_id: int) -> UnitCounters:
        return self.counters.unit(unit_id)

    # -- scheduler integration ------------------------------------------
    def record_compute_spans(self, result) -> None:
        """Emit one compute span per :class:`TimelineSpan` of a
        :class:`~repro.core.scheduler.ScheduleResult` (duck-typed to
        avoid a core<->telemetry import cycle)."""
        for span in result.spans:
            self.span(f"target {span.target_index}", unit_track(span.unit),
                      span.start, span.end, CAT_COMPUTE)

    def finalize_unit_cycles(self, result,
                             count_completions: bool = True) -> None:
        """Derive busy/idle/stall counters from a schedule's timeline.

        ``busy`` is the summed occupancy of every attempt span on the
        unit; ``idle`` its complement against the makespan; ``stall``
        the inter-dispatch gaps (channel serialization / sync barrier),
        which excludes ramp-in before the first dispatch and drain-out
        after the last. Every scheduled unit gets a block even if no
        target ever reached it (all idle).

        The fault-free schedulers complete every span they record, so
        they leave ``count_completions`` on; the recovery scheduler's
        timeline includes failed attempts, so it counts completions
        itself and passes ``False``.
        """
        makespan = result.makespan
        per_unit: dict = {u: [] for u in range(result.num_units)}
        for span in result.spans:
            per_unit.setdefault(span.unit, []).append(span)
        for unit_id, spans in sorted(per_unit.items()):
            block = self.unit(unit_id)
            spans.sort(key=lambda s: (s.start, s.end))
            busy = sum(s.duration for s in spans)
            stall = 0
            for prev, nxt in zip(spans, spans[1:]):
                stall += max(0, nxt.start - prev.end)
            block.busy_cycles += busy
            block.idle_cycles += makespan - busy
            block.stall_cycles += stall
            if count_completions:
                block.targets_completed += len(spans)

    # -- views ----------------------------------------------------------
    def spans_in(self, *categories: str) -> List[TraceSpan]:
        wanted = set(categories)
        return [s for s in self.spans if s.category in wanted]

    @property
    def makespan_ticks(self) -> int:
        return max((s.end for s in self.spans), default=0)
