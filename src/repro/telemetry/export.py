"""Telemetry exporters: Chrome ``trace_event`` JSON and flat counters.

The span timeline exports to the Chrome trace-event format (the JSON
array flavour wrapped in a ``traceEvents`` object), which Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` open directly: one
"thread" per track (IR units, the PCIe channel, the host software
fallback), complete ``X`` events for spans, ``i`` events for instants.

Timestamps convert from the recorder's timebase to microseconds; a
session with no declared timebase exports 1 tick = 1 us (the cycle
timeline then reads directly in cycles).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.telemetry.counters import CHANNEL_UNIT, HOST_UNIT
from repro.telemetry.spans import Telemetry, unit_track

#: Synthetic process id for the single-process trace.
TRACE_PID = 1

#: Minimum exported span duration in microseconds. Chrome/Perfetto drop
#: zero-width complete events from the render entirely, so a span whose
#: ticks round to zero (e.g. a sub-cycle stream chunk on a coarse
#: timebase) would silently vanish from the timeline; a 1 us sliver
#: keeps it visible and clickable.
MIN_SPAN_DURATION_US = 1.0


def _track_order(track: str) -> int:
    """Stable display order: channel, units ascending, host fallback."""
    if track == "pcie-channel":
        return -(10**6)
    if track == "host-sw":
        return 10**6
    if track.startswith("unit "):
        return int(track.split()[1])
    return 10**5


def _tid_map(telemetry: Telemetry) -> Dict[str, int]:
    tracks = {span.track for span in telemetry.spans}
    tracks.update(instant.track for instant in telemetry.instants)
    tracks.update(
        unit_track(block.unit) for block in telemetry.counters.iter_units()
    )
    ordered = sorted(tracks, key=_track_order)
    return {track: tid for tid, track in enumerate(ordered, start=1)}


def _session_events(telemetry: Telemetry, pid: int) -> List[Dict]:
    """All trace events for one session, tagged with ``pid``."""
    ticks_per_second = telemetry.ticks_per_second or 1e6
    us_per_tick = 1e6 / ticks_per_second
    tids = _tid_map(telemetry)
    events: List[Dict] = [
        {
            "ph": "M", "pid": pid, "name": "process_name",
            "args": {"name": telemetry.label},
        },
        {
            "ph": "M", "pid": pid, "name": "process_sort_index",
            "args": {"sort_index": pid},
        },
    ]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append({
            "ph": "M", "pid": pid, "tid": tid,
            "name": "thread_name", "args": {"name": track},
        })
        events.append({
            "ph": "M", "pid": pid, "tid": tid,
            "name": "thread_sort_index",
            "args": {"sort_index": _track_order(track)},
        })
    for span in telemetry.spans:
        events.append({
            "ph": "X",
            "pid": pid,
            "tid": tids[span.track],
            "name": span.name,
            "cat": span.category or "span",
            "ts": span.start * us_per_tick,
            "dur": max(span.duration * us_per_tick, MIN_SPAN_DURATION_US),
            "args": dict(span.args),
        })
    for instant in telemetry.instants:
        events.append({
            "ph": "i",
            "pid": pid,
            "tid": tids[instant.track],
            "name": instant.name,
            "cat": instant.category or "instant",
            "ts": instant.ts * us_per_tick,
            "s": "t",  # thread-scoped instant
            "args": dict(instant.args),
        })
    return events


def to_chrome_trace(
    telemetry: Union[Telemetry, Sequence[Telemetry]],
) -> Dict:
    """Render one session -- or several, as separate trace "processes"
    keyed by their labels -- as a Chrome trace-event JSON object."""
    sessions = ([telemetry] if isinstance(telemetry, Telemetry)
                else list(telemetry))
    if not sessions:
        raise ValueError("need at least one telemetry session to export")
    events: List[Dict] = []
    counters: Dict[str, Dict[str, int]] = {}
    for offset, session in enumerate(sessions):
        events.extend(_session_events(session, TRACE_PID + offset))
        key = session.label
        if key in counters:  # duplicate labels stay distinguishable
            key = f"{key}#{offset}"
        counters[key] = session.counters.flat()
    other: Dict = {
        "counters": counters[sessions[0].label]
        if len(sessions) == 1 else counters,
        "ticks_per_second": sessions[0].ticks_per_second or 1e6,
    }
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(telemetry: Union[Telemetry, Sequence[Telemetry]],
                       path: Union[str, Path]) -> Path:
    """Write the Perfetto-loadable trace file; returns its path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(telemetry), indent=1))
    return path


def counters_dict(telemetry: Telemetry) -> Dict[str, int]:
    """The flat counter export (scalars + per-unit blocks)."""
    return telemetry.counters.flat()


__all__ = [
    "CHANNEL_UNIT",
    "HOST_UNIT",
    "MIN_SPAN_DURATION_US",
    "TRACE_PID",
    "counters_dict",
    "to_chrome_trace",
    "write_chrome_trace",
]
