"""The IR unit's local memories (BRAM-backed buffers).

Figure 6 structure sizes: input buffer #1 holds 32 consensuses x 2048 B,
input buffers #2/#3 hold 256 reads x 256 B of bases and quality scores,
output buffer #1 holds 256 x 1 B realign flags, output buffer #2 holds
256 x 4 B new positions. "The input buffers ... are block-indexed and
byte-selected" with 32-byte blocks, which is what lets the parallel
Hamming distance calculator read 32 bytes per cycle without shifters.

The cycle-stepped unit model reads and writes through these objects so
capacity violations and block addressing are actually exercised; the
analytic model only uses their size arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

#: BRAM read granularity: "we can read 32 bytes of data from the block
#: RAM per cycle".
BLOCK_BYTES = 32


class BufferError(RuntimeError):
    """Raised on capacity or addressing violations."""


@dataclass
class RecordBuffer:
    """A block-indexed input buffer holding fixed-slot records.

    Each record (a consensus, or a read's bases/qualities) occupies one
    slot of ``slot_bytes``; slots are block-aligned so record ``i``
    starts at block ``i * slot_bytes / 32``.
    """

    name: str
    num_slots: int
    slot_bytes: int
    _data: Optional[np.ndarray] = None
    _lengths: Optional[List[int]] = None

    def __post_init__(self) -> None:
        if self.num_slots <= 0 or self.slot_bytes <= 0:
            raise ValueError("buffer geometry must be positive")
        if self.slot_bytes % BLOCK_BYTES != 0:
            raise ValueError(
                f"slot size {self.slot_bytes} not a multiple of {BLOCK_BYTES}"
            )
        self._data = np.zeros(self.num_slots * self.slot_bytes, dtype=np.uint8)
        self._lengths = [0] * self.num_slots

    @property
    def capacity_bytes(self) -> int:
        return self.num_slots * self.slot_bytes

    def load_slot(self, slot: int, payload: np.ndarray) -> None:
        """Fill one record slot (the MemReader's job)."""
        if not 0 <= slot < self.num_slots:
            raise BufferError(f"{self.name}: slot {slot} outside 0..{self.num_slots - 1}")
        payload = np.asarray(payload, dtype=np.uint8)
        if payload.size > self.slot_bytes:
            raise BufferError(
                f"{self.name}: payload of {payload.size} B exceeds the "
                f"{self.slot_bytes} B slot"
            )
        base = slot * self.slot_bytes
        self._data[base : base + self.slot_bytes] = 0
        self._data[base : base + payload.size] = payload
        self._lengths[slot] = payload.size

    def slot_length(self, slot: int) -> int:
        if not 0 <= slot < self.num_slots:
            raise BufferError(f"{self.name}: slot {slot} out of range")
        return self._lengths[slot]

    def read_byte(self, slot: int, offset: int) -> int:
        """Byte-selected single read (the scalar calculator's port)."""
        if not 0 <= offset < self._lengths[slot]:
            raise BufferError(
                f"{self.name}: offset {offset} outside record of "
                f"{self._lengths[slot]} B in slot {slot}"
            )
        return int(self._data[slot * self.slot_bytes + offset])

    def read_block(self, slot: int, block: int) -> np.ndarray:
        """Block-indexed 32-byte read (the parallel calculator's port).

        Reads past the record's tail return the slot's zero padding,
        exactly like real BRAM returns whatever the cells hold; the
        datapath masks lanes beyond the record length.
        """
        base = slot * self.slot_bytes + block * BLOCK_BYTES
        if block < 0 or base + BLOCK_BYTES > (slot + 1) * self.slot_bytes:
            raise BufferError(
                f"{self.name}: block {block} outside slot {slot}"
            )
        return self._data[base : base + BLOCK_BYTES]


@dataclass
class OutputBuffer:
    """A word-addressed output buffer (realign flags / new positions)."""

    name: str
    num_entries: int
    entry_bytes: int
    _values: Optional[np.ndarray] = None
    _written: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.num_entries <= 0 or self.entry_bytes <= 0:
            raise ValueError("buffer geometry must be positive")
        self._values = np.zeros(self.num_entries, dtype=np.int64)
        self._written = np.zeros(self.num_entries, dtype=bool)

    @property
    def capacity_bytes(self) -> int:
        return self.num_entries * self.entry_bytes

    def write(self, index: int, value: int) -> None:
        if not 0 <= index < self.num_entries:
            raise BufferError(f"{self.name}: index {index} out of range")
        limit = 1 << (8 * self.entry_bytes)
        if not 0 <= value < limit:
            raise BufferError(
                f"{self.name}: value {value} does not fit {self.entry_bytes} B"
            )
        self._values[index] = value
        self._written[index] = True

    def read(self, index: int) -> int:
        if not 0 <= index < self.num_entries:
            raise BufferError(f"{self.name}: index {index} out of range")
        return int(self._values[index])

    def was_written(self, index: int) -> bool:
        return bool(self._written[index])

    def clear(self) -> None:
        self._values[:] = 0
        self._written[:] = False


def make_unit_buffers(limits) -> dict:
    """Instantiate the five Figure 6 buffers for one IR unit."""
    slot = lambda n: -(-n // BLOCK_BYTES) * BLOCK_BYTES
    return {
        "consensus": RecordBuffer(
            "consensus-bases", limits.max_consensuses,
            slot(limits.max_consensus_length),
        ),
        "read_bases": RecordBuffer(
            "read-bases", limits.max_reads, slot(limits.max_read_length)
        ),
        "read_quals": RecordBuffer(
            "read-quality-scores", limits.max_reads, slot(limits.max_read_length)
        ),
        "out_realign": OutputBuffer("out-realign-flags", limits.max_reads, 1),
        "out_positions": OutputBuffer("out-new-positions", limits.max_reads, 4),
    }
