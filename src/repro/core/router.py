"""The RoCC command router and per-unit programming state.

"The AXI hub converts RoCC commands and responses to and from AXILite
using Memory-Mapped IO (MMIO) registers ... The RoCC command router
routes the command to the corresponding IR Unit." This module is that
router: it drains encoded commands from the MMIO command queue,
dispatches them to per-unit configuration state, validates that a unit
is fully programmed before ``ir_start``, and posts completion responses
back through the MMIO response queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.isa import BufferId, IrFunct, RoccCommand
from repro.hw.axi import MmioRegisterFile


class RouterError(RuntimeError):
    """Raised on protocol violations (e.g. starting an unconfigured unit)."""


@dataclass
class UnitProgrammingState:
    """Everything ``ir_set_*`` must provide before ``ir_start`` is legal."""

    buffer_addrs: Dict[BufferId, int] = field(default_factory=dict)
    target_start: Optional[int] = None
    num_consensuses: Optional[int] = None
    num_reads: Optional[int] = None
    consensus_lengths: Dict[int, int] = field(default_factory=dict)
    busy: bool = False

    def is_configured(self) -> bool:
        if len(self.buffer_addrs) != len(BufferId):
            return False
        if self.target_start is None or self.num_consensuses is None:
            return False
        if self.num_reads is None:
            return False
        return all(
            cons_id in self.consensus_lengths
            for cons_id in range(self.num_consensuses)
        )

    def reset(self) -> None:
        self.buffer_addrs.clear()
        self.target_start = None
        self.num_consensuses = None
        self.num_reads = None
        self.consensus_lengths.clear()


class RoccCommandRouter:
    """Routes commands to units and tracks start/response handshakes."""

    def __init__(self, num_units: int, mmio: Optional[MmioRegisterFile] = None,
                 telemetry=None):
        if num_units <= 0:
            raise ValueError("router needs at least one unit")
        self.num_units = num_units
        self.mmio = mmio or MmioRegisterFile()
        self.telemetry = telemetry
        self.units: List[UnitProgrammingState] = [
            UnitProgrammingState() for _ in range(num_units)
        ]
        self.quarantined: Set[int] = set()
        self.commands_routed = 0
        self.starts_issued = 0

    def quarantine_unit(self, unit_id: int) -> None:
        """Fence a unit off: further commands to it are protocol errors.

        The host's recovery loop calls this when a unit crosses its
        failure threshold; the sea keeps serving on the remaining units.
        A busy unit may be quarantined (its watchdog already expired);
        its in-flight state is torn down.
        """
        if not 0 <= unit_id < self.num_units:
            raise RouterError(f"cannot quarantine unknown unit {unit_id}")
        self.quarantined.add(unit_id)
        state = self.units[unit_id]
        state.busy = False
        state.reset()

    def release_unit(self, unit_id: int) -> None:
        """Return a repaired/reloaded unit to service."""
        self.quarantined.discard(unit_id)

    def healthy_units(self) -> List[int]:
        return [u for u in range(self.num_units) if u not in self.quarantined]

    def dispatch(self, command: RoccCommand) -> Optional[int]:
        """Apply one command; returns the unit id on ``ir_start``."""
        if not 0 <= command.unit_id < self.num_units:
            raise RouterError(
                f"command routed to unit {command.unit_id}, "
                f"but only {self.num_units} units exist"
            )
        if command.unit_id in self.quarantined:
            raise RouterError(
                f"command routed to quarantined unit {command.unit_id}"
            )
        state = self.units[command.unit_id]
        self.commands_routed += 1
        if self.telemetry is not None:
            self.telemetry.count("router.commands_routed")
        if command.funct is IrFunct.SET_ADDR:
            state.buffer_addrs[BufferId(command.rs1_value)] = command.rs2_value
            return None
        if command.funct is IrFunct.SET_TARGET:
            state.target_start = command.rs1_value
            return None
        if command.funct is IrFunct.SET_SIZE:
            state.num_consensuses = command.rs1_value
            state.num_reads = command.rs2_value
            return None
        if command.funct is IrFunct.SET_LEN:
            state.consensus_lengths[command.rs1_value] = command.rs2_value
            return None
        # IrFunct.START
        if state.busy:
            raise RouterError(f"unit {command.unit_id} started while busy")
        if not state.is_configured():
            raise RouterError(
                f"unit {command.unit_id} started before full configuration"
            )
        state.busy = True
        self.starts_issued += 1
        if self.telemetry is not None:
            self.telemetry.count("router.starts_issued")
        return command.unit_id

    def complete(self, unit_id: int) -> None:
        """Unit finished: clear busy, post the MMIO completion response."""
        state = self.units[unit_id]
        if not state.busy:
            raise RouterError(f"unit {unit_id} completed but was not busy")
        state.busy = False
        state.reset()
        self.mmio.push_response(unit_id)
        if self.telemetry is not None:
            self.telemetry.count("router.completions_posted")

    def poll_completion(self) -> Optional[int]:
        """Host side: which unit (if any) has responded?"""
        return self.mmio.poll_response()
