"""The Hamming Distance Calculator stage (Figure 5 left, Figure 8).

The HDC computes, for one (consensus, read) pair, the minimum weighted
Hamming distance over all sliding offsets, plus the offset where it
occurred. Two microarchitectural variants:

- **scalar** (``lanes=1``): "a simple comparator to process one base
  pair per cycle and perform a quality score accumulate when the base
  pair mismatches" -- the original IRAcc-TaskP datapath;
- **data-parallel** (``lanes=32``): "32 base byte-compares and 32
  quality score byte-accumulates per cycle" reading one 32-byte block
  per cycle (Figure 8) -- the optimized IR ACC datapath.

Both implement **computation pruning**: a register holds the running
minimum accumulated WHD for the pair, and the in-flight offset aborts as
soon as its partial sum *exceeds* that minimum ("stop computing the rest
of the distances when it exceeds the current minimum"). Pruning is
result-invariant (a pruned offset can never become the minimum) and is
property-tested as such.

Each variant exists in two bit-identical forms:

- :meth:`HammingDistanceCalculator.compute_pair_stepped` -- a literal
  cycle loop (used by unit tests and the stepped IR unit);
- :meth:`HammingDistanceCalculator.compute_pair` -- a numpy closed form
  over the cumulative WHD matrix (used at workload scale).

The equivalence of the two forms -- outputs *and* cycle counts -- is the
load-bearing invariant of the whole performance evaluation, and is
pinned by hypothesis tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.realign.whd import WHD_SENTINEL

#: Pipeline overhead per sliding offset: reload the read pointer and
#: reset the accumulator before the next ``k`` begins.
OFFSET_OVERHEAD_CYCLES = 1

#: Overhead per (consensus, read) pair: emit the minimum to the selector
#: and rewind the consensus pointer ("avoid having to shift large,
#: random amounts ... starting the next read with the consensus back at
#: the first offset").
PAIR_OVERHEAD_CYCLES = 2


@dataclass(frozen=True)
class PairComputation:
    """HDC result and cost for one (consensus, read) pair."""

    min_whd: int
    min_whd_idx: int
    cycles: int
    comparisons: int  # base comparisons actually performed
    unpruned_comparisons: int  # comparisons without pruning

    @property
    def pruned_fraction(self) -> float:
        """Fraction of Algorithm 1's comparisons pruning eliminated."""
        if self.unpruned_comparisons == 0:
            return 0.0
        return 1.0 - self.comparisons / self.unpruned_comparisons


class HammingDistanceCalculator:
    """One HDC datapath configuration."""

    def __init__(self, lanes: int = 1, prune: bool = True):
        if lanes <= 0:
            raise ValueError("lane count must be positive")
        self.lanes = lanes
        self.prune = prune

    # ------------------------------------------------------------------
    # Cycle-stepped form: literal hardware behaviour.
    # ------------------------------------------------------------------
    def compute_pair_stepped(
        self,
        cons: np.ndarray,
        read: np.ndarray,
        quals: np.ndarray,
    ) -> PairComputation:
        """Step the datapath one cycle at a time.

        Per cycle the unit consumes up to ``lanes`` bases, accumulates
        mismatch quality scores, then checks the pruning comparator
        against the running minimum.
        """
        m, n = cons.size, read.size
        if n == 0 or m < n:
            raise ValueError(f"invalid pair shapes (m={m}, n={n})")
        num_offsets = m - n + 1
        min_whd = int(WHD_SENTINEL)
        min_idx = 0
        cycles = 0
        comparisons = 0
        for k in range(num_offsets):
            cycles += OFFSET_OVERHEAD_CYCLES
            whd = 0
            pruned = False
            for chunk_start in range(0, n, self.lanes):
                chunk_end = min(chunk_start + self.lanes, n)
                cycles += 1
                comparisons += chunk_end - chunk_start
                for t in range(chunk_start, chunk_end):
                    if cons[k + t] != read[t]:
                        whd += int(quals[t])
                if self.prune and whd > min_whd:
                    pruned = True
                    break
            if not pruned and whd < min_whd:
                min_whd = whd
                min_idx = k
        cycles += PAIR_OVERHEAD_CYCLES
        return PairComputation(
            min_whd=min_whd,
            min_whd_idx=min_idx,
            cycles=cycles,
            comparisons=comparisons,
            unpruned_comparisons=num_offsets * n,
        )

    # ------------------------------------------------------------------
    # Analytic form: identical numbers, numpy speed.
    # ------------------------------------------------------------------
    def compute_pair(
        self,
        cons: np.ndarray,
        read: np.ndarray,
        quals: np.ndarray,
    ) -> PairComputation:
        """Closed-form equivalent of :meth:`compute_pair_stepped`.

        Derivation: let ``cum[k, t]`` be the running WHD at offset ``k``
        after base ``t`` (:func:`repro.realign.whd.whd_cumulative`) and
        ``whd[k] = cum[k, n-1]``. The running minimum the comparator
        sees when offset ``k`` starts is the minimum of all *earlier*
        totals -- pruned offsets never record a smaller total, so the
        plain prefix minimum of ``whd`` is exact. Offset ``k`` then
        stops at the first lane-chunk boundary whose cumulative sum
        exceeds that running minimum.
        """
        m, n = cons.size, read.size
        if n == 0 or m < n:
            raise ValueError(f"invalid pair shapes (m={m}, n={n})")
        num_chunks = -(-n // self.lanes)
        # Only cumulative sums at lane-chunk boundaries matter to the
        # pruning comparator, so reduce per chunk instead of per base
        # (a large constant-factor win for the 32-lane datapath).
        windows = np.lib.stride_tricks.sliding_window_view(cons, n)
        weighted = (windows != read) * quals.astype(np.int32)
        if num_chunks == 1:
            chunk_cum = weighted.sum(axis=1, dtype=np.int32)[:, None]
        else:
            starts = np.arange(0, n, self.lanes)
            chunk_cum = np.cumsum(
                np.add.reduceat(weighted, starts, axis=1, dtype=np.int32),
                axis=1, dtype=np.int32,
            )
        whd = chunk_cum[:, -1]
        num_offsets = whd.size
        min_idx = int(np.argmin(whd))
        min_whd = int(whd[min_idx])

        if self.prune:
            running_min = np.empty(num_offsets, dtype=np.int64)
            running_min[0] = WHD_SENTINEL
            if num_offsets > 1:
                running_min[1:] = np.minimum.accumulate(whd)[:-1]
            exceeded = chunk_cum > running_min[:, None]
            any_exceeded = exceeded.any(axis=1)
            first_chunk = np.where(any_exceeded,
                                   exceeded.argmax(axis=1) + 1, num_chunks)
            chunks_processed = first_chunk.astype(np.int64)
            comparisons = int(
                np.minimum(chunks_processed * self.lanes, n).sum()
            )
        else:
            chunks_processed = np.full(num_offsets, num_chunks, dtype=np.int64)
            comparisons = num_offsets * n
        cycles = (
            int(chunks_processed.sum())
            + num_offsets * OFFSET_OVERHEAD_CYCLES
            + PAIR_OVERHEAD_CYCLES
        )
        return PairComputation(
            min_whd=min_whd,
            min_whd_idx=min_idx,
            cycles=cycles,
            comparisons=comparisons,
            unpruned_comparisons=num_offsets * n,
        )
