"""The deployed accelerated IR system: a sea of IR units on an F1 FPGA.

Composes every piece of Figure 6: host control program (planning +
RoCC command streams), PCIe DMA transfer, the 32 IR units, the
sync/async scheduler, and the clock recipe. Three named design points
match the paper's evaluation (Figure 9 legend):

- ``IRAcc-TaskP`` -- 32 scalar units, synchronous-parallel scheduling;
- ``IRAcc-TaskP-Async`` -- 32 scalar units, asynchronous scheduling;
- ``IR ACC`` -- 32 data-parallel (32-lane) units, asynchronous
  scheduling; the shipped configuration.

The functional outputs of a run are bit-identical to the software
realigner (pinned by tests); the timing outputs come from the cycle
model plus the DMA/clock models.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.core.accelerator import IRUnit, UnitConfig, UnitRunResult
from repro.core.host import HostPlan, plan_targets
from repro.core.scheduler import (
    ScheduledTarget,
    ScheduleResult,
    coalesce_transfers,
    schedule,
)
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.hw.clock import ClockRecipe, F1_CLOCK_125MHZ
from repro.hw.memory import PcieDmaModel
from repro.realign.realigner import (
    IndelRealigner,
    RealignerReport,
    apply_realignment,
)
from repro.realign.site import RealignmentSite, SiteLimits, PAPER_LIMITS

if TYPE_CHECKING:  # annotation-only: breaks the core <-> resilience cycle
    from repro.resilience.health import ResilienceStats
    from repro.resilience.policy import ResilienceConfig


@dataclass(frozen=True)
class SystemConfig:
    """One accelerated-system design point."""

    name: str = "IR ACC"
    num_units: int = 32
    lanes: int = 32
    prune: bool = True
    scoring: str = "similarity"
    scheduling: str = "async"
    clock: ClockRecipe = F1_CLOCK_125MHZ
    dma: PcieDmaModel = field(default_factory=PcieDmaModel)
    limits: SiteLimits = PAPER_LIMITS
    # Host dispatch turnaround per target: the unit's completion response
    # crosses the MMIO window, the host polls "response valid" and issues
    # the next target's start (Section IV's asynchronous scheme). ~1 us
    # of PCIe round-trip at 125 MHz.
    response_latency_cycles: int = 125
    # Batched dispatch: the host coalesces the DMA transfers of
    # ``dispatch_batch`` consecutive targets into one burst and answers
    # the whole group with a single response-poll turnaround (charged to
    # the group's last target). 1 (the default) reproduces the paper's
    # per-target dispatch exactly; larger groups amortize host overhead
    # the way the batched software engine amortizes kernel overhead.
    dispatch_batch: int = 1
    # Double-buffered host dispatch: while group N computes, the host
    # prepares and DMAs group N+1, so the response-poll turnaround of
    # every group except a round's last hides behind the next group's
    # compute instead of extending the unit's busy time (the software
    # mirror is the streaming engine's queue_depth >= 2 window). The
    # drain -- the final group, with nothing left to overlap -- still
    # pays the full turnaround. False (default) charges every group,
    # reproducing the single-buffered dispatch model bit-for-bit.
    double_buffer: bool = False
    # Fault tolerance: a ResilienceConfig switches the run into chaos
    # mode -- its FaultPlan injects faults, and the watchdog/retry/
    # quarantine/fallback machinery recovers from them. None (default)
    # is the paper's fault-free operation, bit-for-bit unchanged.
    resilience: Optional[ResilienceConfig] = None

    def __post_init__(self) -> None:
        if self.num_units <= 0:
            raise ValueError("num_units must be positive")
        if self.dispatch_batch <= 0:
            raise ValueError("dispatch_batch must be positive")
        if self.scheduling not in ("sync", "async"):
            raise ValueError(f"unknown scheduling scheme {self.scheduling!r}")
        if self.resilience is not None and self.scheduling != "async":
            raise ValueError(
                "fault recovery requires asynchronous scheduling: the "
                "watchdog lives in the MMIO response-polling loop"
            )

    # -- the paper's three design points --------------------------------
    @classmethod
    def taskp(cls) -> "SystemConfig":
        """IRAcc-TaskP: task parallelism only (scalar units, sync)."""
        return cls(name="IRAcc-TaskP", lanes=1, scheduling="sync")

    @classmethod
    def taskp_async(cls) -> "SystemConfig":
        """IRAcc-TaskP-Async: + asynchronous scheduling."""
        return cls(name="IRAcc-TaskP-Async", lanes=1, scheduling="async")

    @classmethod
    def iracc(cls) -> "SystemConfig":
        """IR ACC: + 32-wide data parallelism (the shipped design)."""
        return cls(name="IR ACC", lanes=32, scheduling="async")


@dataclass
class SystemRunResult:
    """Outcome of running a site list through the accelerated system."""

    config: SystemConfig
    unit_results: List[UnitRunResult]
    schedule: ScheduleResult
    host_plan: HostPlan
    total_seconds: float
    transfer_seconds: float
    replication: int = 1
    resilience: Optional[ResilienceStats] = None

    @property
    def targets_processed(self) -> int:
        return len(self.unit_results) * self.replication

    @property
    def compute_cycles(self) -> int:
        return self.replication * sum(r.cycles.total for r in self.unit_results)

    @property
    def comparisons(self) -> int:
        return self.replication * sum(r.comparisons for r in self.unit_results)

    @property
    def unpruned_comparisons(self) -> int:
        return self.replication * sum(
            r.unpruned_comparisons for r in self.unit_results
        )

    @property
    def pruned_fraction(self) -> float:
        total = self.unpruned_comparisons
        if total == 0:
            return 0.0
        return 1.0 - self.comparisons / total

    @property
    def utilization(self) -> float:
        return self.schedule.utilization

    @property
    def transfer_fraction(self) -> float:
        """Share of the runtime spent on PCIe DMA (paper: ~0.01%)."""
        if self.total_seconds == 0:
            return 0.0
        return self.transfer_seconds / self.total_seconds

    @property
    def comparisons_per_second(self) -> float:
        """Delivered base-pair comparisons per second.

        The paper quotes the sea of accelerators as processing "up to 4
        billion base pair comparisons per second"; this reports the
        achieved (post-pruning) rate; the *effective* rate --
        unpruned-equivalent work per second -- is higher.
        """
        if self.total_seconds == 0:
            return 0.0
        return self.comparisons / self.total_seconds

    @property
    def effective_comparisons_per_second(self) -> float:
        if self.total_seconds == 0:
            return 0.0
        return self.unpruned_comparisons / self.total_seconds

    # -- fault-tolerance observability ----------------------------------
    @property
    def active_units(self) -> int:
        """Units still in service at the end of the run (N - k)."""
        if self.resilience is None:
            return self.config.num_units
        return self.resilience.active_units

    @property
    def fault_events(self) -> int:
        return 0 if self.resilience is None else (
            self.resilience.counters.total_injected
        )

    @property
    def fallback_site_indices(self) -> set:
        """Distinct input sites that completed on the software fallback.

        Scheduled positions replicate the site list round by round;
        a site counts as fallen back if *any* of its replicas did.
        """
        if self.resilience is None or not self.unit_results:
            return set()
        num_sites = len(self.unit_results)
        return {
            position % num_sites
            for position, mode in self.resilience.completions.items()
            if mode == "sw"
        }


class AcceleratedIRSystem:
    """The full FPGA-accelerated INDEL realignment system."""

    def __init__(self, config: Optional[SystemConfig] = None):
        self.config = config or SystemConfig()
        self._unit = IRUnit(
            UnitConfig(
                lanes=self.config.lanes,
                prune=self.config.prune,
                scoring=self.config.scoring,
                limits=self.config.limits,
            )
        )

    def peak_comparisons_per_second(self) -> float:
        """Datapath peak: units x lanes x clock (the "4 billion" figure
        corresponds to 32 scalar units at 125 MHz; the data-parallel
        design raises the peak 32x)."""
        return (
            self.config.num_units * self.config.lanes
            * self.config.clock.frequency_hz
        )

    def run(self, sites: Sequence[RealignmentSite],
            replication: int = 1, telemetry=None) -> SystemRunResult:
        """Process every site; returns functional results + timing.

        ``unit_results`` stays parallel to the input ``sites`` order.
        Targets dispatch in arrival (FIFO) order, as the paper's host
        control program does.

        ``replication`` schedules ``replication`` rounds of the site
        list while computing each distinct site exactly once (identical
        inputs produce identical hardware results and cycle counts).
        The paper's measurements amortize scheduling over 48,000-320,000
        targets per chromosome; bench-scale runs use replication to
        reach the same steady state without simulating tens of
        thousands of sites. ``total_seconds`` and ``transfer_seconds``
        then describe the replicated workload -- compare them against a
        software baseline over the same ``len(sites) * replication``
        targets.

        ``telemetry`` optionally records the run: the scheduler's span
        timeline (one track per unit plus the PCIe channel), per-unit
        performance counters with the kernel's WHD cell counts folded
        in, and the DMA byte totals. Passing a recorder changes no
        functional output (pinned by property tests).
        """
        if replication <= 0:
            raise ValueError("replication must be positive")
        if telemetry is not None and telemetry.ticks_per_second is None:
            telemetry.ticks_per_second = self.config.clock.frequency_hz
        plan = plan_targets(
            sites,
            unit_assignment=[i % self.config.num_units
                             for i in range(len(sites))],
            dispatch_batch=self.config.dispatch_batch,
            telemetry=telemetry,
        )
        unit_results: List[UnitRunResult] = []
        transfers: List[float] = []
        for site in sites:
            unit_results.append(self._unit.run_site(site, mode="analytic"))
            transfers.append(
                self.config.dma.streaming_seconds(
                    site.input_bytes() + site.output_bytes()
                )
            )
        transfer_cycles = [
            self.config.dma.streaming_cycles(
                site.input_bytes() + site.output_bytes(), self.config.clock
            )
            for site in sites
        ]
        scheduled: List[ScheduledTarget] = []
        batch = self.config.dispatch_batch
        for round_index in range(replication):
            round_targets: List[ScheduledTarget] = []
            for index, result in enumerate(unit_results):
                # Batched dispatch answers a whole group with one poll
                # turnaround, charged to the group's last member; with
                # batch == 1 every target is its group's last, which is
                # exactly the paper's per-target dispatch. Double
                # buffering hides that turnaround behind the next
                # group's (already-prepared) compute, so only a round's
                # final group -- the drain -- still pays it.
                last_in_round = index == len(unit_results) - 1
                last_in_group = index % batch == batch - 1 or last_in_round
                charged = last_in_group and (
                    not self.config.double_buffer or last_in_round
                )
                latency = (self.config.response_latency_cycles
                           if charged else 0)
                round_targets.append(
                    ScheduledTarget(
                        index=index,
                        transfer_cycles=transfer_cycles[index],
                        compute_cycles=result.cycles.total + latency,
                    )
                )
            scheduled.extend(coalesce_transfers(round_targets, batch))
        resilience = self.config.resilience
        dma_penalties = None
        if resilience is not None:
            # Channel cycles wasted per faulted transfer attempt, from
            # the PCIe model's error/timeout latencies.
            per_site = [
                tuple(
                    int(round(self.config.clock.seconds_to_cycles(
                        self.config.dma.faulted_transfer_seconds(
                            site.input_bytes() + site.output_bytes(), outcome
                        )
                    )))
                    for outcome in ("error", "timeout")
                )
                for site in sites
            ]
            dma_penalties = per_site * replication
        timeline = schedule(scheduled, self.config.num_units,
                            self.config.scheduling,
                            resilience=resilience,
                            dma_penalties=dma_penalties,
                            telemetry=telemetry)
        total_seconds = self.config.clock.cycles_to_seconds(timeline.makespan)
        if telemetry is not None:
            self._record_run_counters(telemetry, sites, unit_results,
                                      timeline, replication)
        return SystemRunResult(
            config=self.config,
            unit_results=unit_results,
            schedule=timeline,
            host_plan=plan,
            total_seconds=total_seconds,
            transfer_seconds=sum(transfers) * replication,
            replication=replication,
            resilience=(timeline.stats() if resilience is not None else None),
        )


    def _record_run_counters(self, telemetry, sites, unit_results,
                             timeline, replication) -> None:
        """Fold the kernel's WHD cell counts into the unit counters.

        Each dispatch recomputes its site on the unit that ran it (the
        scheduler's span/completion records name that unit), so cell
        counters accumulate per dispatch, replication included.
        """
        totals = {"evaluated": 0, "pruned": 0}

        def credit(unit: int, site_index: int) -> None:
            result = unit_results[site_index]
            block = telemetry.unit(unit)
            pruned = result.unpruned_comparisons - result.comparisons
            block.whd_cells_evaluated += result.comparisons
            block.whd_cells_pruned += pruned
            totals["evaluated"] += result.comparisons
            totals["pruned"] += pruned

        completion_units = getattr(timeline, "completion_units", None)
        if completion_units is None:
            # Fault-free scheduler: every timeline span is a completion.
            for span in timeline.spans:
                credit(span.unit, span.target_index)
        else:
            num_sites = len(unit_results)
            for position, unit in completion_units.items():
                credit(unit, position % num_sites)
        telemetry.count("kernel.cells_evaluated", totals["evaluated"])
        telemetry.count("kernel.cells_pruned", totals["pruned"])
        telemetry.count("schedule.targets", len(sites) * replication)
        telemetry.count(
            "dma.bytes_planned",
            replication * sum(
                site.input_bytes() + site.output_bytes() for site in sites
            ),
        )


class AcceleratedRealigner:
    """End-to-end INDEL realignment with the kernel offloaded to the FPGA.

    Runs the host-side front half (target identification + consensus
    generation, shared with :class:`repro.realign.IndelRealigner`), ships
    every site through the accelerated system, and applies the hardware's
    realign decisions to the reads. Output reads are bit-identical to
    the software realigner's.
    """

    def __init__(
        self,
        reference: ReferenceGenome,
        config: Optional[SystemConfig] = None,
        engine=None,
        kernel: str = "auto",
    ):
        """``engine`` optionally names the software kernel that serves
        fallback sites (targets that exhaust hardware recovery): an
        :class:`repro.engine.EngineConfig` (its ``scoring`` is overridden
        by the system config's) or a live :class:`repro.engine.Engine`.
        None (the default) serves fallback sites per site through the
        calibrated kernel dispatch
        (:func:`repro.engine.autotune.dispatch_realign`); ``kernel``
        pins that per-site choice. Every path is bit-identical to the
        hardware's decisions by construction."""
        from repro.engine.autotune import KERNEL_CHOICES

        if kernel not in KERNEL_CHOICES:
            raise ValueError(
                f"unknown kernel {kernel!r}; choose from {KERNEL_CHOICES}"
            )
        self.reference = reference
        self.system = AcceleratedIRSystem(config)
        self._front_half = IndelRealigner(reference)
        self.engine = engine
        self.kernel = kernel
        self._engine = None

    def _engine_instance(self):
        if self.engine is None:
            return None
        if self._engine is None:
            from repro.engine import Engine, EngineConfig

            if isinstance(self.engine, Engine):
                self._engine = self.engine
            elif isinstance(self.engine, EngineConfig):
                self._engine = Engine(
                    replace(self.engine, scoring=self.system.config.scoring)
                )
            else:
                raise TypeError(
                    "engine must be an EngineConfig, an Engine, or None"
                )
        return self._engine

    def realign(
        self, reads: Sequence[Read], telemetry=None
    ) -> Tuple[List[Read], SystemRunResult, RealignerReport]:
        targets, windows = self._front_half.build_sites(reads)
        report = RealignerReport(
            targets_identified=len(targets),
            sites_built=len(windows),
            reads_examined=len(reads),
        )
        site_list = [window.site for window in windows]
        run = self.system.run(site_list, telemetry=telemetry)
        fallback = run.fallback_site_indices
        fallback_results: Dict[int, "SiteResult"] = {}
        if fallback:
            # Graceful degradation: these targets exhausted hardware
            # recovery, so their decisions come from the software
            # kernel -- bit-identical to the unit's by construction
            # (pinned by the hardware/software equivalence tests). With
            # an engine configured, all fallback sites run through one
            # batched call; otherwise each goes through the calibrated
            # per-site kernel dispatch.
            from repro.engine.autotune import dispatch_realign

            indices = sorted(fallback)
            engine = self._engine_instance()
            if engine is not None:
                batched = engine.run_sites(
                    [windows[i].site for i in indices], telemetry=telemetry
                )
                fallback_results = dict(zip(indices, batched))
            else:
                fallback_results = {
                    i: dispatch_realign(
                        windows[i].site, kernel=self.kernel,
                        scoring=self.system.config.scoring,
                    )
                    for i in indices
                }
        updates: Dict[str, Read] = {}
        for index, (window, result) in enumerate(zip(windows,
                                                     run.unit_results)):
            if index in fallback:
                result = fallback_results[index]
            report.unpruned_comparisons += window.site.unpruned_comparisons()
            for j, read in enumerate(window.reads):
                if result.realign[j]:
                    updates[read.name] = apply_realignment(
                        read, window, result.best_cons, int(result.new_pos[j])
                    )
                    report.reads_realigned += 1
        updated = [updates.get(read.name, read) for read in reads]
        for before, after in zip(reads, updated):
            if (before.pos, str(before.cigar)) != (after.pos,
                                                   str(after.cigar)):
                report.reads_moved += 1
        return updated, run, report
