"""The IR accelerator instruction set (paper Table I).

Five commands manage the realigner, carried in the RoCC (Rocket chip
Custom Coprocessor) fixed-length instruction format:

=========  =======  =======  ====  ====  ====  ====  ========
bits       [31:25]  [24:20]  [19:15]     [14]  [13]  [12]  [11:7]  [6:0]
field      function rs2      rs1         xd    xs1   xs2   dest    opcode
=========  =======  =======  ====  ====  ====  ====  ========

"The opcode field is used to encode different accelerator types. Since
the accelerated IR system only contains the IR accelerator, the opcode
field is essentially not used. The function field is used to encode
different accelerator configurations for a given accelerator type."

The five commands:

- ``ir_set_addr <buffer index> <mem addr>`` -- five times per target
  (3 input + 2 output buffer base addresses in FPGA DRAM).
- ``ir_set_target <target addr>`` -- once per target (the target's
  starting reference position, used to compute final read positions).
- ``ir_set_size <# consensuses> <# reads>`` -- once per target.
- ``ir_set_len <consensus id> <consensus length>`` -- up to 32 times per
  target; lets the unit stop each sliding comparison at the consensus
  end.
- ``ir_start <unit id>`` -- kick off the configured unit.

Modelling note: the deployed system routes every command to a specific
unit; we carry the destination unit in the instruction's ``dest`` field
(unused by the configuration commands otherwise) so the command router
can dispatch, and tests can round-trip the encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import List

from repro.realign.site import RealignmentSite

#: Custom-0 opcode, the RoCC convention for the first accelerator slot.
IR_OPCODE = 0b0001011

_MASK5 = 0x1F
_MASK7 = 0x7F


class IrFunct(IntEnum):
    """Values of the RoCC ``function`` field for the five IR commands."""

    SET_ADDR = 0
    SET_TARGET = 1
    SET_SIZE = 2
    SET_LEN = 3
    START = 4


class BufferId(IntEnum):
    """Buffer indices accepted by ``ir_set_addr`` (Figure 6 buffers)."""

    CONSENSUS_BASES = 0  # input buffer #1: 32 x 2048 B
    READ_BASES = 1  # input buffer #2: 256 x 256 B
    READ_QUALS = 2  # input buffer #3: 256 x 256 B
    OUT_REALIGN = 3  # output buffer #1: 256 x 1 B
    OUT_POSITIONS = 4  # output buffer #2: 256 x 4 B


class IsaError(ValueError):
    """Raised for malformed commands or instruction words."""


@dataclass(frozen=True)
class RoccCommand:
    """One decoded RoCC command plus its register operand *values*.

    In the real system ``rs1``/``rs2`` name integer registers and the
    operand values travel on the RoCC command bus; the model carries the
    values directly (``rs1_value``, ``rs2_value``) alongside the encoded
    instruction word fields.
    """

    funct: IrFunct
    unit_id: int
    rs1_value: int = 0
    rs2_value: int = 0
    xs1: bool = False
    xs2: bool = False
    xd: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.unit_id <= _MASK5:
            raise IsaError(f"unit id {self.unit_id} outside 5-bit dest field")
        if self.rs1_value < 0 or self.rs2_value < 0:
            raise IsaError("operand values must be non-negative")


def encode_instruction(command: RoccCommand) -> int:
    """Pack a command into the 32-bit RoCC instruction word.

    Register specifiers are modelled as x10/x11 (the RISC-V argument
    registers) when the corresponding operand is live.
    """
    rs1_spec = 10 if command.xs1 else 0
    rs2_spec = 11 if command.xs2 else 0
    word = IR_OPCODE
    word |= (command.unit_id & _MASK5) << 7
    word |= (1 if command.xs2 else 0) << 12
    word |= (1 if command.xs1 else 0) << 13
    word |= (1 if command.xd else 0) << 14
    word |= (rs1_spec & _MASK5) << 15
    word |= (rs2_spec & _MASK5) << 20
    word |= (int(command.funct) & _MASK7) << 25
    return word


def decode_instruction(word: int, rs1_value: int = 0, rs2_value: int = 0
                       ) -> RoccCommand:
    """Unpack a 32-bit RoCC instruction word (plus operand bus values)."""
    if word < 0 or word > 0xFFFFFFFF:
        raise IsaError(f"instruction word {word:#x} is not 32-bit")
    if word & _MASK7 != IR_OPCODE:
        raise IsaError(f"not an IR opcode: {word & _MASK7:#09b}")
    funct_bits = (word >> 25) & _MASK7
    try:
        funct = IrFunct(funct_bits)
    except ValueError:
        raise IsaError(f"unknown IR function {funct_bits}") from None
    return RoccCommand(
        funct=funct,
        unit_id=(word >> 7) & _MASK5,
        rs1_value=rs1_value,
        rs2_value=rs2_value,
        xs1=bool((word >> 13) & 1),
        xs2=bool((word >> 12) & 1),
        xd=bool((word >> 14) & 1),
    )


def ir_set_addr(unit_id: int, buffer_id: BufferId, mem_addr: int) -> RoccCommand:
    """Set buffer ``buffer_id``'s DRAM base address."""
    if mem_addr < 0:
        raise IsaError("memory address must be non-negative")
    return RoccCommand(
        funct=IrFunct.SET_ADDR, unit_id=unit_id,
        rs1_value=int(buffer_id), rs2_value=mem_addr, xs1=True, xs2=True,
    )


def ir_set_target(unit_id: int, target_addr: int) -> RoccCommand:
    """Set the target's starting reference position."""
    if target_addr < 0:
        raise IsaError("target address must be non-negative")
    return RoccCommand(
        funct=IrFunct.SET_TARGET, unit_id=unit_id,
        rs1_value=target_addr, xs1=True,
    )


def ir_set_size(unit_id: int, num_consensuses: int, num_reads: int) -> RoccCommand:
    """Set the consensus and read counts of the current target."""
    if num_consensuses <= 0 or num_reads <= 0:
        raise IsaError("sizes must be positive")
    return RoccCommand(
        funct=IrFunct.SET_SIZE, unit_id=unit_id,
        rs1_value=num_consensuses, rs2_value=num_reads, xs1=True, xs2=True,
    )


def ir_set_len(unit_id: int, consensus_id: int, length: int) -> RoccCommand:
    """Set one consensus's length in bytes."""
    if consensus_id < 0 or length <= 0:
        raise IsaError("consensus id must be >= 0 and length positive")
    return RoccCommand(
        funct=IrFunct.SET_LEN, unit_id=unit_id,
        rs1_value=consensus_id, rs2_value=length, xs1=True, xs2=True,
    )


def ir_start(unit_id: int) -> RoccCommand:
    """Start the configured unit; completion arrives as a RoCC response."""
    return RoccCommand(
        funct=IrFunct.START, unit_id=unit_id, rs1_value=unit_id,
        xs1=True, xd=True,
    )


def target_command_stream(
    unit_id: int,
    site: RealignmentSite,
    buffer_addrs,
) -> List[RoccCommand]:
    """The full per-target configuration sequence the host issues.

    "ir_set_addr is invoked five times per target ... ir_set_target is
    invoked once per target ... ir_set_len is invoked as many as 32
    times per target, depending on how many consensuses there are."
    ``buffer_addrs`` maps :class:`BufferId` to DRAM base addresses.
    """
    commands = [
        ir_set_addr(unit_id, buffer_id, buffer_addrs[buffer_id])
        for buffer_id in BufferId
    ]
    commands.append(ir_set_target(unit_id, site.start))
    commands.append(ir_set_size(unit_id, site.num_consensuses, site.num_reads))
    commands.extend(
        ir_set_len(unit_id, cons_id, len(cons))
        for cons_id, cons in enumerate(site.consensuses)
    )
    commands.append(ir_start(unit_id))
    return commands


def commands_per_target(num_consensuses: int) -> int:
    """Command count for one target: 5 addr + target + size + C lens + start."""
    if num_consensuses <= 0:
        raise IsaError("a target has at least the reference consensus")
    return 5 + 1 + 1 + num_consensuses + 1
