"""Target scheduling across the sea of IR units (Section IV, Figure 7).

Computation per target "var[ies] significantly and can lead to
performance degradation if not scheduled properly, i.e. having all units
wait for the slowest unit to finish before accepting new targets". Two
schemes:

- **synchronous-parallel**: transfer a batch of ``num_units`` targets,
  launch all units, wait for every unit to finish, flush, repeat. The
  batch's cost is the *maximum* of its members -- pruning-induced
  variance leaves most units idle (Figure 7 top).
- **asynchronous-parallel**: each unit posts a RoCC response on
  completion; the host polls the MMIO ``response valid`` signal and
  immediately launches the next scheduled target on the freed unit
  (Figure 7 bottom). Transfers overlap compute.

Both schedulers work in unit-clock cycles over abstract
:class:`ScheduledTarget` records so they can be driven by the cycle
model, the toy Figure 7 workload, or hypothesis-generated cases.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass(frozen=True)
class ScheduledTarget:
    """One target's scheduling footprint.

    ``transfer_cycles`` occupies the single shared host->FPGA transfer
    channel; ``compute_cycles`` occupies one IR unit.
    """

    index: int
    transfer_cycles: int
    compute_cycles: int

    def __post_init__(self) -> None:
        if self.transfer_cycles < 0 or self.compute_cycles < 0:
            raise ValueError("cycle counts must be non-negative")


@dataclass(frozen=True)
class TimelineSpan:
    """One target's execution on one unit."""

    target_index: int
    unit: int
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class ScheduleResult:
    """Outcome of scheduling a target list onto ``num_units`` units."""

    num_units: int
    makespan: int
    spans: List[TimelineSpan] = field(default_factory=list)
    transfer_cycles_total: int = 0

    @property
    def busy_cycles(self) -> List[int]:
        busy = [0] * self.num_units
        for span in self.spans:
            busy[span.unit] += span.duration
        return busy

    @property
    def utilization(self) -> float:
        """Mean fraction of the makespan the units spent computing."""
        if self.makespan == 0:
            return 0.0
        return sum(self.busy_cycles) / (self.num_units * self.makespan)

    def ascii_timeline(self, width: int = 72) -> str:
        """Render the Figure 7-style timing diagram."""
        if self.makespan == 0:
            return "(empty schedule)"
        scale = width / self.makespan
        lines = []
        for unit in range(self.num_units):
            cells = [" "] * width
            for span in self.spans:
                if span.unit != unit:
                    continue
                lo = int(span.start * scale)
                hi = max(lo + 1, int(span.end * scale))
                label = str(span.target_index % 10)
                for x in range(lo, min(hi, width)):
                    cells[x] = label
            lines.append(f"unit {unit:2d} |{''.join(cells)}|")
        return "\n".join(lines)


def coalesce_transfers(
    targets: Sequence[ScheduledTarget], batch_size: int
) -> List[ScheduledTarget]:
    """Merge each group of ``batch_size`` consecutive targets' transfers.

    Models the host's batched dispatch (Section V-A step 2 at a coarser
    granularity): a whole group's input arrays are DMA'd as one large
    chunk before the group launches, so the group's first target carries
    the summed transfer cycles and the rest ride along for free. Total
    channel occupancy is preserved -- only its packing changes -- which
    is what lets the asynchronous scheduler overlap one group's compute
    with the next group's single, larger transfer. ``batch_size == 1``
    returns the targets unchanged.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if batch_size == 1:
        return list(targets)
    out: List[ScheduledTarget] = []
    for lo in range(0, len(targets), batch_size):
        group = targets[lo:lo + batch_size]
        total = sum(t.transfer_cycles for t in group)
        for pos, target in enumerate(group):
            out.append(
                ScheduledTarget(
                    index=target.index,
                    transfer_cycles=total if pos == 0 else 0,
                    compute_cycles=target.compute_cycles,
                )
            )
    return out


def schedule_sync(
    targets: Sequence[ScheduledTarget], num_units: int, telemetry=None
) -> ScheduleResult:
    """Synchronous-parallel: batched launch with a full flush barrier.

    The batch's input data is transferred first (serialized on the
    shared channel), every unit launches together, and the next batch's
    transfer begins only after the slowest unit finishes (Figure 7 top).
    """
    if num_units <= 0:
        raise ValueError("num_units must be positive")
    result = ScheduleResult(num_units=num_units, makespan=0)
    clock = 0
    for batch_start in range(0, len(targets), num_units):
        batch = targets[batch_start : batch_start + num_units]
        transfer = sum(t.transfer_cycles for t in batch)
        result.transfer_cycles_total += transfer
        if telemetry is not None:
            xfer_clock = clock
            for target in batch:
                telemetry.span(
                    f"xfer {target.index}", "pcie-channel", xfer_clock,
                    xfer_clock + target.transfer_cycles, "transfer",
                )
                xfer_clock += target.transfer_cycles
        clock += transfer
        launch = clock
        batch_end = launch
        for unit, target in enumerate(batch):
            end = launch + target.compute_cycles
            result.spans.append(
                TimelineSpan(target.index, unit, launch, end)
            )
            batch_end = max(batch_end, end)
        clock = batch_end  # synchronous flush: wait for the slowest unit
    result.makespan = clock
    if telemetry is not None:
        telemetry.count("schedule.sync_batches",
                        -(-len(targets) // num_units) if targets else 0)
        telemetry.record_compute_spans(result)
        telemetry.finalize_unit_cycles(result)
    return result


def schedule_async(
    targets: Sequence[ScheduledTarget], num_units: int, telemetry=None
) -> ScheduleResult:
    """Asynchronous-parallel: launch on any unit as soon as it responds.

    Transfers are pipelined with compute on the shared channel; a target
    starts at ``max(its transfer done, its unit free)`` (Figure 7
    bottom).
    """
    if num_units <= 0:
        raise ValueError("num_units must be positive")
    result = ScheduleResult(num_units=num_units, makespan=0)
    # (free_time, unit): earliest-free unit wins; ties by unit index.
    free: List = [(0, unit) for unit in range(num_units)]
    heapq.heapify(free)
    channel_time = 0
    makespan = 0
    for target in targets:
        if telemetry is not None:
            telemetry.span(
                f"xfer {target.index}", "pcie-channel", channel_time,
                channel_time + target.transfer_cycles, "transfer",
            )
        channel_time += target.transfer_cycles
        result.transfer_cycles_total += target.transfer_cycles
        unit_free, unit = heapq.heappop(free)
        start = max(channel_time, unit_free)
        end = start + target.compute_cycles
        result.spans.append(TimelineSpan(target.index, unit, start, end))
        heapq.heappush(free, (end, unit))
        makespan = max(makespan, end)
    result.makespan = makespan
    if telemetry is not None:
        telemetry.record_compute_spans(result)
        telemetry.finalize_unit_cycles(result)
    return result


def schedule(
    targets: Sequence[ScheduledTarget],
    num_units: int,
    scheme: str,
    resilience=None,
    dma_penalties=None,
    telemetry=None,
) -> ScheduleResult:
    """Dispatch on scheme name: ``'sync'`` or ``'async'``.

    Passing a :class:`repro.resilience.policy.ResilienceConfig` as
    ``resilience`` routes the asynchronous scheme through the
    fault-tolerant scheduler (watchdog timeouts, retry/backoff, unit
    quarantine, software fallback); with a fault-free plan the result is
    identical to :func:`schedule_async`. Recovery rides on the MMIO
    response-polling protocol, so the synchronous scheme cannot use it.
    """
    if resilience is not None:
        if scheme != "async":
            raise ValueError(
                "fault recovery requires the asynchronous scheduling "
                "scheme (the watchdog lives in the response-polling loop)"
            )
        from repro.resilience.recovery import schedule_with_recovery

        return schedule_with_recovery(
            targets, num_units, resilience, dma_penalties=dma_penalties,
            telemetry=telemetry,
        )
    if scheme == "sync":
        return schedule_sync(targets, num_units, telemetry=telemetry)
    if scheme == "async":
        return schedule_async(targets, num_units, telemetry=telemetry)
    raise ValueError(f"unknown scheduling scheme {scheme!r}")
