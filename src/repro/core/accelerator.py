"""One INDEL realignment accelerator unit.

The unit is the two-stage pipeline of Figure 5: a Hamming Distance
Calculator feeding a Consensus Selector, wrapped by five memory channels
(three MemReaders filling the consensus/read/quality input buffers, two
MemWriters draining the realign-flag and new-position output buffers)
and a command FSM driven by the RoCC instructions of Table I.

Two execution modes produce **identical** outputs and cycle counts:

- ``stepped`` -- loads the BRAM buffer models byte-for-byte, steps the
  scalar/parallel datapath cycle by cycle, and writes results through
  the output buffers. Used by tests and small examples.
- ``analytic`` -- numpy closed form of the same computation. Used at
  workload scale by the benchmarks.

Cycle accounting (all at the unit clock):

- ``config``: one decode cycle per RoCC command (8 + C commands/target);
- ``fill``: one cycle per 32-byte block streamed from FPGA DRAM into
  the input buffers over the 256-bit TileLink channel, plus one
  address-setup cycle per record;
- ``compute``: HDC cycles summed over all (consensus, read) pairs;
- ``selector``: Consensus Selector cycles;
- ``writeback``: output-buffer drain beats.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.buffers import BLOCK_BYTES, make_unit_buffers
from repro.core.hdc import HammingDistanceCalculator
from repro.core.isa import commands_per_target
from repro.core.selector import ConsensusSelector
from repro.realign.site import RealignmentSite, SiteLimits, PAPER_LIMITS
from repro.realign.whd import SiteResult
from repro.genomics.sequence import seq_to_array

#: Address-setup cost per record streamed into a buffer slot.
RECORD_SETUP_CYCLES = 1

#: Decode cost per RoCC configuration command.
CONFIG_CYCLES_PER_COMMAND = 1


def _beats(num_bytes: int) -> int:
    return -(-num_bytes // BLOCK_BYTES)


@dataclass(frozen=True)
class UnitConfig:
    """Microarchitectural configuration of one IR unit."""

    lanes: int = 32  # data-parallel width (1 = the scalar TaskP datapath)
    prune: bool = True  # computation pruning on/off (ablation knob)
    scoring: str = "similarity"  # consensus-score semantics (see whd module)
    limits: SiteLimits = PAPER_LIMITS

    def __post_init__(self) -> None:
        if self.lanes <= 0:
            raise ValueError("lane count must be positive")


@dataclass(frozen=True)
class CycleBreakdown:
    """Where one target's unit-cycles went."""

    config: int
    fill: int
    compute: int
    selector: int
    writeback: int

    @property
    def total(self) -> int:
        return (
            self.config + self.fill + self.compute
            + self.selector + self.writeback
        )


@dataclass(frozen=True)
class UnitRunResult:
    """Functional outputs + costs of one target on one unit."""

    best_cons: int
    realign: np.ndarray  # (R,) bool
    new_pos: np.ndarray  # (R,) int64, -1 where not realigned
    cycles: CycleBreakdown
    comparisons: int
    unpruned_comparisons: int

    @property
    def pruned_fraction(self) -> float:
        if self.unpruned_comparisons == 0:
            return 0.0
        return 1.0 - self.comparisons / self.unpruned_comparisons

    def matches(self, reference: SiteResult) -> bool:
        """Bit-equality with the software realigner's outputs."""
        return (
            self.best_cons == reference.best_cons
            and bool(np.array_equal(self.realign, reference.realign))
            and bool(np.array_equal(self.new_pos, reference.new_pos))
        )


class IRUnit:
    """One INDEL realignment accelerator unit."""

    def __init__(self, config: UnitConfig = UnitConfig(), unit_id: int = 0):
        self.config = config
        self.unit_id = unit_id
        self.hdc = HammingDistanceCalculator(
            lanes=config.lanes, prune=config.prune
        )
        self.selector = ConsensusSelector(scoring=config.scoring)

    # -- cost helpers ---------------------------------------------------
    def _config_cycles(self, site: RealignmentSite) -> int:
        return commands_per_target(site.num_consensuses) * CONFIG_CYCLES_PER_COMMAND

    def _fill_cycles(self, site: RealignmentSite) -> int:
        records = site.num_consensuses + 2 * site.num_reads
        beats = sum(_beats(len(c)) for c in site.consensuses)
        beats += 2 * sum(_beats(len(r)) for r in site.reads)
        return beats + records * RECORD_SETUP_CYCLES

    def _writeback_cycles(self, site: RealignmentSite) -> int:
        return _beats(site.num_reads) + _beats(4 * site.num_reads)

    # -- execution ------------------------------------------------------
    def run_site(self, site: RealignmentSite, mode: str = "analytic"
                 ) -> UnitRunResult:
        """Process one IR target end to end."""
        if mode == "analytic":
            return self._run_analytic(site)
        if mode == "stepped":
            return self._run_stepped(site)
        raise ValueError(f"unknown mode {mode!r} (use 'analytic' or 'stepped')")

    def _run_analytic(self, site: RealignmentSite) -> UnitRunResult:
        cons_arrays = site.consensus_arrays()
        read_arrays = site.read_arrays()
        C, R = site.num_consensuses, site.num_reads
        min_whd = np.empty((C, R), dtype=np.int64)
        min_idx = np.empty((C, R), dtype=np.int64)
        hdc_cycles = 0
        comparisons = 0
        unpruned = 0
        for i, cons_arr in enumerate(cons_arrays):
            for j, read_arr in enumerate(read_arrays):
                pair = self.hdc.compute_pair(cons_arr, read_arr, site.quals[j])
                min_whd[i, j] = pair.min_whd
                min_idx[i, j] = pair.min_whd_idx
                hdc_cycles += pair.cycles
                comparisons += pair.comparisons
                unpruned += pair.unpruned_comparisons
        return self._finish(site, min_whd, min_idx, hdc_cycles,
                            comparisons, unpruned)

    def _run_stepped(self, site: RealignmentSite) -> UnitRunResult:
        buffers = make_unit_buffers(self.config.limits)
        for i, cons in enumerate(site.consensuses):
            buffers["consensus"].load_slot(i, seq_to_array(cons))
        for j, read in enumerate(site.reads):
            buffers["read_bases"].load_slot(j, seq_to_array(read))
            buffers["read_quals"].load_slot(j, np.asarray(site.quals[j]))

        C, R = site.num_consensuses, site.num_reads
        min_whd = np.empty((C, R), dtype=np.int64)
        min_idx = np.empty((C, R), dtype=np.int64)
        hdc_cycles = 0
        comparisons = 0
        unpruned = 0
        for i in range(C):
            cons_len = buffers["consensus"].slot_length(i)
            cons_arr = np.array(
                [buffers["consensus"].read_byte(i, t) for t in range(cons_len)],
                dtype=np.uint8,
            )
            for j in range(R):
                read_len = buffers["read_bases"].slot_length(j)
                read_arr = np.array(
                    [buffers["read_bases"].read_byte(j, t) for t in range(read_len)],
                    dtype=np.uint8,
                )
                quals_arr = np.array(
                    [buffers["read_quals"].read_byte(j, t) for t in range(read_len)],
                    dtype=np.uint8,
                )
                pair = self.hdc.compute_pair_stepped(cons_arr, read_arr, quals_arr)
                min_whd[i, j] = pair.min_whd
                min_idx[i, j] = pair.min_whd_idx
                hdc_cycles += pair.cycles
                comparisons += pair.comparisons
                unpruned += pair.unpruned_comparisons

        result = self._finish(site, min_whd, min_idx, hdc_cycles,
                              comparisons, unpruned)
        # Drive the output buffers exactly as the MemWriters would.
        for j in range(R):
            buffers["out_realign"].write(j, int(result.realign[j]))
            if result.realign[j]:
                buffers["out_positions"].write(j, int(result.new_pos[j]))
        return result

    def _finish(
        self,
        site: RealignmentSite,
        min_whd: np.ndarray,
        min_idx: np.ndarray,
        hdc_cycles: int,
        comparisons: int,
        unpruned: int,
    ) -> UnitRunResult:
        selection = self.selector.run(min_whd, min_idx, site.start)
        cycles = CycleBreakdown(
            config=self._config_cycles(site),
            fill=self._fill_cycles(site),
            compute=hdc_cycles,
            selector=selection.cycles,
            writeback=self._writeback_cycles(site),
        )
        return UnitRunResult(
            best_cons=selection.best_cons,
            realign=selection.realign,
            new_pos=selection.new_pos,
            cycles=cycles,
            comparisons=comparisons,
            unpruned_comparisons=unpruned,
        )
