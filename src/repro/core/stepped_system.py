"""Protocol-level system simulation (validation of the analytic model).

Where :class:`repro.core.system.AcceleratedIRSystem` composes closed-form
cycle counts with an abstract scheduler, this module *plays out the
protocol*: the host control program issues the Table I command streams
through the MMIO register file and the RoCC command router, units go
busy for their computed cycle counts, completions post responses that
the host polls, and the PCIe channel serializes transfers. It exists to
validate that the abstract scheduler's makespans are faithful to the
handshake-level behaviour (pinned by tests to a small tolerance), and to
exercise the router/MMIO machinery under realistic multi-unit load.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.accelerator import IRUnit, UnitConfig, UnitRunResult
from repro.core.host import plan_targets
from repro.core.router import RoccCommandRouter
from repro.core.system import SystemConfig
from repro.hw.axi import AxiLiteBus, MmioRegisterFile
from repro.realign.site import RealignmentSite


@dataclass
class SteppedRunResult:
    """Outcome of a protocol-level run."""

    makespan_cycles: int
    unit_results: List[UnitRunResult]
    starts: List[Tuple[int, int, int]]  # (target, unit, start_cycle)
    commands_issued: int
    responses_polled: int

    @property
    def targets_processed(self) -> int:
        return len(self.starts)


class SteppedIRSystem:
    """Event-driven host + router + units simulation."""

    def __init__(self, config: Optional[SystemConfig] = None):
        self.config = config or SystemConfig()
        self._unit = IRUnit(UnitConfig(
            lanes=self.config.lanes,
            prune=self.config.prune,
            scoring=self.config.scoring,
            limits=self.config.limits,
        ))
        self._bus = AxiLiteBus()

    def _config_cycles(self, commands) -> int:
        """Host cycles to push one target's command stream over AXILite."""
        cycles = 0
        for command in commands:
            words = 1 + (2 if command.xs1 else 0) + (2 if command.xs2 else 0)
            cycles += self._bus.write_cycles(words)
        return cycles

    def run(self, sites: Sequence[RealignmentSite],
            telemetry=None) -> SteppedRunResult:
        """Process sites FIFO through the full dispatch protocol.

        ``telemetry`` optionally records the handshake-level run: MMIO
        queue counters, router command counters, per-dispatch host
        configuration spans, and per-target compute spans on the unit
        tracks -- the protocol-level view of the same timeline the
        abstract scheduler traces.
        """
        config = self.config
        if telemetry is not None and telemetry.ticks_per_second is None:
            telemetry.ticks_per_second = config.clock.frequency_hz
        mmio = MmioRegisterFile(telemetry=telemetry)
        router = RoccCommandRouter(config.num_units, mmio=mmio,
                                   telemetry=telemetry)
        plan = plan_targets(
            sites,
            unit_assignment=[0] * len(sites),  # rewritten at dispatch
            telemetry=telemetry,
        )
        unit_results = [self._unit.run_site(site) for site in sites]
        compute_cycles = [result.cycles.total for result in unit_results]
        transfer_cycles = [
            config.dma.streaming_cycles(
                site.input_bytes() + site.output_bytes(), config.clock
            )
            for site in sites
        ]

        host_time = 0
        channel_time = 0
        # (busy_until, unit): min-heap of unit availability.
        units: List[Tuple[int, int]] = [(0, u) for u in range(config.num_units)]
        heapq.heapify(units)
        starts: List[Tuple[int, int, int]] = []
        commands_issued = 0
        responses_polled = 0
        makespan = 0
        for index, site in enumerate(sites):
            if telemetry is not None:
                telemetry.span(f"xfer {index}", "pcie-channel",
                               channel_time,
                               channel_time + transfer_cycles[index],
                               "transfer")
            channel_time += transfer_cycles[index]
            busy_until, unit = heapq.heappop(units)
            if busy_until > 0:
                # The unit had a previous target: its completion response
                # crosses MMIO and the host polls it before re-dispatch.
                router.complete(unit)
                assert router.poll_completion() == unit
                responses_polled += 1
                ready = busy_until + config.response_latency_cycles
            else:
                ready = 0
            # Host issues the command stream (serialized on the host CPU).
            from repro.core.isa import target_command_stream

            commands = target_command_stream(
                unit, site, plan.targets[index].buffer_addrs
            )
            host_time = max(host_time, ready, channel_time)
            config_start = host_time
            host_time += self._config_cycles(commands)
            for command in commands:
                started = router.dispatch(command)
                commands_issued += 1
            assert started == unit
            start = host_time
            end = start + compute_cycles[index]
            starts.append((index, unit, start))
            if telemetry is not None:
                telemetry.span(f"config {index}", "host",
                               config_start, host_time, "config",
                               commands=len(commands))
                telemetry.span(f"target {index}", f"unit {unit}",
                               start, end, "compute")
            heapq.heappush(units, (end, unit))
            makespan = max(makespan, end)
        # Drain outstanding completions.
        while units:
            busy_until, unit = heapq.heappop(units)
            if busy_until > 0 and router.units[unit].busy:
                router.complete(unit)
                router.poll_completion()
                responses_polled += 1
        if telemetry is not None:
            telemetry.count("stepped.commands_issued", commands_issued)
            telemetry.count("stepped.responses_polled", responses_polled)
        return SteppedRunResult(
            makespan_cycles=makespan,
            unit_results=unit_results,
            starts=starts,
            commands_issued=commands_issued,
            responses_polled=responses_polled,
        )
