"""The paper's contribution: the INDEL realignment accelerator system.

- :mod:`repro.core.isa` -- the five RoCC-format accelerator instructions
  of Table I.
- :mod:`repro.core.buffers` -- block-indexed, byte-selected input/output
  buffer models (the unit's BRAM-backed local memories).
- :mod:`repro.core.hdc` -- the Hamming Distance Calculator stage: scalar
  (1 base/cycle) and data-parallel (32 bases/cycle) variants, with
  computation pruning.
- :mod:`repro.core.selector` -- the Consensus Selector stage.
- :mod:`repro.core.accelerator` -- one IR unit (the two stages composed),
  in bit-identical cycle-stepped and vectorized-analytic modes.
- :mod:`repro.core.router` -- the RoCC command router.
- :mod:`repro.core.scheduler` -- synchronous-parallel and
  asynchronous-parallel target scheduling (Figure 7).
- :mod:`repro.core.host` -- the host-side control program model.
- :mod:`repro.core.system` -- the deployed system: a sea of 32 IR units
  on an F1 instance, end to end.
"""

from repro.core.isa import (
    BufferId,
    IrFunct,
    RoccCommand,
    decode_instruction,
    encode_instruction,
    ir_set_addr,
    ir_set_len,
    ir_set_size,
    ir_set_target,
    ir_start,
    target_command_stream,
)
from repro.core.hdc import HammingDistanceCalculator, PairComputation
from repro.core.selector import ConsensusSelector, SelectorComputation
from repro.core.accelerator import IRUnit, UnitConfig, UnitRunResult
from repro.core.scheduler import (
    ScheduledTarget,
    ScheduleResult,
    schedule_async,
    schedule_sync,
)
from repro.core.system import AcceleratedIRSystem, SystemConfig, SystemRunResult

__all__ = [
    "AcceleratedIRSystem",
    "BufferId",
    "ConsensusSelector",
    "HammingDistanceCalculator",
    "IRUnit",
    "IrFunct",
    "PairComputation",
    "RoccCommand",
    "ScheduleResult",
    "ScheduledTarget",
    "SelectorComputation",
    "SystemConfig",
    "SystemRunResult",
    "UnitConfig",
    "UnitRunResult",
    "decode_instruction",
    "encode_instruction",
    "ir_set_addr",
    "ir_set_len",
    "ir_set_size",
    "ir_set_target",
    "ir_start",
    "schedule_async",
    "schedule_sync",
    "target_command_stream",
]
