"""The host-side control program model.

Section V-A describes the C/C++ control program: it "1) mallocs
input/output arrays in the host memory, 2) transfers large data chunks
from the host to the FPGA-attached DRAM and vice versa, 3) configures
and starts the accelerators one unit at a time ... and 4) waits for
responses and configures and starts the units that are finished with the
previous task."

This module plans step 1-3 for a list of sites: a bump allocator lays
the byte-per-base input arrays out in FPGA DRAM ("organized in
consecutive malloc'ed memory arrays of one byte per base or per quality
score ... for streaming processing"), and per-target command streams are
generated through :func:`repro.core.isa.target_command_stream`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.isa import BufferId, RoccCommand, target_command_stream
from repro.hw.axi import AxiLiteBus
from repro.hw.memory import DdrChannelModel
from repro.realign.site import RealignmentSite


class HostPlanError(RuntimeError):
    """Raised when a plan cannot fit the FPGA memory."""


@dataclass(frozen=True)
class HostWatchdog:
    """The host control loop's per-dispatch watchdog policy.

    The paper's control program "waits for responses" with no bound; a
    hung unit or a dropped MMIO response would stall the whole dispatch
    loop forever. The watchdog arms a deadline when a target is started:
    the host knows each target's expected compute cycles (the cycle
    model it used for planning is deterministic), so the deadline is a
    multiple of that expectation plus fixed slack for MMIO/PCIe jitter.
    On expiry the host treats the dispatch as failed, resets the unit
    (``reset_cycles`` of soft-reset turnaround), and hands the target to
    the retry machinery.
    """

    multiplier: float = 4.0
    slack_cycles: int = 1024
    reset_cycles: int = 64

    def __post_init__(self) -> None:
        if self.multiplier < 1.0:
            raise ValueError("watchdog multiplier must be >= 1")
        if self.slack_cycles < 0 or self.reset_cycles < 0:
            raise ValueError("watchdog cycles must be non-negative")

    def deadline_cycles(self, expected_compute_cycles: int) -> int:
        """Cycles after dispatch at which the watchdog fires."""
        if expected_compute_cycles < 0:
            raise ValueError("expected cycles must be non-negative")
        return int(expected_compute_cycles * self.multiplier) + self.slack_cycles


@dataclass
class WatchdogBank:
    """Armed watchdog timers, one per in-flight unit dispatch."""

    deadlines: Dict[int, int] = field(default_factory=dict)
    expirations: int = 0

    def arm(self, unit: int, deadline: int) -> None:
        if unit in self.deadlines:
            raise HostPlanError(f"unit {unit} already has an armed watchdog")
        self.deadlines[unit] = deadline

    def disarm(self, unit: int) -> None:
        self.deadlines.pop(unit, None)

    def expire(self, unit: int) -> None:
        """The unit's deadline passed without a response."""
        if unit not in self.deadlines:
            raise HostPlanError(f"unit {unit} has no armed watchdog")
        del self.deadlines[unit]
        self.expirations += 1

    def expired(self, now: int) -> List[int]:
        """Units whose deadlines have passed at cycle ``now``."""
        return sorted(u for u, d in self.deadlines.items() if d <= now)

    def next_deadline(self) -> Optional[int]:
        return min(self.deadlines.values()) if self.deadlines else None


@dataclass(frozen=True)
class TargetPlan:
    """Host-side plan for one target."""

    site_index: int
    buffer_addrs: Dict[BufferId, int]
    input_bytes: int
    output_bytes: int
    commands: List[RoccCommand]

    @property
    def total_bytes(self) -> int:
        return self.input_bytes + self.output_bytes


@dataclass
class HostPlan:
    """The whole run's memory layout and command streams."""

    targets: List[TargetPlan] = field(default_factory=list)
    bytes_allocated: int = 0

    @property
    def total_commands(self) -> int:
        return sum(len(t.commands) for t in self.targets)

    @property
    def total_input_bytes(self) -> int:
        return sum(t.input_bytes for t in self.targets)

    @property
    def total_output_bytes(self) -> int:
        return sum(t.output_bytes for t in self.targets)

    def config_cycles(self, bus: AxiLiteBus = AxiLiteBus()) -> int:
        """AXILite cycles the host spends issuing every command.

        Each RoCC command crosses the 32-bit AXILite window as three
        words (instruction word + two 64-bit operands would be five; the
        model charges the instruction word plus one word per live
        operand, matching the MMIO register map's width).
        """
        cycles = 0
        for target in self.targets:
            for command in target.commands:
                words = 1 + (2 if command.xs1 else 0) + (2 if command.xs2 else 0)
                cycles += bus.write_cycles(words)
        return cycles


def plan_targets(
    sites: Sequence[RealignmentSite],
    ddr: DdrChannelModel = DdrChannelModel(),
    unit_assignment: Sequence[int] = (),
    dispatch_batch: int = 1,
    telemetry=None,
) -> HostPlan:
    """Lay out every site's buffers in FPGA DRAM and build its commands.

    ``unit_assignment`` optionally names the unit each target's command
    stream addresses (defaults to round-robin over 32, matching the
    dispatch order of the asynchronous scheduler's steady state).
    ``dispatch_batch`` is the host's transfer-coalescing group size (see
    :func:`repro.core.scheduler.coalesce_transfers`); it changes no
    buffer layout or command stream -- groups share DMA bursts, not
    memory -- but is accounted as ``host.batches_planned``.
    ``telemetry`` optionally counts the plan's footprint (commands
    generated, bytes allocated) on the host's counter namespace.
    """
    if dispatch_batch <= 0:
        raise ValueError("dispatch_batch must be positive")
    plan = HostPlan()
    cursor = 0

    def allocate(num_bytes: int) -> int:
        nonlocal cursor
        address = cursor
        # 64-byte alignment: one 512-bit AXI beat.
        cursor += -(-num_bytes // 64) * 64
        return address

    for index, site in enumerate(sites):
        cons_bytes = sum(len(c) for c in site.consensuses)
        read_bytes = sum(len(r) for r in site.reads)
        addrs = {
            BufferId.CONSENSUS_BASES: allocate(cons_bytes),
            BufferId.READ_BASES: allocate(read_bytes),
            BufferId.READ_QUALS: allocate(read_bytes),
            BufferId.OUT_REALIGN: allocate(site.num_reads),
            BufferId.OUT_POSITIONS: allocate(4 * site.num_reads),
        }
        unit = (
            unit_assignment[index]
            if index < len(unit_assignment)
            else index % 32
        )
        plan.targets.append(
            TargetPlan(
                site_index=index,
                buffer_addrs=addrs,
                input_bytes=site.input_bytes(),
                output_bytes=site.output_bytes(),
                commands=target_command_stream(unit, site, addrs),
            )
        )
    plan.bytes_allocated = cursor
    if not ddr.fits(plan.bytes_allocated):
        raise HostPlanError(
            f"plan needs {plan.bytes_allocated} B, exceeding the "
            f"{ddr.capacity_bytes} B DDR channel"
        )
    if telemetry is not None:
        telemetry.count("host.targets_planned", len(plan.targets))
        telemetry.count("host.commands_planned", plan.total_commands)
        telemetry.count("host.bytes_allocated", plan.bytes_allocated)
        telemetry.count("host.config_cycles", plan.config_cycles())
        telemetry.count(
            "host.batches_planned",
            -(-len(plan.targets) // dispatch_batch) if plan.targets else 0,
        )
    return plan
