"""The Consensus Selector stage (Figure 5 right).

Runs once per (consensus, read) pair -- far less often than the HDC --
so its three read-length buffers (REF, CURR consensus, and running MIN
consensus distances+offsets) "only support one read or one write per
cycle (one read/write port)".

Functionally it is Algorithm 2: accumulate ``|CURR dist - REF dist|``
across reads into the consensus score, keep the running best consensus,
and finally emit the realign decision and new position per read.

Cycle model (single-ported buffers):

- while scoring consensus ``i``: per read, one cycle to read the REF
  entry and one to read/update the CURR entry -> 2 cycles per read per
  alternate consensus, plus one cycle to resolve the MIN-consensus swap;
- final realignment pass: per read, one read of MIN and REF plus one
  output write -> 3 cycles per read.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.realign.whd import reads_realignments, score_and_select

#: Buffer-port cycles per read while scoring one alternate consensus.
SCORE_CYCLES_PER_READ = 2

#: Cycles to commit/swap the running-minimum consensus after scoring.
SWAP_OVERHEAD_CYCLES = 1

#: Cycles per read in the final realignment/output pass.
REALIGN_CYCLES_PER_READ = 3


@dataclass(frozen=True)
class SelectorComputation:
    """Selector outputs and cycle cost for one site."""

    best_cons: int
    scores: np.ndarray
    realign: np.ndarray
    new_pos: np.ndarray
    cycles: int


class ConsensusSelector:
    """The second pipeline stage of the IR unit.

    ``scoring`` selects the consensus-score semantics (see
    :func:`repro.realign.whd.score_and_select`); both variants use the
    same Figure 5 datapath and cycle cost.
    """

    def __init__(self, scoring: str = "similarity"):
        self.scoring = scoring

    def run(
        self,
        min_whd: np.ndarray,
        min_whd_idx: np.ndarray,
        target_start: int,
    ) -> SelectorComputation:
        """Score consensuses and produce realignment decisions.

        ``min_whd``/``min_whd_idx`` are the ``(C, R)`` grids streamed in
        from the HDC stage.
        """
        if min_whd.shape != min_whd_idx.shape or min_whd.ndim != 2:
            raise ValueError("min_whd and min_whd_idx must be equal 2-D grids")
        num_consensuses, num_reads = min_whd.shape
        best_cons, scores = score_and_select(min_whd, method=self.scoring)
        realign, new_pos = reads_realignments(
            min_whd, min_whd_idx, best_cons, target_start
        )
        scoring_cycles = (num_consensuses - 1) * (
            num_reads * SCORE_CYCLES_PER_READ + SWAP_OVERHEAD_CYCLES
        )
        output_cycles = num_reads * REALIGN_CYCLES_PER_READ
        return SelectorComputation(
            best_cons=best_cons,
            scores=scores,
            realign=realign,
            new_pos=new_pos,
            cycles=scoring_cycles + output_cycles,
        )

    @staticmethod
    def cycles(num_consensuses: int, num_reads: int) -> int:
        """Closed-form cycle cost without running the selection."""
        if num_consensuses <= 0 or num_reads <= 0:
            raise ValueError("grid dimensions must be positive")
        return (num_consensuses - 1) * (
            num_reads * SCORE_CYCLES_PER_READ + SWAP_OVERHEAD_CYCLES
        ) + num_reads * REALIGN_CYCLES_PER_READ
