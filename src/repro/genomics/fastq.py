"""Minimal FASTQ reader/writer for unaligned reads.

The simulator emits FASTQ; the primary aligner consumes it. Quality
strings use the Sanger Phred+33 convention (see
:mod:`repro.genomics.quality`).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, TextIO, Union

import numpy as np

from repro.genomics.quality import phred_from_ascii, phred_to_ascii
from repro.genomics.sequence import validate_bases

PathOrFile = Union[str, Path, TextIO]


class FastqError(ValueError):
    """Raised for malformed FASTQ input."""


@dataclass(frozen=True)
class FastqRecord:
    """One unaligned read: name, bases, and raw Phred scores."""

    name: str
    seq: str
    quals: np.ndarray

    def __post_init__(self) -> None:
        validate_bases(self.seq)
        quals = np.asarray(self.quals, dtype=np.uint8)
        object.__setattr__(self, "quals", quals)
        if quals.size != len(self.seq):
            raise FastqError(
                f"record {self.name!r}: {quals.size} quality scores "
                f"for {len(self.seq)} bases"
            )


def _as_text_handle(source: PathOrFile, mode: str):
    if isinstance(source, (str, Path)):
        return open(source, mode), True
    return source, False


def parse_fastq(source: PathOrFile) -> Iterator[FastqRecord]:
    """Yield :class:`FastqRecord` items from 4-line FASTQ blocks."""
    handle, owned = _as_text_handle(source, "r")
    try:
        while True:
            header = handle.readline()
            if not header:
                return
            header = header.strip()
            if not header:
                continue
            if not header.startswith("@"):
                raise FastqError(f"expected '@' header, got {header!r}")
            seq = handle.readline().strip().upper()
            plus = handle.readline().strip()
            quals = handle.readline().strip()
            if not plus.startswith("+"):
                raise FastqError(f"expected '+' separator, got {plus!r}")
            if len(seq) != len(quals):
                raise FastqError(
                    f"record {header!r}: sequence and quality lengths differ"
                )
            name = header[1:].split()[0]
            yield FastqRecord(name, seq, phred_from_ascii(quals))
    finally:
        if owned:
            handle.close()


def read_fastq(source: PathOrFile) -> List[FastqRecord]:
    """Eagerly load a FASTQ file."""
    return list(parse_fastq(source))


def write_fastq(records: Iterable[FastqRecord], sink: PathOrFile) -> None:
    """Write records as 4-line FASTQ blocks."""
    handle, owned = _as_text_handle(sink, "w")
    try:
        for record in records:
            handle.write(f"@{record.name}\n{record.seq}\n+\n")
            handle.write(phred_to_ascii(record.quals))
            handle.write("\n")
    finally:
        if owned:
            handle.close()
