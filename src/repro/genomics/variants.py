"""Truth-variant records shared by the simulator and the variant caller.

A :class:`Variant` uses VCF-style normalisation: ``ref`` and ``alt`` are
the reference and alternate allele strings anchored at ``pos`` (0-based).
SNP: ``ref`` and ``alt`` both length 1. Insertion: ``alt`` extends
``ref`` (e.g. ``A`` -> ``ATTG``). Deletion: ``ref`` extends ``alt``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.genomics.sequence import validate_bases


class VariantKind(str, Enum):
    SNP = "SNP"
    INSERTION = "INS"
    DELETION = "DEL"


@dataclass(frozen=True, order=True)
class Variant:
    """A sequence difference between a sample and the reference.

    ``allele_fraction`` models somatic variants: the fraction of reads
    drawn over this locus that carry the alternate allele. Germline
    heterozygous variants would use 0.5; the paper's motivating somatic
    use case involves much lower fractions ("low-frequency somatic
    variants (difficult to detect)").
    """

    chrom: str
    pos: int
    ref: str
    alt: str
    allele_fraction: float = 1.0

    def __post_init__(self) -> None:
        validate_bases(self.ref)
        validate_bases(self.alt)
        if not self.ref or not self.alt:
            raise ValueError("ref and alt alleles must be non-empty")
        if self.ref == self.alt:
            raise ValueError(f"ref and alt are identical at {self.chrom}:{self.pos}")
        if self.pos < 0:
            raise ValueError(f"negative variant position {self.pos}")
        if not 0.0 < self.allele_fraction <= 1.0:
            raise ValueError(
                f"allele fraction must be in (0, 1], got {self.allele_fraction}"
            )

    @property
    def kind(self) -> VariantKind:
        if len(self.ref) == len(self.alt) == 1:
            return VariantKind.SNP
        if len(self.alt) > len(self.ref):
            return VariantKind.INSERTION
        return VariantKind.DELETION

    @property
    def is_indel(self) -> bool:
        return self.kind is not VariantKind.SNP

    @property
    def ref_span(self) -> int:
        """Reference bases consumed by this variant."""
        return len(self.ref)

    @property
    def length_change(self) -> int:
        """Signed size change: positive for insertions, negative for deletions."""
        return len(self.alt) - len(self.ref)

    def describe(self) -> str:
        return f"{self.chrom}:{self.pos} {self.ref}>{self.alt} ({self.kind.value})"
