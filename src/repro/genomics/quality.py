"""Phred quality-score primitives.

The paper's Appendix glossary: *"A quality score is a prediction of the
probability of an error in base calling. For a quality score of 10, the
base call accuracy is at 90%; for a quality score of 60, the base call
accuracy is at 99.9999%. An industry standard Phred Quality Score is
represented as a string of visible ASCII characters for a one-to-one
mapping against a string of corresponding read bases."*

We use the Sanger/Illumina 1.8+ convention (Phred+33). Quality scores are
stored as raw integers (``numpy.uint8``) inside the pipeline -- the
accelerator consumes one byte per score -- and only converted to ASCII at
the FASTQ boundary.
"""

from __future__ import annotations

import numpy as np

#: ASCII offset of the Sanger Phred encoding.
PHRED_OFFSET = 33

#: Highest score representable as a visible ASCII character ('~' = 126).
MAX_PHRED = 93

#: Typical Illumina quality ceiling; the simulator caps emitted scores here.
ILLUMINA_MAX_PHRED = 41


class QualityError(ValueError):
    """Raised for malformed quality strings or out-of-range scores."""


def phred_to_ascii(quals) -> str:
    """Encode an iterable of integer Phred scores as a Sanger quality string."""
    chars = []
    for score in quals:
        score = int(score)
        if not 0 <= score <= MAX_PHRED:
            raise QualityError(f"Phred score {score} outside [0, {MAX_PHRED}]")
        chars.append(chr(score + PHRED_OFFSET))
    return "".join(chars)


def phred_from_ascii(text: str) -> np.ndarray:
    """Decode a Sanger quality string into a ``numpy.uint8`` score array."""
    raw = np.frombuffer(text.encode("ascii"), dtype=np.uint8).astype(np.int16)
    scores = raw - PHRED_OFFSET
    if scores.size and (scores.min() < 0 or scores.max() > MAX_PHRED):
        raise QualityError(
            f"quality string contains characters outside Phred+33 range: {text!r}"
        )
    return scores.astype(np.uint8)


def phred_to_error_prob(score: float) -> float:
    """Return the base-calling error probability for a Phred score.

    ``Q = -10 * log10(P_error)``, so ``P_error = 10 ** (-Q / 10)``.
    """
    if score < 0:
        raise QualityError(f"Phred score must be non-negative, got {score}")
    return 10.0 ** (-score / 10.0)


def error_prob_to_phred(prob: float) -> float:
    """Return the Phred score for a base-calling error probability."""
    if not 0.0 < prob <= 1.0:
        raise QualityError(f"error probability must be in (0, 1], got {prob}")
    return -10.0 * np.log10(prob)


def clamp_phred(scores: np.ndarray, ceiling: int = ILLUMINA_MAX_PHRED) -> np.ndarray:
    """Clamp scores into ``[0, ceiling]`` and return them as ``uint8``."""
    return np.clip(np.asarray(scores), 0, ceiling).astype(np.uint8)
