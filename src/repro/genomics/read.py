"""Aligned-read records.

A :class:`Read` is the unit the whole pipeline moves around: the
primary aligner emits them, the refinement stages (sort, duplicate
marking, INDEL realignment, BQSR) rewrite them in place-ish (we treat
them as immutable and produce updated copies), and the variant caller
piles them up. The fields mirror the SAM columns the paper's pipeline
relies on; INDEL realignment updates ``pos``, ``cigar``, and ``mapq``
("the read is updated with the realigned attributes, such as its read
start position and mapping quality score").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

import numpy as np

from repro.genomics.cigar import Cigar, validate_cigar_against_read
from repro.genomics.quality import MAX_PHRED
from repro.genomics.sequence import validate_bases


@dataclass(frozen=True)
class Read:
    """One aligned (or unaligned) sequencing read.

    Attributes:
        name: Read name (unique per template).
        chrom: Reference contig name, or ``None`` if unmapped.
        pos: 0-based leftmost reference coordinate of the alignment.
        seq: Base string (``ACGTN``).
        quals: Raw Phred scores, one ``uint8`` per base.
        cigar: Alignment transcript; ``None`` if unmapped.
        mapq: Mapping quality (0-60 convention).
        is_reverse: True if the read aligned to the reverse strand.
        is_duplicate: Set by duplicate marking.
    """

    name: str
    chrom: Optional[str]
    pos: int
    seq: str
    quals: np.ndarray
    cigar: Optional[Cigar] = None
    mapq: int = 60
    is_reverse: bool = False
    is_duplicate: bool = False

    def __post_init__(self) -> None:
        validate_bases(self.seq)
        quals = np.asarray(self.quals, dtype=np.uint8)
        object.__setattr__(self, "quals", quals)
        if quals.ndim != 1 or quals.size != len(self.seq):
            raise ValueError(
                f"read {self.name!r}: {quals.size} quality scores "
                f"for {len(self.seq)} bases"
            )
        if quals.size and int(quals.max()) > MAX_PHRED:
            raise ValueError(f"read {self.name!r}: Phred score above {MAX_PHRED}")
        if self.cigar is not None:
            validate_cigar_against_read(self.cigar, len(self.seq))
        if self.is_mapped and self.pos < 0:
            raise ValueError(f"read {self.name!r}: negative mapped position {self.pos}")
        if not 0 <= self.mapq <= 254:
            raise ValueError(f"read {self.name!r}: mapq {self.mapq} outside [0, 254]")

    @property
    def is_mapped(self) -> bool:
        return self.chrom is not None and self.cigar is not None

    def __len__(self) -> int:
        return len(self.seq)

    @property
    def end(self) -> int:
        """0-based exclusive reference end coordinate of the alignment."""
        if not self.is_mapped:
            raise ValueError(f"read {self.name!r} is unmapped")
        return self.pos + self.cigar.reference_length

    @property
    def span(self) -> Tuple[int, int]:
        """``(start, end)`` reference interval, 0-based half-open."""
        return (self.pos, self.end)

    @property
    def has_indel(self) -> bool:
        return self.cigar is not None and self.cigar.has_indel

    def overlaps(self, start: int, end: int) -> bool:
        """True if the alignment's interval intersects ``[start, end)``.

        The paper's target semantics ("reads that have either start or end
        position landing in this region") are implemented by
        :meth:`anchored_in`; this is plain interval overlap.
        """
        return self.is_mapped and self.pos < end and self.end > start

    def anchored_in(self, start: int, end: int) -> bool:
        """True if the read's start or end position lands inside ``[start, end)``.

        This is the paper's membership rule for an IR target: "All reads
        that overlap this region (reads that have either start or end
        position landing in this region) are considered reads for this
        site."
        """
        if not self.is_mapped:
            return False
        last = self.end - 1
        return start <= self.pos < end or start <= last < end

    def realigned(
        self,
        new_pos: int,
        new_cigar: Optional[Cigar] = None,
        new_mapq: Optional[int] = None,
    ) -> "Read":
        """Return a copy realigned to ``new_pos``.

        The accelerator returns the read's new offset against the picked
        consensus; the host reconstructs the reference-space CIGAR from
        the consensus's INDEL (see
        :func:`repro.realign.consensus.realigned_read_placement`). When
        the read does not span the INDEL the alignment is gap-free and
        ``new_cigar`` may be omitted.
        """
        return replace(
            self,
            pos=new_pos,
            cigar=new_cigar if new_cigar is not None else Cigar.matched(len(self.seq)),
            mapq=self.mapq if new_mapq is None else new_mapq,
        )

    def marked_duplicate(self) -> "Read":
        """Return a copy flagged as a PCR/optical duplicate."""
        return replace(self, is_duplicate=True)

    def with_quals(self, quals: np.ndarray) -> "Read":
        """Return a copy with recalibrated quality scores (used by BQSR)."""
        return replace(self, quals=np.asarray(quals, dtype=np.uint8))


def coordinate_key(read: Read) -> Tuple[str, int, bool]:
    """Sort key for coordinate order: (contig, position, strand)."""
    if not read.is_mapped:
        return ("￿", 1 << 60, False)
    return (read.chrom, read.pos, read.is_reverse)
