"""Nucleotide sequence primitives.

A genomic sequence is represented as a Python ``str`` over the alphabet
``A C G T N`` (paper Appendix glossary: four nucleotide bases plus ``N``
for an unresolvable base call). For kernel code that needs byte-level
access -- the accelerator stores one byte per base, exactly as the paper's
design does ("we chose to use 1 byte for each consensus base, each read
base, and each quality score") -- sequences convert to and from
``numpy.uint8`` arrays of ASCII codes.
"""

from __future__ import annotations

import numpy as np

#: The nucleotide alphabet. ``N`` denotes a base the sequencer could not call.
BASES = "ACGTN"

#: The four unambiguous bases, used for random generation and mutation.
CALLED_BASES = "ACGT"

_COMPLEMENT = {"A": "T", "T": "A", "C": "G", "G": "C", "N": "N"}

_BASE_SET = frozenset(BASES)

#: ASCII codes for the alphabet, for validating uint8 arrays.
BASE_CODES = np.frombuffer(BASES.encode("ascii"), dtype=np.uint8)


class SequenceError(ValueError):
    """Raised when a string is not a valid nucleotide sequence."""


def validate_bases(seq: str) -> str:
    """Return ``seq`` unchanged if every character is a valid base.

    Raises :class:`SequenceError` otherwise. Lower-case input is *not*
    accepted: the pipeline normalises case at ingest (see
    :mod:`repro.genomics.fasta`), and silently accepting mixed case here
    would mask ingest bugs.
    """
    for index, base in enumerate(seq):
        if base not in _BASE_SET:
            raise SequenceError(
                f"invalid base {base!r} at position {index} "
                f"(expected one of {BASES})"
            )
    return seq


def seq_to_array(seq: str) -> np.ndarray:
    """Encode a sequence string as a ``numpy.uint8`` array of ASCII codes."""
    return np.frombuffer(seq.encode("ascii"), dtype=np.uint8).copy()


def seq_from_array(array: np.ndarray) -> str:
    """Decode a ``numpy.uint8`` ASCII array back to a sequence string."""
    return bytes(np.asarray(array, dtype=np.uint8)).decode("ascii")


def complement(base: str) -> str:
    """Return the Watson-Crick complement of a single base."""
    try:
        return _COMPLEMENT[base]
    except KeyError:
        raise SequenceError(f"invalid base {base!r}") from None


def reverse_complement(seq: str) -> str:
    """Return the reverse complement of a sequence.

    Used by the read simulator for reads sampled from the reverse strand.
    """
    return "".join(_COMPLEMENT[base] for base in reversed(validate_bases(seq)))


def random_bases(length: int, rng: np.random.Generator) -> str:
    """Generate ``length`` random unambiguous bases using ``rng``."""
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    codes = rng.integers(0, len(CALLED_BASES), size=length)
    return "".join(CALLED_BASES[code] for code in codes)


def gc_content(seq: str) -> float:
    """Return the G+C fraction of a sequence (``N`` bases excluded).

    Returns 0.0 for sequences with no called bases.
    """
    called = sum(1 for base in seq if base in "ACGT")
    if called == 0:
        return 0.0
    gc = sum(1 for base in seq if base in "GC")
    return gc / called


def hamming_distance(left: str, right: str) -> int:
    """Return the plain (unweighted) Hamming distance of two equal-length strings."""
    if len(left) != len(right):
        raise ValueError(
            f"sequences must have equal length, got {len(left)} and {len(right)}"
        )
    return sum(1 for a, b in zip(left, right) if a != b)
