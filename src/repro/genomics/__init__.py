"""Genomics substrate: sequences, quality scores, reads, references, and IO.

The paper evaluates on the NA12878 genome from the 1000 Genomes Project,
sequenced at 60-65x coverage and aligned to GRCh37. That dataset is not
available offline, so this subpackage provides the synthetic equivalent:
a reference-genome model, an Illumina-like short-read simulator with
configurable error and INDEL rates, and light-weight FASTA/FASTQ/SAM
readers and writers so the rest of the system operates on realistic data
structures end to end.
"""

from repro.genomics.sequence import (
    BASES,
    complement,
    random_bases,
    reverse_complement,
    seq_from_array,
    seq_to_array,
    validate_bases,
)
from repro.genomics.quality import (
    MAX_PHRED,
    phred_from_ascii,
    phred_to_ascii,
    phred_to_error_prob,
    error_prob_to_phred,
)
from repro.genomics.cigar import Cigar, CigarOp
from repro.genomics.intervals import GenomicInterval, merge_intervals
from repro.genomics.read import Read
from repro.genomics.reference import Contig, ReferenceGenome
from repro.genomics.stats import ReadSetStats, compute_stats
from repro.genomics.variants import Variant, VariantKind

__all__ = [
    "BASES",
    "MAX_PHRED",
    "Cigar",
    "CigarOp",
    "Contig",
    "GenomicInterval",
    "Read",
    "ReadSetStats",
    "ReferenceGenome",
    "Variant",
    "VariantKind",
    "compute_stats",
    "merge_intervals",
    "complement",
    "error_prob_to_phred",
    "phred_from_ascii",
    "phred_to_ascii",
    "phred_to_error_prob",
    "random_bases",
    "reverse_complement",
    "seq_from_array",
    "seq_to_array",
    "validate_bases",
]
