"""SAM-lite: a text serialisation of aligned reads.

A restricted SAM dialect carrying exactly the columns the refinement
pipeline uses. It exists so pipeline stages can be checkpointed to disk
and inspected, and so the examples produce artifacts a bioinformatician
would recognise. Flags encoded: 0x10 (reverse strand), 0x400 (duplicate),
0x4 (unmapped).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Optional, TextIO, Union

from repro.genomics.cigar import Cigar
from repro.genomics.quality import phred_from_ascii, phred_to_ascii
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome

PathOrFile = Union[str, Path, TextIO]

FLAG_UNMAPPED = 0x4
FLAG_REVERSE = 0x10
FLAG_DUPLICATE = 0x400


class SamError(ValueError):
    """Raised for malformed SAM-lite input."""


def _as_text_handle(source: PathOrFile, mode: str):
    if isinstance(source, (str, Path)):
        return open(source, mode), True
    return source, False


def _header_lines(reference: Optional[ReferenceGenome]) -> List[str]:
    lines = ["@HD\tVN:1.6\tSO:unsorted"]
    if reference is not None:
        for contig in reference:
            lines.append(f"@SQ\tSN:{contig.name}\tLN:{len(contig)}")
    lines.append("@PG\tID:repro\tPN:repro-indel-realigner")
    return lines


def format_read(read: Read) -> str:
    """Render one read as a SAM-lite line (1-based POS, per SAM)."""
    flag = 0
    if not read.is_mapped:
        flag |= FLAG_UNMAPPED
    if read.is_reverse:
        flag |= FLAG_REVERSE
    if read.is_duplicate:
        flag |= FLAG_DUPLICATE
    chrom = read.chrom if read.is_mapped else "*"
    pos = read.pos + 1 if read.is_mapped else 0
    cigar = str(read.cigar) if read.cigar is not None else "*"
    quals = phred_to_ascii(read.quals)
    return "\t".join(
        [
            read.name,
            str(flag),
            chrom,
            str(pos),
            str(read.mapq),
            cigar,
            "*",  # RNEXT
            "0",  # PNEXT
            "0",  # TLEN
            read.seq,
            quals,
        ]
    )


def parse_read(line: str) -> Read:
    """Parse one SAM-lite alignment line back into a :class:`Read`."""
    fields = line.rstrip("\n").split("\t")
    if len(fields) < 11:
        raise SamError(f"SAM line has {len(fields)} fields, expected >= 11")
    name, flag_text, chrom, pos_text, mapq_text, cigar_text = fields[:6]
    seq, quals_text = fields[9], fields[10]
    try:
        flag = int(flag_text)
        pos = int(pos_text)
        mapq = int(mapq_text)
    except ValueError as exc:
        raise SamError(f"bad numeric field in SAM line: {exc}") from None
    unmapped = bool(flag & FLAG_UNMAPPED) or chrom == "*" or cigar_text == "*"
    return Read(
        name=name,
        chrom=None if unmapped else chrom,
        pos=0 if unmapped else pos - 1,
        seq=seq,
        quals=phred_from_ascii(quals_text),
        cigar=None if unmapped else Cigar.parse(cigar_text),
        mapq=mapq,
        is_reverse=bool(flag & FLAG_REVERSE),
        is_duplicate=bool(flag & FLAG_DUPLICATE),
    )


def write_sam(
    reads: Iterable[Read],
    sink: PathOrFile,
    reference: Optional[ReferenceGenome] = None,
) -> None:
    """Write reads (with a header) as SAM-lite."""
    handle, owned = _as_text_handle(sink, "w")
    try:
        for line in _header_lines(reference):
            handle.write(line)
            handle.write("\n")
        for read in reads:
            handle.write(format_read(read))
            handle.write("\n")
    finally:
        if owned:
            handle.close()


def parse_sam(source: PathOrFile) -> Iterator[Read]:
    """Yield reads from a SAM-lite file, skipping header lines."""
    handle, owned = _as_text_handle(source, "r")
    try:
        for line in handle:
            if not line.strip() or line.startswith("@"):
                continue
            yield parse_read(line)
    finally:
        if owned:
            handle.close()


def read_sam(source: PathOrFile) -> List[Read]:
    """Eagerly load a SAM-lite file."""
    return list(parse_sam(source))
