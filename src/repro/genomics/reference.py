"""Reference-genome model.

The paper aligns NA12878 against the GRCh37 human reference. We model a
reference as an ordered collection of named contigs ("chromosomes") with
random access to subsequences -- the only operation INDEL realignment
needs from it (fetching the reference window of each target, which
becomes consensus 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Tuple

import numpy as np

from repro.genomics.sequence import random_bases, validate_bases


@dataclass(frozen=True)
class Contig:
    """One reference contig (chromosome)."""

    name: str
    sequence: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("contig name must be non-empty")
        validate_bases(self.sequence)

    def __len__(self) -> int:
        return len(self.sequence)


class ReferenceGenome:
    """A set of contigs with GRCh37-style coordinate access.

    Coordinates are 0-based half-open throughout the library (the paper's
    prose uses 1-based positions like ``22:10000``; the conversion happens
    only in display code).
    """

    def __init__(self, contigs: List[Contig]):
        if not contigs:
            raise ValueError("a reference needs at least one contig")
        self._contigs: Dict[str, Contig] = {}
        for contig in contigs:
            if contig.name in self._contigs:
                raise ValueError(f"duplicate contig name {contig.name!r}")
            self._contigs[contig.name] = contig

    @classmethod
    def from_dict(cls, mapping: Mapping[str, str]) -> "ReferenceGenome":
        return cls([Contig(name, seq) for name, seq in mapping.items()])

    @classmethod
    def random(
        cls,
        contig_lengths: Mapping[str, int],
        rng: np.random.Generator,
    ) -> "ReferenceGenome":
        """Generate a random reference with the given contig lengths."""
        return cls(
            [Contig(name, random_bases(length, rng)) for name, length in contig_lengths.items()]
        )

    def __contains__(self, name: str) -> bool:
        return name in self._contigs

    def __iter__(self) -> Iterator[Contig]:
        return iter(self._contigs.values())

    def __len__(self) -> int:
        return len(self._contigs)

    @property
    def contig_names(self) -> List[str]:
        return list(self._contigs)

    def contig(self, name: str) -> Contig:
        try:
            return self._contigs[name]
        except KeyError:
            raise KeyError(f"unknown contig {name!r}") from None

    def length(self, name: str) -> int:
        return len(self.contig(name))

    def fetch(self, name: str, start: int, end: int) -> str:
        """Return the reference bases of ``name`` in ``[start, end)``.

        The interval must lie within the contig: target creation clamps
        its windows before fetching, so an out-of-range fetch here is a
        logic error worth surfacing.
        """
        contig = self.contig(name)
        if not 0 <= start <= end <= len(contig):
            raise IndexError(
                f"interval [{start}, {end}) outside contig {name!r} "
                f"of length {len(contig)}"
            )
        return contig.sequence[start:end]

    def total_length(self) -> int:
        return sum(len(contig) for contig in self)

    def intervals(self) -> List[Tuple[str, int, int]]:
        """Return ``(name, 0, length)`` for every contig."""
        return [(contig.name, 0, len(contig)) for contig in self]
