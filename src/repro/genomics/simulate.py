"""Synthetic genome and short-read simulation.

This module is the stand-in for the paper's dataset (NA12878 at 60-65x
coverage, Illumina short reads, aligned with BWA-MEM). It reproduces the
three properties INDEL realignment performance and correctness depend on:

1. **INDEL-bearing reads with inconsistent representations.** The paper:
   "if a read contains an insertion/deletion, the mapping will commonly
   identify the correct genomic region ... but will locally misalign the
   read relative to other reads that contain the same underlying sequence
   variant." The simulator injects truth INDELs and then emits, per read,
   either the correct gapped alignment or one of several plausible
   misrepresentations (gap-free alignment absorbing the INDEL as
   mismatches, or a small position shift), mimicking the probabilistic
   pairwise-aligner behaviour IR exists to fix.
2. **Quality-score structure.** Scores follow an Illumina-like profile
   (high plateau, degrading tail) and sequencing errors are drawn with
   the corresponding probabilities, so weighted-Hamming-distance inputs
   are realistic.
3. **Zipf-like coverage imbalance.** The paper observes "roughly between
   100 reads and 100,000 reads per location interval" following a
   Zipf-like distribution; hotspot sampling reproduces the imbalance that
   motivates the accelerator's task-parallel design and makes
   synchronous scheduling slow (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.genomics.cigar import Cigar, CigarOp
from repro.genomics.quality import clamp_phred
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.genomics.sequence import CALLED_BASES, random_bases
from repro.genomics.variants import Variant, VariantKind


@dataclass(frozen=True)
class SimulationProfile:
    """Knobs of the read simulator, defaulting to the paper's regime."""

    read_length: int = 250  # "short reads (around 250 base pairs)"
    coverage: float = 60.0  # "high coverage (60-65x)"
    base_error_rate: float = 0.005  # "0.5%-2% errors"; low end of the band
    quality_plateau: int = 37
    quality_tail_drop: int = 12  # plateau degrades linearly by this much
    snp_rate: float = 1e-3
    indel_rate: float = 2e-4
    max_indel_length: int = 12
    somatic_fraction_range: Tuple[float, float] = (0.2, 1.0)
    # Probability that the "primary aligner" represents an INDEL-bearing
    # read correctly; the remainder are misaligned and need realignment.
    aligner_indel_accuracy: float = 0.45
    hotspot_count: int = 4
    hotspot_zipf_exponent: float = 1.5
    hotspot_mass: float = 0.3  # fraction of reads drawn from hotspots

    def __post_init__(self) -> None:
        if self.read_length <= 0:
            raise ValueError("read_length must be positive")
        if self.coverage <= 0:
            raise ValueError("coverage must be positive")
        if not 0 <= self.base_error_rate < 1:
            raise ValueError("base_error_rate must be in [0, 1)")
        if not 0 <= self.aligner_indel_accuracy <= 1:
            raise ValueError("aligner_indel_accuracy must be in [0, 1]")
        if not 0 <= self.hotspot_mass < 1:
            raise ValueError("hotspot_mass must be in [0, 1)")


@dataclass(frozen=True)
class TruthPlacement:
    """The alignment a read *should* have: its true position and CIGAR.

    The simulator knows where every read came from and which variants it
    carries, so it can record the gapped alignment a perfect aligner
    would emit -- even for the reads it then deliberately misaligns.
    The evaluation harness (:mod:`repro.evaluate`) scores realignment
    outcomes against these placements base by base.
    """

    pos: int
    cigar: str

    def aligned_pairs(self) -> List[Tuple[int, int]]:
        """``(read_offset, reference_position)`` for every true M base."""
        return [
            (read_offset, self.pos + ref_offset)
            for read_offset, ref_offset in Cigar.parse(self.cigar).aligned_pairs()
        ]


@dataclass(frozen=True)
class SimulatedSample:
    """Output of a simulation run: aligned reads plus ground truth.

    ``truth_placements`` maps each read name to the alignment the read
    would have under a perfect aligner (:class:`TruthPlacement`); for
    correctly-simulated reads it equals the emitted alignment, for
    misaligned INDEL reads it is the gapped alignment IR should restore.
    """

    reads: List[Read]
    truth_variants: List[Variant]
    reference: ReferenceGenome
    truth_placements: Dict[str, TruthPlacement] = field(default_factory=dict)


def plan_variants(
    reference: ReferenceGenome,
    profile: SimulationProfile,
    rng: np.random.Generator,
) -> List[Variant]:
    """Draw truth SNPs and INDELs along every contig.

    Variants are spaced at least ``2 * max_indel_length`` apart so their
    reference spans never overlap, which keeps read construction and
    truth evaluation unambiguous.
    """
    min_gap = 2 * profile.max_indel_length + 2
    variants: List[Variant] = []
    for contig in reference:
        length = len(contig)
        expected = length * (profile.snp_rate + profile.indel_rate)
        count = int(rng.poisson(expected))
        if count == 0:
            continue
        positions = np.sort(
            rng.choice(max(length - profile.max_indel_length - 1, 1),
                       size=min(count, max(length // min_gap, 1)),
                       replace=False)
        )
        last_end = -min_gap
        for pos in positions:
            pos = int(pos)
            if pos - last_end < min_gap:
                continue
            ref_base = contig.sequence[pos]
            if ref_base == "N":
                continue
            fraction = float(
                rng.uniform(*profile.somatic_fraction_range)
            )
            indel_share = profile.indel_rate / (profile.snp_rate + profile.indel_rate)
            if rng.random() < indel_share:
                size = int(rng.integers(1, profile.max_indel_length + 1))
                if rng.random() < 0.5:
                    # Insertion after pos.
                    alt = ref_base + random_bases(size, rng)
                    variant = Variant(contig.name, pos, ref_base, alt, fraction)
                else:
                    # Deletion of `size` bases after pos.
                    if pos + 1 + size > length:
                        continue
                    ref = contig.sequence[pos : pos + 1 + size]
                    variant = Variant(contig.name, pos, ref, ref_base, fraction)
            else:
                alt = ref_base
                while alt == ref_base:
                    alt = CALLED_BASES[int(rng.integers(0, 4))]
                variant = Variant(contig.name, pos, ref_base, alt, fraction)
            variants.append(variant)
            last_end = pos + variant.ref_span
    return variants


def _quality_profile(length: int, profile: SimulationProfile,
                     rng: np.random.Generator) -> np.ndarray:
    """Illumina-like per-base qualities: plateau with a degrading 3' tail."""
    positions = np.arange(length)
    tail = profile.quality_tail_drop * np.maximum(
        0.0, (positions - 0.6 * length) / (0.4 * length + 1)
    )
    noise = rng.normal(0.0, 2.0, size=length)
    return clamp_phred(np.round(profile.quality_plateau - tail + noise))


def _apply_errors(bases: List[str], quals: np.ndarray,
                  rng: np.random.Generator, error_rate: float) -> None:
    """Flip bases in place at the profile's mean error rate.

    Per-base probabilities follow the Phred scores (low-quality bases
    fail more often -- the correlation BQSR estimates), rescaled so the
    read's expected error count is ``error_rate * len(bases)``.
    """
    if error_rate <= 0 or not bases:
        return
    probs = 10.0 ** (-quals.astype(np.float64) / 10.0)
    mean = probs.mean()
    if mean > 0:
        probs = np.minimum(probs * (error_rate / mean), 0.75)
    flips = rng.random(len(bases)) < probs
    for index in np.nonzero(flips)[0]:
        original = bases[index]
        substitute = original
        while substitute == original:
            substitute = CALLED_BASES[int(rng.integers(0, 4))]
        bases[index] = substitute


def _variants_in_window(
    variants: Sequence[Variant], chrom: str, start: int, end: int
) -> List[Variant]:
    return [
        v for v in variants
        if v.chrom == chrom and v.pos < end and v.pos + v.ref_span > start
    ]


def _build_read_sequence(
    reference: ReferenceGenome,
    chrom: str,
    start: int,
    read_length: int,
    carried: Sequence[Variant],
) -> Tuple[str, Cigar, bool]:
    """Construct a read's true bases and true CIGAR from carried variants.

    Walks the reference from ``start``, substituting each carried
    variant's alt allele, until ``read_length`` bases are collected.
    Returns ``(bases, true_cigar, has_indel)``.
    """
    contig_len = reference.length(chrom)
    bases: List[str] = []
    elements: List[Tuple[CigarOp, int]] = []
    ref_pos = start
    has_indel = False
    by_pos = {v.pos: v for v in carried}
    while len(bases) < read_length and ref_pos < contig_len:
        variant = by_pos.get(ref_pos)
        if variant is None:
            bases.append(reference.fetch(chrom, ref_pos, ref_pos + 1))
            elements.append((CigarOp.MATCH, 1))
            ref_pos += 1
            continue
        if variant.kind is VariantKind.SNP:
            bases.append(variant.alt)
            elements.append((CigarOp.MATCH, 1))
            ref_pos += 1
        elif variant.kind is VariantKind.INSERTION:
            bases.append(variant.ref)  # anchor base
            elements.append((CigarOp.MATCH, 1))
            inserted = variant.alt[1:]
            take = min(len(inserted), read_length - len(bases))
            if take > 0:
                bases.extend(inserted[:take])
                elements.append((CigarOp.INSERTION, take))
                has_indel = True
            ref_pos += 1
        else:  # deletion
            bases.append(variant.alt)  # anchor base
            elements.append((CigarOp.MATCH, 1))
            deleted = variant.ref_span - 1
            elements.append((CigarOp.DELETION, deleted))
            has_indel = True
            ref_pos += 1 + deleted
    cigar = Cigar.from_elements(elements)
    return "".join(bases), cigar, has_indel


def _misaligned_cigar(read_length: int) -> Cigar:
    """The gap-free representation a confused aligner emits."""
    return Cigar.matched(read_length)


class ReadSimulator:
    """Samples aligned reads from a reference plus truth variants."""

    def __init__(
        self,
        reference: ReferenceGenome,
        profile: Optional[SimulationProfile] = None,
        seed: int = 0,
    ):
        self.reference = reference
        self.profile = profile or SimulationProfile()
        self.rng = np.random.default_rng(seed)
        self._hotspots = self._draw_hotspots()

    def _draw_hotspots(self) -> List[Tuple[str, int]]:
        hotspots: List[Tuple[str, int]] = []
        for contig in self.reference:
            usable = max(len(contig) - self.profile.read_length, 1)
            for _ in range(self.profile.hotspot_count):
                hotspots.append((contig.name, int(self.rng.integers(0, usable))))
        return hotspots

    def _sample_start(self, chrom: str, usable: int) -> int:
        """Uniform start, with a Zipf-weighted hotspot mixture."""
        if self._hotspots and self.rng.random() < self.profile.hotspot_mass:
            local = [h for h in self._hotspots if h[0] == chrom]
            if local:
                ranks = np.arange(1, len(local) + 1, dtype=np.float64)
                weights = ranks ** (-self.profile.hotspot_zipf_exponent)
                weights /= weights.sum()
                _, center = local[int(self.rng.choice(len(local), p=weights))]
                jitter = int(self.rng.integers(-self.profile.read_length // 2,
                                               self.profile.read_length // 2 + 1))
                return int(np.clip(center + jitter, 0, usable - 1))
        return int(self.rng.integers(0, usable))

    def simulate(
        self, variants: Optional[Sequence[Variant]] = None
    ) -> SimulatedSample:
        """Simulate a whole sample at the profile's coverage."""
        if variants is None:
            variants = plan_variants(self.reference, self.profile, self.rng)
        reads: List[Read] = []
        placements: Dict[str, TruthPlacement] = {}
        serial = 0
        for contig in self.reference:
            usable = len(contig) - self.profile.read_length
            if usable <= 0:
                continue
            count = int(
                round(self.profile.coverage * len(contig) / self.profile.read_length)
            )
            for _ in range(count):
                start = self._sample_start(contig.name, usable)
                read, placement = self._simulate_one(
                    contig.name, start, variants, serial
                )
                reads.append(read)
                placements[read.name] = placement
                serial += 1
        return SimulatedSample(reads=reads, truth_variants=list(variants),
                               reference=self.reference,
                               truth_placements=placements)

    def _simulate_one(
        self,
        chrom: str,
        start: int,
        variants: Sequence[Variant],
        serial: int,
    ) -> Tuple[Read, TruthPlacement]:
        profile = self.profile
        window_end = start + profile.read_length + profile.max_indel_length + 1
        window_end = min(window_end, self.reference.length(chrom))
        candidates = _variants_in_window(variants, chrom, start, window_end)
        carried = [
            v for v in candidates if self.rng.random() < v.allele_fraction
        ]
        bases_str, true_cigar, has_indel = _build_read_sequence(
            self.reference, chrom, start, profile.read_length, carried
        )
        quals = _quality_profile(len(bases_str), profile, self.rng)
        bases = list(bases_str)
        _apply_errors(bases, quals, self.rng, profile.base_error_rate)
        seq = "".join(bases)

        if has_indel and self.rng.random() >= profile.aligner_indel_accuracy:
            # Misaligned representation: the aligner keeps the correct
            # genomic region ("the mapping will commonly identify the
            # correct genomic region") but absorbs the INDEL into a
            # gap-free alignment, so every base downstream of the INDEL
            # mismatches the reference. This is the error signature
            # INDEL realignment exists to correct.
            pos = min(start, self.reference.length(chrom) - len(seq))
            cigar = _misaligned_cigar(len(seq))
            mapq = int(self.rng.integers(20, 40))
        else:
            pos = start
            cigar = true_cigar
            mapq = int(self.rng.integers(50, 61))
        read = Read(
            name=f"sim{serial:08d}",
            chrom=chrom,
            pos=pos,
            seq=seq,
            quals=quals,
            cigar=cigar,
            mapq=mapq,
            is_reverse=bool(self.rng.random() < 0.5),
        )
        return read, TruthPlacement(pos=start, cigar=str(true_cigar))


def simulate_sample(
    contig_lengths,
    profile: Optional[SimulationProfile] = None,
    seed: int = 0,
) -> SimulatedSample:
    """One-call convenience: random reference + variants + reads."""
    rng = np.random.default_rng(seed)
    reference = ReferenceGenome.random(contig_lengths, rng)
    simulator = ReadSimulator(reference, profile, seed=seed + 1)
    return simulator.simulate()
