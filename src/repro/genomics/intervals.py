"""Genomic interval arithmetic.

Half-open ``(chrom, start, end)`` intervals with the operations the
pipeline's interval-shaped stages need: normalisation (sort + merge),
intersection, complement against a reference, and point-cluster
flushing (the primitive under IR target creation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.genomics.reference import ReferenceGenome


@dataclass(frozen=True, order=True)
class GenomicInterval:
    """One 0-based half-open interval."""

    chrom: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(
                f"invalid interval {self.chrom}:{self.start}-{self.end}"
            )

    @property
    def span(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "GenomicInterval") -> bool:
        return (self.chrom == other.chrom
                and self.start < other.end and other.start < self.end)

    def contains(self, chrom: str, pos: int) -> bool:
        return chrom == self.chrom and self.start <= pos < self.end


def merge_intervals(
    intervals: Iterable[GenomicInterval], gap: int = 0
) -> List[GenomicInterval]:
    """Sort and merge intervals closer than ``gap`` (0 = touching)."""
    if gap < 0:
        raise ValueError("gap must be non-negative")
    merged: List[GenomicInterval] = []
    for interval in sorted(intervals):
        if (merged
                and merged[-1].chrom == interval.chrom
                and interval.start <= merged[-1].end + gap):
            last = merged.pop()
            merged.append(GenomicInterval(
                last.chrom, last.start, max(last.end, interval.end)
            ))
        else:
            merged.append(interval)
    return merged


def intersect(
    left: Sequence[GenomicInterval], right: Sequence[GenomicInterval]
) -> List[GenomicInterval]:
    """Pairwise intersection of two interval sets (both get normalised)."""
    result: List[GenomicInterval] = []
    left_merged = merge_intervals(left)
    right_merged = merge_intervals(right)
    for a in left_merged:
        for b in right_merged:
            if a.overlaps(b):
                result.append(GenomicInterval(
                    a.chrom, max(a.start, b.start), min(a.end, b.end)
                ))
    return sorted(result)


def complement(
    intervals: Sequence[GenomicInterval], reference: ReferenceGenome
) -> List[GenomicInterval]:
    """Reference regions *not* covered by ``intervals``."""
    merged = merge_intervals(intervals)
    by_chrom: Dict[str, List[GenomicInterval]] = {}
    for interval in merged:
        by_chrom.setdefault(interval.chrom, []).append(interval)
    result: List[GenomicInterval] = []
    for contig in reference:
        cursor = 0
        for interval in by_chrom.get(contig.name, []):
            if interval.start > cursor:
                result.append(GenomicInterval(contig.name, cursor,
                                              interval.start))
            cursor = max(cursor, interval.end)
        if cursor < len(contig):
            result.append(GenomicInterval(contig.name, cursor, len(contig)))
    return result


def total_span(intervals: Sequence[GenomicInterval]) -> int:
    """Total bases covered (after merging overlaps)."""
    return sum(interval.span for interval in merge_intervals(intervals))


def cluster_points(
    points: Sequence[int],
    merge_distance: int,
    flank: int,
    contig_length: int,
    max_span: int,
) -> List[Tuple[int, int]]:
    """Cluster sorted loci into padded, clamped, size-capped intervals.

    The primitive under IR target creation: loci within
    ``merge_distance`` share a cluster, each cluster grows ``flank`` on
    both sides, clamps to the contig, and splits at ``max_span``.
    """
    if merge_distance < 0 or flank < 0:
        raise ValueError("merge_distance and flank must be non-negative")
    if max_span <= 0 or contig_length <= 0:
        raise ValueError("max_span and contig_length must be positive")
    intervals: List[Tuple[int, int]] = []

    def flush(lo: int, hi: int) -> None:
        start = max(0, lo - flank)
        end = min(contig_length, hi + 1 + flank)
        while end - start > max_span:
            intervals.append((start, start + max_span))
            start += max_span
        if end > start:
            intervals.append((start, end))

    cluster_start = cluster_end = None
    for locus in sorted(set(points)):
        if cluster_start is None:
            cluster_start = cluster_end = locus
        elif locus - cluster_end <= merge_distance:
            cluster_end = locus
        else:
            flush(cluster_start, cluster_end)
            cluster_start = cluster_end = locus
    if cluster_start is not None:
        flush(cluster_start, cluster_end)
    return intervals
