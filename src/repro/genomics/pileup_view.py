"""ASCII pileup rendering (the paper's Figure 10, and manual review).

The paper notes that IR matters partly because "visualization and manual
inspection of particular cell (re)alignments is desired (most somatic
biochemists prefer manual inspection of cancer cell (re)alignments)".
This module renders a reference window with its reads stacked beneath
it, IGV-style in plain text: matching bases as ``.``/``,`` (forward /
reverse strand), mismatches as the read base, deletions as ``*``,
insertions flagged with ``+``, soft clips in lower case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.genomics.cigar import CigarOp
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome


@dataclass(frozen=True)
class PileupViewConfig:
    max_rows: int = 30
    show_names: bool = False
    ruler_interval: int = 10


def _read_row(read: Read, start: int, end: int, reference_window: str
              ) -> Optional[str]:
    """Render one read against window ``[start, end)``; None if outside."""
    if not read.is_mapped or read.end <= start or read.pos >= end:
        return None
    width = end - start
    cells = [" "] * width
    match_char = "," if read.is_reverse else "."
    read_offset = 0
    ref_pos = read.pos
    for op, length in read.cigar:
        if op is CigarOp.MATCH:
            for i in range(length):
                column = ref_pos + i - start
                if 0 <= column < width:
                    base = read.seq[read_offset + i]
                    ref_base = reference_window[column]
                    cells[column] = match_char if base == ref_base else base
            read_offset += length
            ref_pos += length
        elif op is CigarOp.DELETION:
            for i in range(length):
                column = ref_pos + i - start
                if 0 <= column < width:
                    cells[column] = "*"
            ref_pos += length
        elif op is CigarOp.INSERTION:
            column = ref_pos - 1 - start
            if 0 <= column < width:
                cells[column] = "+"
            read_offset += length
        elif op is CigarOp.SOFT_CLIP:
            # Clipped bases are unaligned; they occupy no columns.
            read_offset += length
    return "".join(cells)


def render_pileup(
    reads: Sequence[Read],
    reference: ReferenceGenome,
    chrom: str,
    start: int,
    end: int,
    config: PileupViewConfig = PileupViewConfig(),
) -> str:
    """Render the window ``chrom:[start, end)`` with stacked reads."""
    if not 0 <= start < end <= reference.length(chrom):
        raise ValueError(f"bad window {chrom}:{start}-{end}")
    window = reference.fetch(chrom, start, end)
    width = end - start
    ruler = [" "] * width
    for column in range(0, width, config.ruler_interval):
        label = str(start + column)
        for i, char in enumerate(label):
            if column + i < width:
                ruler[column + i] = char
    lines = ["".join(ruler), window]
    rows = 0
    for read in sorted(
        (r for r in reads if r.is_mapped and r.chrom == chrom),
        key=lambda r: r.pos,
    ):
        row = _read_row(read, start, end, window)
        if row is None or not row.strip():
            continue
        if config.show_names:
            row = f"{row}  {read.name}"
        lines.append(row)
        rows += 1
        if rows >= config.max_rows:
            remaining = sum(
                1 for r in reads
                if r.is_mapped and r.chrom == chrom and r.overlaps(start, end)
            ) - rows
            if remaining > 0:
                lines.append(f"... ({remaining} more reads)")
            break
    return "\n".join(lines)
