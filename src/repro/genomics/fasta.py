"""Minimal FASTA reader/writer for reference genomes.

Only the features the pipeline needs: multi-contig files, free line
wrapping, case normalisation, and comment-free headers (text after the
first whitespace in a ``>`` line is ignored, as samtools does).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, TextIO, Tuple, Union

from repro.genomics.reference import Contig, ReferenceGenome

PathOrFile = Union[str, Path, TextIO]


class FastaError(ValueError):
    """Raised for malformed FASTA input."""


def _as_text_handle(source: PathOrFile, mode: str):
    if isinstance(source, (str, Path)):
        return open(source, mode), True
    return source, False


def parse_fasta(source: PathOrFile) -> List[Tuple[str, str]]:
    """Parse FASTA into ``(name, sequence)`` pairs, upper-casing bases."""
    handle, owned = _as_text_handle(source, "r")
    try:
        records: List[Tuple[str, str]] = []
        name = None
        chunks: List[str] = []
        for raw_line in handle:
            line = raw_line.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    records.append((name, "".join(chunks)))
                name = line[1:].split()[0] if len(line) > 1 else ""
                if not name:
                    raise FastaError("FASTA record with empty name")
                chunks = []
            else:
                if name is None:
                    raise FastaError("sequence data before any FASTA header")
                chunks.append(line.upper())
        if name is not None:
            records.append((name, "".join(chunks)))
        if not records:
            raise FastaError("no FASTA records found")
        return records
    finally:
        if owned:
            handle.close()


def read_reference(source: PathOrFile) -> ReferenceGenome:
    """Load a FASTA file as a :class:`ReferenceGenome`."""
    return ReferenceGenome([Contig(name, seq) for name, seq in parse_fasta(source)])


def write_fasta(
    records: Iterable[Tuple[str, str]],
    sink: PathOrFile,
    line_width: int = 70,
) -> None:
    """Write ``(name, sequence)`` records as wrapped FASTA."""
    if line_width <= 0:
        raise ValueError(f"line_width must be positive, got {line_width}")
    handle, owned = _as_text_handle(sink, "w")
    try:
        for name, seq in records:
            handle.write(f">{name}\n")
            for start in range(0, len(seq), line_width):
                handle.write(seq[start : start + line_width])
                handle.write("\n")
    finally:
        if owned:
            handle.close()


def write_reference(reference: ReferenceGenome, sink: PathOrFile) -> None:
    """Write a :class:`ReferenceGenome` as FASTA."""
    write_fasta(((c.name, c.sequence) for c in reference), sink)


def reference_to_string(reference: ReferenceGenome) -> str:
    """Render a reference as a FASTA string (handy in tests and examples)."""
    buffer = io.StringIO()
    write_reference(reference, buffer)
    return buffer.getvalue()
