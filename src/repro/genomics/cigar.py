"""CIGAR strings: compact edit transcripts of read-to-reference alignments.

Primary aligners describe how each read maps onto the reference with a
CIGAR string (e.g. ``"70M2D30M"``: 70 aligned bases, a 2-base deletion
from the read relative to the reference, then 30 more aligned bases). The
INDEL realignment target creator (:mod:`repro.realign.targets`) and
consensus generator (:mod:`repro.realign.consensus`) both consume CIGARs:
targets are seeded at loci where reads carry I/D operations, and
consensuses are built by applying those INDELs to the reference window.

We support the SAM operation subset the pipeline produces:

========  =========================  consumes read  consumes reference
``M``     alignment match/mismatch   yes            yes
``I``     insertion to reference     yes            no
``D``     deletion from reference    no             yes
``S``     soft clip                  yes            no
========  =========================  consumes read  consumes reference
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, List, Sequence, Tuple


class CigarOp(str, Enum):
    """A single CIGAR operation kind."""

    MATCH = "M"
    INSERTION = "I"
    DELETION = "D"
    SOFT_CLIP = "S"

    @property
    def consumes_read(self) -> bool:
        return self in (CigarOp.MATCH, CigarOp.INSERTION, CigarOp.SOFT_CLIP)

    @property
    def consumes_reference(self) -> bool:
        return self in (CigarOp.MATCH, CigarOp.DELETION)


_CIGAR_TOKEN = re.compile(r"(\d+)([MIDS])")


class CigarError(ValueError):
    """Raised for malformed CIGAR strings."""


@dataclass(frozen=True)
class Cigar:
    """An immutable sequence of ``(CigarOp, length)`` elements."""

    elements: Tuple[Tuple[CigarOp, int], ...]

    def __post_init__(self) -> None:
        for op, length in self.elements:
            if not isinstance(op, CigarOp):
                raise CigarError(f"not a CigarOp: {op!r}")
            if length <= 0:
                raise CigarError(f"CIGAR element length must be positive: {op}{length}")

    @classmethod
    def parse(cls, text: str) -> "Cigar":
        """Parse a CIGAR string such as ``"70M2D30M"``."""
        if not text:
            raise CigarError("empty CIGAR string")
        elements: List[Tuple[CigarOp, int]] = []
        position = 0
        for match in _CIGAR_TOKEN.finditer(text):
            if match.start() != position:
                raise CigarError(f"malformed CIGAR {text!r} near offset {position}")
            length, op = match.groups()
            elements.append((CigarOp(op), int(length)))
            position = match.end()
        if position != len(text):
            raise CigarError(f"malformed CIGAR {text!r} near offset {position}")
        return cls(tuple(elements))

    @classmethod
    def from_elements(cls, elements: Iterable[Tuple[CigarOp, int]]) -> "Cigar":
        """Build a Cigar, merging adjacent elements with the same operation."""
        merged: List[Tuple[CigarOp, int]] = []
        for op, length in elements:
            if length == 0:
                continue
            if merged and merged[-1][0] == op:
                merged[-1] = (op, merged[-1][1] + length)
            else:
                merged.append((op, length))
        return cls(tuple(merged))

    @classmethod
    def matched(cls, length: int) -> "Cigar":
        """A pure-match CIGAR (``{length}M``), the post-realignment shape."""
        return cls(((CigarOp.MATCH, length),))

    def __str__(self) -> str:
        return "".join(f"{length}{op.value}" for op, length in self.elements)

    def __iter__(self) -> Iterator[Tuple[CigarOp, int]]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    @property
    def read_length(self) -> int:
        """Number of read bases this alignment consumes."""
        return sum(length for op, length in self.elements if op.consumes_read)

    @property
    def reference_length(self) -> int:
        """Number of reference bases this alignment spans."""
        return sum(length for op, length in self.elements if op.consumes_reference)

    @property
    def has_indel(self) -> bool:
        """True if the alignment contains an insertion or deletion."""
        return any(op in (CigarOp.INSERTION, CigarOp.DELETION) for op, _ in self.elements)

    def indels(self) -> List[Tuple[int, CigarOp, int]]:
        """Return ``(reference_offset, op, length)`` for each I/D element.

        The reference offset is relative to the alignment start; for an
        insertion it is the reference position *before* which the inserted
        bases sit.
        """
        found: List[Tuple[int, CigarOp, int]] = []
        ref_offset = 0
        for op, length in self.elements:
            if op in (CigarOp.INSERTION, CigarOp.DELETION):
                found.append((ref_offset, op, length))
            if op.consumes_reference:
                ref_offset += length
        return found

    def aligned_pairs(self) -> List[Tuple[int, int]]:
        """Return ``(read_offset, reference_offset)`` for every M base.

        Soft clips and insertions advance the read offset only; deletions
        advance the reference offset only.
        """
        pairs: List[Tuple[int, int]] = []
        read_offset = 0
        ref_offset = 0
        for op, length in self.elements:
            if op is CigarOp.MATCH:
                pairs.extend(
                    (read_offset + i, ref_offset + i) for i in range(length)
                )
            if op.consumes_read:
                read_offset += length
            if op.consumes_reference:
                ref_offset += length
        return pairs


def validate_cigar_against_read(cigar: Cigar, read_length: int) -> None:
    """Raise :class:`CigarError` unless the CIGAR consumes exactly the read."""
    if cigar.read_length != read_length:
        raise CigarError(
            f"CIGAR {cigar} consumes {cigar.read_length} bases "
            f"but the read has {read_length}"
        )
