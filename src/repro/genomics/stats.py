"""Read-set statistics.

Summarises an aligned read set the way a sequencing QC report would:
coverage, mapping and duplicate rates, CIGAR-operation composition,
mismatch rate against the reference, and quality-score distribution.
Used by the examples to characterise simulated samples and by tests to
assert the simulator hits its configured operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.genomics.cigar import CigarOp
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome


@dataclass
class ReadSetStats:
    """Aggregate statistics of one read set."""

    total_reads: int = 0
    mapped_reads: int = 0
    duplicate_reads: int = 0
    total_bases: int = 0
    aligned_bases: int = 0
    mismatched_bases: int = 0
    cigar_ops: Dict[str, int] = field(default_factory=dict)
    quality_sum: int = 0
    reads_with_indels: int = 0
    coverage_by_contig: Dict[str, float] = field(default_factory=dict)

    @property
    def mapped_fraction(self) -> float:
        return self.mapped_reads / self.total_reads if self.total_reads else 0.0

    @property
    def duplicate_fraction(self) -> float:
        return (self.duplicate_reads / self.mapped_reads
                if self.mapped_reads else 0.0)

    @property
    def mismatch_rate(self) -> float:
        return (self.mismatched_bases / self.aligned_bases
                if self.aligned_bases else 0.0)

    @property
    def mean_quality(self) -> float:
        return self.quality_sum / self.total_bases if self.total_bases else 0.0

    @property
    def indel_read_fraction(self) -> float:
        return (self.reads_with_indels / self.mapped_reads
                if self.mapped_reads else 0.0)

    @property
    def mean_coverage(self) -> float:
        if not self.coverage_by_contig:
            return 0.0
        return float(np.mean(list(self.coverage_by_contig.values())))


def compute_stats(
    reads: Sequence[Read],
    reference: Optional[ReferenceGenome] = None,
) -> ReadSetStats:
    """One pass over the reads; mismatch rate needs the reference."""
    stats = ReadSetStats(total_reads=len(reads))
    contig_bases: Dict[str, int] = {}
    for read in reads:
        stats.total_bases += len(read)
        stats.quality_sum += int(read.quals.sum())
        if not read.is_mapped:
            continue
        stats.mapped_reads += 1
        if read.is_duplicate:
            stats.duplicate_reads += 1
        if read.has_indel:
            stats.reads_with_indels += 1
        read_offset = 0
        ref_pos = read.pos
        for op, length in read.cigar:
            stats.cigar_ops[op.value] = (
                stats.cigar_ops.get(op.value, 0) + length
            )
            if op is CigarOp.MATCH:
                stats.aligned_bases += length
                contig_bases[read.chrom] = (
                    contig_bases.get(read.chrom, 0) + length
                )
                if reference is not None:
                    window = reference.fetch(read.chrom, ref_pos,
                                             ref_pos + length)
                    segment = read.seq[read_offset : read_offset + length]
                    stats.mismatched_bases += sum(
                        1 for a, b in zip(segment, window) if a != b
                    )
            if op.consumes_read:
                read_offset += length
            if op.consumes_reference:
                ref_pos += length
    if reference is not None:
        for contig in reference:
            covered = contig_bases.get(contig.name, 0)
            stats.coverage_by_contig[contig.name] = covered / len(contig)
    return stats


def format_stats(stats: ReadSetStats) -> str:
    """A compact human-readable QC block."""
    lines = [
        f"reads:            {stats.total_reads:,} "
        f"({stats.mapped_fraction:.1%} mapped, "
        f"{stats.duplicate_fraction:.1%} duplicates)",
        f"bases:            {stats.total_bases:,} "
        f"(mean Q{stats.mean_quality:.1f})",
        f"mismatch rate:    {stats.mismatch_rate:.3%}",
        f"reads w/ INDELs:  {stats.indel_read_fraction:.1%}",
    ]
    if stats.coverage_by_contig:
        lines.append(f"mean coverage:    {stats.mean_coverage:.1f}x")
    if stats.cigar_ops:
        ops = ", ".join(
            f"{op}={count:,}" for op, count in sorted(stats.cigar_ops.items())
        )
        lines.append(f"cigar bases:      {ops}")
    return "\n".join(lines)
