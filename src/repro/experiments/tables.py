"""Tables I and II: the accelerator ISA and the machine configurations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.isa import (
    BufferId,
    RoccCommand,
    commands_per_target,
    decode_instruction,
    encode_instruction,
    ir_set_addr,
    ir_set_len,
    ir_set_size,
    ir_set_target,
    ir_start,
)
from repro.experiments.reporting import banner, format_table
from repro.perf.instances import F1_2XLARGE, R3_2XLARGE

#: Table I command summaries, straight from the paper.
TABLE1_DESCRIPTIONS = {
    "ir_set_addr": "Set buffer <buffer index>'s read/write memory address",
    "ir_set_target": "Set the starting read position of the current target",
    "ir_set_size": "Set the number of consensuses and reads",
    "ir_set_len": "Set the length of consensus <consensus id> in bytes",
    "ir_start": "Start the INDEL realigner unit <unit id>",
}


@dataclass
class Table1Result:
    commands: Dict[str, RoccCommand]
    encodings: Dict[str, int]
    roundtrip_ok: bool
    commands_for_32_consensuses: int


def run_table1() -> Table1Result:
    """Exercise all five instructions and their binary encodings."""
    examples = {
        "ir_set_addr": ir_set_addr(3, BufferId.CONSENSUS_BASES, 0x10_0000),
        "ir_set_target": ir_set_target(3, 10_000),
        "ir_set_size": ir_set_size(3, 8, 120),
        "ir_set_len": ir_set_len(3, 2, 1024),
        "ir_start": ir_start(3),
    }
    encodings = {name: encode_instruction(cmd) for name, cmd in examples.items()}
    roundtrip_ok = all(
        decode_instruction(
            encodings[name], cmd.rs1_value, cmd.rs2_value
        ) == cmd
        for name, cmd in examples.items()
    )
    return Table1Result(
        commands=examples,
        encodings=encodings,
        roundtrip_ok=roundtrip_ok,
        commands_for_32_consensuses=commands_per_target(32),
    )


@dataclass
class Table2Result:
    f1: object
    r3: object


def run_table2() -> Table2Result:
    return Table2Result(f1=F1_2XLARGE, r3=R3_2XLARGE)


def main() -> None:
    t1 = run_table1()
    print(banner("Table I: INDEL realignment accelerator instructions"))
    print(format_table(
        ["instruction", "funct", "encoding", "description"],
        [[name, int(cmd.funct), f"0x{t1.encodings[name]:08x}",
          TABLE1_DESCRIPTIONS[name]]
         for name, cmd in t1.commands.items()],
    ))
    print(f"\nencode/decode round-trip: {t1.roundtrip_ok}")
    print(f"commands per 32-consensus target: "
          f"{t1.commands_for_32_consensuses} (5 addr + 1 target + 1 size + "
          f"32 len + 1 start)")

    t2 = run_table2()
    print()
    print(banner("Table II: machine configurations"))
    rows = []
    for instance in (t2.f1, t2.r3):
        rows.append([
            instance.name, instance.processor,
            f"{instance.cores}C/{instance.threads}T",
            f"{instance.clock_ghz} GHz", f"{instance.memory_gib} GiB",
            instance.fpga or "-", f"${instance.price_per_hour}/hr",
        ])
    print(format_table(
        ["instance", "processor", "cores", "clock", "memory", "FPGA",
         "price"],
        rows,
    ))


if __name__ == "__main__":
    main()
