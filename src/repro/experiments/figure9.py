"""Figure 9: speedups over GATK3 (left) and dollars to run (right).

Left: "our FPGA-accelerated INDEL realignment system deployed with 32 IR
accelerators (IRAcc-TaskP), asynchronous-parallel scheme
(IRAcc-TaskP-Async), and additional data parallelism (IR ACC) achieved a
remarkable speedup of 66.7x-115.4x over software running 8 threads"
(gmean 81.3x); by design point, TaskP alone is "0.7x-1.3x better than
GATK3", async adds "an average of 6.2x", data parallelism "another 15x".

Right: "GATK3 and ADAM take $28 and $14.5 to run on R3 instances
respectively" while IR ACC "can complete INDEL realignment for all
chromosomes for just 90 cents" -- 32x / 17x more cost efficient.

Workloads are the scaled per-chromosome censuses; schedules use
replication to reach the steady state of the paper's 48k-320k-target
chromosome runs (see :meth:`repro.core.system.AcceleratedIRSystem.run`).
The simpler design points (TaskP, TaskP-Async, HLS) run on a
representative chromosome subset; the headline IR ACC runs on all 22.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.adam import AdamBaseline
from repro.baselines.gatk3 import Gatk3Baseline
from repro.baselines.hls import hls_system_config
from repro.core.system import AcceleratedIRSystem, SystemConfig
from repro.experiments.reporting import banner, format_table
from repro.perf.cost import CostReport, cost_of_run
from repro.perf.instances import F1_2XLARGE, R3_2XLARGE
from repro.perf.model import GATK3_WHOLE_GENOME_SECONDS
from repro.workloads.chromosomes import CHROMOSOME_CENSUS
from repro.workloads.generator import BENCH_PROFILE, chromosome_workload

#: Paper results asserted against.
PAPER_IRACC_RANGE = (66.7, 115.4)
PAPER_IRACC_GMEAN = 81.3
PAPER_TASKP_RANGE = (0.7, 1.3)
PAPER_ASYNC_GAIN = 6.2
PAPER_DATAP_GAIN = 15.0
PAPER_COST = {"GATK3": 28.0, "ADAM": 14.5, "IR ACC": 0.90}

#: Chromosomes on which the non-headline design points are also run.
DESIGN_SUBSET = ("2", "9", "21")


@dataclass
class ChromosomeResult:
    chromosome: str
    num_sites: int
    gatk3_seconds: float
    adam_seconds: float
    design_seconds: Dict[str, float] = field(default_factory=dict)

    def speedup(self, design: str) -> float:
        return self.gatk3_seconds / self.design_seconds[design]

    @property
    def iracc_speedup(self) -> float:
        return self.speedup("IR ACC")

    @property
    def adam_speedup(self) -> float:
        """IR ACC speedup over ADAM."""
        return self.adam_seconds / self.design_seconds["IR ACC"]


@dataclass
class Figure9Result:
    rows: List[ChromosomeResult]
    costs: Dict[str, CostReport]

    @property
    def iracc_speedups(self) -> List[float]:
        return [row.iracc_speedup for row in self.rows]

    @property
    def gmean_speedup(self) -> float:
        return float(np.exp(np.mean(np.log(self.iracc_speedups))))

    @property
    def speedup_range(self) -> Tuple[float, float]:
        values = self.iracc_speedups
        return (min(values), max(values))

    def design_gmean(self, design: str) -> float:
        values = [
            row.speedup(design) for row in self.rows
            if design in row.design_seconds
        ]
        return float(np.exp(np.mean(np.log(values)))) if values else float("nan")


def _designs_for(chromosome: str, subset: Sequence[str]) -> List[SystemConfig]:
    designs = [SystemConfig.iracc()]
    if chromosome in subset:
        designs.extend([
            SystemConfig.taskp(),
            SystemConfig.taskp_async(),
            hls_system_config(),
        ])
    return designs


def run(
    sites_per_chromosome: int = 96,
    replication: int = 24,
    seed: int = 42,
    chromosomes: Optional[Sequence[str]] = None,
    design_subset: Sequence[str] = DESIGN_SUBSET,
) -> Figure9Result:
    """Run the Figure 9 evaluation at bench scale."""
    gatk3 = Gatk3Baseline()
    adam = AdamBaseline(gatk3_model=gatk3.model)
    wanted = set(chromosomes) if chromosomes is not None else None
    rows: List[ChromosomeResult] = []
    for census in CHROMOSOME_CENSUS:
        if wanted is not None and census.name not in wanted:
            continue
        sites = chromosome_workload(
            census, sites_per_chromosome / census.ir_targets,
            BENCH_PROFILE, seed=seed,
        )
        row = ChromosomeResult(
            chromosome=census.name,
            num_sites=len(sites) * replication,
            gatk3_seconds=gatk3.seconds_for_sites(sites) * replication,
            adam_seconds=adam.seconds_for_sites(sites) * replication,
        )
        for config in _designs_for(census.name, design_subset):
            result = AcceleratedIRSystem(config).run(
                sites, replication=replication
            )
            row.design_seconds[config.name] = result.total_seconds
        rows.append(row)
    result = Figure9Result(rows=rows, costs={})
    result.costs = _full_scale_costs(result)
    return result


def _full_scale_costs(result: Figure9Result) -> Dict[str, CostReport]:
    """Figure 9-right: whole-genome dollars, full-scale extrapolation.

    GATK3's absolute runtime is the calibration anchor (42.1 h); ADAM
    and IR ACC extrapolate from their measured relative speedups.
    """
    gatk3_seconds = GATK3_WHOLE_GENOME_SECONDS
    adam_gain = AdamBaseline().speedup_over_gatk3
    return {
        "GATK3": cost_of_run("GATK3", R3_2XLARGE, gatk3_seconds),
        "ADAM": cost_of_run("ADAM", R3_2XLARGE, gatk3_seconds / adam_gain),
        "IR ACC": cost_of_run(
            "IR ACC", F1_2XLARGE, gatk3_seconds / result.gmean_speedup
        ),
    }


def main(sites_per_chromosome: int = 96, replication: int = 24
         ) -> Figure9Result:
    outcome = run(sites_per_chromosome, replication)
    print(banner("Figure 9 (left): speedup over 8-thread GATK3"))
    table_rows = []
    for row in outcome.rows:
        cells = [row.chromosome, row.num_sites,
                 f"{row.iracc_speedup:.1f}x", f"{row.adam_speedup:.1f}x"]
        for design in ("IRAcc-TaskP", "IRAcc-TaskP-Async", "HLS-SDAccel"):
            cells.append(
                f"{row.speedup(design):.2f}x"
                if design in row.design_seconds else "-"
            )
        table_rows.append(cells)
    print(format_table(
        ["chrom", "targets", "IR ACC", "vs ADAM", "TaskP", "TaskP-Async",
         "HLS"],
        table_rows,
    ))
    lo, hi = outcome.speedup_range
    print(f"\nIR ACC gmean {outcome.gmean_speedup:.1f}x, range "
          f"{lo:.1f}x-{hi:.1f}x  "
          f"(paper: gmean {PAPER_IRACC_GMEAN}x, range "
          f"{PAPER_IRACC_RANGE[0]}x-{PAPER_IRACC_RANGE[1]}x)")
    taskp = outcome.design_gmean("IRAcc-TaskP")
    async_ = outcome.design_gmean("IRAcc-TaskP-Async")
    iracc_subset = float(np.exp(np.mean([
        np.log(row.iracc_speedup) for row in outcome.rows
        if "IRAcc-TaskP" in row.design_seconds
    ])))
    print(f"TaskP {taskp:.2f}x (paper {PAPER_TASKP_RANGE[0]}-"
          f"{PAPER_TASKP_RANGE[1]}x); async gain {async_ / taskp:.1f}x "
          f"(paper ~{PAPER_ASYNC_GAIN}x); data-parallel gain "
          f"{iracc_subset / async_:.1f}x (paper ~{PAPER_DATAP_GAIN:.0f}x)")

    print()
    print(banner("Figure 9 (right): cost to perform INDEL realignment"))
    print(format_table(
        ["system", "instance", "hours", "dollars", "paper dollars"],
        [[name, report.instance.name, f"{report.hours:.2f}",
          f"${report.dollars:.2f}", f"${PAPER_COST[name]:.2f}"]
         for name, report in outcome.costs.items()],
    ))
    gatk3_cost = outcome.costs["GATK3"].dollars
    adam_cost = outcome.costs["ADAM"].dollars
    iracc_cost = outcome.costs["IR ACC"].dollars
    print(f"\ncost efficiency vs GATK3: {gatk3_cost / iracc_cost:.0f}x "
          f"(paper 32x); vs ADAM: {adam_cost / iracc_cost:.0f}x (paper 17x)")

    from repro.perf.energy import accelerated_energy, software_energy

    energy = {
        name: (software_energy(name, report.seconds)
               if name != "IR ACC"
               else accelerated_energy(report.seconds))
        for name, report in outcome.costs.items()
    }
    print("\nEnergy view (documented power envelopes, see repro.perf.energy):")
    print(format_table(
        ["system", "avg watts", "watt-hours"],
        [[name, f"{r.average_watts:.0f}", f"{r.watt_hours:.1f}"]
         for name, r in energy.items()],
    ))
    print(f"energy efficiency vs GATK3: "
          f"{energy['GATK3'].joules / energy['IR ACC'].joules:.0f}x")
    return outcome


if __name__ == "__main__":
    main()
