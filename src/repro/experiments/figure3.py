"""Figure 3: INDEL realignment's share of refinement time, per chromosome.

"Ranging from 53% to 67%, alignment refinement spends an average of 58%
of its execution time in INDEL realignments."

The per-chromosome fractions derive from the census and shape profile
(IR work) against read-count-proportional other-stage work, with the
single non-IR cost constant calibrated to the 58% genome-wide average
(see :mod:`repro.perf.pipelines`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.reporting import banner, format_table
from repro.perf.pipelines import (
    PAPER_IR_FRACTION_AVG,
    PAPER_IR_FRACTION_RANGE,
    RefinementBreakdown,
    average_ir_fraction,
    refinement_breakdown,
)


@dataclass
class Figure3Result:
    rows: List[RefinementBreakdown]

    @property
    def average(self) -> float:
        return average_ir_fraction(self.rows)

    @property
    def minimum(self) -> float:
        return min(row.ir_fraction for row in self.rows)

    @property
    def maximum(self) -> float:
        return max(row.ir_fraction for row in self.rows)


def run() -> Figure3Result:
    return Figure3Result(rows=refinement_breakdown())


def main() -> Figure3Result:
    outcome = run()
    print(banner("Figure 3: IR share of refinement time per chromosome"))
    print(format_table(
        ["chromosome", "IR hours", "other hours", "IR fraction"],
        [[row.chromosome, f"{row.ir_seconds / 3600:.1f}",
          f"{row.other_seconds / 3600:.1f}", f"{row.ir_fraction:.1%}"]
         for row in outcome.rows],
    ))
    lo, hi = PAPER_IR_FRACTION_RANGE
    print(f"\nmeasured: avg {outcome.average:.1%}, "
          f"range {outcome.minimum:.1%}-{outcome.maximum:.1%}")
    print(f"paper:    avg {PAPER_IR_FRACTION_AVG:.0%}, "
          f"range {lo:.0%}-{hi:.0%}")
    return outcome


if __name__ == "__main__":
    main()
