"""Figure 7: synchronous- vs asynchronous-parallel scheduling.

The paper's toy experiment: "8 same-sized INDEL realignment targets that
contain 2 consensuses and 8 reads each (stripped down from real targets
in Ch22)" on 4 units. Under the synchronous scheme "the compute time for
target 3 is about 8 times longer than the compute time of target 1,
resulting in 3 out of 4 units idling for a majority of the total
runtime"; the asynchronous scheme "launch[es] a new target as soon as a
unit becomes free".

The variance between structurally identical targets comes entirely from
computation pruning, as in the paper. The scalar (TaskP-era) datapath is
used -- Figure 7 predates the data-parallel optimization in the paper's
narrative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.accelerator import IRUnit, UnitConfig
from repro.core.scheduler import (
    ScheduledTarget,
    ScheduleResult,
    coalesce_transfers,
    schedule_async,
    schedule_sync,
)
from repro.experiments.reporting import banner, format_table
from repro.telemetry import Telemetry
from repro.telemetry.metrics import ScheduleMetrics, derive_schedule_metrics
from repro.workloads.toy import NUM_TARGETS, figure7_toy_targets

#: Figure 7 runs the toy on 4 units.
NUM_UNITS = 4

#: The paper's observed compute-time ratio between targets 3 and 1.
PAPER_T3_OVER_T1 = 8.0

#: Transfer-coalescing group size for the batched-dispatch variant row
#: (one DMA burst per group of 4 targets; see SystemConfig.dispatch_batch).
DISPATCH_BATCH = 4

#: Host response-poll turnaround per dispatch group, in unit-clock
#: cycles (SystemConfig.response_latency_cycles' default: ~1 us of PCIe
#: round-trip at 125 MHz).
RESPONSE_LATENCY = 125


@dataclass
class Figure7Result:
    compute_cycles: List[int]
    sync: ScheduleResult
    async_: ScheduleResult
    #: Asynchronous scheme over coalesced transfers (dispatch_batch > 1):
    #: the same compute spans fed one DMA burst per group of
    #: DISPATCH_BATCH targets.
    async_batched: ScheduleResult = None
    #: Batched dispatch with the host's response-poll turnaround charged
    #: to every group (single-buffered host: prepare, dispatch, wait).
    async_turnaround: ScheduleResult = None
    #: Same turnaround under double-buffered dispatch: group N+1 is
    #: prepared while N computes, so only the drain still pays it
    #: (SystemConfig.double_buffer's schedule-level signature).
    async_overlapped: ScheduleResult = None
    #: One telemetry session per scheme; every number main() prints is
    #: read back from these recorders, not recomputed ad hoc.
    sync_telemetry: Telemetry = field(default_factory=Telemetry)
    async_telemetry: Telemetry = field(default_factory=Telemetry)

    @property
    def t3_over_t1(self) -> float:
        return self.compute_cycles[3] / self.compute_cycles[1]

    @property
    def async_speedup(self) -> float:
        return self.sync.makespan / self.async_.makespan

    @property
    def batched_speedup(self) -> float:
        """Batched-dispatch async over sync."""
        return self.sync.makespan / self.async_batched.makespan

    @property
    def overlap_speedup(self) -> float:
        """Double-buffered over single-buffered batched dispatch."""
        return self.async_turnaround.makespan / self.async_overlapped.makespan

    @property
    def sync_metrics(self) -> ScheduleMetrics:
        return derive_schedule_metrics(self.sync_telemetry)

    @property
    def async_metrics(self) -> ScheduleMetrics:
        return derive_schedule_metrics(self.async_telemetry)


def run(seed: int = 22) -> Figure7Result:
    sites = figure7_toy_targets(seed)
    unit = IRUnit(UnitConfig(lanes=1))
    cycles = [unit.run_site(site).cycles.total for site in sites]
    targets = [
        ScheduledTarget(index=i, transfer_cycles=120, compute_cycles=c)
        for i, c in enumerate(cycles)
    ]
    def with_turnaround(double_buffer: bool) -> List[ScheduledTarget]:
        # Mirrors AcceleratedIRSystem.run's charging rule: the poll
        # turnaround lands on each group's last target, unless double
        # buffering hides it behind the next group (drain still pays).
        charged_targets = []
        for i, c in enumerate(cycles):
            last_in_round = i == len(cycles) - 1
            last_in_group = i % DISPATCH_BATCH == DISPATCH_BATCH - 1
            charged = (last_in_group or last_in_round) and (
                not double_buffer or last_in_round
            )
            charged_targets.append(ScheduledTarget(
                index=i, transfer_cycles=120,
                compute_cycles=c + (RESPONSE_LATENCY if charged else 0),
            ))
        return coalesce_transfers(charged_targets, DISPATCH_BATCH)

    sync_telemetry, async_telemetry = Telemetry(), Telemetry()
    return Figure7Result(
        compute_cycles=cycles,
        sync=schedule_sync(targets, NUM_UNITS, telemetry=sync_telemetry),
        async_=schedule_async(targets, NUM_UNITS,
                              telemetry=async_telemetry),
        async_batched=schedule_async(
            coalesce_transfers(targets, DISPATCH_BATCH), NUM_UNITS
        ),
        async_turnaround=schedule_async(
            with_turnaround(double_buffer=False), NUM_UNITS
        ),
        async_overlapped=schedule_async(
            with_turnaround(double_buffer=True), NUM_UNITS
        ),
        sync_telemetry=sync_telemetry,
        async_telemetry=async_telemetry,
    )


def _scheme_rows(telemetry: Telemetry, metrics: ScheduleMetrics) -> list:
    rows = []
    for block in telemetry.counters.iter_units():
        rows.append([
            f"unit {block.unit}", block.busy_cycles, block.stall_cycles,
            block.idle_cycles, block.targets_completed,
            f"{block.occupancy:.0%}",
        ])
    rows.append(["(mean)", "", "", "", "",
                 f"{metrics.mean_occupancy:.0%}"])
    return rows


def main() -> Figure7Result:
    outcome = run()
    print(banner("Figure 7: sync vs async scheduling (toy workload)"))
    print(format_table(
        ["target", "compute cycles", "vs target 1"],
        [[i, c, f"{c / outcome.compute_cycles[1]:.1f}x"]
         for i, c in enumerate(outcome.compute_cycles)],
    ))
    print(f"\ntarget3/target1 compute ratio: {outcome.t3_over_t1:.1f}x "
          f"(paper: ~{PAPER_T3_OVER_T1:.0f}x)")
    sync_metrics = outcome.sync_metrics
    async_metrics = outcome.async_metrics
    counter_header = ["unit", "busy", "stall", "idle", "targets",
                      "occupancy"]
    print("\nSynchronous-parallel (flush barrier between batches):")
    print(outcome.sync.ascii_timeline())
    print(format_table(
        counter_header,
        _scheme_rows(outcome.sync_telemetry, sync_metrics),
    ))
    print(f"makespan {outcome.sync.makespan} cycles, channel utilization "
          f"{sync_metrics.channel_utilization:.1%}, critical path "
          f"{sync_metrics.critical_path_spans} spans")
    print("\nAsynchronous-parallel (launch on response):")
    print(outcome.async_.ascii_timeline())
    print(format_table(
        counter_header,
        _scheme_rows(outcome.async_telemetry, async_metrics),
    ))
    print(f"makespan {outcome.async_.makespan} cycles, channel utilization "
          f"{async_metrics.channel_utilization:.1%}, critical path "
          f"{async_metrics.critical_path_spans} spans")
    print(f"\nasync over sync on this workload: {outcome.async_speedup:.2f}x "
          f"(occupancy {sync_metrics.mean_occupancy:.0%} -> "
          f"{async_metrics.mean_occupancy:.0%})")
    print(f"\nAsynchronous + batched dispatch (one DMA burst per "
          f"{DISPATCH_BATCH} targets):")
    print(outcome.async_batched.ascii_timeline())
    print(f"makespan {outcome.async_batched.makespan} cycles, "
          f"{outcome.batched_speedup:.2f}x over sync")
    print(f"\nDispatch turnaround ({RESPONSE_LATENCY} cycles per group of "
          f"{DISPATCH_BATCH}): single- vs double-buffered host")
    print(f"single-buffered makespan {outcome.async_turnaround.makespan} "
          f"cycles (every group pays the poll)")
    print(f"double-buffered makespan {outcome.async_overlapped.makespan} "
          f"cycles (only the drain pays), "
          f"{outcome.overlap_speedup:.3f}x")
    return outcome


if __name__ == "__main__":
    main()
