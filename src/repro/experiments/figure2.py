"""Figure 2: genomic-analysis execution-time breakdown.

The paper measures the three pipelines at ~17 h (primary alignment,
BWA-MEM), ~72 h (alignment refinement, GATK3), and ~36 h (variant
calling, GATK3) -- primary alignment "accounts for less than 15% of the
genomic analysis execution time, while the alignment refinement pipeline
accounts for roughly 60%", with Smith-Waterman at 5% and suffix-array
lookup at 1.5% of the total.

Two complementary reproductions:

- the *model* breakdown from :mod:`repro.perf.pipelines` (census-scale);
- a *measured* breakdown from actually executing the refinement pipeline
  on a simulated sample (bench-scale), to confirm the stage ordering
  holds in running code, with IR dominating refinement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.reporting import banner, format_table
from repro.genomics.simulate import SimulationProfile, simulate_sample
from repro.perf.pipelines import (
    PAPER_PIPELINE_HOURS,
    ir_share_of_total,
    pipeline_fractions,
    stage_hours,
    total_analysis_hours,
)
from repro.refinement.pipeline import PipelineResult, RefinementPipeline

#: Paper statements the reproduction asserts against.
PAPER_PRIMARY_SHARE_MAX = 0.15
PAPER_REFINEMENT_SHARE_APPROX = 0.60
PAPER_IR_TOTAL_SHARE_APPROX = 0.34


@dataclass
class Figure2Result:
    pipeline_shares: Dict[str, float]
    stage_hours: Dict[str, Dict[str, float]]
    ir_total_share: float
    measured: Optional[PipelineResult] = None

    @property
    def measured_ir_fraction(self) -> float:
        if self.measured is None:
            return 0.0
        return self.measured.fraction("indel_realignment")


def run(execute_pipeline: bool = True, seed: int = 2) -> Figure2Result:
    result = Figure2Result(
        pipeline_shares=pipeline_fractions(),
        stage_hours=stage_hours(),
        ir_total_share=ir_share_of_total(),
    )
    if execute_pipeline:
        profile = SimulationProfile(indel_rate=8e-4, coverage=30)
        sample = simulate_sample({"22": 20_000}, profile=profile, seed=seed)
        # Pin the baseline numpy kernel: this figure profiles the
        # *unaccelerated* refinement pipeline, so its stage breakdown
        # must not shift when `auto` dispatch (or a REPRO_KERNEL CI
        # override) routes realignment to a faster kernel tier.
        pipeline = RefinementPipeline(sample.reference, kernel="vector")
        result.measured = pipeline.run(sample.reads)
    return result


def main() -> Figure2Result:
    outcome = run()
    print(banner("Figure 2: execution-time breakdown"))
    rows = []
    for pipeline, share in outcome.pipeline_shares.items():
        rows.append([pipeline, f"{PAPER_PIPELINE_HOURS[pipeline]:.0f}h",
                     f"{share:.1%}"])
    print(format_table(["pipeline", "hours", "share of total"], rows))
    print()
    stage_rows = []
    for pipeline, stages in outcome.stage_hours.items():
        for stage, hours in stages.items():
            stage_rows.append([pipeline, stage, f"{hours:.1f}h",
                               f"{hours / total_analysis_hours():.1%}"])
    print(format_table(["pipeline", "stage", "hours", "share"], stage_rows))
    print(f"\nIR share of total analysis: {outcome.ir_total_share:.1%} "
          f"(paper: ~{PAPER_IR_TOTAL_SHARE_APPROX:.0%})")
    if outcome.measured is not None:
        print("\nExecuted refinement pipeline (bench-scale sample):")
        print(format_table(
            ["stage", "seconds", "fraction"],
            [[s.stage, f"{s.seconds:.3f}",
              f"{outcome.measured.fraction(s.stage):.1%}"]
             for s in outcome.measured.stages],
        ))
        print(f"measured IR fraction of refinement: "
              f"{outcome.measured_ir_fraction:.1%}")
    return outcome


if __name__ == "__main__":
    main()
