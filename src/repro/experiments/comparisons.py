"""Section V-B comparison points: ADAM, HLS, and GPU.

- ADAM: "Our accelerated IR system performs 30.2x-69.1x better than
  ADAM, with an average of 41.4x speedup over Ch1-Ch22."
- HLS: "we were only able to get a modest speedup of 1.3x-3.1x over
  GATK3" with the SDAccel build.
- GPU: no GPU INDEL realigner exists; a p3 instance would need 148.36x
  over GATK3 to match IR ACC cost-performance, far beyond the 1.4-14.6x
  published GPU gains in and around the domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.baselines.adam import PAPER_IRACC_OVER_ADAM_AVG, PAPER_IRACC_OVER_ADAM_RANGE
from repro.baselines.gpu import (
    GPU_SURVEY,
    GPU_TYPICAL_CEILING,
    PAPER_REQUIRED_GPU_SPEEDUP,
    required_speedup,
    survey_max_speedup,
)
from repro.baselines.hls import PAPER_HLS_SPEEDUP_RANGE
from repro.experiments.figure9 import Figure9Result, run as run_figure9
from repro.experiments.reporting import banner, format_table


@dataclass
class ComparisonsResult:
    figure9: Figure9Result
    adam_speedups: List[float]
    hls_speedups: List[float]
    gpu_required: float
    gpu_survey_best: float

    @property
    def adam_gmean(self) -> float:
        return float(np.exp(np.mean(np.log(self.adam_speedups))))

    @property
    def hls_range(self) -> Tuple[float, float]:
        return (min(self.hls_speedups), max(self.hls_speedups))


def run(sites_per_chromosome: int = 96, replication: int = 24,
        chromosomes=("2", "9", "21")) -> ComparisonsResult:
    figure9 = run_figure9(
        sites_per_chromosome=sites_per_chromosome,
        replication=replication,
        chromosomes=chromosomes,
        design_subset=chromosomes,
    )
    adam = [row.adam_speedup for row in figure9.rows]
    hls = [
        row.gatk3_seconds / row.design_seconds["HLS-SDAccel"]
        for row in figure9.rows
        if "HLS-SDAccel" in row.design_seconds
    ]
    return ComparisonsResult(
        figure9=figure9,
        adam_speedups=adam,
        hls_speedups=hls,
        gpu_required=required_speedup(),
        gpu_survey_best=survey_max_speedup(),
    )


def main() -> ComparisonsResult:
    outcome = run()
    print(banner("Section V-B comparisons"))
    print(f"IR ACC over ADAM: gmean {outcome.adam_gmean:.1f}x, range "
          f"{min(outcome.adam_speedups):.1f}-{max(outcome.adam_speedups):.1f}x"
          f"  (paper: avg {PAPER_IRACC_OVER_ADAM_AVG}x, range "
          f"{PAPER_IRACC_OVER_ADAM_RANGE[0]}-{PAPER_IRACC_OVER_ADAM_RANGE[1]}x)")
    lo, hi = outcome.hls_range
    print(f"HLS build over GATK3: {lo:.1f}-{hi:.1f}x "
          f"(paper: {PAPER_HLS_SPEEDUP_RANGE[0]}-{PAPER_HLS_SPEEDUP_RANGE[1]}x)")
    print(f"\nGPU speedup required to match IR ACC cost-performance: "
          f"{outcome.gpu_required:.2f}x "
          f"(paper: {PAPER_REQUIRED_GPU_SPEEDUP}x)")
    print(f"best published GPU gain in survey: {outcome.gpu_survey_best:.1f}x"
          f" (typical ceiling ~{GPU_TYPICAL_CEILING:.0f}x)")
    print()
    print(format_table(
        ["GPU implementation", "domain", "speedup", "ref"],
        [[p.name, p.domain, f"{p.speedup_low}-{p.speedup_high}x", p.reference]
         for p in GPU_SURVEY],
    ))
    return outcome


if __name__ == "__main__":
    main()
