"""ResilienceReport: modelled speedup vs. injected fault rate.

The paper's 81.3x headline assumes 32 IR units that never fail. This
experiment answers the production question the paper leaves open: *how
does the speedup degrade when the hardware does fail?* A seeded
:class:`~repro.resilience.faults.FaultPlan` sweeps the injected fault
rate from zero (the paper's operating point) upward while the recovery
machinery -- watchdog, retry/backoff, quarantine, software fallback --
keeps every run's realignments bit-identical to fault-free output. The
report shows the speedup shrinking gracefully (never collapsing to
zero) as retries burn cycles and the sea degrades from 32 to N-k units,
plus the matching fleet-level story under spot preemption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.baselines.gatk3 import Gatk3Baseline
from repro.core.system import AcceleratedIRSystem, SystemConfig
from repro.experiments.reporting import banner, format_table
from repro.perf.fleet import FleetJob, plan_fleet, simulate_preemptions
from repro.resilience.faults import FaultPlan
from repro.resilience.policy import ResilienceConfig
from repro.workloads.chromosomes import CHROMOSOME_CENSUS
from repro.workloads.generator import BENCH_PROFILE, chromosome_workload

#: Default sweep: the paper's fault-free point, then escalating chaos.
DEFAULT_FAULT_RATES = (0.0, 0.02, 0.05, 0.10, 0.20)

#: Chromosome whose bench workload carries the sweep.
SWEEP_CHROMOSOME = "21"


@dataclass
class ResilienceRow:
    """One fault rate's outcome."""

    fault_rate: float
    total_seconds: float
    speedup: float
    faults_injected: int = 0
    retries: int = 0
    watchdog_expirations: int = 0
    quarantined_units: int = 0
    active_units: int = 32
    software_fallbacks: int = 0
    fallback_fraction: float = 0.0
    fleet_makespan_inflation: float = 1.0


@dataclass
class ResilienceReport:
    """The full sweep plus the baseline it is measured against."""

    rows: List[ResilienceRow] = field(default_factory=list)
    baseline_seconds: float = 0.0
    num_targets: int = 0
    chaos_seed: int = 0

    @property
    def fault_free_speedup(self) -> float:
        return self.rows[0].speedup if self.rows else 0.0

    @property
    def worst_speedup(self) -> float:
        return min((row.speedup for row in self.rows), default=0.0)

    @property
    def degrades_gracefully(self) -> bool:
        """Speedup shrinks under faults but never collapses to zero."""
        return all(row.speedup > 1.0 for row in self.rows)


def run(
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    sites_per_chromosome: int = 48,
    replication: int = 4,
    seed: int = 42,
    chaos_seed: int = 1234,
    fleet_instances: int = 8,
    telemetry_sessions: Optional[list] = None,
) -> ResilienceReport:
    """Sweep the fault rate over one chromosome's bench workload.

    When ``telemetry_sessions`` is a list, each rate's run records into
    a fresh :class:`~repro.telemetry.Telemetry` session (labelled with
    the rate) appended to it -- the caller can export the whole sweep
    as one multi-process Chrome trace.
    """
    census = next(
        c for c in CHROMOSOME_CENSUS if c.name == SWEEP_CHROMOSOME
    )
    sites = chromosome_workload(
        census, sites_per_chromosome / census.ir_targets,
        BENCH_PROFILE, seed=seed,
    )
    baseline = Gatk3Baseline().seconds_for_sites(sites) * replication
    report = ResilienceReport(
        baseline_seconds=baseline,
        num_targets=len(sites) * replication,
        chaos_seed=chaos_seed,
    )
    fleet_jobs = [
        FleetJob(name=f"shard{i}", seconds=600.0 + 60.0 * (i % 5))
        for i in range(2 * fleet_instances)
    ]
    fleet = plan_fleet(fleet_jobs, fleet_instances)
    for rate in fault_rates:
        resilience: Optional[ResilienceConfig] = None
        if rate > 0.0:
            resilience = ResilienceConfig.chaos(chaos_seed, rate)
        config = SystemConfig(
            name="IR ACC", lanes=32, scheduling="async",
            resilience=resilience,
        )
        telemetry = None
        if telemetry_sessions is not None:
            from repro.telemetry import Telemetry

            telemetry = Telemetry(label=f"fault rate {rate:.0%}")
            telemetry_sessions.append(telemetry)
        outcome = AcceleratedIRSystem(config).run(
            sites, replication=replication, telemetry=telemetry
        )
        row = ResilienceRow(
            fault_rate=rate,
            total_seconds=outcome.total_seconds,
            speedup=baseline / outcome.total_seconds,
        )
        if outcome.resilience is not None:
            stats = outcome.resilience
            row.faults_injected = stats.counters.total_injected
            row.retries = stats.counters.retries
            row.watchdog_expirations = stats.counters.watchdog_expirations
            row.quarantined_units = stats.counters.quarantined_units
            row.active_units = stats.active_units
            row.software_fallbacks = stats.counters.fallbacks
            row.fallback_fraction = stats.fallback_fraction
        if rate > 0.0:
            plan = FaultPlan.chaos(chaos_seed, rate)
            preempted = simulate_preemptions(
                fleet, plan.preemption_fraction
            )
            row.fleet_makespan_inflation = preempted.makespan_inflation
        report.rows.append(row)
    return report


def main(
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    sites_per_chromosome: int = 48,
    replication: int = 4,
    chaos_seed: int = 1234,
    trace_out=None,
) -> ResilienceReport:
    sessions: Optional[list] = [] if trace_out is not None else None
    report = run(
        fault_rates=fault_rates,
        sites_per_chromosome=sites_per_chromosome,
        replication=replication,
        chaos_seed=chaos_seed,
        telemetry_sessions=sessions,
    )
    print(banner("ResilienceReport: speedup vs. injected fault rate"))
    print(f"chr{SWEEP_CHROMOSOME} bench workload, {report.num_targets} "
          f"targets, chaos seed {report.chaos_seed}; realignment output "
          f"is bit-identical to the fault-free run at every rate\n")
    print(format_table(
        ["fault rate", "speedup", "faults", "retries", "watchdog",
         "units left", "sw fallbacks", "fleet makespan"],
        [[f"{row.fault_rate:.0%}", f"{row.speedup:.1f}x",
          row.faults_injected, row.retries, row.watchdog_expirations,
          row.active_units, row.software_fallbacks,
          f"{row.fleet_makespan_inflation:.2f}x"]
         for row in report.rows],
    ))
    print(f"\nfault-free {report.fault_free_speedup:.1f}x -> worst "
          f"{report.worst_speedup:.1f}x under "
          f"{max(r.fault_rate for r in report.rows):.0%} chaos "
          f"({'graceful' if report.degrades_gracefully else 'COLLAPSED'})")
    if sessions:
        from repro.telemetry import write_chrome_trace

        write_chrome_trace(sessions, trace_out)
        print(f"trace ({len(sessions)} sessions) -> {trace_out}")
    return report


if __name__ == "__main__":
    main()
