"""Shared table rendering for the experiment harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned plain-text table."""
    string_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in string_rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def banner(title: str) -> str:
    """A section banner for experiment output."""
    rule = "=" * max(len(title), 8)
    return f"{rule}\n{title}\n{rule}"
