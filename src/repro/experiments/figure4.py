"""Figure 4: the paper's worked INDEL-realignment example.

"An INDEL realignment example with 3 consensuses and 2 reads. Consensus
1 was picked as the best consensus, and only Read 0 was updated because
the best consensus's Read 1 did not have a better (i.e. smaller)
min_whd than the REF."

Every intermediate number in the figure is pinned: the per-offset WHDs
of the two worked-out pairs, the full min_whd grid, the consensus
scores (30 and 35), the picked consensus, and the realignment decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.experiments.reporting import banner, format_table
from repro.realign.site import RealignmentSite
from repro.realign.whd import SiteResult, calc_whd, realign_site

#: The figure's inputs.
CONSENSUSES = ("CCTTAGA", "ACCTGAA", "TCTGCCT")
READS = ("TGAA", "CCTC")
QUALS = (
    np.array([10, 20, 45, 10], dtype=np.uint8),
    np.array([10, 60, 30, 20], dtype=np.uint8),
)
TARGET_START = 10_000  # illustrative; the figure uses position 20/45 marks

#: Expected values straight from the figure. The scores are the
#: pseudo-code's |delta-vs-REF| values the figure walks through
#: ("REF vs. cons1 |30 - 0| + |20 - 20| = 30 ...").
EXPECTED_WHD_REF_READ0 = [85, 75, 30, 65]  # k = 0..3
EXPECTED_WHD_REF_READ1 = [20, 80, 120, 120]
EXPECTED_MIN_WHD = [[30, 20], [0, 20], [55, 30]]
EXPECTED_SCORES = [0, 30, 35]
EXPECTED_BEST = 1
EXPECTED_REALIGN = [True, False]


@dataclass
class Figure4Result:
    site: RealignmentSite
    result: SiteResult  # run with the figure's absdiff scoring
    similarity_result: SiteResult  # the prose/GATK3 scoring semantics
    whd_ref_read0: List[int]
    whd_ref_read1: List[int]

    @property
    def matches_paper(self) -> bool:
        return (
            self.whd_ref_read0 == EXPECTED_WHD_REF_READ0
            and self.whd_ref_read1 == EXPECTED_WHD_REF_READ1
            and self.result.min_whd.tolist() == EXPECTED_MIN_WHD
            and self.result.scores.tolist() == EXPECTED_SCORES
            and self.result.best_cons == EXPECTED_BEST
            and self.result.realign.tolist() == EXPECTED_REALIGN
        )

    @property
    def scoring_methods_agree(self) -> bool:
        """Both Algorithm 2 semantics pick the same consensus here
        (the figure's example is too small to separate them)."""
        return self.result.same_outputs(self.similarity_result)


def build_site() -> RealignmentSite:
    return RealignmentSite(
        chrom="22", start=TARGET_START,
        consensuses=CONSENSUSES, reads=READS, quals=QUALS,
    )


def run() -> Figure4Result:
    site = build_site()
    result = realign_site(site, scoring="absdiff")
    similarity = realign_site(site, scoring="similarity")
    ref = CONSENSUSES[0]
    return Figure4Result(
        site=site,
        result=result,
        similarity_result=similarity,
        whd_ref_read0=[calc_whd(ref, READS[0], QUALS[0], k) for k in range(4)],
        whd_ref_read1=[calc_whd(ref, READS[1], QUALS[1], k) for k in range(4)],
    )


def main() -> Figure4Result:
    outcome = run()
    print(banner("Figure 4: worked INDEL realignment example"))
    rows = []
    for k in range(4):
        rows.append([
            k, outcome.whd_ref_read0[k], EXPECTED_WHD_REF_READ0[k],
            outcome.whd_ref_read1[k], EXPECTED_WHD_REF_READ1[k],
        ])
    print(format_table(
        ["k", "whd(REF,r0)", "paper", "whd(REF,r1)", "paper"], rows
    ))
    print()
    print(format_table(
        ["consensus", "score", "paper score"],
        [[i, int(outcome.result.scores[i]), EXPECTED_SCORES[i]]
         for i in range(3)],
    ))
    print(f"\npicked consensus: {outcome.result.best_cons} "
          f"(paper: {EXPECTED_BEST})")
    print(f"realign decisions: {outcome.result.realign.tolist()} "
          f"(paper: {EXPECTED_REALIGN})")
    print(f"all figure values match: {outcome.matches_paper}")
    print(f"prose (similarity) scoring picks the same consensus: "
          f"{outcome.scoring_methods_agree}")
    return outcome


if __name__ == "__main__":
    main()
