"""Microarchitecture claims: pruning, resources, throughput, DMA share.

- Section III-A: "Computation pruning eliminates > 50% of the
  computations from the input data set we used."
- Section III-A footnote: 32 units at "block RAM utilization ...
  87.62% ... CLB logic utilization is 32.53%".
- Abstract: "a sea of 32 IR accelerators ... can process up to 4 billion
  base pair comparisons per second".
- Section IV: "using PCIe DMA to transfer target input data from the
  host to the FPGA accounts for only 0.01% of the total runtime".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.system import AcceleratedIRSystem, SystemConfig
from repro.experiments.reporting import banner, format_table
from repro.hw.resources import (
    UtilizationReport,
    ir_unit_bram36,
    max_units,
    utilization,
)
from repro.workloads.chromosomes import census_for
from repro.workloads.generator import (
    BENCH_PROFILE,
    REAL_PROFILE,
    chromosome_workload,
    synthesize_site,
)

#: Paper values.
PAPER_PRUNING_MIN = 0.50
PAPER_BRAM_UTILIZATION = 0.8762
PAPER_CLB_UTILIZATION = 0.3253
PAPER_PEAK_COMPARISONS_PER_S = 4e9
PAPER_DMA_FRACTION = 1e-4
PAPER_MAX_UNITS = 32


@dataclass
class MicroarchResult:
    pruned_fraction: float  # scalar-datapath pruning rate
    datapath_pruned_fraction: float  # 32-lane datapath (chunk granularity)
    utilization32: UtilizationReport
    fitted_units: int
    peak_comparisons_per_second: float
    delivered_comparisons_per_second: float
    dma_fraction: float


def run(num_sites: int = 64, replication: int = 24, seed: int = 7,
        dma_sites: int = 2) -> MicroarchResult:
    census = census_for("22")
    sites = chromosome_workload(
        census, num_sites / census.ir_targets, BENCH_PROFILE, seed=seed
    )
    system = AcceleratedIRSystem(SystemConfig.iracc())
    result = system.run(sites, replication=replication)
    # The ">50% of computations eliminated" claim (Section III-A) is
    # about pruning the distance calculations themselves -- the scalar
    # datapath semantics, stated before the data-parallel optimization
    # (whose 32-wide chunks can only abort at chunk boundaries and so
    # retire somewhat more comparisons).
    scalar_run = AcceleratedIRSystem(
        SystemConfig(name="scalar", lanes=1)
    ).run(sites)
    # The DMA-share claim is a full-scale property: real targets carry
    # ~100x more compute per transferred byte than bench-scale ones, so
    # it is measured on a few REAL_PROFILE sites.
    rng = np.random.default_rng(seed)
    real_sites = [
        synthesize_site(rng, REAL_PROFILE, complexity=census.complexity,
                        chrom="22")
        for _ in range(dma_sites)
    ]
    real_run = system.run(real_sites, replication=max(replication, 32))
    # The paper's "4 billion bp comparisons/second" figure corresponds
    # to 32 units retiring one comparison per cycle at 125 MHz; the
    # scalar datapath peak. The data-parallel peak is 32x that.
    scalar_peak = AcceleratedIRSystem(
        SystemConfig(name="peak", lanes=1)
    ).peak_comparisons_per_second()
    return MicroarchResult(
        pruned_fraction=scalar_run.pruned_fraction,
        utilization32=utilization(32),
        fitted_units=max_units(),
        peak_comparisons_per_second=scalar_peak,
        delivered_comparisons_per_second=result.comparisons_per_second,
        dma_fraction=real_run.transfer_fraction,
        datapath_pruned_fraction=result.pruned_fraction,
    )


def main() -> MicroarchResult:
    outcome = run()
    print(banner("Microarchitecture claims (Sections III-IV)"))
    rows = [
        ["computation pruning eliminates",
         f"{outcome.pruned_fraction:.1%}", f"> {PAPER_PRUNING_MIN:.0%}"],
        ["  (32-lane datapath, chunk-granular)",
         f"{outcome.datapath_pruned_fraction:.1%}", "-"],
        ["BRAM utilization (32 units)",
         f"{outcome.utilization32.bram_utilization:.2%}",
         f"{PAPER_BRAM_UTILIZATION:.2%}"],
        ["CLB utilization (32 units)",
         f"{outcome.utilization32.clb_utilization:.2%}",
         f"{PAPER_CLB_UTILIZATION:.2%}"],
        ["units that fit the VU9P", outcome.fitted_units, PAPER_MAX_UNITS],
        ["BRAM36 tiles per IR unit", ir_unit_bram36(), "-"],
        ["peak bp comparisons/s (scalar datapath)",
         f"{outcome.peak_comparisons_per_second:.2g}",
         f"{PAPER_PEAK_COMPARISONS_PER_S:.2g}"],
        ["delivered bp comparisons/s (IR ACC)",
         f"{outcome.delivered_comparisons_per_second:.2g}", "-"],
        ["PCIe DMA share of runtime",
         f"{outcome.dma_fraction:.4%}", f"~{PAPER_DMA_FRACTION:.2%}"],
    ]
    print(format_table(["claim", "measured", "paper"], rows))
    return outcome


if __name__ == "__main__":
    main()
