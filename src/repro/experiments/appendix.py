"""The paper's Appendix: Figure 10 and the glossary, made executable.

Figure 10 "shows an INDEL Realignment target ... The short reads are
aligned to the reference pictorially showing how the primary alignment
might have placed the reads in this region. The lightly shaded reads
have either the start read position or the end read position landing
inside the target region, and are considered reads for this site."

This experiment builds a scenario around one deletion, renders the
before/after pileups (the paper Figure 1's "Before / After" inset), and
checks the target-membership rule on the rendered reads. The glossary
terms are encoded as a table mapping each term to the library construct
implementing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.experiments.reporting import banner, format_table
from repro.genomics.cigar import Cigar
from repro.genomics.pileup_view import PileupViewConfig, render_pileup
from repro.genomics.read import Read
from repro.genomics.reference import Contig, ReferenceGenome
from repro.genomics.sequence import random_bases
from repro.realign.realigner import IndelRealigner
from repro.realign.targets import RealignmentTarget

GLOSSARY: List[Tuple[str, str]] = [
    ("genomic read", "repro.genomics.read.Read"),
    ("base / base pair", "repro.genomics.sequence (A C G T N, 1 byte each)"),
    ("genomic position / locus", "0-based (chrom, pos); 1-based in display"),
    ("base calling", "repro.genomics.simulate (quality-driven errors)"),
    ("genomic reference", "repro.genomics.reference.ReferenceGenome"),
    ("quality score", "repro.genomics.quality (Phred+33)"),
    ("IR target / site", "repro.realign.targets.RealignmentTarget"),
    ("consensus", "repro.realign.consensus (reference + observed INDELs)"),
]


@dataclass
class AppendixResult:
    target: RealignmentTarget
    before: str
    after: str
    anchored_reads: int
    spanning_reads: int
    reads_realigned: int


def run(seed: int = 12) -> AppendixResult:
    rng = np.random.default_rng(seed)
    ref_seq = random_bases(400, rng)
    reference = ReferenceGenome([Contig("22", ref_seq)])
    donor = ref_seq[:200] + ref_seq[206:]  # 6-base deletion at 200
    reads = []
    for i, start in enumerate(range(150, 200, 4)):
        seq = donor[start : start + 60]
        k = 200 - start
        if i % 2 == 0:
            cigar = Cigar.parse(f"{k}M6D{60 - k}M")
        else:
            cigar = Cigar.parse("60M")
        reads.append(Read(f"read{i:02d}", "22", start, seq,
                          np.full(60, 30, np.uint8), cigar))
    target = RealignmentTarget("22", 160, 260)
    anchored = sum(1 for r in reads if r.anchored_in(target.start, target.end))
    spanning = sum(1 for r in reads if r.overlaps(target.start, target.end))
    view = PileupViewConfig(max_rows=20)
    before = render_pileup(reads, reference, "22", 150, 280, view)
    updated, report = IndelRealigner(reference).realign(reads)
    after = render_pileup(updated, reference, "22", 150, 280, view)
    return AppendixResult(
        target=target,
        before=before,
        after=after,
        anchored_reads=anchored,
        spanning_reads=spanning,
        reads_realigned=report.reads_realigned,
    )


def main() -> AppendixResult:
    outcome = run()
    print(banner("Appendix: Figure 10 target and glossary"))
    print(f"IR target {outcome.target.describe()}: "
          f"{outcome.anchored_reads}/{outcome.spanning_reads} overlapping "
          f"reads anchored (start or end inside the interval)\n")
    print("Before INDEL realignment (Figure 1 'Before'):")
    print(outcome.before)
    print(f"\nAfter INDEL realignment "
          f"({outcome.reads_realigned} reads updated):")
    print(outcome.after)
    print()
    print(format_table(["glossary term", "implemented by"], GLOSSARY))
    return outcome


if __name__ == "__main__":
    main()
