"""One module per paper table/figure, plus shared reporting helpers.

Every module exposes ``run(...)`` returning a result object and a
``main()`` that prints the paper-versus-measured comparison; the
``benchmarks/`` directory wires each into pytest-benchmark.

====================  =====================================================
module                reproduces
====================  =====================================================
``figure2``           pipeline execution-time breakdown (3 pipelines)
``figure3``           per-chromosome IR share of refinement time
``figure4``           the worked WHD example (3 consensuses, 2 reads)
``figure7``           synchronous vs asynchronous scheduling timelines
``figure9``           per-chromosome speedups + cost bars
``tables``            Table I (the RoCC ISA) and Table II (machines)
``microarch``         pruning rate, BRAM/CLB, peak throughput, DMA share
``comparisons``       ADAM, HLS, and GPU comparison points
``appendix``          Figure 10 (target pileup) and the glossary
``resilience``        speedup vs. injected fault rate (beyond the paper)
====================  =====================================================
"""

from repro.experiments import (
    appendix,
    comparisons,
    figure2,
    figure3,
    figure4,
    figure7,
    figure9,
    microarch,
    resilience,
    tables,
)

__all__ = [
    "appendix",
    "comparisons",
    "figure2",
    "figure3",
    "figure4",
    "figure7",
    "figure9",
    "microarch",
    "resilience",
    "tables",
]
