"""Longitudinal multi-sample cohort workload.

Modelled after hivwholeseq's allele-frequency-trajectory analysis: one
patient (one reference, one shared set of variant loci) sequenced at
several timepoints, with each variant's allele fraction drifting over
time. Realignment runs per sample against the *shared* target loci; the
cohort-level questions the evaluation harness answers are

- do measured INDEL allele frequencies track the simulated trajectories
  better *after* realignment than before (misaligned INDEL reads are
  gap-free, so pre-IR pileups systematically undercount the allele)?
- is realignment deterministic across samples -- same loci, same
  engine, byte-identical per-sample output regardless of which other
  samples ran beside it?

Everything is seeded: the reference, the shared variant plan, each
trajectory, and each per-timepoint read simulation derive from the
cohort seed, so a cohort is reproducible end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.genomics.cigar import CigarOp
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.genomics.simulate import (
    ReadSimulator,
    SimulatedSample,
    SimulationProfile,
    plan_variants,
)
from repro.genomics.variants import Variant, VariantKind


@dataclass(frozen=True)
class CohortProfile:
    """Shape of a longitudinal cohort."""

    timepoints: int = 3
    fraction_floor: float = 0.3   # allele fraction at the first timepoint
    fraction_ceiling: float = 0.95
    drift: str = "rising"  # "rising" | "falling" | "mixed"

    def __post_init__(self) -> None:
        if self.timepoints < 1:
            raise ValueError("a cohort needs at least one timepoint")
        if not 0.0 < self.fraction_floor < self.fraction_ceiling <= 1.0:
            raise ValueError("need 0 < fraction_floor < fraction_ceiling <= 1")
        if self.drift not in ("rising", "falling", "mixed"):
            raise ValueError(f"unknown drift {self.drift!r}")


@dataclass(frozen=True)
class CohortSample:
    """One timepoint's sample."""

    name: str
    timepoint: int
    sample: SimulatedSample


@dataclass(frozen=True)
class Cohort:
    """A longitudinal cohort: shared reference + loci, per-time samples.

    ``trajectories`` maps each shared variant (keyed by
    ``(chrom, pos, ref, alt)``) to its simulated allele fraction at each
    timepoint, in timepoint order.
    """

    reference: ReferenceGenome
    shared_variants: List[Variant]
    samples: List[CohortSample]
    trajectories: Dict[Tuple[str, int, str, str], Tuple[float, ...]] = field(
        default_factory=dict
    )

    def variants_at(self, timepoint: int) -> List[Variant]:
        """The shared variants with that timepoint's allele fractions."""
        out = []
        for variant in self.shared_variants:
            key = (variant.chrom, variant.pos, variant.ref, variant.alt)
            out.append(replace(
                variant, allele_fraction=self.trajectories[key][timepoint]
            ))
        return out


def _trajectory(profile: CohortProfile, rng: np.random.Generator
                ) -> Tuple[float, ...]:
    """One variant's allele-fraction path across the timepoints."""
    low = float(rng.uniform(profile.fraction_floor,
                            (profile.fraction_floor
                             + profile.fraction_ceiling) / 2))
    high = float(rng.uniform(low, profile.fraction_ceiling))
    if profile.drift == "falling" or (
        profile.drift == "mixed" and rng.random() < 0.5
    ):
        low, high = high, low
    if profile.timepoints == 1:
        return (round(low, 4),)
    steps = np.linspace(low, high, profile.timepoints)
    return tuple(round(float(s), 4) for s in steps)


def simulate_cohort(
    contig_lengths,
    cohort_profile: Optional[CohortProfile] = None,
    sim_profile: Optional[SimulationProfile] = None,
    seed: int = 0,
) -> Cohort:
    """Simulate a longitudinal cohort over one shared reference.

    The variant *loci* are planned once and shared by every timepoint
    (the cohort's realignment targets are identical across samples);
    only the allele fractions move along the per-variant trajectories.
    """
    cohort_profile = cohort_profile or CohortProfile()
    sim_profile = sim_profile or SimulationProfile()
    rng = np.random.default_rng(seed)
    reference = ReferenceGenome.random(contig_lengths, rng)
    shared = plan_variants(reference, sim_profile, rng)
    trajectories: Dict[Tuple[str, int, str, str], Tuple[float, ...]] = {}
    for variant in shared:
        key = (variant.chrom, variant.pos, variant.ref, variant.alt)
        trajectories[key] = _trajectory(cohort_profile, rng)
    cohort = Cohort(reference=reference, shared_variants=shared,
                    samples=[], trajectories=trajectories)
    samples: List[CohortSample] = []
    for timepoint in range(cohort_profile.timepoints):
        simulator = ReadSimulator(reference, sim_profile,
                                  seed=seed + 1000 * (timepoint + 1))
        sample = simulator.simulate(cohort.variants_at(timepoint))
        samples.append(CohortSample(
            name=f"t{timepoint}", timepoint=timepoint, sample=sample,
        ))
    return Cohort(reference=reference, shared_variants=shared,
                  samples=samples, trajectories=trajectories)


def indel_support(
    reads: Sequence[Read],
    variant: Variant,
    tolerance: int = 4,
) -> Tuple[int, int]:
    """``(supporting_reads, depth)`` for one truth INDEL.

    A read supports the INDEL when its CIGAR carries an I/D of the same
    kind and absolute length change within ``tolerance`` bases of the
    variant's anchor. Depth counts mapped, non-duplicate reads whose
    alignment spans the anchor position.
    """
    want_op = (CigarOp.INSERTION if variant.kind is VariantKind.INSERTION
               else CigarOp.DELETION)
    change = abs(variant.length_change)
    support = 0
    depth = 0
    for read in reads:
        if not read.is_mapped or read.is_duplicate:
            continue
        if read.chrom != variant.chrom:
            continue
        if not read.overlaps(variant.pos, variant.pos + variant.ref_span):
            continue
        depth += 1
        for ref_offset, op, length in read.cigar.indels():
            if op is not want_op or length != change:
                continue
            # The I/D element sits one base after the VCF anchor.
            anchor = read.pos + ref_offset - 1
            if abs(anchor - variant.pos) <= tolerance:
                support += 1
                break
    return support, depth


def measured_frequency(
    reads: Sequence[Read], variant: Variant, tolerance: int = 4
) -> float:
    """The measured allele frequency of one truth INDEL in a read set."""
    support, depth = indel_support(reads, variant, tolerance)
    return support / depth if depth else 0.0
