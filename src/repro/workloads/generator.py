"""Synthetic IR-site generator.

Generates :class:`~repro.realign.site.RealignmentSite` objects whose
shape distributions follow the paper's stated regime: "A typical locus
can contain 2-32 consensuses and 10-256 reads", consensuses up to
2048 bp, reads up to 256 bp, with heavy-tailed read pileups (the
"Zipf-like distribution" of Section II-C that defeats GPUs and
synchronous scheduling alike).

Reads are sampled *from* one of the site's consensuses with realistic
base-calling errors, so the generated sites behave like real ones under
the kernel: the winning consensus usually exists, minimum-WHD offsets
are sharp, and computation pruning gets the >50% elimination the paper
reports rather than an artifact of uniform noise.

Two profiles:

- ``REAL_PROFILE`` -- full-scale shape means; used analytically (never
  simulated whole) to calibrate the software baseline against the
  paper's 42-hour GATK3 measurement;
- ``BENCH_PROFILE`` -- reduced shape means for laptop-scale benchmark
  runs; per-chromosome *relative* results are shape-preserving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.genomics.quality import clamp_phred
from repro.genomics.sequence import CALLED_BASES
from repro.realign.site import RealignmentSite, SiteLimits, PAPER_LIMITS
from repro.workloads.chromosomes import ChromosomeCensus

_BASE_CODES = np.frombuffer(b"ACGT", dtype=np.uint8)


@dataclass(frozen=True)
class SiteProfile:
    """Shape distributions for synthetic sites."""

    name: str
    mean_consensuses: float
    mean_reads: float
    read_length_range: Tuple[int, int]
    window_slack_mean: float  # E[m - max read length]
    read_tail_sigma: float = 0.7  # lognormal sigma of the read pileup
    max_indel: int = 12
    base_error_rate: float = 0.01
    quality_plateau: float = 37.0
    limits: SiteLimits = PAPER_LIMITS

    def __post_init__(self) -> None:
        lo, hi = self.read_length_range
        if not 1 <= lo <= hi <= self.limits.max_read_length:
            raise ValueError(f"bad read length range {self.read_length_range}")
        if self.mean_consensuses < 2 or self.mean_reads < 1:
            raise ValueError("profile means too small")


#: Full-scale shapes: means chosen inside the paper's stated ranges so
#: the census-level work total is consistent with the paper's measured
#: GATK3 runtime (see repro.perf.model).
REAL_PROFILE = SiteProfile(
    name="real",
    mean_consensuses=8.0,
    mean_reads=72.0,
    read_length_range=(150, 250),
    window_slack_mean=500.0,
)

#: Bench-scale shapes: ~50x less work per site, same structure but a
#: lighter pileup tail (bench runs schedule ~10^2 sites, not ~10^5, so
#: an uncut lognormal tail would turn single sites into stragglers that
#: no real-scale run exhibits).
BENCH_PROFILE = SiteProfile(
    name="bench",
    mean_consensuses=4.0,
    mean_reads=20.0,
    read_length_range=(72, 120),
    window_slack_mean=200.0,
)


def _random_bases(rng: np.random.Generator, length: int) -> np.ndarray:
    return _BASE_CODES[rng.integers(0, 4, size=length)]


def _mutate(bases: np.ndarray, rng: np.random.Generator, rate: float) -> None:
    flips = np.nonzero(rng.random(bases.size) < rate)[0]
    for index in flips:
        candidates = _BASE_CODES[_BASE_CODES != bases[index]]
        bases[index] = candidates[rng.integers(0, candidates.size)]


def synthesize_site(
    rng: np.random.Generator,
    profile: SiteProfile = BENCH_PROFILE,
    complexity: float = 1.0,
    chrom: str = "22",
    start: int = 0,
) -> RealignmentSite:
    """Generate one synthetic realignment site."""
    limits = profile.limits
    num_cons = int(np.clip(
        2 + rng.poisson(max(profile.mean_consensuses * complexity - 2, 0.1)),
        2, limits.max_consensuses,
    ))
    mu = np.log(max(profile.mean_reads * complexity, 1.0))
    mu -= 0.5 * profile.read_tail_sigma**2  # lognormal mean correction
    num_reads = int(np.clip(
        round(rng.lognormal(mu, profile.read_tail_sigma)), 2, limits.max_reads
    ))
    lo, hi = profile.read_length_range
    read_lengths = rng.integers(lo, hi + 1, size=num_reads)
    n_max = int(read_lengths.max())
    slack = int(rng.exponential(profile.window_slack_mean)) + profile.max_indel + 8
    m = int(min(n_max + slack, limits.max_consensus_length))

    reference = _random_bases(rng, m)
    consensuses: List[np.ndarray] = [reference]
    for _ in range(num_cons - 1):
        size = int(rng.integers(1, profile.max_indel + 1))
        pos = int(rng.integers(1, m - size - 1))
        if rng.random() < 0.5 and m + size <= limits.max_consensus_length:
            inserted = _random_bases(rng, size)
            alt = np.concatenate([reference[:pos], inserted, reference[pos:]])
        else:
            alt = np.concatenate([reference[:pos], reference[pos + size:]])
        if alt.size >= n_max:
            consensuses.append(alt)
    num_cons = len(consensuses)

    # Reads pile up around the site's locus, as real pileups do: one
    # site-level anchor fraction places the pileup along the window.
    # This correlation is what gives *per-target* pruning-driven runtime
    # variance (the paper's Figure 7 observation that same-sized targets
    # differ ~8x): a pileup near offset 0 locks the running minimum in
    # immediately, a pileup near the window's end scans almost unpruned.
    anchor_fraction = rng.random()
    reads: List[str] = []
    quals: List[np.ndarray] = []
    for j in range(num_reads):
        n = int(read_lengths[j])
        source = consensuses[int(rng.integers(0, num_cons))]
        span = source.size - n
        anchor = anchor_fraction * span
        offset = int(np.clip(round(rng.normal(anchor, n / 4)), 0, span))
        bases = source[offset : offset + n].copy()
        _mutate(bases, rng, profile.base_error_rate)
        reads.append(bytes(bases).decode("ascii"))
        quals.append(clamp_phred(
            np.round(rng.normal(profile.quality_plateau, 2.5, size=n))
        ))

    return RealignmentSite(
        chrom=chrom,
        start=start,
        consensuses=tuple(bytes(c).decode("ascii") for c in consensuses),
        reads=tuple(reads),
        quals=tuple(quals),
        limits=limits,
    )


def chromosome_workload(
    census: ChromosomeCensus,
    scale: float,
    profile: SiteProfile = BENCH_PROFILE,
    seed: int = 0,
) -> List[RealignmentSite]:
    """Generate a scaled-down workload for one chromosome.

    ``scale`` is the census scale factor (e.g. 1/8000); at least one
    site is always generated. Sites inherit the chromosome's complexity.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    count = max(1, int(round(census.ir_targets * scale)))
    rng = np.random.default_rng((seed, int(census.name)))
    sites = []
    position = 10_000
    for _ in range(count):
        site = synthesize_site(
            rng, profile, complexity=census.complexity,
            chrom=census.name, start=position,
        )
        sites.append(site)
        position += len(site.reference) + 1_000
    return sites


def expected_comparisons_per_site(
    profile: SiteProfile, complexity: float = 1.0
) -> float:
    """First-order expectation of Algorithm 1's unpruned comparisons.

    ``E[C] * E[R] * E[m - n + 1] * E[n]`` using the profile's means.
    Used only for census-level calibration arithmetic (never in place of
    simulation) -- see :mod:`repro.perf.model`.
    """
    mean_c = min(2 + max(profile.mean_consensuses * complexity - 2, 0.1),
                 profile.limits.max_consensuses)
    mean_r = min(profile.mean_reads * complexity, profile.limits.max_reads)
    lo, hi = profile.read_length_range
    mean_n = (lo + hi) / 2
    mean_m = min(hi + profile.window_slack_mean + profile.max_indel + 8,
                 profile.limits.max_consensus_length)
    offsets = max(mean_m - mean_n + 1, 1.0)
    return mean_c * mean_r * offsets * mean_n
