"""Synthetic many-tenant serving load: seeded arrival schedules.

The paper's deployment is a *shared* fleet: many users' cohorts hitting
a pool of F1 instances behind ADAM/Spark. The serving layer
(:mod:`repro.serve`) needs that regime reproduced on a laptop -- many
tenants, overlapping requests, bursts, and (optionally) a spot
-preemption wave knocking out part of the client fleet mid-run -- all
fully deterministic so latency-percentile tests and the serving bench
gate can pin their numbers.

This module owns the *schedule*; what a request contains (which region
job, which SAM lines) is the load generator's business
(:mod:`repro.serve.loadgen`). A schedule is a list of
:class:`ScheduledRequest` -- ``(arrival_s, tenant, job)`` triples --
synthesized per tenant from seeded exponential inter-arrival gaps, then
merged into one global arrival order. Job indices are assigned round
-robin over the job list in construction order, so any schedule with at
least ``num_jobs`` requests covers every job at least once (the load
generator relies on this to reassemble a complete SAM).

The preemption replay (:func:`apply_preemption_replay`) reuses the
fleet machinery from :mod:`repro.perf.fleet` verbatim: tenants are
placed on client instances with :func:`~repro.perf.fleet.plan_fleet`,
:meth:`repro.resilience.faults.FaultPlan.preemption_fraction` decides
which instances die and when, and every request a dead instance had not
yet issued is re-submitted after a restart delay -- the client-side
mirror of the paper's spot-market story.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

import numpy as np

#: Tenant names are synthesized as ``tenant{i}``; kept stable so seeded
#: schedules, per-tenant fairness counters, and goldens agree on names.
TENANT_PREFIX = "tenant"


@dataclass(frozen=True)
class LoadProfile:
    """Shape of a synthetic serving load.

    ``mean_interarrival_s`` is each tenant's mean gap between request
    *issues* (exponential, seeded); tenants are independent, so the
    aggregate offered rate is ``tenants / mean_interarrival_s``.
    ``preempt_rate`` is the per-client-instance spot-reclaim
    probability replayed by :func:`apply_preemption_replay`.
    """

    tenants: int = 4
    requests_per_tenant: int = 8
    mean_interarrival_s: float = 0.01
    deadline_s: float = 30.0
    preempt_rate: float = 0.0
    restart_delay_s: float = 0.05
    schedule: str = "uniform"

    #: Valid ``schedule`` values: ``uniform`` assigns jobs round-robin
    #: (every request distinct until the job list wraps);
    #: ``duplicate_heavy`` is the multi-tenant cohort regime -- most
    #: requests re-submit a small hot set of overlapping cohort
    #: regions, the traffic shape the content-addressed site cache is
    #: built for.
    SCHEDULES = ("uniform", "duplicate_heavy")

    #: duplicate_heavy: probability a request draws from the hot set.
    HOT_FRACTION = 0.85

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants}")
        if self.requests_per_tenant < 1:
            raise ValueError("requests_per_tenant must be >= 1")
        if self.mean_interarrival_s <= 0:
            raise ValueError("mean_interarrival_s must be positive")
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if not 0.0 <= self.preempt_rate <= 1.0:
            raise ValueError(
                f"preempt_rate must be in [0, 1], got {self.preempt_rate}"
            )
        if self.restart_delay_s < 0:
            raise ValueError("restart_delay_s must be >= 0")
        if self.schedule not in self.SCHEDULES:
            raise ValueError(
                f"schedule must be one of {self.SCHEDULES}, "
                f"got {self.schedule!r}"
            )

    @property
    def total_requests(self) -> int:
        return self.tenants * self.requests_per_tenant


@dataclass(frozen=True)
class ScheduledRequest:
    """One planned request: who sends what, when.

    ``retry_of_instance`` is ``-1`` for first-issue requests; replayed
    (post-preemption) re-submissions carry the dead client instance's
    index so reports can attribute the retry wave.
    """

    arrival_s: float
    tenant: str
    job: int
    deadline_s: float
    retry_of_instance: int = -1

    @property
    def is_retry(self) -> bool:
        return self.retry_of_instance >= 0


def synthesize_load_schedule(
    profile: LoadProfile, num_jobs: int, seed: int = 0
) -> List[ScheduledRequest]:
    """Build the deterministic arrival schedule for one load run.

    Per tenant ``t``, arrival times are the running sum of
    ``Exponential(mean_interarrival_s)`` gaps drawn from
    ``default_rng((seed, t))`` -- independent streams, so adding a
    tenant never perturbs another tenant's arrivals. Requests are
    assigned job indices round-robin in tenant-major construction
    order, then the merged list is sorted by ``(arrival, tenant, job)``
    for a total, reproducible order.

    With ``profile.schedule == "duplicate_heavy"``, each request
    instead re-submits a job from a small shared *hot set* (the first
    ``max(1, num_jobs // 8)`` jobs) with probability
    :data:`LoadProfile.HOT_FRACTION`, falling back to round-robin
    otherwise -- seeded from the same per-tenant streams, so the
    duplicate pattern is as reproducible as the arrivals. This is the
    cohort-re-analysis regime: many tenants querying overlapping
    regions, which the content-addressed site cache short-circuits
    (the loadgen's final sweep pass still covers every job, so the
    reassembled SAM stays complete).

    >>> profile = LoadProfile(tenants=2, requests_per_tenant=2,
    ...                       mean_interarrival_s=0.01)
    >>> schedule = synthesize_load_schedule(profile, num_jobs=3, seed=7)
    >>> len(schedule), sorted({r.tenant for r in schedule})
    (4, ['tenant0', 'tenant1'])
    >>> schedule == synthesize_load_schedule(profile, num_jobs=3, seed=7)
    True
    >>> heavy = LoadProfile(tenants=2, requests_per_tenant=8,
    ...                     schedule="duplicate_heavy")
    >>> hot = synthesize_load_schedule(heavy, num_jobs=16, seed=7)
    >>> sum(1 for r in hot if r.job < 2) > len(hot) // 2
    True
    """
    if num_jobs < 1:
        raise ValueError(f"num_jobs must be >= 1, got {num_jobs}")
    hot_jobs = max(1, num_jobs // 8)
    requests: List[ScheduledRequest] = []
    counter = 0
    for tenant_index in range(profile.tenants):
        rng = np.random.default_rng((seed, tenant_index))
        gaps = rng.exponential(profile.mean_interarrival_s,
                               size=profile.requests_per_tenant)
        arrival = 0.0
        for gap in gaps:
            arrival += float(gap)
            job = counter % num_jobs
            if profile.schedule == "duplicate_heavy" \
                    and rng.random() < profile.HOT_FRACTION:
                job = int(rng.integers(0, hot_jobs))
            requests.append(ScheduledRequest(
                arrival_s=arrival,
                tenant=f"{TENANT_PREFIX}{tenant_index}",
                job=job,
                deadline_s=profile.deadline_s,
            ))
            counter += 1
    return sorted(requests, key=lambda r: (r.arrival_s, r.tenant, r.job))


def apply_preemption_replay(
    schedule: List[ScheduledRequest],
    profile: LoadProfile,
    seed: int = 0,
    instances: int = 0,
) -> Tuple[List[ScheduledRequest], int]:
    """Replay a spot-preemption wave over the client fleet.

    Tenants are placed on ``instances`` client instances (default: one
    per two tenants) with the same LPT planner the fleet cost model
    uses, weighting each tenant by its scheduled span. Each instance is
    then reclaimed -- or not -- by
    :meth:`~repro.resilience.faults.FaultPlan.preemption_fraction` at a
    seeded fraction of its span. Requests a reclaimed instance had not
    yet issued are re-submitted ``restart_delay_s`` after the reclaim
    (never earlier than originally planned), tagged with the dead
    instance's index.

    Returns ``(new_schedule, preempted_instances)``. With
    ``profile.preempt_rate == 0`` the schedule is returned unchanged.
    """
    if profile.preempt_rate == 0.0 or not schedule:
        return schedule, 0
    from repro.perf.fleet import FleetJob, plan_fleet
    from repro.resilience.faults import FaultPlan

    if instances <= 0:
        instances = max(1, profile.tenants // 2)
    spans = {}
    for request in schedule:
        spans[request.tenant] = max(
            spans.get(request.tenant, 0.0), request.arrival_s
        )
    plan = plan_fleet(
        [FleetJob(name=tenant, seconds=span or 1e-9)
         for tenant, span in sorted(spans.items())],
        instances,
    )
    tenant_instance = {
        job.name: index
        for index, jobs in plan.assignments.items()
        for job in jobs
    }
    fractions = FaultPlan.chaos(seed, profile.preempt_rate)
    reclaim_at = {}
    for index, jobs in plan.assignments.items():
        if not jobs:
            continue
        fraction = fractions.preemption_fraction(index)
        if fraction is not None:
            span = max(spans[job.name] for job in jobs)
            reclaim_at[index] = fraction * span
    if not reclaim_at:
        return schedule, 0
    replayed: List[ScheduledRequest] = []
    for request in schedule:
        instance = tenant_instance[request.tenant]
        cut = reclaim_at.get(instance)
        if cut is not None and request.arrival_s >= cut:
            replayed.append(replace(
                request,
                arrival_s=max(request.arrival_s,
                              cut + profile.restart_delay_s),
                retry_of_instance=instance,
            ))
        else:
            replayed.append(request)
    replayed.sort(key=lambda r: (r.arrival_s, r.tenant, r.job))
    return replayed, len(reclaim_at)


__all__ = [
    "LoadProfile",
    "ScheduledRequest",
    "TENANT_PREFIX",
    "apply_preemption_replay",
    "synthesize_load_schedule",
]
