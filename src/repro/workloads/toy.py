"""The Figure 7 toy workload.

"We ran a toy experiment to illustrate the effectiveness of the
synchronous-parallel scheme. In this experiment, we used 8 same-sized
INDEL realignment targets that contain 2 consensuses and 8 reads each
(stripped down from real targets in Ch22). ... Notice that the compute
time for target 3 is about 8 times longer than the compute time of
target 1, resulting in 3 out of 4 units idling for a majority of the
total runtime."

The eight targets here are *structurally identical* (2 consensuses,
8 reads, same lengths); the ~8x compute variance between them comes
entirely from computation pruning, exactly as in the paper: a target
whose reads match the consensus near offset 0 establishes a tiny running
minimum immediately and prunes every later offset within a few bases,
while a target whose reads only match near the last offset must grind
through almost the full scan.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.genomics.quality import clamp_phred
from repro.realign.site import RealignmentSite

_BASE_CODES = np.frombuffer(b"ACGT", dtype=np.uint8)

#: Figure 7 geometry: 8 targets x (2 consensuses, 8 reads).
NUM_TARGETS = 8
NUM_CONSENSUSES = 2
NUM_READS = 8
READ_LENGTH = 48
CONSENSUS_LENGTH = 480


def _random_bases(rng: np.random.Generator, length: int) -> np.ndarray:
    return _BASE_CODES[rng.integers(0, 4, size=length)]


def _toy_target(rng: np.random.Generator, match_offset_fraction: float,
                index: int) -> RealignmentSite:
    """One same-sized toy target whose reads match at a chosen offset.

    ``match_offset_fraction`` in [0, 1] places the reads' true home along
    the consensus: near 0.0 the pruning minimum locks in immediately
    (fast target), near 1.0 the scan stays unpruned for most offsets
    (slow target).
    """
    reference = _random_bases(rng, CONSENSUS_LENGTH)
    # One alternate consensus: a small deletion somewhere mid-window.
    del_pos = CONSENSUS_LENGTH // 2
    alternate = np.concatenate([reference[:del_pos], reference[del_pos + 4:]])
    offset = int(match_offset_fraction * (CONSENSUS_LENGTH - READ_LENGTH - 1))
    reads = []
    quals = []
    for j in range(NUM_READS):
        jitter = min(offset + j, CONSENSUS_LENGTH - READ_LENGTH)
        bases = reference[jitter : jitter + READ_LENGTH].copy()
        reads.append(bytes(bases).decode("ascii"))
        quals.append(clamp_phred(np.full(READ_LENGTH, 30)))
    return RealignmentSite(
        chrom="22",
        start=10_000 + index * 2_000,
        consensuses=(
            bytes(reference).decode("ascii"),
            bytes(alternate).decode("ascii"),
        ),
        reads=tuple(reads),
        quals=tuple(quals),
    )


def figure7_toy_targets(seed: int = 22) -> List[RealignmentSite]:
    """The eight Figure 7 targets, fast and slow interleaved.

    Targets 0-2 and 4-7 are fast (reads match early); target 3 is the
    slow one the paper calls out ("the compute time for target 3 is
    about 8 times longer than the compute time of target 1").
    """
    rng = np.random.default_rng(seed)
    fractions = [0.05, 0.02, 0.30, 0.72, 0.10, 0.45, 0.05, 0.20]
    return [
        _toy_target(rng, fraction, index)
        for index, fraction in enumerate(fractions)
    ]
