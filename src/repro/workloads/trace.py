"""Workload traces: serialize site workloads for replay.

Benchmarks regenerate workloads from seeds, but cross-machine and
cross-version comparisons want the *exact* sites on disk. A trace is a
JSON document carrying every site's consensuses, reads, and quality
scores plus provenance metadata; replaying a trace reproduces kernel
results and cycle counts bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO, Union

import numpy as np

from repro.realign.site import RealignmentSite, SiteLimits

PathOrFile = Union[str, Path, TextIO]

#: Format version, bumped on schema changes.
TRACE_VERSION = 1


class TraceError(ValueError):
    """Raised for malformed or incompatible trace documents."""


def _site_to_dict(site: RealignmentSite) -> Dict:
    return {
        "chrom": site.chrom,
        "start": site.start,
        "consensuses": list(site.consensuses),
        "reads": list(site.reads),
        "quals": [qual.tolist() for qual in site.quals],
    }


def _site_from_dict(record: Dict, limits: SiteLimits) -> RealignmentSite:
    try:
        return RealignmentSite(
            chrom=record["chrom"],
            start=int(record["start"]),
            consensuses=tuple(record["consensuses"]),
            reads=tuple(record["reads"]),
            quals=tuple(
                np.array(qual, dtype=np.uint8) for qual in record["quals"]
            ),
            limits=limits,
        )
    except KeyError as exc:
        raise TraceError(f"trace site missing field {exc}") from None


@dataclass(frozen=True)
class WorkloadTrace:
    """A replayable workload with provenance."""

    sites: List[RealignmentSite]
    description: str = ""
    seed: Optional[int] = None

    def total_unpruned_comparisons(self) -> int:
        return sum(site.unpruned_comparisons() for site in self.sites)


def save_trace(trace: WorkloadTrace, sink: PathOrFile) -> None:
    """Write a trace as JSON."""
    document = {
        "version": TRACE_VERSION,
        "description": trace.description,
        "seed": trace.seed,
        "num_sites": len(trace.sites),
        "sites": [_site_to_dict(site) for site in trace.sites],
    }
    if isinstance(sink, (str, Path)):
        with open(sink, "w") as handle:
            json.dump(document, handle)
    else:
        json.dump(document, sink)


def load_trace(source: PathOrFile,
               limits: SiteLimits = SiteLimits()) -> WorkloadTrace:
    """Load and validate a trace document."""
    if isinstance(source, (str, Path)):
        with open(source) as handle:
            document = json.load(handle)
    else:
        document = json.load(source)
    if not isinstance(document, dict):
        raise TraceError("trace root must be a JSON object")
    if document.get("version") != TRACE_VERSION:
        raise TraceError(
            f"unsupported trace version {document.get('version')!r}"
        )
    sites = [_site_from_dict(record, limits)
             for record in document.get("sites", [])]
    if len(sites) != document.get("num_sites"):
        raise TraceError(
            f"trace claims {document.get('num_sites')} sites, "
            f"carries {len(sites)}"
        )
    return WorkloadTrace(
        sites=sites,
        description=document.get("description", ""),
        seed=document.get("seed"),
    )
