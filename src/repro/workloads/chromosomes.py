"""Per-chromosome IR target census (the NA12878 substitute).

The paper gives two absolute counts: "the smallest chromosome (Ch21) has
over 48,000 targets while the largest chromosome (Ch2) has over 320,000
targets" (Section III-A). The census interpolates target counts linearly
in GRCh37 contig length through those two anchors; every other
per-chromosome figure in the reproduction (Figure 3 fractions, Figure 9
speedups) derives from this census plus the site-shape profiles.

``complexity`` (drawn U[0.82, 1.24)) is a deterministic per-chromosome scale on mean target
shape (consensus count / read pileup depth). It stands in for the real
genome's per-chromosome variation in repeat content and INDEL density --
the source of the paper's 53-67% Figure 3 spread and 66.7-115.4x
Figure 9 spread -- which a synthetic census cannot derive from first
principles. Values are drawn once from a seeded generator and frozen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

#: GRCh37 primary-assembly contig lengths, chromosomes 1-22.
GRCH37_LENGTHS: Dict[str, int] = {
    "1": 249_250_621,
    "2": 243_199_373,
    "3": 198_022_430,
    "4": 191_154_276,
    "5": 180_915_260,
    "6": 171_115_067,
    "7": 159_138_663,
    "8": 146_364_022,
    "9": 141_213_431,
    "10": 135_534_747,
    "11": 135_006_516,
    "12": 133_851_895,
    "13": 115_169_878,
    "14": 107_349_540,
    "15": 102_531_392,
    "16": 90_354_753,
    "17": 81_195_210,
    "18": 78_077_248,
    "19": 59_128_983,
    "20": 63_025_520,
    "21": 48_129_895,
    "22": 51_304_566,
}

#: The paper's two census anchors.
ANCHOR_CH21_TARGETS = 48_000
ANCHOR_CH2_TARGETS = 320_000

#: Paper dataset: "763,275,063 total reads" at "60-65x coverage".
NA12878_TOTAL_READS = 763_275_063
NA12878_COVERAGE = 62.5


@dataclass(frozen=True)
class ChromosomeCensus:
    """Workload statistics of one chromosome."""

    name: str
    length_bp: int
    ir_targets: int
    complexity: float  # mean target-shape scale, ~U[0.82, 1.24)

    @property
    def reads(self) -> int:
        """Reads mapped to this chromosome (coverage-proportional)."""
        total_length = sum(GRCH37_LENGTHS.values())
        return int(round(NA12878_TOTAL_READS * self.length_bp / total_length))


def _interpolated_targets(length_bp: int) -> int:
    """Linear-in-length interpolation through the Ch21/Ch2 anchors."""
    len21 = GRCH37_LENGTHS["21"]
    len2 = GRCH37_LENGTHS["2"]
    slope = (ANCHOR_CH2_TARGETS - ANCHOR_CH21_TARGETS) / (len2 - len21)
    intercept = ANCHOR_CH21_TARGETS - slope * len21
    return int(round(slope * length_bp + intercept))


def _complexity(chrom_index: int) -> float:
    """Frozen per-chromosome shape scale (see module docstring)."""
    rng = np.random.default_rng(1_000 + chrom_index)
    return float(0.82 + 0.42 * rng.random())


def _build_census() -> List[ChromosomeCensus]:
    census = []
    for index, (name, length) in enumerate(GRCH37_LENGTHS.items(), start=1):
        census.append(
            ChromosomeCensus(
                name=name,
                length_bp=length,
                ir_targets=_interpolated_targets(length),
                complexity=_complexity(index),
            )
        )
    return census


#: The frozen census for chromosomes 1-22.
CHROMOSOME_CENSUS: List[ChromosomeCensus] = _build_census()

_BY_NAME = {c.name: c for c in CHROMOSOME_CENSUS}


def census_for(name: str) -> ChromosomeCensus:
    """Look up one chromosome's census entry ('1' .. '22')."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"no census for chromosome {name!r}") from None


def total_targets() -> int:
    """Whole-genome (Ch1-22) IR target count."""
    return sum(c.ir_targets for c in CHROMOSOME_CENSUS)
