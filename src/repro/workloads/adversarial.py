"""Adversarial read corruption: hostile inputs for the realigner.

The clean simulator (:mod:`repro.genomics.simulate`) models the inputs
INDEL realignment was designed for. Real sequencing runs also contain
the inputs it was *not* designed for, and a sound prefilter/realigner
must not be destabilised by them. Modelled after hivwholeseq's
decontamination workflow (reads from the wrong sample showing up in a
patient's alignment) and standard Illumina failure modes:

- **contaminant reads** -- reads drawn from a different genome entirely
  (wrong sample) but mapped onto this sample's contigs with plausible
  coordinates and low mapping quality;
- **chimeric reads** -- the 5' half from the read's true locus, the 3'
  half from a different contig (or the contaminant genome when the
  reference has a single contig): a library-prep artefact;
- **low-quality tails** -- the read's 3' tail drops to a near-floor
  Phred score and its bases are partially scrambled;
- **adapter read-through** -- the fragment was shorter than the read
  length, so the 3' end sequences into the adapter.

Corruption is applied *in place* over a clean
:class:`~repro.genomics.simulate.SimulatedSample` with a dedicated
seeded RNG, so the same clean sample plus the same seed always yields
byte-identical hostile reads, and every corrupted read keeps its name
(tests can diff clean vs. corrupted read-by-read). Injected contaminant
reads get ``truth_placements`` equal to their injected placement: the
correct realignment outcome for a contaminant is *not to move it onto a
consensus it does not belong to*.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.genomics.cigar import Cigar
from repro.genomics.quality import clamp_phred
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.genomics.sequence import CALLED_BASES
from repro.genomics.simulate import (
    SimulatedSample,
    SimulationProfile,
    TruthPlacement,
    simulate_sample,
)

#: Illumina TruSeq adapter prefix -- the sequence a read-through 3' end
#: observes.
TRUSEQ_ADAPTER = "AGATCGGAAGAGCACACGTC"


@dataclass(frozen=True)
class AdversarialProfile:
    """Knobs of the corruption schedule (all rates are per-read)."""

    contamination_rate: float = 0.05
    chimera_rate: float = 0.03
    low_quality_tail_rate: float = 0.08
    adapter_rate: float = 0.04
    tail_fraction: float = 0.3  # fraction of the read in the bad tail
    tail_quality: int = 4
    tail_scramble: float = 0.4  # fraction of tail bases scrambled
    adapter: str = TRUSEQ_ADAPTER
    contaminant_genome_length: int = 5_000
    contaminant_mapq: Tuple[int, int] = (10, 25)

    def __post_init__(self) -> None:
        for name in ("contamination_rate", "chimera_rate",
                     "low_quality_tail_rate", "adapter_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if not 0.0 < self.tail_fraction <= 1.0:
            raise ValueError("tail_fraction must be in (0, 1]")
        if not self.adapter:
            raise ValueError("adapter must be non-empty")


@dataclass(frozen=True)
class AdversarialSample:
    """A corrupted sample plus the labels of what was done to it.

    ``labels`` maps read name to the tuple of corruption kinds applied
    (``"contaminant"``, ``"chimera"``, ``"low_quality_tail"``,
    ``"adapter"``); clean reads are absent. ``counts`` aggregates the
    same labels for reporting.
    """

    sample: SimulatedSample
    labels: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def clean_read_names(self) -> List[str]:
        return [read.name for read in self.sample.reads
                if read.name not in self.labels]


def _scramble_tail(read: Read, profile: AdversarialProfile,
                   rng: np.random.Generator) -> Read:
    """Degrade the 3' tail: floor qualities, scramble some bases."""
    length = len(read)
    tail = max(1, int(round(length * profile.tail_fraction)))
    start = length - tail
    quals = read.quals.copy()
    quals[start:] = clamp_phred(
        np.full(tail, profile.tail_quality, dtype=np.int64)
    )
    bases = list(read.seq)
    for index in range(start, length):
        if rng.random() < profile.tail_scramble:
            original = bases[index]
            substitute = original
            while substitute == original:
                substitute = CALLED_BASES[int(rng.integers(0, 4))]
            bases[index] = substitute
    return replace(read, seq="".join(bases), quals=quals)


def _adapter_read_through(read: Read, profile: AdversarialProfile) -> Read:
    """Overwrite the 3' end with the adapter sequence."""
    adapter = profile.adapter[: len(read)]
    seq = read.seq[: len(read) - len(adapter)] + adapter
    return replace(read, seq=seq)


def _chimeric(read: Read, reference: ReferenceGenome,
              contaminant: ReferenceGenome,
              rng: np.random.Generator) -> Read:
    """Replace the 3' half with sequence from somewhere it isn't."""
    length = len(read)
    half = length // 2
    if half == 0:
        return read
    others = [c for c in reference if c.name != read.chrom]
    donor = others[int(rng.integers(0, len(others)))] if others else (
        next(iter(contaminant))
    )
    usable = max(len(donor) - half, 1)
    offset = int(rng.integers(0, usable))
    foreign = donor.sequence[offset : offset + half]
    seq = read.seq[: length - len(foreign)] + foreign
    return replace(read, seq=seq)


def _contaminant_reads(
    sample: SimulatedSample,
    contaminant: ReferenceGenome,
    profile: AdversarialProfile,
    sim_profile_read_length: int,
    rng: np.random.Generator,
) -> List[Read]:
    """Reads from the wrong sample, mapped onto this sample's contigs."""
    reads: List[Read] = []
    donor = next(iter(contaminant))
    serial = 0
    for contig in sample.reference:
        local = [r for r in sample.reads if r.chrom == contig.name]
        count = int(round(len(local) * profile.contamination_rate))
        read_length = min(sim_profile_read_length, len(donor) - 1,
                          len(contig) - 1)
        if read_length <= 0:
            continue
        for _ in range(count):
            src = int(rng.integers(0, len(donor) - read_length))
            pos = int(rng.integers(0, len(contig) - read_length))
            seq = donor.sequence[src : src + read_length]
            quals = clamp_phred(
                np.full(read_length, 30, dtype=np.int64)
                + rng.integers(-4, 5, size=read_length)
            )
            mapq = int(rng.integers(*profile.contaminant_mapq))
            reads.append(Read(
                name=f"contam{serial:06d}",
                chrom=contig.name,
                pos=pos,
                seq=seq,
                quals=quals,
                cigar=Cigar.matched(read_length),
                mapq=mapq,
                is_reverse=bool(rng.random() < 0.5),
            ))
            serial += 1
    return reads


def corrupt_sample(
    sample: SimulatedSample,
    profile: Optional[AdversarialProfile] = None,
    seed: int = 0,
    read_length: Optional[int] = None,
) -> AdversarialSample:
    """Apply the adversarial schedule to a clean sample.

    Deterministic in ``(sample, profile, seed)``. Each pre-existing read
    receives at most one corruption kind (drawn in a fixed priority:
    chimera, then adapter, then low-quality tail) so labels stay
    unambiguous; contaminant reads are appended after the originals.
    """
    profile = profile or AdversarialProfile()
    rng = np.random.default_rng(seed)
    contaminant = ReferenceGenome.random(
        {"contaminant": profile.contaminant_genome_length}, rng
    )
    labels: Dict[str, Tuple[str, ...]] = {}
    counts: Dict[str, int] = {}
    corrupted: List[Read] = []
    for read in sample.reads:
        draw = rng.random()
        if draw < profile.chimera_rate:
            kind = "chimera"
            read = _chimeric(read, sample.reference, contaminant, rng)
        elif draw < profile.chimera_rate + profile.adapter_rate:
            kind = "adapter"
            read = _adapter_read_through(read, profile)
        elif draw < (profile.chimera_rate + profile.adapter_rate
                     + profile.low_quality_tail_rate):
            kind = "low_quality_tail"
            read = _scramble_tail(read, profile, rng)
        else:
            kind = None
        if kind is not None:
            labels[read.name] = (kind,)
            counts[kind] = counts.get(kind, 0) + 1
        corrupted.append(read)
    typical = read_length or (len(sample.reads[0]) if sample.reads else 0)
    injected = _contaminant_reads(sample, contaminant, profile, typical, rng)
    placements = dict(sample.truth_placements)
    for read in injected:
        labels[read.name] = ("contaminant",)
        counts["contaminant"] = counts.get("contaminant", 0) + 1
        placements[read.name] = TruthPlacement(pos=read.pos,
                                               cigar=str(read.cigar))
    corrupted.extend(injected)
    hostile = SimulatedSample(
        reads=corrupted,
        truth_variants=list(sample.truth_variants),
        reference=sample.reference,
        truth_placements=placements,
    )
    return AdversarialSample(sample=hostile, labels=labels, counts=counts)


def adversarial_sample(
    contig_lengths,
    sim_profile: Optional[SimulationProfile] = None,
    adv_profile: Optional[AdversarialProfile] = None,
    seed: int = 0,
) -> AdversarialSample:
    """One-call convenience: clean simulation + adversarial corruption."""
    clean = simulate_sample(contig_lengths, profile=sim_profile, seed=seed)
    profile = sim_profile or SimulationProfile()
    return corrupt_sample(clean, adv_profile, seed=seed + 1,
                          read_length=profile.read_length)
