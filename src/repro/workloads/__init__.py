"""Workloads: the per-chromosome target census and site generators.

The paper evaluates on chromosomes 1-22 of NA12878 at 60-65x coverage.
Without that dataset, the reproduction uses:

- :mod:`repro.workloads.chromosomes` -- a per-chromosome *census* of IR
  targets anchored to the two counts the paper reports (Ch21 > 48,000
  targets; Ch2 > 320,000) and GRCh37 contig lengths;
- :mod:`repro.workloads.generator` -- a synthetic site generator whose
  shape distributions follow the paper's stated ranges ("a typical locus
  can contain 2-32 consensuses and 10-256 reads"), at full-scale and
  bench-scale profiles;
- :mod:`repro.workloads.toy` -- the 8-target toy workload of Figure 7;
- :mod:`repro.workloads.cohort` -- a longitudinal multi-sample cohort
  with shared target loci and drifting allele-frequency trajectories
  (hivwholeseq-style), for cross-sample determinism and
  trajectory-recovery evaluation;
- :mod:`repro.workloads.adversarial` -- seeded hostile-input corruption
  (contaminant reads from the wrong sample, chimeric reads,
  low-quality tails, adapter read-through) that stresses prefilter
  soundness and realignment stability;
- :mod:`repro.workloads.serving` -- seeded many-tenant request
  schedules (Poisson arrivals, round-robin job assignment, fleet
  spot-preemption replay) for driving the serving plane
  (``repro.serve``, docs/SERVING.md).
"""

from repro.workloads.adversarial import (
    AdversarialProfile,
    AdversarialSample,
    TRUSEQ_ADAPTER,
    adversarial_sample,
    corrupt_sample,
)
from repro.workloads.chromosomes import (
    CHROMOSOME_CENSUS,
    ChromosomeCensus,
    census_for,
    total_targets,
)
from repro.workloads.generator import (
    BENCH_PROFILE,
    REAL_PROFILE,
    SiteProfile,
    chromosome_workload,
    expected_comparisons_per_site,
    synthesize_site,
)
from repro.workloads.cohort import (
    Cohort,
    CohortProfile,
    CohortSample,
    indel_support,
    measured_frequency,
    simulate_cohort,
)
from repro.workloads.serving import (
    LoadProfile,
    ScheduledRequest,
    TENANT_PREFIX,
    apply_preemption_replay,
    synthesize_load_schedule,
)
from repro.workloads.toy import figure7_toy_targets

__all__ = [
    "AdversarialProfile",
    "AdversarialSample",
    "BENCH_PROFILE",
    "CHROMOSOME_CENSUS",
    "Cohort",
    "CohortProfile",
    "CohortSample",
    "ChromosomeCensus",
    "LoadProfile",
    "REAL_PROFILE",
    "ScheduledRequest",
    "SiteProfile",
    "TENANT_PREFIX",
    "TRUSEQ_ADAPTER",
    "adversarial_sample",
    "apply_preemption_replay",
    "census_for",
    "chromosome_workload",
    "corrupt_sample",
    "expected_comparisons_per_site",
    "figure7_toy_targets",
    "indel_support",
    "measured_frequency",
    "simulate_cohort",
    "synthesize_load_schedule",
    "synthesize_site",
    "total_targets",
]
