"""The GPU comparison (Section V-B, "Comparison with GPU-based Systems").

"Fair comparisons against GPU-based systems are difficult because there
exist no GPU implementations for INDEL Realignment." The paper instead
(a) computes the speedup a GPU instance would need to *match* IR ACC's
cost-performance, and (b) surveys published GPU speedups in and around
the domain, none of which approach that bar. Both artifacts are encoded
here; the survey entries carry the paper's citations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.perf.cost import required_gpu_speedup
from repro.perf.instances import F1_2XLARGE, P3_2XLARGE


@dataclass(frozen=True)
class GpuSurveyPoint:
    """One published GPU-vs-CPU speedup the paper cites."""

    name: str
    domain: str
    speedup_low: float
    speedup_high: float
    reference: str


#: "GPU-accelerated implementations performing similar calculations in
#: the genomics domain (BarraCUDA and CUSHAW2-GPU) and in other domains
#: (Viterbi decoder and Iris template matching) achieve 1.4-14.6x
#: performance gains over CPU implementations."
GPU_SURVEY: List[GpuSurveyPoint] = [
    GpuSurveyPoint("BarraCUDA", "genomics (short-read alignment)",
                   1.4, 6.0, "[51]"),
    GpuSurveyPoint("CUSHAW2-GPU", "genomics (gapped short-read alignment)",
                   1.6, 3.0, "[52]"),
    GpuSurveyPoint("Tiling Viterbi decoder", "software-defined radio",
                   3.0, 14.6, "[53]"),
    GpuSurveyPoint("Iris template matching", "biometrics", 1.4, 9.6, "[54]"),
]

#: "In general, GPU implementations rarely offer more than 20x speedup
#: compared to optimized CPU implementations" (citing [55]).
GPU_TYPICAL_CEILING = 20.0

#: The IR ACC speedup figure the paper's 148.36x arithmetic implies
#: (80 x $3.06 / $1.65 = 148.36).
PAPER_REQUIRED_GPU_SPEEDUP = 148.36


def required_speedup(iracc_speedup_over_gatk3: float = 80.0) -> float:
    """Speedup over GATK3 a p3 GPU instance needs to match IR ACC."""
    return required_gpu_speedup(
        gpu=P3_2XLARGE, f1=F1_2XLARGE,
        iracc_speedup_over_gatk3=iracc_speedup_over_gatk3,
    )


def survey_max_speedup() -> float:
    """The best published speedup in the survey."""
    return max(point.speedup_high for point in GPU_SURVEY)
