"""Comparison systems the paper evaluates against.

- :mod:`repro.baselines.gatk3` -- the de facto standard software
  baseline (functional: our realigner; timing: the calibrated model).
- :mod:`repro.baselines.adam` -- "the most optimized open-source
  software implementation of the alignment refinement pipeline".
- :mod:`repro.baselines.hls` -- the SDAccel/OpenCL HLS build with its
  16-compute-unit asynchronous-scheduling limit and no data-parallel
  datapath.
- :mod:`repro.baselines.gpu` -- the GPU comparison survey and the
  required-speedup arithmetic (no GPU INDEL realigner exists).
"""

from repro.baselines.gatk3 import Gatk3Baseline
from repro.baselines.adam import AdamBaseline
from repro.baselines.hls import hls_system_config
from repro.baselines.gpu import GPU_SURVEY, GpuSurveyPoint

__all__ = [
    "AdamBaseline",
    "GPU_SURVEY",
    "Gatk3Baseline",
    "GpuSurveyPoint",
    "hls_system_config",
]
