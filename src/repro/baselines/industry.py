"""Industry and related-work comparison points (paper Section VI).

"Edico's DRAGEN is a closed-source industry implementation of several
genome sequencing analysis pipelines on FPGAs including GATK4. They
claim to provide 78-82x performance gain, matching our IR performance,
but over the entirety of the analysis pipelines."

Prior accelerators target the *primary* alignment pipeline; the paper's
point is that their kernels bound the achievable whole-analysis speedup
far below IR's because of Amdahl's law: "Smith-Waterman accounts for
only 5% of the complete genome sequencing pipeline and BWA only 15%."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class RelatedSystem:
    """One related accelerator with its kernel's share of the analysis."""

    name: str
    organization: str
    kernel: str
    kernel_share_of_analysis: Optional[float]  # None = whole pipeline
    reported_speedup: str
    reference: str


RELATED_SYSTEMS: List[RelatedSystem] = [
    RelatedSystem(
        "DRAGEN", "Edico Genome (Illumina)",
        "whole analysis pipelines (incl. GATK4)", None, "78-82x", "[57]",
    ),
    RelatedSystem(
        "Smith-Waterman FPGA accelerators", "academic (several)",
        "seed extension", 0.05, "up to 160x on the kernel", "[58]-[60]",
    ),
    RelatedSystem(
        "BWA-MEM FPGA accelerators", "academic",
        "primary alignment", 0.15, "~3x on the pipeline", "[9], [10]",
    ),
    RelatedSystem(
        "GateKeeper", "academic",
        "pre-alignment filtering", 0.15, "filtering speedups", "[8]",
    ),
    RelatedSystem(
        "Darwin", "academic",
        "long-read assembly alignment", None, "up to 15,000x (kernel)",
        "[7], [63]",
    ),
    RelatedSystem(
        "IR ACC (this work)", "paper under reproduction",
        "INDEL realignment", 0.34, "81x on IR, 32x cost efficiency", "-",
    ),
]


def amdahl_ceiling(kernel_share: float, kernel_speedup: float = float("inf")
                   ) -> float:
    """Whole-analysis speedup bound from accelerating one kernel.

    With a kernel occupying ``kernel_share`` of the runtime sped up by
    ``kernel_speedup``, the whole analysis improves by at most
    ``1 / (1 - share + share / speedup)``.
    """
    if not 0 < kernel_share <= 1:
        raise ValueError("kernel share must be in (0, 1]")
    if kernel_speedup <= 0:
        raise ValueError("kernel speedup must be positive")
    return 1.0 / ((1.0 - kernel_share) + kernel_share / kernel_speedup)


def whole_analysis_advantage() -> dict:
    """Amdahl ceilings of the kernels the paper compares against.

    Accelerating Smith-Waterman (5% of the analysis) cannot beat ~1.05x
    end to end even with an infinite kernel speedup; IR's 34% allows up
    to ~1.52x end to end from this one stage -- the quantitative form of
    the paper's "remarkably better speedup" argument.
    """
    return {
        "smith_waterman": amdahl_ceiling(0.05),
        "primary_alignment": amdahl_ceiling(0.15),
        "indel_realignment": amdahl_ceiling(0.34),
        "indel_realignment_at_81x": amdahl_ceiling(0.34, 81.0),
    }
