"""The GATK3 baseline: functional realignment + calibrated timing.

Functionally this *is* :class:`repro.realign.IndelRealigner` -- the
paper's Algorithms 1 and 2 are GATK3's IndelRealigner algorithm -- and
its runtime over a site list comes from the calibrated throughput model
(:class:`repro.perf.model.Gatk3PerformanceModel`), since GATK3 performs
the full unpruned Algorithm 1 scan on general-purpose cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.perf.model import GATK3_MAX_THREADS, Gatk3PerformanceModel
from repro.realign.realigner import IndelRealigner, RealignerReport
from repro.realign.site import RealignmentSite


@dataclass
class Gatk3Baseline:
    """Multi-threaded GATK3 IndelRealigner, as deployed on r3.2xlarge."""

    model: Optional[Gatk3PerformanceModel] = None
    threads: int = GATK3_MAX_THREADS

    def __post_init__(self) -> None:
        if self.model is None:
            self.model = Gatk3PerformanceModel.calibrated()

    def seconds_for_sites(self, sites: Sequence[RealignmentSite]) -> float:
        """Modelled runtime over explicit sites (the bench-scale path)."""
        work = sum(site.unpruned_comparisons() for site in sites)
        return self.model.seconds_for_comparisons(work, self.threads)

    def realign(
        self, reads: Sequence[Read], reference: ReferenceGenome
    ) -> Tuple[List[Read], RealignerReport, float]:
        """Functionally realign ``reads`` and model the GATK3 runtime.

        Returns ``(updated_reads, report, modelled_seconds)``.
        """
        realigner = IndelRealigner(reference)
        updated, report = realigner.realign(reads)
        seconds = self.model.seconds_for_comparisons(
            report.unpruned_comparisons, self.threads
        )
        return updated, report, seconds
