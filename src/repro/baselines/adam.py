"""The ADAM baseline.

ADAM (paper refs [48], [49]) is "the most optimized open-source software
implementation of the alignment refinement pipeline", run on Apache
Spark. The paper measures IR ACC at 30.2x-69.1x over ADAM (average
41.4x) versus 66.7x-115.4x over GATK3 (gmean 81.3x); the implied
ADAM-over-GATK3 advantage of ~1.96x is also consistent with the cost
bars ($28 vs $14.5). We model ADAM as GATK3's work at that relative
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.perf.model import (
    ADAM_SPEEDUP_OVER_GATK3,
    Gatk3PerformanceModel,
)
from repro.realign.site import RealignmentSite

#: Paper-reported IR ACC speedup range over ADAM across Ch1-22.
PAPER_IRACC_OVER_ADAM_RANGE = (30.2, 69.1)
PAPER_IRACC_OVER_ADAM_AVG = 41.4

#: Software versions the paper pinned.
ADAM_VERSION = "0.22.0"
SPARK_VERSION = "2.1.0"


@dataclass
class AdamBaseline:
    """ADAM IndelRealignment on Spark, modelled relative to GATK3."""

    gatk3_model: Optional[Gatk3PerformanceModel] = None
    speedup_over_gatk3: float = ADAM_SPEEDUP_OVER_GATK3

    def __post_init__(self) -> None:
        if self.gatk3_model is None:
            self.gatk3_model = Gatk3PerformanceModel.calibrated()
        if self.speedup_over_gatk3 <= 0:
            raise ValueError("relative speedup must be positive")

    def seconds_for_comparisons(self, unpruned_comparisons: float) -> float:
        return (
            self.gatk3_model.seconds_for_comparisons(unpruned_comparisons)
            / self.speedup_over_gatk3
        )

    def seconds_for_sites(self, sites: Sequence[RealignmentSite]) -> float:
        work = sum(site.unpruned_comparisons() for site in sites)
        return self.seconds_for_comparisons(work)
