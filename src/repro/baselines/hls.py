"""The HLS (SDAccel/OpenCL) comparison build.

"We implemented a version of the accelerators using the SDAccel
Development flow ... However, we were only able to get a modest speedup
of 1.3x-3.1x over GATK3 because of limitations on the HLS
infrastructure. Xilinx OpenCL has a hard limit of 16 on the number of
compute units that can be scheduled asynchronously, limiting task
parallelism. HLS had difficulties extracting coarse-grained parallelism
from the kernel automatically due to ambiguous memory dependencies and
aliasing present in the algorithm."

We model the HLS build with exactly those two documented limitations
applied to the same simulator: at most 16 asynchronously scheduled
units, and a scalar (1 base/cycle) datapath because the tool could not
extract the 32-wide inner parallelism.
"""

from __future__ import annotations

from repro.core.system import SystemConfig

#: Xilinx OpenCL's hard limit on asynchronously schedulable compute units.
OPENCL_MAX_COMPUTE_UNITS = 16

#: Paper-reported HLS speedup range over GATK3.
PAPER_HLS_SPEEDUP_RANGE = (1.3, 3.1)


def hls_system_config() -> SystemConfig:
    """The HLS build as a system design point."""
    return SystemConfig(
        name="HLS-SDAccel",
        num_units=OPENCL_MAX_COMPUTE_UNITS,
        lanes=1,  # no automatically extracted inner-loop parallelism
        scheduling="async",
    )
