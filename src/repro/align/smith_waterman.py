"""Smith-Waterman local alignment with affine gaps (Gotoh's algorithm).

The compute kernel of BWA-MEM seed extension and the traditional target
of genomics hardware accelerators ("the compute-intensive Smith-Waterman
seed extension dynamic programming algorithm ... [has] been accelerated
via FPGA and ASIC implementations"). Affine gap scoring
(``gap_open + k * gap_extend`` for a k-base gap) matches BWA-MEM and --
unlike linear gaps -- keeps a contiguous INDEL as one run in the
traceback, which the assembly-based consensus generator depends on.

The three Gotoh matrices are filled row by row; the match and
insertion recurrences vectorize over the previous row while the deletion
recurrence is an in-row scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.genomics.cigar import Cigar, CigarOp
from repro.genomics.sequence import seq_to_array


@dataclass(frozen=True)
class ScoringScheme:
    """Affine-gap Smith-Waterman scores (BWA-MEM-like defaults).

    A gap of length k costs ``gap_open + k * gap_extend`` (both terms
    negative).
    """

    match: int = 2
    mismatch: int = -3
    gap_open: int = -5
    gap_extend: int = -1

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ValueError("match score must be positive")
        if self.mismatch >= 0:
            raise ValueError("mismatch penalty must be negative")
        if self.gap_open >= 0 or self.gap_extend >= 0:
            raise ValueError("gap penalties must be negative")

    def gap_cost(self, length: int) -> int:
        """The (negative) score contribution of a length-``length`` gap."""
        if length <= 0:
            raise ValueError("gap length must be positive")
        return self.gap_open + length * self.gap_extend


@dataclass(frozen=True)
class AlignmentResult:
    """A local alignment of ``query`` against ``target``.

    ``target_start`` is where the aligned region begins on the target;
    ``query_start`` likewise on the query. ``cigar`` covers only the
    aligned (local) region -- callers add soft clips for the flanks.
    """

    score: int
    target_start: int
    target_end: int
    query_start: int
    query_end: int
    cigar: Cigar

    @property
    def query_span(self) -> int:
        return self.query_end - self.query_start


_NEG = np.int32(-(1 << 28))

# Predecessor-state codes for the M matrix.
_FROM_START, _FROM_M, _FROM_INS, _FROM_DEL = 0, 1, 2, 3


def _fill(query: np.ndarray, target: np.ndarray, scheme: ScoringScheme):
    """Fill the Gotoh M / Ins / Del matrices with tracebacks.

    ``Ins`` states consume query only (insertions to the reference);
    ``Del`` states consume target only (deletions from the reference).
    """
    rows, cols = query.size + 1, target.size + 1
    m = np.zeros((rows, cols), dtype=np.int32)
    ins = np.full((rows, cols), _NEG, dtype=np.int32)
    dele = np.full((rows, cols), _NEG, dtype=np.int32)
    trace_m = np.zeros((rows, cols), dtype=np.uint8)
    trace_ins = np.zeros((rows, cols), dtype=np.uint8)  # 0 open, 1 extend
    trace_del = np.zeros((rows, cols), dtype=np.uint8)
    open_, extend = scheme.gap_open, scheme.gap_extend
    for i in range(1, rows):
        subst = np.where(target == query[i - 1], scheme.match,
                         scheme.mismatch).astype(np.int32)
        # M: diagonal step from the best of the three previous states.
        prev_m = m[i - 1, :-1]
        prev_ins = ins[i - 1, :-1]
        prev_del = dele[i - 1, :-1]
        best_prev = np.maximum(np.maximum(prev_m, prev_ins), prev_del)
        from_state = np.where(
            prev_m >= np.maximum(prev_ins, prev_del), _FROM_M,
            np.where(prev_ins >= prev_del, _FROM_INS, _FROM_DEL),
        ).astype(np.uint8)
        candidate = best_prev + subst
        fresh = subst  # start a new local alignment at this cell
        m_row = np.maximum(np.maximum(candidate, fresh), 0)
        trace_m[i, 1:] = np.where(
            m_row == 0, _FROM_START,
            np.where(candidate >= fresh, from_state, _FROM_START),
        )
        # A cell scoring 0 is a dead local start; fresh-start cells with
        # positive substitution score also begin at START.
        m[i, 1:] = m_row

        # Ins: vertical step (consumes query) from the previous row.
        open_path = m[i - 1, :] + open_ + extend
        extend_path = ins[i - 1, :] + extend
        ins[i, :] = np.maximum(open_path, extend_path)
        trace_ins[i, :] = (extend_path > open_path).astype(np.uint8)

        # Del: horizontal step (consumes target); in-row scan.
        m_i = m[i]
        del_i = dele[i]
        trace_del_i = trace_del[i]
        running = _NEG
        for j in range(1, cols):
            open_candidate = m_i[j - 1] + open_ + extend
            extend_candidate = running + extend
            if extend_candidate > open_candidate:
                running = extend_candidate
                trace_del_i[j] = 1
            else:
                running = open_candidate
                trace_del_i[j] = 0
            del_i[j] = running
    return m, ins, dele, trace_m, trace_ins, trace_del


def smith_waterman(
    query: str,
    target: str,
    scheme: ScoringScheme = ScoringScheme(),
) -> AlignmentResult:
    """Locally align ``query`` against ``target`` with affine gaps.

    Returns the best-scoring local alignment; ties break toward the
    smallest (query, target) end coordinates (first maximum in
    row-major order), keeping results deterministic.
    """
    if not query or not target:
        raise ValueError("query and target must be non-empty")
    q = seq_to_array(query)
    t = seq_to_array(target)
    m, ins, dele, trace_m, trace_ins, trace_del = _fill(q, t, scheme)
    flat_best = int(np.argmax(m))
    i, j = divmod(flat_best, m.shape[1])
    best_score = int(m[i, j])
    if best_score <= 0:
        return AlignmentResult(0, 0, 0, 0, 0, Cigar.from_elements([]))

    elements: List[Tuple[CigarOp, int]] = []
    end_i, end_j = i, j
    state = "M"
    while i > 0 and j > 0:
        if state == "M":
            came_from = trace_m[i, j]
            elements.append((CigarOp.MATCH, 1))
            i -= 1
            j -= 1
            if came_from == _FROM_START:
                break
            state = {_FROM_M: "M", _FROM_INS: "I", _FROM_DEL: "D"}[came_from]
        elif state == "I":
            extendp = trace_ins[i, j]
            elements.append((CigarOp.INSERTION, 1))
            i -= 1
            state = "I" if extendp else "M"
        else:  # state == "D"
            extendp = trace_del[i, j]
            elements.append((CigarOp.DELETION, 1))
            j -= 1
            state = "D" if extendp else "M"
    elements.reverse()
    return AlignmentResult(
        score=best_score,
        target_start=j,
        target_end=end_j,
        query_start=i,
        query_end=end_i,
        cigar=Cigar.from_elements(elements),
    )


def alignment_to_read_cigar(result: AlignmentResult, query_length: int) -> Cigar:
    """Expand a local-alignment CIGAR to cover the whole query with soft clips."""
    elements: List[Tuple[CigarOp, int]] = []
    if result.query_start > 0:
        elements.append((CigarOp.SOFT_CLIP, result.query_start))
    elements.extend(result.cigar.elements)
    tail = query_length - result.query_end
    if tail > 0:
        elements.append((CigarOp.SOFT_CLIP, tail))
    return Cigar.from_elements(elements)
