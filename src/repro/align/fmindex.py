"""FM-index: BWT-based exact-match seeding (BWA's actual index).

The suffix array in :mod:`repro.align.suffix_array` answers the same
queries, but BWA-MEM's SMEM generation really runs on an FM-index --
backward search over the Burrows-Wheeler transform with O(1) rank
queries -- so the substrate provides one. Both indexes are
property-tested against each other and against naive search.

Components:

- the BWT, built from the suffix array (position i holds the character
  preceding suffix SA[i]);
- ``C[c]``: for each character, the count of smaller characters in the
  text (the start of c's band in the sorted rotation matrix);
- sampled occurrence tables (``Occ``) giving rank(c, i) in O(1) with a
  small scan, the classic space/time knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.align.suffix_array import SuffixArray

#: End-of-text sentinel; lexicographically smaller than every base.
SENTINEL = "$"


@dataclass
class FMIndex:
    """FM-index over a text, supporting backward-search match counting
    and location."""

    text: str
    suffix_array: np.ndarray  # SA of text + sentinel
    bwt: str
    char_starts: Dict[str, int]  # C[c]
    occ_samples: Dict[str, np.ndarray]  # rank(c, i) at sample points
    sample_rate: int

    @classmethod
    def build(cls, text: str, sample_rate: int = 32) -> "FMIndex":
        """Construct from the prefix-doubling suffix array."""
        if not text:
            raise ValueError("cannot index an empty text")
        if SENTINEL in text:
            raise ValueError("text must not contain the sentinel")
        if sample_rate < 1:
            raise ValueError("sample rate must be positive")
        augmented = text + SENTINEL
        # Suffix array of the sentinel-terminated text: the sentinel is
        # ASCII-smaller than A/C/G/T/N, so plain byte order works.
        inner = SuffixArray.build(augmented)
        sa = inner.suffixes.astype(np.int64)
        bwt_chars = [
            augmented[(int(pos) - 1) % len(augmented)] for pos in sa
        ]
        bwt = "".join(bwt_chars)
        # C table from character frequencies.
        counts: Dict[str, int] = {}
        for char in augmented:
            counts[char] = counts.get(char, 0) + 1
        char_starts: Dict[str, int] = {}
        running = 0
        for char in sorted(counts):
            char_starts[char] = running
            running += counts[char]
        # Sampled Occ: occ_samples[c][k] = rank(c, k * sample_rate),
        # including the final sample point at len(bwt) when it lands on
        # a sample boundary.
        alphabet = sorted(counts)
        bwt_array = np.frombuffer(bwt.encode("ascii"), dtype=np.uint8)
        sample_positions = np.arange(0, len(bwt) // sample_rate + 1) * sample_rate
        occ_samples = {}
        for char in alphabet:
            cumulative = np.concatenate((
                [0], np.cumsum(bwt_array == ord(char), dtype=np.int64)
            ))
            occ_samples[char] = cumulative[sample_positions]
        return cls(
            text=text,
            suffix_array=sa,
            bwt=bwt,
            char_starts=char_starts,
            occ_samples=occ_samples,
            sample_rate=sample_rate,
        )

    def __len__(self) -> int:
        return len(self.text)

    def rank(self, char: str, position: int) -> int:
        """Occurrences of ``char`` in ``bwt[:position]`` (O(sample_rate))."""
        if not 0 <= position <= len(self.bwt):
            raise ValueError(f"rank position {position} out of range")
        if char not in self.occ_samples:
            return 0
        sample = position // self.sample_rate
        count = int(self.occ_samples[char][sample])
        for i in range(sample * self.sample_rate, position):
            if self.bwt[i] == char:
                count += 1
        return count

    def backward_search(self, pattern: str) -> Tuple[int, int]:
        """The BWT band ``[lo, hi)`` of rotations prefixed by ``pattern``.

        Empty band (``lo >= hi``) means no occurrence. This is the
        operation BWA repeats per seed base -- the "Suffix Array
        Lookup" stage of Figure 2.
        """
        if not pattern:
            raise ValueError("empty pattern")
        lo, hi = 0, len(self.bwt)
        for char in reversed(pattern):
            if char not in self.char_starts:
                return (0, 0)
            start = self.char_starts[char]
            lo = start + self.rank(char, lo)
            hi = start + self.rank(char, hi)
            if lo >= hi:
                return (0, 0)
        return (lo, hi)

    def count(self, pattern: str) -> int:
        lo, hi = self.backward_search(pattern)
        return max(0, hi - lo)

    def find(self, pattern: str) -> List[int]:
        """All text positions where ``pattern`` occurs, sorted."""
        lo, hi = self.backward_search(pattern)
        return sorted(int(self.suffix_array[i]) for i in range(lo, hi))

    def longest_suffix_match(self, query: str) -> Tuple[int, int]:
        """Length and count of the longest query *suffix* present in the
        text -- the backward-extension primitive under SMEM generation.

        Returns ``(match_length, occurrences)``.
        """
        if not query:
            return (0, 0)
        lo, hi = 0, len(self.bwt)
        matched = 0
        for char in reversed(query):
            if char not in self.char_starts:
                break
            start = self.char_starts[char]
            new_lo = start + self.rank(char, lo)
            new_hi = start + self.rank(char, hi)
            if new_lo >= new_hi:
                break
            lo, hi = new_lo, new_hi
            matched += 1
        if matched == 0:
            return (0, 0)
        return (matched, hi - lo)
