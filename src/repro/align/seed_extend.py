"""Seed-and-extend read aligner (BWA-MEM-style).

Structure mirrors the BWA-MEM stages in the paper's Figure 2 breakdown:

1. **Seed generation** -- sample fixed-length k-mers from the read
   (SMEM-generation stand-in).
2. **Suffix-array lookup** -- locate exact seed hits on each contig.
3. **Seed extension (Smith-Waterman)** -- extend the best-supported
   candidate window with local alignment and emit a CIGAR.

Per-stage work counters feed the Figure 2 execution-breakdown experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.align.smith_waterman import (
    AlignmentResult,
    ScoringScheme,
    alignment_to_read_cigar,
    smith_waterman,
)
from repro.align.suffix_array import SuffixArray
from repro.genomics.fastq import FastqRecord
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome


@dataclass
class AlignerStats:
    """Work counters, one per BWA-MEM stage named in Figure 2."""

    reads_total: int = 0
    reads_aligned: int = 0
    seeds_generated: int = 0
    suffix_array_lookups: int = 0
    seed_hits: int = 0
    extensions: int = 0
    dp_cells: int = 0

    def merge(self, other: "AlignerStats") -> None:
        self.reads_total += other.reads_total
        self.reads_aligned += other.reads_aligned
        self.seeds_generated += other.seeds_generated
        self.suffix_array_lookups += other.suffix_array_lookups
        self.seed_hits += other.seed_hits
        self.extensions += other.extensions
        self.dp_cells += other.dp_cells


@dataclass(frozen=True)
class AlignerConfig:
    seed_length: int = 19  # BWA-MEM default minimum seed length
    seed_stride: int = 10
    max_hits_per_seed: int = 64
    window_padding: int = 32
    min_score_fraction: float = 0.4  # of the perfect-match score
    scoring: ScoringScheme = field(default_factory=ScoringScheme)

    def __post_init__(self) -> None:
        if self.seed_length <= 0 or self.seed_stride <= 0:
            raise ValueError("seed length and stride must be positive")
        if not 0 < self.min_score_fraction <= 1:
            raise ValueError("min_score_fraction must be in (0, 1]")


class SeedAndExtendAligner:
    """Aligns FASTQ records against a reference genome."""

    def __init__(self, reference: ReferenceGenome,
                 config: Optional[AlignerConfig] = None):
        self.reference = reference
        self.config = config or AlignerConfig()
        self.stats = AlignerStats()
        self._indexes: Dict[str, SuffixArray] = {
            contig.name: SuffixArray.build(contig.sequence)
            for contig in reference
        }

    def _seeds(self, seq: str) -> List[Tuple[int, str]]:
        """Sample (read_offset, kmer) seeds along the read."""
        k = self.config.seed_length
        if len(seq) < k:
            return [(0, seq)]
        offsets = list(range(0, len(seq) - k + 1, self.config.seed_stride))
        if offsets[-1] != len(seq) - k:
            offsets.append(len(seq) - k)
        return [(off, seq[off : off + k]) for off in offsets]

    def _candidate_windows(self, seq: str) -> List[Tuple[str, int, int]]:
        """Vote seed hits into diagonal bins; return supported windows."""
        votes: Dict[Tuple[str, int], int] = {}
        for read_offset, kmer in self._seeds(seq):
            self.stats.seeds_generated += 1
            if "N" in kmer:
                continue
            for chrom, index in self._indexes.items():
                self.stats.suffix_array_lookups += 1
                hits = index.find(kmer)
                if len(hits) > self.config.max_hits_per_seed:
                    continue  # repetitive seed, uninformative
                for hit in hits:
                    self.stats.seed_hits += 1
                    diagonal = hit - read_offset
                    votes[(chrom, diagonal)] = votes.get((chrom, diagonal), 0) + 1
        if not votes:
            return []
        ranked = sorted(votes.items(), key=lambda item: (-item[1], item[0]))
        windows: List[Tuple[str, int, int]] = []
        pad = self.config.window_padding
        for (chrom, diagonal), _count in ranked[:3]:
            contig_len = self.reference.length(chrom)
            start = max(0, diagonal - pad)
            end = min(contig_len, diagonal + len(seq) + pad)
            if end > start:
                windows.append((chrom, start, end))
        return windows

    def align_record(self, record: FastqRecord) -> Read:
        """Align one read; returns an unmapped Read when no window scores."""
        self.stats.reads_total += 1
        best: Optional[Tuple[int, str, int, AlignmentResult]] = None
        for chrom, start, end in self._candidate_windows(record.seq):
            window = self.reference.fetch(chrom, start, end)
            self.stats.extensions += 1
            self.stats.dp_cells += len(window) * len(record.seq)
            result = smith_waterman(record.seq, window, self.config.scoring)
            if best is None or result.score > best[0]:
                best = (result.score, chrom, start, result)
        min_score = int(
            self.config.min_score_fraction
            * self.config.scoring.match
            * len(record.seq)
        )
        if best is None or best[0] < min_score:
            return Read(
                name=record.name, chrom=None, pos=0, seq=record.seq,
                quals=record.quals, cigar=None, mapq=0,
            )
        score, chrom, window_start, result = best
        self.stats.reads_aligned += 1
        cigar = alignment_to_read_cigar(result, len(record.seq))
        perfect = self.config.scoring.match * len(record.seq)
        mapq = int(np.clip(round(60 * score / perfect), 0, 60))
        return Read(
            name=record.name,
            chrom=chrom,
            pos=window_start + result.target_start,
            seq=record.seq,
            quals=record.quals,
            cigar=cigar,
            mapq=mapq,
        )

    def align(self, records) -> List[Read]:
        """Align a batch of FASTQ records."""
        return [self.align_record(record) for record in records]
