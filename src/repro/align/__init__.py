"""Primary-alignment substrate.

The paper's pipeline 1 ("primary alignment or read mapping") uses BWA-MEM:
SMEM generation, suffix-array lookup, and Smith-Waterman seed extension
(Figure 2 names exactly these stages). This subpackage implements the same
seed-and-extend structure so the reproduction owns its whole pipeline:

- :mod:`repro.align.smith_waterman` -- the O(mn) local-alignment DP that
  prior accelerators target (the paper's motivation contrasts it with IR).
- :mod:`repro.align.suffix_array` -- exact-match seed lookup.
- :mod:`repro.align.seed_extend` -- a BWA-MEM-style aligner built from the
  two kernels above.
- :mod:`repro.align.pileup` -- per-locus read pileups, used by the variant
  caller and by IR target identification.
"""

from repro.align.smith_waterman import AlignmentResult, smith_waterman
from repro.align.suffix_array import SuffixArray
from repro.align.seed_extend import SeedAndExtendAligner

__all__ = [
    "AlignmentResult",
    "SeedAndExtendAligner",
    "SuffixArray",
    "smith_waterman",
]
