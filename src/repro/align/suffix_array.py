"""Suffix-array seed index.

BWA-MEM's SMEM generation resolves exact-match seeds through an FM-index;
we implement the equivalent lookup with a plain suffix array (the paper's
Figure 2 stage is literally named "Suffix Array Lookup"). Construction is
the prefix-doubling algorithm (O(n log n) with numpy radix-free sorting);
lookup is binary search over suffixes, O(p log n) per pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.genomics.sequence import seq_to_array


@dataclass
class SuffixArray:
    """Suffix array over a text, supporting exact-pattern interval lookup."""

    text: str
    suffixes: np.ndarray  # int32 positions, lexicographic suffix order

    @classmethod
    def build(cls, text: str) -> "SuffixArray":
        """Construct via prefix doubling."""
        if not text:
            raise ValueError("cannot index an empty text")
        data = seq_to_array(text).astype(np.int64)
        n = data.size
        # Dense initial ranks (0..n-1 range) from the raw byte values.
        order = np.argsort(data, kind="stable")
        sorted_data = data[order]
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.cumsum(
            np.concatenate(([0], (sorted_data[1:] != sorted_data[:-1])
                            .astype(np.int64)))
        )
        k = 1
        while k < n:
            # Composite key: (rank[i], rank[i + k]) with -1 past the end.
            second = np.full(n, -1, dtype=np.int64)
            second[: n - k] = rank[k:]
            keys = rank * (n + 1) + (second + 1)
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            new_rank = np.empty(n, dtype=np.int64)
            new_rank[order] = np.cumsum(
                np.concatenate(([0], (sorted_keys[1:] != sorted_keys[:-1]).astype(np.int64)))
            )
            rank = new_rank
            if int(rank.max()) == n - 1:
                break
            k *= 2
        final_order = np.empty(n, dtype=np.int64)
        final_order[rank] = np.arange(n)
        return cls(text=text, suffixes=final_order.astype(np.int32))

    def __len__(self) -> int:
        return len(self.text)

    def _compare(self, suffix_index: int, pattern: str) -> int:
        """Three-way compare of suffix ``suffix_index`` vs ``pattern`` prefix."""
        start = int(self.suffixes[suffix_index])
        chunk = self.text[start : start + len(pattern)]
        if chunk < pattern:
            return -1
        if chunk.startswith(pattern):
            return 0
        return 1

    def find(self, pattern: str) -> List[int]:
        """Return all (unsorted-text) positions where ``pattern`` occurs."""
        if not pattern:
            raise ValueError("empty pattern")
        n = len(self.suffixes)
        # Lower bound: first suffix >= pattern.
        lo, hi = 0, n
        while lo < hi:
            mid = (lo + hi) // 2
            if self._compare(mid, pattern) < 0:
                lo = mid + 1
            else:
                hi = mid
        first = lo
        # Upper bound: first suffix with prefix > pattern.
        lo, hi = first, n
        while lo < hi:
            mid = (lo + hi) // 2
            if self._compare(mid, pattern) <= 0:
                lo = mid + 1
            else:
                hi = mid
        positions = self.suffixes[first:lo]
        return sorted(int(p) for p in positions)

    def count(self, pattern: str) -> int:
        """Return the number of occurrences of ``pattern``."""
        return len(self.find(pattern))
