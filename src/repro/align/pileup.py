"""Per-locus pileups over aligned reads.

A pileup column collects, for one reference position, every read base
aligned across it (with its quality), plus the INDELs anchored there.
Consumers: the variant caller (:mod:`repro.variants.caller`) and INDEL
target identification (:mod:`repro.realign.targets`).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.genomics.cigar import CigarOp
from repro.genomics.read import Read


@dataclass
class PileupColumn:
    """All evidence aligned over one reference position."""

    chrom: str
    pos: int
    bases: List[str] = field(default_factory=list)
    quals: List[int] = field(default_factory=list)
    insertions: List[str] = field(default_factory=list)  # inserted bases after pos
    deletions: List[int] = field(default_factory=list)  # deletion lengths after pos

    @property
    def depth(self) -> int:
        return len(self.bases)

    def base_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for base in self.bases:
            counts[base] = counts.get(base, 0) + 1
        return counts

    def base_quality_sums(self) -> Dict[str, int]:
        """Sum of Phred scores supporting each observed base."""
        sums: Dict[str, int] = {}
        for base, qual in zip(self.bases, self.quals):
            sums[base] = sums.get(base, 0) + qual
        return sums


def pileup(reads: Iterable[Read], skip_duplicates: bool = True
           ) -> Dict[Tuple[str, int], PileupColumn]:
    """Build pileup columns for every position any read covers.

    Soft-clipped bases are excluded (they are unaligned by definition);
    insertions attach to the column of the preceding aligned base, and a
    deletion of length L records L at the column before the deleted run,
    matching samtools pileup conventions closely enough for the caller.
    """
    columns: Dict[Tuple[str, int], PileupColumn] = {}

    def column(chrom: str, pos: int) -> PileupColumn:
        key = (chrom, pos)
        existing = columns.get(key)
        if existing is None:
            existing = PileupColumn(chrom=chrom, pos=pos)
            columns[key] = existing
        return existing

    for read in reads:
        if not read.is_mapped:
            continue
        if skip_duplicates and read.is_duplicate:
            continue
        read_offset = 0
        ref_pos = read.pos
        for op, length in read.cigar:
            if op is CigarOp.MATCH:
                for i in range(length):
                    col = column(read.chrom, ref_pos + i)
                    col.bases.append(read.seq[read_offset + i])
                    col.quals.append(int(read.quals[read_offset + i]))
                read_offset += length
                ref_pos += length
            elif op is CigarOp.INSERTION:
                if ref_pos > read.pos:
                    col = column(read.chrom, ref_pos - 1)
                    col.insertions.append(
                        read.seq[read_offset : read_offset + length]
                    )
                read_offset += length
            elif op is CigarOp.DELETION:
                if ref_pos > read.pos:
                    column(read.chrom, ref_pos - 1).deletions.append(length)
                ref_pos += length
            elif op is CigarOp.SOFT_CLIP:
                read_offset += length
    return columns


def merge_columns(
    into: Dict[Tuple[str, int], PileupColumn],
    new: Dict[Tuple[str, int], PileupColumn],
) -> Dict[Tuple[str, int], PileupColumn]:
    """Fold one pileup into another in place (and return it).

    Used by the streaming refinement pipeline to accumulate the global
    pileup region-by-region. When both pileups hold a column for the
    same position, the incoming column's evidence is appended -- though
    region cuts are chosen so that never happens (no read spans a cut).
    """
    for key, column in new.items():
        existing = into.get(key)
        if existing is None:
            into[key] = column
        else:
            existing.bases.extend(column.bases)
            existing.quals.extend(column.quals)
            existing.insertions.extend(column.insertions)
            existing.deletions.extend(column.deletions)
    return into


def max_depth(columns: Dict[Tuple[str, int], PileupColumn]) -> int:
    """Deepest column in a pileup (0 when empty)."""
    return max((col.depth for col in columns.values()), default=0)
