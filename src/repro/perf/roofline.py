"""Roofline analysis of the IR accelerator.

Quantifies the paper's Section II-C claim that INDEL realignment is
"completely compute-bound" once the local buffers hold the working set:
per byte streamed into an IR unit, the kernel performs hundreds of
comparisons, so the 32-byte/cycle BRAM ports (not the DDR channel or
PCIe) bound throughput. The roofline places each design point by its
arithmetic intensity (comparisons per DRAM byte) against the compute and
memory roofs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.hw.clock import F1_CLOCK_125MHZ, ClockRecipe
from repro.realign.site import RealignmentSite


@dataclass(frozen=True)
class RooflinePoint:
    """One workload's position on the roofline."""

    name: str
    arithmetic_intensity: float  # comparisons per DRAM byte
    achievable_rate: float  # comparisons/second under both roofs
    compute_roof: float
    memory_bound_rate: float

    @property
    def compute_bound(self) -> bool:
        """True when the compute roof, not memory, limits the workload."""
        return self.memory_bound_rate >= self.compute_roof


@dataclass(frozen=True)
class RooflineModel:
    """The accelerator's two roofs."""

    num_units: int = 32
    lanes: int = 32
    clock: ClockRecipe = F1_CLOCK_125MHZ
    dram_bandwidth_bytes_per_s: float = 16e9  # one DDR4 channel

    @property
    def compute_roof(self) -> float:
        """Peak comparisons/second of the sea of units."""
        return self.num_units * self.lanes * self.clock.frequency_hz

    def memory_bound_rate(self, arithmetic_intensity: float) -> float:
        """Comparisons/second the DRAM channel alone could sustain."""
        if arithmetic_intensity <= 0:
            raise ValueError("arithmetic intensity must be positive")
        return arithmetic_intensity * self.dram_bandwidth_bytes_per_s

    def place(self, name: str, comparisons: float, dram_bytes: float
              ) -> RooflinePoint:
        if dram_bytes <= 0 or comparisons <= 0:
            raise ValueError("comparisons and bytes must be positive")
        intensity = comparisons / dram_bytes
        memory_rate = self.memory_bound_rate(intensity)
        return RooflinePoint(
            name=name,
            arithmetic_intensity=intensity,
            achievable_rate=min(self.compute_roof, memory_rate),
            compute_roof=self.compute_roof,
            memory_bound_rate=memory_rate,
        )

    def place_site(self, site: RealignmentSite,
                   name: str = "") -> RooflinePoint:
        """Place one IR target: unpruned comparisons against the bytes
        its five channels move (inputs + outputs)."""
        return self.place(
            name or f"site@{site.chrom}:{site.start}",
            comparisons=float(site.unpruned_comparisons()),
            dram_bytes=float(site.input_bytes() + site.output_bytes()),
        )

    def ridge_intensity(self) -> float:
        """Intensity where the two roofs meet; workloads above it are
        compute-bound."""
        return self.compute_roof / self.dram_bandwidth_bytes_per_s


def summarize(points: Sequence[RooflinePoint]) -> dict:
    """Aggregate roofline verdicts for a workload."""
    compute_bound = sum(1 for p in points if p.compute_bound)
    return {
        "points": len(points),
        "compute_bound": compute_bound,
        "compute_bound_fraction": compute_bound / len(points) if points else 0.0,
        "min_intensity": min((p.arithmetic_intensity for p in points),
                             default=0.0),
    }
