"""Energy model for the accelerated and software systems.

The paper motivates domain-specific architectures by "the exceptional
performance and energy efficiency such architectures can offer" and
prices cloud time as its cost proxy; this module adds the energy view:
joules and watt-hours per whole-genome INDEL realignment on each
platform, from documented board/server power envelopes.

Power assumptions (documented, conservative):

- F1 FPGA card: the VU9P accelerator card is provisioned at ~85 W TDP;
  the deployed IR design is BRAM/logic-bound at 125 MHz, modelled at 60%
  of TDP while computing.
- Host shares: the 4-core Xeon host of either instance draws ~120 W
  under the 8-thread GATK3 load, ~40 W while merely feeding the FPGA.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Power envelopes in watts.
FPGA_CARD_TDP_W = 85.0
FPGA_ACTIVE_FRACTION = 0.60
HOST_CPU_LOADED_W = 120.0
HOST_CPU_FEEDING_W = 40.0


@dataclass(frozen=True)
class EnergyReport:
    """Energy to run one workload on one platform."""

    system: str
    seconds: float
    average_watts: float

    def __post_init__(self) -> None:
        if self.seconds < 0 or self.average_watts <= 0:
            raise ValueError("duration must be >= 0 and power positive")

    @property
    def joules(self) -> float:
        return self.seconds * self.average_watts

    @property
    def watt_hours(self) -> float:
        return self.joules / 3600.0


def software_energy(system: str, seconds: float) -> EnergyReport:
    """A CPU-only run: the loaded host is the whole budget."""
    return EnergyReport(system=system, seconds=seconds,
                        average_watts=HOST_CPU_LOADED_W)


def accelerated_energy(seconds: float) -> EnergyReport:
    """The F1 run: active FPGA card plus a lightly loaded feeding host."""
    watts = FPGA_CARD_TDP_W * FPGA_ACTIVE_FRACTION + HOST_CPU_FEEDING_W
    return EnergyReport(system="IR ACC", seconds=seconds,
                        average_watts=watts)


def energy_efficiency(baseline: EnergyReport, accelerated: EnergyReport
                      ) -> float:
    """How many times less energy the accelerated run uses.

    With the paper's 81x speedup and these envelopes the accelerated
    system is two orders of magnitude more energy efficient -- speedup
    compounds with the lower power draw.
    """
    if accelerated.joules == 0:
        raise ValueError("accelerated energy must be positive")
    return baseline.joules / accelerated.joules
