"""Calibrated software performance models.

The reproduction cannot run GATK3 (Java, licensed data, a 42-hour
measurement); it models the software baselines with a single calibrated
throughput constant, which preserves every *relative* result.

Calibration chain (see DESIGN.md section 5):

1. The paper's absolute anchor: INDEL realignment of chromosomes 1-22
   takes "more than 42 hours on GATK3 ... for $28" on an r3.2xlarge at
   $0.665/hr. $28 / $0.665 = 42.1 hours; we use
   ``GATK3_WHOLE_GENOME_SECONDS = 42.1 * 3600``.
2. The census (:mod:`repro.workloads.chromosomes`) and the full-scale
   shape profile (``REAL_PROFILE``) give the whole-genome unpruned
   comparison count ``W`` via
   :func:`census_unpruned_comparisons`.
3. The modelled GATK3 throughput is then ``W / 42.1 h`` comparisons per
   second at 8 threads -- the single free constant, documented here and
   used consistently everywhere GATK3 time is needed.

ADAM is modelled relative to GATK3: the paper's geometric means give
``81.3 / 41.4 = 1.96x``, consistent with its cost ratio
($28 / $14.5 = 1.93x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.workloads.chromosomes import CHROMOSOME_CENSUS, ChromosomeCensus
from repro.workloads.generator import (
    REAL_PROFILE,
    SiteProfile,
    expected_comparisons_per_site,
)

#: Paper anchor: $28 on r3.2xlarge at $0.665/hr -> 42.1 hours.
GATK3_WHOLE_GENOME_SECONDS = 42.1 * 3600.0

#: GATK3 saturates at 8 threads ("GATK3 does not scale beyond 8 threads").
GATK3_MAX_THREADS = 8

#: ADAM's modelled advantage over GATK3 (paper gmeans: 81.3x / 41.4x).
ADAM_SPEEDUP_OVER_GATK3 = 81.3 / 41.4


def census_unpruned_comparisons(
    profile: SiteProfile = REAL_PROFILE,
) -> float:
    """Whole-genome (Ch1-22) unpruned Algorithm 1 comparisons, expected."""
    return sum(
        census.ir_targets
        * expected_comparisons_per_site(profile, census.complexity)
        for census in CHROMOSOME_CENSUS
    )


def chromosome_unpruned_comparisons(
    census: ChromosomeCensus, profile: SiteProfile = REAL_PROFILE
) -> float:
    """One chromosome's expected full-scale comparison count."""
    return census.ir_targets * expected_comparisons_per_site(
        profile, census.complexity
    )


@dataclass(frozen=True)
class Gatk3PerformanceModel:
    """GATK3 IndelRealigner runtime as a function of kernel work.

    ``comparisons_per_second`` is the 8-thread rate; thread scaling is
    linear up to the 8-thread ceiling (the paper chose its baseline
    host because "GATK3 does not scale beyond 8 threads").
    """

    comparisons_per_second: float
    max_threads: int = GATK3_MAX_THREADS

    def __post_init__(self) -> None:
        if self.comparisons_per_second <= 0:
            raise ValueError("throughput must be positive")

    @classmethod
    def calibrated(cls, profile: SiteProfile = REAL_PROFILE
                   ) -> "Gatk3PerformanceModel":
        """The model anchored to the paper's 42.1-hour measurement."""
        rate = census_unpruned_comparisons(profile) / GATK3_WHOLE_GENOME_SECONDS
        return cls(comparisons_per_second=rate)

    def seconds_for_comparisons(
        self, unpruned_comparisons: float, threads: int = GATK3_MAX_THREADS
    ) -> float:
        """Runtime for a given amount of Algorithm 1 work.

        GATK3 performs the full unpruned scan (it has no computation
        pruning), so the work term is the unpruned comparison count.
        """
        if unpruned_comparisons < 0:
            raise ValueError("work must be non-negative")
        if threads <= 0:
            raise ValueError("thread count must be positive")
        effective = min(threads, self.max_threads)
        rate = self.comparisons_per_second * effective / self.max_threads
        return unpruned_comparisons / rate

    def seconds_for_chromosome(
        self,
        census: ChromosomeCensus,
        profile: SiteProfile = REAL_PROFILE,
        threads: int = GATK3_MAX_THREADS,
    ) -> float:
        """Full-scale modelled runtime of one chromosome."""
        return self.seconds_for_comparisons(
            chromosome_unpruned_comparisons(census, profile), threads
        )


@dataclass(frozen=True)
class AdamPerformanceModel:
    """ADAM on Spark, modelled relative to GATK3 (see module docstring)."""

    gatk3: Gatk3PerformanceModel
    speedup_over_gatk3: float = ADAM_SPEEDUP_OVER_GATK3

    def seconds_for_comparisons(self, unpruned_comparisons: float) -> float:
        return (
            self.gatk3.seconds_for_comparisons(unpruned_comparisons)
            / self.speedup_over_gatk3
        )
