"""EC2 instance catalog (paper Table II and Section V prices).

"Since Amazon has priced out AWS EC2 instances proportional to the TCO
... of running different types of systems, we can simply use that as the
true cost (dollar amount) it takes to run these systems."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class EC2Instance:
    """One EC2 instance type as configured in the paper."""

    name: str
    processor: str
    cores: int
    threads: int
    clock_ghz: float
    memory_gib: float
    price_per_hour: float
    fpga: Optional[str] = None
    fpga_memory_gib: float = 0.0
    gpu: Optional[str] = None

    def __post_init__(self) -> None:
        if self.price_per_hour <= 0:
            raise ValueError("price must be positive")
        if self.cores <= 0 or self.threads < self.cores:
            raise ValueError("invalid core/thread configuration")

    def cost(self, seconds: float) -> float:
        """Dollars to run for ``seconds`` (fractional hours billed)."""
        if seconds < 0:
            raise ValueError("duration must be non-negative")
        return self.price_per_hour * seconds / 3600.0


#: The accelerated system's host: "a commodity server blade with a
#: Xilinx Virtex UltraScale+ FPGA and 4 channels of DDR4" at $1.65/hr.
F1_2XLARGE = EC2Instance(
    name="f1.2xlarge",
    processor="Intel Xeon E5-2686 v4 (Broadwell)",
    cores=4,
    threads=8,
    clock_ghz=2.2,
    memory_gib=122.0,
    price_per_hour=1.65,
    fpga="Xilinx Virtex UltraScale+ VU9P",
    fpga_memory_gib=64.0,
)

#: The software baseline host, "the most cost efficient hardware
#: platform available in EC2 to run the GATK3 experiments" (GATK3 does
#: not scale beyond 8 threads) at 66.5 cents/hr.
R3_2XLARGE = EC2Instance(
    name="r3.2xlarge",
    processor="Intel Xeon E5-2670 v2 (Ivy Bridge)",
    cores=4,
    threads=8,
    clock_ghz=2.5,
    memory_gib=61.0,
    price_per_hour=0.665,
)

#: The hypothetical GPU comparison point ("a single high-end GPU AWS EC2
#: instance ($3.06/hr)").
P3_2XLARGE = EC2Instance(
    name="p3.2xlarge",
    processor="Intel Xeon E5-2686 v4 (Broadwell)",
    cores=4,
    threads=8,
    clock_ghz=2.3,
    memory_gib=61.0,
    price_per_hour=3.06,
    gpu="NVIDIA Tesla V100",
)

INSTANCE_CATALOG: Dict[str, EC2Instance] = {
    instance.name: instance
    for instance in (F1_2XLARGE, R3_2XLARGE, P3_2XLARGE)
}
