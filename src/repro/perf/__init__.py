"""Performance and cost models.

- :mod:`repro.perf.instances` -- the EC2 instance catalog (Table II plus
  prices quoted in Section V).
- :mod:`repro.perf.model` -- calibrated throughput models for the
  software baselines and the census-level work arithmetic.
- :mod:`repro.perf.pipelines` -- the three-pipeline execution-time model
  behind Figures 2 and 3.
- :mod:`repro.perf.cost` -- dollars-to-run arithmetic (Figure 9 right).
"""

from repro.perf.instances import (
    EC2Instance,
    F1_2XLARGE,
    INSTANCE_CATALOG,
    P3_2XLARGE,
    R3_2XLARGE,
)
from repro.perf.model import (
    GATK3_WHOLE_GENOME_SECONDS,
    Gatk3PerformanceModel,
    census_unpruned_comparisons,
)
from repro.perf.cost import CostReport, cost_of_run

__all__ = [
    "CostReport",
    "EC2Instance",
    "F1_2XLARGE",
    "GATK3_WHOLE_GENOME_SECONDS",
    "Gatk3PerformanceModel",
    "INSTANCE_CATALOG",
    "P3_2XLARGE",
    "R3_2XLARGE",
    "census_unpruned_comparisons",
    "cost_of_run",
]
