"""Fleet planning: "a sea of IR accelerators" across many F1 instances.

The paper's deployment story is cloud elasticity: an AFI (Amazon FPGA
Image) is "ready to be loaded and used anywhere in the world where users
have access to an AWS EC2 F1 instance". This module plans whole-genome
(or multi-genome) INDEL realignment across a fleet: per-chromosome jobs
are placed on instances with the longest-processing-time heuristic, and
the resulting makespan / dollar figures quantify the scale-out the paper
alludes to (instance-hours are constant, wall-clock divides by the
fleet).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.perf.instances import EC2Instance, F1_2XLARGE


@dataclass(frozen=True)
class FleetJob:
    """One schedulable unit of work (e.g. one chromosome of one genome)."""

    name: str
    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("job duration must be non-negative")


@dataclass
class FleetPlan:
    """Placement of jobs onto a fleet of identical instances."""

    instance: EC2Instance
    num_instances: int
    assignments: Dict[int, List[FleetJob]] = field(default_factory=dict)

    @property
    def makespan_seconds(self) -> float:
        if not self.assignments:
            return 0.0
        return max(
            sum(job.seconds for job in jobs)
            for jobs in self.assignments.values()
        )

    @property
    def total_work_seconds(self) -> float:
        return sum(
            job.seconds for jobs in self.assignments.values() for job in jobs
        )

    @property
    def cost_dollars(self) -> float:
        """Billed per-instance for its busy time (per-second billing)."""
        return sum(
            self.instance.cost(sum(job.seconds for job in jobs))
            for jobs in self.assignments.values()
        )

    @property
    def utilization(self) -> float:
        span = self.makespan_seconds
        if span == 0:
            return 0.0
        return self.total_work_seconds / (self.num_instances * span)


def plan_fleet(
    jobs: Sequence[FleetJob],
    num_instances: int,
    instance: EC2Instance = F1_2XLARGE,
) -> FleetPlan:
    """Place jobs on ``num_instances`` instances, longest-first.

    LPT keeps the makespan within 4/3 of optimal, which is more than
    enough fidelity for a cost/wall-clock planner.
    """
    if num_instances <= 0:
        raise ValueError("fleet needs at least one instance")
    plan = FleetPlan(instance=instance, num_instances=num_instances,
                     assignments={i: [] for i in range(num_instances)})
    heap: List[Tuple[float, int]] = [(0.0, i) for i in range(num_instances)]
    heapq.heapify(heap)
    for job in sorted(jobs, key=lambda j: (-j.seconds, j.name)):
        load, index = heapq.heappop(heap)
        plan.assignments[index].append(job)
        heapq.heappush(heap, (load + job.seconds, index))
    return plan


def fleet_size_for_deadline(
    jobs: Sequence[FleetJob],
    deadline_seconds: float,
    instance: EC2Instance = F1_2XLARGE,
    max_instances: int = 4096,
) -> Optional[FleetPlan]:
    """Smallest fleet whose LPT makespan meets the deadline.

    Returns ``None`` when even ``max_instances`` cannot meet it (a job
    longer than the deadline cannot be split: targets within a job
    could, but the planner works at job granularity).
    """
    if deadline_seconds <= 0:
        raise ValueError("deadline must be positive")
    longest = max((job.seconds for job in jobs), default=0.0)
    if longest > deadline_seconds:
        return None
    total = sum(job.seconds for job in jobs)
    # Lower bound on the fleet; then grow until LPT fits.
    size = max(1, int(total // deadline_seconds))
    while size <= max_instances:
        plan = plan_fleet(jobs, size, instance)
        if plan.makespan_seconds <= deadline_seconds:
            return plan
        size += 1
    return None


def record_fleet_spans(telemetry, plan: FleetPlan,
                       preempted: Optional["PreemptedFleetResult"] = None,
                       ) -> None:
    """Record a fleet plan as a span timeline (one track per instance).

    Jobs run back-to-back in assignment (LPT) order, so each instance's
    track tiles from zero to its busy time; passing the matching
    ``preempted`` replay additionally marks each reclamation with an
    instant event at its cut point. Fleet timelines tick in *seconds*
    (``ticks_per_second=1``), unlike the cycle-model traces.
    """
    from repro.telemetry.spans import CAT_FLEET

    if telemetry.ticks_per_second is None:
        telemetry.ticks_per_second = 1.0
    for index, jobs in sorted(plan.assignments.items()):
        track = f"instance {index}"
        clock = 0.0
        for job in jobs:
            telemetry.span(job.name, track, clock, clock + job.seconds,
                           CAT_FLEET)
            clock += job.seconds
    telemetry.count("fleet.instances", plan.num_instances)
    telemetry.count("fleet.jobs",
                    sum(len(jobs) for jobs in plan.assignments.values()))
    if preempted is not None:
        for event in preempted.events:
            telemetry.instant("spot reclaimed",
                              f"instance {event.instance}",
                              event.at_seconds, "preemption")
        telemetry.count("fleet.preemptions", len(preempted.events))
        telemetry.count("fleet.jobs_rescheduled",
                        len(preempted.rescheduled))


def record_engine_shards(telemetry, shards, origin: Optional[float] = None,
                         workers: int = 1) -> None:
    """Record a batched-engine run as a span timeline (one track/shard).

    The host-side analogue of :func:`record_fleet_spans`: each shard of
    a :class:`repro.engine.parallel.Engine` run becomes one span on its
    own track, offset from ``origin`` (the run's start timestamp on the
    same ``perf_counter`` clock), so a Chrome trace shows shards
    overlapping across worker processes. Engine timelines tick in
    *seconds*, like fleet timelines.
    """
    from repro.telemetry.spans import CAT_ENGINE

    if telemetry is None or not shards:
        return
    if telemetry.ticks_per_second is None:
        telemetry.ticks_per_second = 1.0
    base = origin if origin is not None else min(s.start for s in shards)
    for shard in shards:
        telemetry.span(
            f"shard {shard.shard} ({shard.sites} sites)",
            f"engine shard {shard.shard}",
            shard.start - base,
            shard.end - base,
            CAT_ENGINE,
        )
    telemetry.count("engine.shards", len(shards))
    telemetry.count("engine.shard_sites", sum(s.sites for s in shards))
    telemetry.count("engine.workers", workers)


def record_stream_chunks(telemetry, shards, origin: Optional[float] = None,
                         workers: int = 1) -> None:
    """Record a streaming-engine run as a span timeline (one track/chunk).

    Companion to :func:`record_engine_shards` for
    :class:`repro.engine.stream.StreamingEngine`: each completed chunk
    becomes one ``CAT_STREAM`` span offset from ``origin`` on the shared
    ``perf_counter`` clock. Because the stream overlaps dispatch with
    compute, a Chrome trace of these spans shows the staggered start
    times the bounded window produces -- the visual signature of
    backpressure is chunks starting later than ``queue_depth x workers``
    would allow.
    """
    from repro.telemetry.spans import CAT_STREAM

    if telemetry is None or not shards:
        return
    if telemetry.ticks_per_second is None:
        telemetry.ticks_per_second = 1.0
    base = origin if origin is not None else min(s.start for s in shards)
    for shard in shards:
        telemetry.span(
            f"chunk {shard.shard} ({shard.sites} sites)",
            f"stream chunk {shard.shard}",
            shard.start - base,
            shard.end - base,
            CAT_STREAM,
        )
    telemetry.count("engine.shards", len(shards))
    telemetry.count("engine.shard_sites", sum(s.sites for s in shards))
    telemetry.count("engine.workers", workers)


def record_shard_chunks(telemetry, chunks,
                        origin: Optional[float] = None) -> None:
    """Record a shard-plane run as a span timeline (one track/shard).

    Companion to :func:`record_engine_shards` for
    :class:`repro.shard.plane.ShardPlane`: every completed chunk
    becomes one ``CAT_SHARD`` span on the track of the shard that
    *executed* it (which, under stealing or straggler re-dispatch, may
    differ from its home shard). ``chunks`` is an iterable of
    ``(shard, chunk_id, n_sites, start, end)`` tuples on the shared
    ``perf_counter`` clock; chunks quarantined to the parent's inline
    path carry shard ``-1`` and land on the ``shard plane inline``
    track. Shard timelines tick in *seconds*, like fleet and engine
    timelines.
    """
    from repro.telemetry.spans import CAT_SHARD

    chunks = list(chunks)
    if telemetry is None or not chunks:
        return
    if telemetry.ticks_per_second is None:
        telemetry.ticks_per_second = 1.0
    base = origin if origin is not None else min(c[3] for c in chunks)
    for shard, chunk_id, n_sites, start, end in chunks:
        track = ("shard plane inline" if shard < 0
                 else f"shard plane {shard}")
        telemetry.span(
            f"chunk {chunk_id} ({n_sites} sites)",
            track,
            max(start - base, 0.0),
            max(end - base, 0.0),
            CAT_SHARD,
        )
    telemetry.count("shard.spans", len(chunks))


@dataclass(frozen=True)
class PreemptionEvent:
    """One spot reclamation: instance ``instance`` dies at ``at_seconds``."""

    instance: int
    at_seconds: float


@dataclass
class PreemptedFleetResult:
    """A fleet plan after a wave of spot preemptions.

    Single-shock model: each instance is reclaimed at most once, at a
    fraction of its planned busy time; jobs it had already finished
    survive, everything else (including the in-flight job, which has no
    checkpoint) restarts on the least-loaded surviving instance with a
    fixed re-provisioning overhead. If the whole fleet is reclaimed, one
    on-demand replacement instance drains the remaining jobs serially.
    """

    original: FleetPlan
    events: List[PreemptionEvent] = field(default_factory=list)
    rescheduled: List[FleetJob] = field(default_factory=list)
    final_loads: Dict[int, float] = field(default_factory=dict)
    makespan_seconds: float = 0.0
    lost_work_seconds: float = 0.0
    restart_overhead_seconds: float = 0.0

    @property
    def cost_dollars(self) -> float:
        """Each instance bills for the time it actually ran."""
        return sum(
            self.original.instance.cost(load)
            for load in self.final_loads.values()
        )

    @property
    def makespan_inflation(self) -> float:
        base = self.original.makespan_seconds
        if base == 0:
            return 1.0
        return self.makespan_seconds / base


def simulate_preemptions(
    plan: FleetPlan,
    preempt_fraction: Callable[[int], Optional[float]],
    restart_overhead_s: float = 90.0,
) -> PreemptedFleetResult:
    """Replay ``plan`` under spot reclamations and re-place lost work.

    ``preempt_fraction(i)`` returns the fraction of instance ``i``'s
    busy time at which AWS reclaims it, or ``None`` if it survives --
    :meth:`repro.resilience.faults.FaultPlan.preemption_fraction` plugs
    in directly, making fleet chaos reproducible from the same seed as
    accelerator chaos.
    """
    if restart_overhead_s < 0:
        raise ValueError("restart overhead must be non-negative")
    result = PreemptedFleetResult(original=plan)
    survivors: Dict[int, float] = {}
    orphans: List[FleetJob] = []
    for index, jobs in sorted(plan.assignments.items()):
        busy = sum(job.seconds for job in jobs)
        fraction = preempt_fraction(index)
        if fraction is None:
            survivors[index] = busy
            continue
        if not 0.0 < fraction < 1.0:
            raise ValueError("preemption fraction must be in (0, 1)")
        cut = fraction * busy
        result.events.append(PreemptionEvent(index, cut))
        elapsed = 0.0
        for job in jobs:  # jobs ran in assignment (LPT) order
            if elapsed + job.seconds <= cut:
                elapsed += job.seconds  # finished before the reclaim
            else:
                orphans.append(job)
        result.lost_work_seconds += max(cut - elapsed, 0.0)
        result.final_loads[index] = cut  # spot bills to the reclaim
    if orphans and not survivors:
        # The whole fleet died: one on-demand replacement drains it.
        replacement = max(plan.assignments, default=-1) + 1
        survivors[replacement] = 0.0
    heap: List[Tuple[float, int]] = [
        (load, index) for index, load in survivors.items()
    ]
    heapq.heapify(heap)
    for job in sorted(orphans, key=lambda j: (-j.seconds, j.name)):
        load, index = heapq.heappop(heap)
        result.rescheduled.append(job)
        result.restart_overhead_seconds += restart_overhead_s
        heapq.heappush(heap, (load + restart_overhead_s + job.seconds, index))
    for load, index in heap:
        result.final_loads[index] = load
    result.makespan_seconds = max(result.final_loads.values(), default=0.0)
    return result


def diagnostic_turnaround(
    chromosome_seconds: Dict[str, float],
    num_instances: int,
    instance: EC2Instance = F1_2XLARGE,
) -> FleetPlan:
    """Plan one patient's genome across a fleet.

    The paper's clinical framing: "a patient presenting in acute blast
    crisis can die within days, so a few hours difference in obtaining
    the genomic analysis results can affect the timely treatment".
    """
    jobs = [FleetJob(name=f"chr{name}", seconds=seconds)
            for name, seconds in chromosome_seconds.items()]
    return plan_fleet(jobs, num_instances, instance)
