"""The three-pipeline execution-time model (Figures 2 and 3).

Figure 2's absolute measurements (GATK3 + BWA-MEM on the paper's
r3.2xlarge): primary alignment ~17 hours, alignment refinement ~72
hours, variant calling ~36 hours -- "the primary alignment accounts for
less than 15% of the genomic analysis execution time, while the
alignment refinement pipeline accounts for roughly 60%".

Stage splits within each pipeline:

- primary alignment (BWA-MEM, breakdown per the paper's reference [10]),
  constrained by the two shares the paper states against *total*
  execution time: Smith-Waterman seed extension 5% and suffix-array
  lookup 1.5% of the whole analysis;
- alignment refinement: IR averages 58% (measured in Figure 3); the
  remaining stages split per the Figure 2 bar;
- variant calling: a single stage.

Figure 3's per-chromosome IR fraction is *derived*, not tabulated: IR
work comes from the census and shape profile, the other refinement
stages scale with the chromosome's read count, and the single
calibration constant (seconds of non-IR refinement work per read) is
set so the genome-wide average IR share matches the measured 58%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.perf.model import (
    Gatk3PerformanceModel,
    chromosome_unpruned_comparisons,
)
from repro.workloads.chromosomes import CHROMOSOME_CENSUS, ChromosomeCensus
from repro.workloads.generator import REAL_PROFILE, SiteProfile

#: Figure 2 absolute pipeline runtimes (hours) on the paper's testbed.
PAPER_PIPELINE_HOURS: Dict[str, float] = {
    "primary_alignment": 17.0,
    "alignment_refinement": 72.0,
    "variant_calling": 36.0,
}

#: Whole-analysis share of the two primary-alignment kernels the paper
#: quotes: "Smith-Waterman seed extension (5%) or suffix array lookup
#: (1.5%)".
SMITH_WATERMAN_TOTAL_SHARE = 0.05
SUFFIX_ARRAY_TOTAL_SHARE = 0.015

#: Stage splits within each pipeline (fractions sum to 1).
PRIMARY_STAGE_SPLIT: Dict[str, float] = {
    "smem_generation": 0.30,
    "suffix_array_lookup": 0.11,  # = 1.5% of total / (17h / 125h)
    "seed_extension_smith_waterman": 0.37,  # = 5% of total / (17h / 125h)
    "output": 0.12,
    "other": 0.10,
}

REFINEMENT_STAGE_SPLIT: Dict[str, float] = {
    "sort": 0.08,
    "duplicate_marking": 0.12,
    "indel_realignment": 0.58,  # Figure 3 genome-wide average
    "base_quality_score_recalibration": 0.22,
}

VARIANT_CALLING_STAGE_SPLIT: Dict[str, float] = {"variant_calling": 1.0}

#: Figure 3 bounds the paper reports: "Ranging from 53% to 67%,
#: alignment refinement spends an average of 58% of its execution time
#: in INDEL realignments."
PAPER_IR_FRACTION_AVG = 0.58
PAPER_IR_FRACTION_RANGE = (0.53, 0.67)


def total_analysis_hours() -> float:
    return sum(PAPER_PIPELINE_HOURS.values())


def pipeline_fractions() -> Dict[str, float]:
    """Each pipeline's share of total execution time (Figure 2 outer)."""
    total = total_analysis_hours()
    return {name: hours / total for name, hours in PAPER_PIPELINE_HOURS.items()}


def stage_hours() -> Dict[str, Dict[str, float]]:
    """Absolute hours per stage per pipeline (Figure 2 inner bars)."""
    splits = {
        "primary_alignment": PRIMARY_STAGE_SPLIT,
        "alignment_refinement": REFINEMENT_STAGE_SPLIT,
        "variant_calling": VARIANT_CALLING_STAGE_SPLIT,
    }
    return {
        pipeline: {
            stage: fraction * PAPER_PIPELINE_HOURS[pipeline]
            for stage, fraction in split.items()
        }
        for pipeline, split in splits.items()
    }


def ir_share_of_total() -> float:
    """IR's share of the whole analysis (paper: "roughly 34%")."""
    hours = stage_hours()
    return (
        hours["alignment_refinement"]["indel_realignment"]
        / total_analysis_hours()
    )


@dataclass(frozen=True)
class RefinementBreakdown:
    """One chromosome's modelled refinement-pipeline composition."""

    chromosome: str
    ir_seconds: float
    other_seconds: float

    @property
    def ir_fraction(self) -> float:
        return self.ir_seconds / (self.ir_seconds + self.other_seconds)


def _calibrate_other_cost_per_read(
    gatk3: Gatk3PerformanceModel, profile: SiteProfile
) -> float:
    """Seconds of non-IR refinement per read so the average IR share
    matches the measured 58%."""
    total_ir = sum(
        gatk3.seconds_for_comparisons(
            chromosome_unpruned_comparisons(census, profile)
        )
        for census in CHROMOSOME_CENSUS
    )
    total_reads = sum(census.reads for census in CHROMOSOME_CENSUS)
    total_other = total_ir * (1 - PAPER_IR_FRACTION_AVG) / PAPER_IR_FRACTION_AVG
    return total_other / total_reads


def refinement_breakdown(
    profile: SiteProfile = REAL_PROFILE,
    gatk3: Gatk3PerformanceModel = None,
) -> List[RefinementBreakdown]:
    """Per-chromosome IR vs other-stage refinement time (Figure 3)."""
    gatk3 = gatk3 or Gatk3PerformanceModel.calibrated(profile)
    per_read = _calibrate_other_cost_per_read(gatk3, profile)
    rows = []
    for census in CHROMOSOME_CENSUS:
        ir_seconds = gatk3.seconds_for_comparisons(
            chromosome_unpruned_comparisons(census, profile)
        )
        rows.append(
            RefinementBreakdown(
                chromosome=census.name,
                ir_seconds=ir_seconds,
                other_seconds=census.reads * per_read,
            )
        )
    return rows


def average_ir_fraction(rows: List[RefinementBreakdown]) -> float:
    """Work-weighted average IR share across chromosomes."""
    total_ir = sum(row.ir_seconds for row in rows)
    total = sum(row.ir_seconds + row.other_seconds for row in rows)
    return total_ir / total
