"""Cloud-cost arithmetic (Figure 9 right).

"Our accelerated system not only performs an order of magnitude better,
it is also an order of magnitude more cost efficient than running the
most optimized software, and can complete INDEL realignment for all
chromosomes for just 90 cents. Whereas, GATK3 and ADAM take $28 and
$14.5 to run on R3 instances respectively."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.perf.instances import EC2Instance


@dataclass(frozen=True)
class CostReport:
    """Dollars and hours to run one system configuration."""

    system: str
    instance: EC2Instance
    seconds: float
    dollars: float

    @property
    def hours(self) -> float:
        return self.seconds / 3600.0


def cost_of_run(system: str, instance: EC2Instance, seconds: float
                ) -> CostReport:
    """Cost of running ``system`` on ``instance`` for ``seconds``."""
    return CostReport(
        system=system,
        instance=instance,
        seconds=seconds,
        dollars=instance.cost(seconds),
    )


def cost_efficiency(baseline: CostReport, accelerated: CostReport) -> float:
    """How many times cheaper the accelerated run is (paper: 32x vs
    GATK3, 17x vs ADAM)."""
    if accelerated.dollars == 0:
        raise ValueError("accelerated cost must be positive")
    return baseline.dollars / accelerated.dollars


def required_gpu_speedup(
    gpu: EC2Instance,
    f1: EC2Instance,
    iracc_speedup_over_gatk3: float,
) -> float:
    """Speedup a GPU system would need to match IR ACC cost-performance.

    "For a single high-end GPU AWS EC2 instance ($3.06/hr) to match the
    performance and the cost of an accelerated IR system on an F1
    instance ($1.65/hr), the GPU system needs to achieve a 148.36x
    speedup over the GATK3 baseline" -- i.e. the IR ACC speedup scaled
    by the price ratio (80 x 3.06 / 1.65 = 148.36).
    """
    if iracc_speedup_over_gatk3 <= 0:
        raise ValueError("speedup must be positive")
    return iracc_speedup_over_gatk3 * gpu.price_per_hour / f1.price_per_hour
