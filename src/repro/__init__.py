"""Reproduction of "FPGA Accelerated INDEL Realignment in the Cloud" (HPCA 2019).

This package implements, in Python, the full system described in the paper:

- :mod:`repro.genomics` -- sequence, read, and reference primitives plus a
  synthetic read simulator (substitute for the NA12878 dataset).
- :mod:`repro.align` -- a primary-alignment substrate (Smith-Waterman,
  suffix-array seed lookup, seed-and-extend aligner).
- :mod:`repro.realign` -- the INDEL realignment algorithm itself (the paper's
  Algorithms 1 and 2), target identification, and consensus generation.
- :mod:`repro.refinement` -- the GATK3-style alignment-refinement pipeline
  (sort, duplicate marking, INDEL realignment, BQSR).
- :mod:`repro.variants` -- a pileup-based somatic variant caller used to
  demonstrate IR's end-to-end accuracy effect.
- :mod:`repro.hw` -- FPGA substrate models: clocks, BRAM/CLB resources,
  DDR/PCIe timing, AXI and TileLink interconnect, arbiters.
- :mod:`repro.core` -- the paper's contribution: the IR accelerator unit
  (Hamming distance calculator, consensus selector, computation pruning),
  the RoCC instruction set, schedulers, and the 32-unit accelerated system.
- :mod:`repro.perf` -- calibrated performance and cloud-cost models.
- :mod:`repro.baselines` -- GATK3, ADAM, HLS, and GPU comparison models.
- :mod:`repro.workloads` -- per-chromosome target census and generators.
- :mod:`repro.experiments` -- one module per paper table/figure.

See ``DESIGN.md`` for the full inventory and ``EXPERIMENTS.md`` for
paper-versus-measured results.
"""

__version__ = "1.0.0"

__all__ = [
    "genomics",
    "align",
    "realign",
    "refinement",
    "variants",
    "hw",
    "core",
    "perf",
    "baselines",
    "workloads",
    "experiments",
]
