"""INDEL realignment: the paper's Algorithms 1 and 2 plus their inputs.

- :mod:`repro.realign.site` -- the :class:`RealignmentSite` container (one
  "IR target": a reference window, alternate consensuses, and the reads
  anchored in the window).
- :mod:`repro.realign.whd` -- the weighted-Hamming-distance kernel
  (Algorithm 1) and consensus selection / read realignment (Algorithm 2),
  in both a literal scalar form and a numpy-vectorized form that also
  yields the pruning statistics the accelerator model consumes.
- :mod:`repro.realign.targets` -- RealignerTargetCreator equivalent.
- :mod:`repro.realign.consensus` -- consensus generation from INDELs
  observed in the reads.
- :mod:`repro.realign.realigner` -- the end-to-end software INDEL
  realigner (the GATK3 functional baseline).
"""

from repro.realign.site import RealignmentSite, SiteLimits
from repro.realign.whd import (
    WHD_SENTINEL,
    SiteResult,
    calc_whd,
    min_whd_grid,
    min_whd_pair,
    realign_site,
    score_and_select,
    whd_profile,
)
from repro.realign.targets import RealignmentTarget, identify_targets
from repro.realign.consensus import generate_consensuses
from repro.realign.realigner import IndelRealigner, RealignerReport

__all__ = [
    "IndelRealigner",
    "RealignerReport",
    "RealignmentSite",
    "RealignmentTarget",
    "SiteLimits",
    "SiteResult",
    "WHD_SENTINEL",
    "calc_whd",
    "generate_consensuses",
    "identify_targets",
    "min_whd_grid",
    "min_whd_pair",
    "realign_site",
    "score_and_select",
    "whd_profile",
]
