"""The :class:`RealignmentSite` container: one IR target's kernel inputs.

Paper Appendix: *"A target is a position interval slice in relation to the
reference ... All reads that overlap this region ... are considered reads
for this site"*, and a consensus *"presents another way to assemble the
reads"*. The kernel sees a site as:

- ``consensuses`` -- consensus 0 is the reference window itself (the
  paper's ``REF``; "including the reference (i=0)"), the rest are
  alternate haplotypes;
- ``reads`` / ``quals`` -- base strings and Phred scores of the anchored
  reads.

The paper's hardware limits (Appendix + Section III-A) are enforced here
so software and accelerator agree on what a legal site is:
``C <= 32`` consensuses of length ``m <= 2048``, ``R <= 256`` reads of
length ``n <= 256``, and every consensus at least as long as every read
(so each pair has ``m - n + 1 >= 1`` sliding offsets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.genomics.sequence import seq_to_array, validate_bases


@dataclass(frozen=True)
class SiteLimits:
    """Structural limits of one IR target (paper values by default)."""

    max_consensuses: int = 32
    max_consensus_length: int = 2048
    max_reads: int = 256
    max_read_length: int = 256

    def __post_init__(self) -> None:
        if min(self.max_consensuses, self.max_consensus_length,
               self.max_reads, self.max_read_length) <= 0:
            raise ValueError("all site limits must be positive")


PAPER_LIMITS = SiteLimits()


class SiteError(ValueError):
    """Raised when a site violates the structural limits."""


@dataclass(frozen=True)
class RealignmentSite:
    """One IR target, ready for the WHD kernel.

    ``start`` is the reference coordinate of the first base of
    ``consensuses[0]``; realigned read positions are computed as
    ``min_whd_idx + start`` (Algorithm 2 line 25).
    """

    chrom: str
    start: int
    consensuses: Tuple[str, ...]
    reads: Tuple[str, ...]
    quals: Tuple[np.ndarray, ...]
    limits: SiteLimits = field(default=PAPER_LIMITS)

    def __post_init__(self) -> None:
        if len(self.consensuses) < 1:
            raise SiteError("a site needs at least the reference consensus")
        if len(self.consensuses) > self.limits.max_consensuses:
            raise SiteError(
                f"{len(self.consensuses)} consensuses exceed the "
                f"limit of {self.limits.max_consensuses}"
            )
        if not self.reads:
            raise SiteError("a site needs at least one read")
        if len(self.reads) > self.limits.max_reads:
            raise SiteError(
                f"{len(self.reads)} reads exceed the limit of {self.limits.max_reads}"
            )
        if len(self.reads) != len(self.quals):
            raise SiteError("reads and quals must be parallel sequences")
        quals = tuple(np.asarray(q, dtype=np.uint8) for q in self.quals)
        object.__setattr__(self, "quals", quals)
        max_read_len = 0
        for read, qual in zip(self.reads, quals):
            validate_bases(read)
            if not read:
                raise SiteError("empty read in site")
            if len(read) > self.limits.max_read_length:
                raise SiteError(
                    f"read length {len(read)} exceeds limit "
                    f"{self.limits.max_read_length}"
                )
            if qual.size != len(read):
                raise SiteError("read and quality lengths differ")
            max_read_len = max(max_read_len, len(read))
        for cons in self.consensuses:
            validate_bases(cons)
            if len(cons) > self.limits.max_consensus_length:
                raise SiteError(
                    f"consensus length {len(cons)} exceeds limit "
                    f"{self.limits.max_consensus_length}"
                )
            if len(cons) < max_read_len:
                raise SiteError(
                    f"consensus of length {len(cons)} shorter than the longest "
                    f"read ({max_read_len}); pad the target window"
                )

    @classmethod
    def trusted(
        cls,
        chrom: str,
        start: int,
        consensuses: Tuple[str, ...],
        reads: Tuple[str, ...],
        quals: Tuple[np.ndarray, ...],
        limits: SiteLimits = PAPER_LIMITS,
    ) -> "RealignmentSite":
        """Construct without re-running ``__post_init__`` validation.

        For inputs that provably came from an already-validated site --
        the shared-memory arena decode path
        (:mod:`repro.engine.shmem`) rebuilds thousands of sites per
        run, and re-validating each byte would dominate the worker's
        unpack cost. ``quals`` must already be uint8 arrays. Anything
        else must go through the normal constructor.
        """
        site = object.__new__(cls)
        object.__setattr__(site, "chrom", chrom)
        object.__setattr__(site, "start", start)
        object.__setattr__(site, "consensuses", tuple(consensuses))
        object.__setattr__(site, "reads", tuple(reads))
        object.__setattr__(site, "quals", tuple(quals))
        object.__setattr__(site, "limits", limits)
        return site

    @property
    def num_consensuses(self) -> int:
        return len(self.consensuses)

    @property
    def num_reads(self) -> int:
        return len(self.reads)

    @property
    def reference(self) -> str:
        """Consensus 0 -- the reference window."""
        return self.consensuses[0]

    def consensus_arrays(self) -> Tuple[np.ndarray, ...]:
        return tuple(seq_to_array(c) for c in self.consensuses)

    def read_arrays(self) -> Tuple[np.ndarray, ...]:
        return tuple(seq_to_array(r) for r in self.reads)

    def read_key(self, read_index: int) -> Tuple[str, bytes]:
        """Hashable identity of one read's kernel inputs.

        Two reads with equal keys (bases and qualities) produce equal
        WHD grid columns against any common consensus set -- the
        memoization key used by :mod:`repro.engine.memo` (prefixed with
        the site's consensus tuple).
        """
        return self.reads[read_index], self.quals[read_index].tobytes()

    def offsets(self, cons_index: int, read_index: int) -> int:
        """Number of sliding offsets for one pair: ``m - n + 1``.

        Note the paper's Algorithm 1 pseudo-code writes the loop bound as
        ``m - n - 1`` but its text and Figure 4 example both use
        ``m - n + 1`` alignments; we follow the text (see DESIGN.md).
        """
        m = len(self.consensuses[cons_index])
        n = len(self.reads[read_index])
        return m - n + 1

    def unpruned_comparisons(self) -> int:
        """Total base comparisons Algorithm 1 performs without pruning.

        This is the paper's ``O(CR * (m - n + 1) * n)`` work term and the
        unit of the software baseline's cost model.
        """
        total = 0
        for cons in self.consensuses:
            m = len(cons)
            for read in self.reads:
                n = len(read)
                total += (m - n + 1) * n
        return total

    def input_bytes(self) -> int:
        """Bytes DMA'd to the FPGA for this site (1 B per base/score)."""
        cons_bytes = sum(len(c) for c in self.consensuses)
        read_bytes = sum(len(r) for r in self.reads)
        return cons_bytes + 2 * read_bytes  # bases + quality scores

    def output_bytes(self) -> int:
        """Bytes read back: 1 B realign flag + 4 B new position per read."""
        return 5 * self.num_reads
