"""INDEL realignment target identification (RealignerTargetCreator).

Paper Appendix: *"Generating t number of IR targets is logically
equivalent to slicing the reference into t number of slices and
performing IR on each slice."* Targets are seeded where the aligned reads
show evidence that local realignment could help:

1. loci where a read's CIGAR carries an insertion or deletion, and
2. loci where many reads disagree with the reference (mismatch
   clusters -- the footprint of an INDEL a confused aligner absorbed
   into a gap-free alignment).

Nearby loci merge into one interval so every read is realigned at most
once; intervals are clamped so the eventual consensus window respects the
hardware's 2048-byte consensus limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.align.pileup import pileup
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.realign.site import SiteLimits, PAPER_LIMITS


@dataclass(frozen=True, order=True)
class RealignmentTarget:
    """One IR target interval, 0-based half-open."""

    chrom: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(
                f"invalid target interval {self.chrom}:{self.start}-{self.end}"
            )

    @property
    def span(self) -> int:
        return self.end - self.start

    def describe(self) -> str:
        # 1-based inclusive, the paper's display convention (e.g. 22:10000).
        return f"{self.chrom}:{self.start + 1}-{self.end}"


@dataclass(frozen=True)
class TargetCreatorConfig:
    """Knobs of target identification."""

    merge_distance: int = 100  # loci closer than this share a target
    # Padding around the outermost evidence locus. At least one read
    # length, so the paper's membership rule ("reads that have either
    # start or end position landing in this region") captures every
    # read overlapping the evidence: a target at least as wide as a
    # read anchors all of its overlapping reads. The paper's example
    # target (Figure 10) spans 2000 bp for 250 bp reads.
    flank: int = 250
    mismatch_min_depth: int = 4
    mismatch_min_fraction: float = 0.5
    use_mismatch_clusters: bool = True
    limits: SiteLimits = PAPER_LIMITS

    def __post_init__(self) -> None:
        if self.merge_distance < 0 or self.flank < 0:
            raise ValueError("merge_distance and flank must be non-negative")
        if not 0 < self.mismatch_min_fraction <= 1:
            raise ValueError("mismatch_min_fraction must be in (0, 1]")


def _indel_loci(reads: Iterable[Read]) -> Dict[str, List[int]]:
    """Reference positions of every I/D CIGAR element, per contig."""
    loci: Dict[str, List[int]] = {}
    for read in reads:
        if not read.is_mapped or not read.has_indel:
            continue
        for ref_offset, _op, _length in read.cigar.indels():
            loci.setdefault(read.chrom, []).append(read.pos + ref_offset)
    return loci


def _mismatch_cluster_loci(
    reads: Sequence[Read],
    reference: ReferenceGenome,
    config: TargetCreatorConfig,
) -> Dict[str, List[int]]:
    """Positions where a large fraction of deep coverage mismatches."""
    loci: Dict[str, List[int]] = {}
    columns = pileup(reads)
    for (chrom, pos), column in columns.items():
        if column.depth < config.mismatch_min_depth:
            continue
        ref_base = reference.fetch(chrom, pos, pos + 1)
        mismatches = sum(1 for base in column.bases if base != ref_base)
        if mismatches / column.depth >= config.mismatch_min_fraction:
            loci.setdefault(chrom, []).append(pos)
    return loci


def _merge_loci(
    loci: Sequence[int], merge_distance: int, flank: int,
    contig_length: int, max_span: int,
) -> List[Tuple[int, int]]:
    """Merge sorted loci into padded, clamped, size-capped intervals."""
    from repro.genomics.intervals import cluster_points

    return cluster_points(loci, merge_distance, flank, contig_length,
                          max_span)


def identify_targets(
    reads: Sequence[Read],
    reference: ReferenceGenome,
    config: TargetCreatorConfig = TargetCreatorConfig(),
    known_sites: Sequence = (),
) -> List[RealignmentTarget]:
    """Return the sorted, disjoint IR targets for a set of aligned reads.

    ``known_sites`` optionally seeds targets at catalogued INDELs (GATK's
    RealignerTargetCreator accepts known-variant files such as the Mills
    INDEL catalogue for the same purpose): each entry is either a
    :class:`~repro.genomics.variants.Variant` or a ``(chrom, pos)``
    pair. Known sites are merged with read evidence, so realignment
    can trigger even where every carrier read was misaligned gap-free.
    """
    evidence = _indel_loci(reads)
    if config.use_mismatch_clusters:
        for chrom, positions in _mismatch_cluster_loci(
            reads, reference, config
        ).items():
            evidence.setdefault(chrom, []).extend(positions)
    for site in known_sites:
        if hasattr(site, "chrom") and hasattr(site, "pos"):
            chrom, pos = site.chrom, site.pos
        else:
            chrom, pos = site
        if chrom in reference and 0 <= pos < reference.length(chrom):
            evidence.setdefault(chrom, []).append(int(pos))
    # Leave room for flanking pad applied at consensus-window construction.
    max_span = config.limits.max_consensus_length // 2
    targets: List[RealignmentTarget] = []
    for chrom, loci in evidence.items():
        contig_length = reference.length(chrom)
        for start, end in _merge_loci(
            loci, config.merge_distance, config.flank, contig_length, max_span
        ):
            targets.append(RealignmentTarget(chrom, start, end))
    return sorted(targets)


def reads_for_target(
    target: RealignmentTarget, reads: Sequence[Read]
) -> List[Read]:
    """Reads anchored in the target per the paper's membership rule.

    Membership is per-contig: ``anchored_in`` compares coordinates
    only, so without the ``chrom`` check a read from another contig at
    numerically overlapping positions would be realigned against this
    target's window.
    """
    return [
        read
        for read in reads
        if read.is_mapped
        and read.chrom == target.chrom
        and not read.is_duplicate
        and read.anchored_in(target.start, target.end)
    ]
