"""Consensus generation for one IR target.

Paper Appendix: *"Consensuses are constructed using insertions and
deletions present in the original alignment and reads spanning at this
site given a certain heuristic."* Concretely: each distinct INDEL observed
in the anchored reads' CIGARs, applied to the target's reference window,
yields one alternate haplotype; consensus 0 is the reference window
itself. The most-supported INDELs win the ``C <= 32`` budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.genomics.cigar import Cigar, CigarOp
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.realign.site import RealignmentSite, SiteLimits, PAPER_LIMITS
from repro.realign.targets import RealignmentTarget, reads_for_target


@dataclass(frozen=True)
class ObservedIndel:
    """One INDEL observation lifted out of a read's CIGAR.

    ``ref_pos`` is the absolute reference position of the element: for an
    insertion, the reference position *before which* the novel bases sit
    (i.e. one past the anchor base); for a deletion, the first deleted
    base.
    """

    ref_pos: int
    op: CigarOp
    length: int
    inserted: str = ""  # inserted bases (insertions only)

    def __post_init__(self) -> None:
        if self.op not in (CigarOp.INSERTION, CigarOp.DELETION):
            raise ValueError(f"not an INDEL operation: {self.op}")
        if self.length <= 0:
            raise ValueError("INDEL length must be positive")
        if self.op is CigarOp.INSERTION and len(self.inserted) != self.length:
            raise ValueError("inserted bases must match the insertion length")


def observed_indels(reads: Sequence[Read]) -> Dict[ObservedIndel, int]:
    """Collect distinct INDELs with their read support counts."""
    support: Dict[ObservedIndel, int] = {}
    for read in reads:
        if not read.is_mapped or not read.has_indel:
            continue
        read_offset = 0
        ref_pos = read.pos
        for op, length in read.cigar:
            if op is CigarOp.INSERTION:
                observation = ObservedIndel(
                    ref_pos=ref_pos,
                    op=op,
                    length=length,
                    inserted=read.seq[read_offset : read_offset + length],
                )
                support[observation] = support.get(observation, 0) + 1
            elif op is CigarOp.DELETION:
                observation = ObservedIndel(ref_pos=ref_pos, op=op, length=length)
                support[observation] = support.get(observation, 0) + 1
            if op.consumes_read:
                read_offset += length
            if op.consumes_reference:
                ref_pos += length
    return support


def apply_indel_to_window(
    window: str, window_start: int, indel: ObservedIndel
) -> Optional[str]:
    """Apply one INDEL to a reference window; None if it falls outside.

    Insertion: the novel bases go *before* window offset
    ``ref_pos - window_start`` (one past their anchor base, matching the
    :class:`ObservedIndel` convention); the anchor must lie inside the
    window so realigned reads have a left anchor. Deletion: the bases at
    window offsets ``[ref_pos - window_start, ... + length)`` are removed.
    """
    offset = indel.ref_pos - window_start
    if indel.op is CigarOp.INSERTION:
        if offset < 1 or offset > len(window):
            return None
        return window[:offset] + indel.inserted + window[offset:]
    if offset < 0 or offset + indel.length > len(window):
        return None
    return window[:offset] + window[offset + indel.length :]


@dataclass(frozen=True)
class ConsensusWindow:
    """A target's consensus window and the site built over it.

    ``indels`` is parallel to ``site.consensuses``: ``None`` for the
    reference (index 0), and the :class:`ObservedIndel` each alternate
    consensus was built from -- the information the host needs to
    reconstruct realigned reads' reference-space CIGARs.
    """

    site: RealignmentSite
    reads: Tuple[Read, ...]  # the Read objects, parallel to site.reads
    indels: Tuple[Optional[ObservedIndel], ...] = ()


def realigned_read_placement(
    indel: Optional[ObservedIndel],
    window_start: int,
    consensus_offset: int,
    read_length: int,
) -> Tuple[int, "Cigar"]:
    """Translate a consensus-space realignment into reference space.

    The kernel (Algorithm 2) reports the read's winning offset ``k``
    against the picked consensus; this host-side step produces the
    read's reference position and CIGAR:

    - a read that does not span the consensus's INDEL maps gap-free
      (``{n}M``) at the equivalent reference coordinate;
    - a read spanning an insertion carries an ``I`` element (a read
      starting *inside* the inserted bases gets them soft-clipped --
      there is no reference anchor to their left);
    - a read spanning a deletion carries a ``D`` element.
    """
    k, n = consensus_offset, read_length
    if indel is None:
        return window_start + k, Cigar.matched(n)
    d = indel.ref_pos - window_start  # window offset of the INDEL site
    length = indel.length
    if indel.op is CigarOp.INSERTION:
        # Consensus layout: [0, d) = window[0, d), [d, d+length) = the
        # inserted bases, beyond that window shifted right by `length`.
        if k + n <= d:
            return window_start + k, Cigar.matched(n)
        if k >= d + length:
            return window_start + k - length, Cigar.matched(n)
        if k >= d:
            # Read starts inside the inserted bases: soft-clip them.
            clipped = min(d + length - k, n)
            elements = [(CigarOp.SOFT_CLIP, clipped)]
            if n > clipped:
                elements.append((CigarOp.MATCH, n - clipped))
            return window_start + d, Cigar.from_elements(elements)
        leading = d - k  # matched bases before the insertion
        inserted = min(length, n - leading)
        trailing = n - leading - inserted
        elements = [(CigarOp.MATCH, leading), (CigarOp.INSERTION, inserted)]
        if trailing > 0:
            elements.append((CigarOp.MATCH, trailing))
        return window_start + k, Cigar.from_elements(elements)
    # Deletion: consensus = window[:d] + window[d + length:].
    if k + n <= d:
        return window_start + k, Cigar.matched(n)
    if k >= d:
        return window_start + k + length, Cigar.matched(n)
    leading = d - k
    elements = [
        (CigarOp.MATCH, leading),
        (CigarOp.DELETION, length),
        (CigarOp.MATCH, n - leading),
    ]
    return window_start + k, Cigar.from_elements(elements)


def build_site(
    target: RealignmentTarget,
    reads: Sequence[Read],
    reference: ReferenceGenome,
    limits: SiteLimits = PAPER_LIMITS,
) -> Optional[ConsensusWindow]:
    """Assemble the :class:`RealignmentSite` for one target.

    Returns ``None`` when the target yields no usable site: no anchored
    reads, or no alternate consensus (nothing to realign against).

    The window is sized so that every consensus -- including deletion
    consensuses, which are shorter than the window -- remains at least as
    long as the longest read, guaranteeing ``m - n + 1 >= 1`` offsets for
    every pair.
    """
    anchored = reads_for_target(target, reads)
    if not anchored:
        return None
    if len(anchored) > limits.max_reads:
        # Paper: "we generate a maximum of 256 reads per target."
        anchored = sorted(anchored, key=lambda r: (r.pos, r.name))[: limits.max_reads]

    support = observed_indels(anchored)
    if not support:
        return None
    max_read_len = max(len(read) for read in anchored)
    max_deletion = max(
        (ind.length for ind in support if ind.op is CigarOp.DELETION), default=0
    )

    # Window: cover every anchored read plus flanks wide enough that a
    # deletion consensus still fits the longest read.
    pad = max_read_len + max_deletion
    window_start = max(0, min(read.pos for read in anchored) - pad)
    window_end = min(
        reference.length(target.chrom),
        max(read.end for read in anchored) + pad,
    )
    if window_end - window_start > limits.max_consensus_length:
        # Centre the window on the target and clamp to the hardware limit.
        centre = (target.start + target.end) // 2
        half = limits.max_consensus_length // 2
        window_start = max(0, centre - half)
        window_end = min(
            reference.length(target.chrom),
            window_start + limits.max_consensus_length,
        )
    window = reference.fetch(target.chrom, window_start, window_end)

    ranked = sorted(
        support.items(), key=lambda item: (-item[1], item[0].ref_pos, item[0].op.value)
    )
    consensuses: List[str] = [window]
    indels: List[Optional[ObservedIndel]] = [None]
    seen = {window}
    for indel, _count in ranked:
        if len(consensuses) >= limits.max_consensuses:
            break
        candidate = apply_indel_to_window(window, window_start, indel)
        if candidate is None or candidate in seen:
            continue
        if len(candidate) < max_read_len:
            continue  # deletion too large for this window; skip
        if len(candidate) > limits.max_consensus_length:
            continue
        consensuses.append(candidate)
        indels.append(indel)
        seen.add(candidate)
    if len(consensuses) < 2:
        return None

    # Keep only reads that fit every consensus (site invariant m >= n).
    min_cons_len = min(len(c) for c in consensuses)
    usable = [read for read in anchored if len(read) <= min_cons_len]
    if not usable:
        return None
    site = RealignmentSite(
        chrom=target.chrom,
        start=window_start,
        consensuses=tuple(consensuses),
        reads=tuple(read.seq for read in usable),
        quals=tuple(read.quals for read in usable),
        limits=limits,
    )
    return ConsensusWindow(site=site, reads=tuple(usable), indels=tuple(indels))


def generate_consensuses(
    target: RealignmentTarget,
    reads: Sequence[Read],
    reference: ReferenceGenome,
    limits: SiteLimits = PAPER_LIMITS,
) -> List[str]:
    """Return just the consensus strings for a target (reference first)."""
    built = build_site(target, reads, reference, limits)
    return list(built.site.consensuses) if built else []
