"""The INDEL realignment kernel: paper Algorithms 1 and 2.

Algorithm 1 (*Minimum Weighted Hamming Distances*) slides every read along
every consensus and, per offset ``k``, sums the read's quality scores at
mismatching bases; the minimum over ``k`` (and the offset where it first
occurred) is recorded in a ``(consensus, read)`` grid.

Algorithm 2 (*Consensus Selection and Read Realignment*) scores each
alternate consensus as ``score[i] = sum_j |min_whd[i,j] - min_whd[0,j]|``,
picks the lowest-scoring consensus (ties break toward the lowest index),
and realigns exactly the reads for which the picked consensus has a
*strictly* smaller min-WHD than the reference, to
``new_pos = min_whd_idx[best, j] + target_start``.

Two interchangeable implementations are provided and property-tested
against each other:

- the **scalar** functions are line-for-line transcriptions of the
  paper's pseudo-code (these are also what the cycle-stepped hardware
  model executes);
- the **vectorized** functions compute identical values with numpy
  sliding windows, and additionally expose the per-offset cumulative
  sums that the accelerator's computation-pruning model needs.

Offset-range note: the pseudo-code's loop bound (``k = 0..m-n-1``) is an
off-by-one against both the text ("m - n + 1 possible alignments") and
the Figure 4 worked example (k = 0..3 for m = 7, n = 4); we use
``m - n + 1`` offsets. See DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.realign.site import RealignmentSite

#: "No minimum recorded yet" sentinel; larger than any reachable WHD
#: (max read length 256 x max Phred 93 = 23808).
WHD_SENTINEL = np.int64(2**31 - 1)


def calc_whd(cons: str, read: str, quals: Sequence[int], k: int) -> int:
    """Algorithm 1, function ``Calc_WHD``: WHD of ``read`` at offset ``k``.

    Compares read bases against consensus bases starting at index ``k``
    and sums the corresponding quality scores where the bases differ.

    Figure 4's worked example slides read 0 (``TGAA``, qualities
    10/20/45/10) along the ``m = 7`` reference consensus, giving
    ``m - n + 1 = 4`` offsets. At ``k = 0`` every base mismatches
    (10+20+45+10); at ``k = 2`` only read bases 1 and 3 do (20+10):

    >>> calc_whd("CCTTAGA", "TGAA", [10, 20, 45, 10], 0)
    85
    >>> calc_whd("CCTTAGA", "TGAA", [10, 20, 45, 10], 2)
    30
    """
    if k < 0 or k + len(read) > len(cons):
        raise ValueError(
            f"offset {k} places the read outside the consensus "
            f"(m={len(cons)}, n={len(read)})"
        )
    whd = 0
    for n, base in enumerate(read):
        if cons[k + n] != base:
            whd += int(quals[n])
    return whd


def min_whd_pair(cons: str, read: str, quals: Sequence[int]) -> Tuple[int, int]:
    """Scalar Algorithm 1 inner loops: ``(min_whd, min_whd_idx)`` for a pair.

    The strict ``<`` update means the *earliest* offset achieving the
    minimum wins -- the same convention the hardware implements.

    Figure 4, read 0 against the reference consensus: the per-offset
    WHDs are 85/75/30/65 (``k = 0..3``), so the minimum is 30 at
    offset 2:

    >>> min_whd_pair("CCTTAGA", "TGAA", [10, 20, 45, 10])
    (30, 2)
    """
    best = int(WHD_SENTINEL)
    best_idx = 0
    for k in range(len(cons) - len(read) + 1):
        whd = calc_whd(cons, read, quals, k)
        if whd < best:
            best = whd
            best_idx = k
    return best, best_idx


def whd_profile(cons_arr: np.ndarray, read_arr: np.ndarray,
                quals_arr: np.ndarray) -> np.ndarray:
    """Vectorized per-offset WHDs: ``profile[k] = Calc_WHD(cons, read, k)``.

    Shape ``(m - n + 1,)``, dtype int64.

    The full Figure 4 profile of read 0 against the reference
    (``m = 7``, ``n = 4``, ``k = 0..3``):

    >>> import numpy as np
    >>> from repro.genomics.sequence import seq_to_array
    >>> whd_profile(seq_to_array("CCTTAGA"), seq_to_array("TGAA"),
    ...             np.array([10, 20, 45, 10], dtype=np.uint8)).tolist()
    [85, 75, 30, 65]
    """
    n = read_arr.size
    m = cons_arr.size
    if n == 0 or m < n:
        raise ValueError(f"invalid pair shapes (m={m}, n={n})")
    windows = np.lib.stride_tricks.sliding_window_view(cons_arr, n)
    mismatch = windows != read_arr
    return mismatch @ quals_arr.astype(np.int64)


def whd_cumulative(cons_arr: np.ndarray, read_arr: np.ndarray,
                   quals_arr: np.ndarray) -> np.ndarray:
    """Per-offset *cumulative* weighted mismatch sums, shape ``(K, n)``.

    ``cum[k, t]`` is the running WHD after the calculator has processed
    read positions ``0..t`` at offset ``k`` -- exactly the register value
    the hardware's pruning comparator checks each cycle. Row ends equal
    :func:`whd_profile`.
    """
    n = read_arr.size
    windows = np.lib.stride_tricks.sliding_window_view(cons_arr, n)
    # int32 is exact here: the largest possible row total is
    # 256 bases x Phred 93 = 23808.
    weighted = (windows != read_arr) * quals_arr.astype(np.int32)
    return np.cumsum(weighted, axis=1, dtype=np.int32)


def min_whd_grid(
    site: RealignmentSite, vectorized: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Algorithm 1, function ``Min_WHD``: fill the ``(C, R)`` grids.

    Returns ``(min_whd, min_whd_idx)`` as int64 arrays of shape
    ``(num_consensuses, num_reads)``.

    The ``vectorized`` flag predates the calibrated kernel dispatch
    (:func:`repro.engine.autotune.dispatch_realign`) and is kept only
    for compatibility: new call sites should route through dispatch
    (``kernel="vector"`` / ``"scalar"`` reproduce the two settings).

    The Figure 4 site (3 consensuses x 2 reads; consensus 0 is the
    reference, consensus 1 carries the deletion both reads support):

    >>> from repro.experiments.figure4 import build_site
    >>> min_whd, min_idx = min_whd_grid(build_site())
    >>> min_whd.tolist()
    [[30, 20], [0, 20], [55, 30]]
    >>> min_idx.tolist()
    [[2, 0], [3, 1], [2, 0]]
    """
    C, R = site.num_consensuses, site.num_reads
    min_whd = np.empty((C, R), dtype=np.int64)
    min_idx = np.empty((C, R), dtype=np.int64)
    if vectorized:
        cons_arrays = site.consensus_arrays()
        read_arrays = site.read_arrays()
        for i, cons_arr in enumerate(cons_arrays):
            for j, read_arr in enumerate(read_arrays):
                profile = whd_profile(cons_arr, read_arr, site.quals[j])
                min_idx[i, j] = int(np.argmin(profile))  # earliest minimum
                min_whd[i, j] = profile[min_idx[i, j]]
    else:
        for i, cons in enumerate(site.consensuses):
            for j, read in enumerate(site.reads):
                min_whd[i, j], min_idx[i, j] = min_whd_pair(
                    cons, read, site.quals[j]
                )
    return min_whd, min_idx


#: Consensus-scoring semantics. The paper's prose and its pseudo-code
#: disagree (see :func:`score_and_select`); both are implemented.
SCORING_METHODS = ("similarity", "absdiff")


def score_and_select(
    min_whd: np.ndarray, method: str = "similarity"
) -> Tuple[int, np.ndarray]:
    """Algorithm 2, function ``Score_n_Select``.

    Two scoring semantics, selected by ``method``:

    - ``"similarity"`` (default): ``scores[i] = sum_j min_whd[i, j]`` --
      the paper's *stated* criterion ("the consensus with the smallest
      Hamming distances against all the reads ... exhibits the most
      similarities with all the reads, and therefore is the best"),
      which is also GATK3 IndelRealigner's behaviour.
    - ``"absdiff"``: ``scores[i] = sum_j |min_whd[i, j] - min_whd[0, j]|``
      -- the paper's *pseudo-code* and Figure 5 selector datapath,
      literally. On sites with several competing consensuses this
      selects the consensus most similar to the reference, i.e. the
      least helpful one -- a pathology the worked Figure 4 example is
      too small to expose (both methods pick consensus 1 there). See
      EXPERIMENTS.md "documented deviations".

    The lowest-scoring alternate consensus wins, ties break toward the
    lowest index. With no alternates the reference (index 0) is
    returned and no read will realign. Both methods cost the selector
    the same cycles (one REF read, one CURR read, one accumulate per
    pair -- Figure 5's datapath).

    On Figure 4's grid both methods pick consensus 1 (the example is
    too small to expose their divergence):

    >>> import numpy as np
    >>> grid = np.array([[30, 20], [0, 20], [55, 30]])
    >>> score_and_select(grid, "absdiff")  # |0-30|+|20-20|, |55-30|+|30-20|
    (1, array([ 0, 30, 35]))
    >>> score_and_select(grid, "similarity")  # plain row sums
    (1, array([50, 20, 85]))
    """
    if method not in SCORING_METHODS:
        raise ValueError(f"unknown scoring method {method!r}")
    C = min_whd.shape[0]
    if method == "absdiff":
        scores = np.zeros(C, dtype=np.int64)
        if C == 1:
            return 0, scores
        scores[1:] = np.abs(min_whd[1:] - min_whd[0]).sum(axis=1)
    else:
        scores = min_whd.sum(axis=1, dtype=np.int64)
        if C == 1:
            return 0, scores
    best_cons = 1 + int(np.argmin(scores[1:]))  # ties -> lowest index
    return best_cons, scores


def reads_realignments(
    min_whd: np.ndarray,
    min_idx: np.ndarray,
    best_cons: int,
    target_start: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Algorithm 2, function ``Reads_Realignments``.

    A read realigns iff the picked consensus beats the reference strictly
    (``min_whd[best, j] < min_whd[0, j]``); its new position is the
    winning offset translated to reference coordinates. Positions of
    non-realigned reads are reported as -1 (the hardware leaves the
    output-buffer slot unwritten; -1 is the host-side convention).

    Figure 4, with consensus 1 picked and the target at 10,000: read 0
    realigns (0 < 30) to offset 3, read 1 does not (20 == 20, not
    strict):

    >>> import numpy as np
    >>> grid = np.array([[30, 20], [0, 20], [55, 30]])
    >>> idx = np.array([[2, 0], [3, 1], [2, 0]])
    >>> realign, new_pos = reads_realignments(grid, idx, 1, 10_000)
    >>> realign.tolist(), new_pos.tolist()
    ([True, False], [10003, -1])
    """
    R = min_whd.shape[1]
    realign = min_whd[best_cons] < min_whd[0]
    new_pos = np.where(realign, min_idx[best_cons] + target_start, -1)
    return realign.astype(bool), new_pos.astype(np.int64)


@dataclass(frozen=True)
class SiteResult:
    """Everything Algorithms 1 + 2 produce for one site."""

    best_cons: int
    scores: np.ndarray  # (C,) consensus scores; scores[0] == 0
    min_whd: np.ndarray  # (C, R)
    min_whd_idx: np.ndarray  # (C, R)
    realign: np.ndarray  # (R,) bool
    new_pos: np.ndarray  # (R,) int64; -1 where not realigned

    @property
    def num_realigned(self) -> int:
        return int(self.realign.sum())

    def same_outputs(self, other: "SiteResult") -> bool:
        """Functional equality on the architecturally visible outputs.

        The hardware writes only the realign flags and new positions back
        to memory, so those (plus the picked consensus) define
        equivalence between implementations.
        """
        return (
            self.best_cons == other.best_cons
            and bool(np.array_equal(self.realign, other.realign))
            and bool(np.array_equal(self.new_pos, other.new_pos))
        )


def realign_site(site: RealignmentSite, vectorized: bool = True,
                 scoring: str = "similarity",
                 telemetry=None) -> SiteResult:
    """Run Algorithms 1 and 2 on one site.

    ``vectorized`` is deprecated-but-working (see
    :func:`min_whd_grid`); prefer
    :func:`repro.engine.autotune.dispatch_realign`, which also knows
    the FFT-batched and bit-packed kernels.

    ``telemetry`` optionally records ``kernel.*`` counters. They are
    defined on the algorithm's *semantics*, not its implementation --
    offsets evaluated, grid cells filled, the grid's WHD mass, reads
    realigned -- so the vectorized and scalar datapaths must report
    identical numbers for the same site (a property test pins this).

    End to end on the Figure 4 site (paper scoring):

    >>> from repro.experiments.figure4 import build_site
    >>> result = realign_site(build_site(), scoring="absdiff")
    >>> int(result.best_cons), result.scores.tolist()
    (1, [0, 30, 35])
    >>> result.realign.tolist(), result.new_pos.tolist()
    ([True, False], [10003, -1])
    """
    min_whd, min_idx = min_whd_grid(site, vectorized=vectorized)
    best_cons, scores = score_and_select(min_whd, method=scoring)
    realign, new_pos = reads_realignments(min_whd, min_idx, best_cons, site.start)
    if telemetry is not None:
        telemetry.count("kernel.sites", 1)
        telemetry.count("kernel.grid_cells", int(min_whd.size))
        telemetry.count("kernel.offsets_evaluated", sum(
            len(cons) - len(read) + 1
            for cons in site.consensuses
            for read in site.reads
        ))
        telemetry.count("kernel.whd_mass", int(min_whd.sum()))
        telemetry.count("kernel.reads_realigned", int(realign.sum()))
        telemetry.count("kernel.consensus_selected", int(best_cons))
    return SiteResult(
        best_cons=best_cons,
        scores=scores,
        min_whd=min_whd,
        min_whd_idx=min_idx,
        realign=realign,
        new_pos=new_pos,
    )
