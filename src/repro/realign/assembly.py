"""De Bruijn-graph local assembly: an alternative consensus generator.

The paper situates position-based IR against the emerging graph-based
callers: "more and more algorithms have moved from position-based (e.g.
IR in GATK3, Mutect1) to graph-based (e.g. HaplotypeCaller in GATK4,
Mutect2) ... De Brujin graph-based HaplotypeCaller in its current state
produces low quality variants and cannot be used for somatic calling."

This module implements the graph-based flavour as an *optional* consensus
generator for the same realignment kernel: assemble candidate haplotypes
from the reads' k-mers (a HaplotypeCaller-style local assembly), align
each haplotype back to the reference window with Smith-Waterman to
recover its INDEL, and hand the result to the standard
:class:`~repro.realign.site.RealignmentSite` machinery. It lets the
reproduction compare CIGAR-observation-driven consensus generation (the
GATK3/IR approach the paper accelerates) against assembly-driven
generation on identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.align.smith_waterman import ScoringScheme, smith_waterman
from repro.genomics.cigar import CigarOp
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.realign.consensus import ConsensusWindow, ObservedIndel
from repro.realign.site import RealignmentSite, SiteLimits, PAPER_LIMITS
from repro.realign.targets import RealignmentTarget, reads_for_target


@dataclass(frozen=True)
class AssemblyConfig:
    """Knobs of the local assembler (HaplotypeCaller-like defaults)."""

    kmer_size: int = 15
    min_kmer_weight: int = 2  # edges seen fewer times are noise
    max_haplotypes: int = 8
    max_path_length: int = 4096  # cycle guard
    scoring: ScoringScheme = ScoringScheme()

    def __post_init__(self) -> None:
        if self.kmer_size < 3:
            raise ValueError("k-mer size must be at least 3")
        if self.min_kmer_weight < 1:
            raise ValueError("min_kmer_weight must be positive")
        if self.max_haplotypes < 1:
            raise ValueError("max_haplotypes must be positive")


class DeBruijnGraph:
    """A weighted de Bruijn graph over (k-1)-mers.

    Nodes are (k-1)-mers; each k-mer occurrence adds weight 1 to the
    edge between its prefix and suffix (k-1)-mers. Reference k-mers are
    marked so haplotype enumeration can anchor at the window's ends,
    exactly as HaplotypeCaller anchors assembly on the reference.
    """

    def __init__(self, kmer_size: int):
        if kmer_size < 3:
            raise ValueError("k-mer size must be at least 3")
        self.k = kmer_size
        self.graph = nx.DiGraph()

    def add_sequence(self, seq: str, is_reference: bool = False) -> None:
        """Thread one sequence through the graph."""
        k = self.k
        if len(seq) < k:
            return
        for i in range(len(seq) - k + 1):
            prefix = seq[i : i + k - 1]
            suffix = seq[i + 1 : i + k]
            if self.graph.has_edge(prefix, suffix):
                self.graph[prefix][suffix]["weight"] += 1
            else:
                self.graph.add_edge(prefix, suffix, weight=1, reference=False)
            if is_reference:
                self.graph[prefix][suffix]["reference"] = True

    def prune(self, min_weight: int) -> None:
        """Drop non-reference edges below the weight threshold.

        Reference edges always survive (the reference haplotype must
        remain assemblable), matching HaplotypeCaller's behaviour.
        """
        doomed = [
            (u, v) for u, v, data in self.graph.edges(data=True)
            if data["weight"] < min_weight and not data["reference"]
        ]
        self.graph.remove_edges_from(doomed)
        self.graph.remove_nodes_from(list(nx.isolates(self.graph)))

    def enumerate_haplotypes(
        self,
        source: str,
        sink: str,
        max_haplotypes: int,
        max_length: int,
    ) -> List[str]:
        """All simple source->sink paths, as base strings, heaviest first."""
        if source not in self.graph or sink not in self.graph:
            return []
        haplotypes: List[Tuple[float, str]] = []
        cutoff = max_length - self.k + 2  # path length in nodes
        try:
            paths = nx.all_simple_paths(self.graph, source, sink,
                                        cutoff=cutoff)
            for path in paths:
                seq = path[0] + "".join(node[-1] for node in path[1:])
                weight = min(
                    self.graph[u][v]["weight"]
                    for u, v in zip(path, path[1:])
                )
                haplotypes.append((weight, seq))
                if len(haplotypes) >= 4 * max_haplotypes:
                    break  # graph is tangled; take what we have
        except nx.NodeNotFound:
            return []
        haplotypes.sort(key=lambda item: (-item[0], item[1]))
        return [seq for _w, seq in haplotypes[:max_haplotypes]]


def _indel_from_alignment(window: str, haplotype: str, window_start: int,
                          scoring: ScoringScheme) -> Optional[ObservedIndel]:
    """Recover the single INDEL distinguishing a haplotype from the window.

    Haplotypes whose best local alignment carries zero or multiple
    INDELs are rejected -- the realignment kernel's placement logic (and
    the paper's consensus model) is one INDEL per consensus.
    """
    result = smith_waterman(haplotype, window, scoring)
    indels = result.cigar.indels()
    if len(indels) != 1:
        return None
    ref_offset, op, length = indels[0]
    ref_pos = window_start + result.target_start + ref_offset
    if op is CigarOp.DELETION:
        return ObservedIndel(ref_pos=ref_pos, op=op, length=length)
    # Insertion: pull the inserted bases out of the haplotype.
    query_offset = result.query_start
    for cigar_op, cigar_len in result.cigar:
        if (cigar_op, cigar_len) == (op, length) and cigar_op is op:
            inserted = haplotype[query_offset : query_offset + length]
            return ObservedIndel(ref_pos=ref_pos, op=op, length=length,
                                 inserted=inserted)
        if cigar_op.consumes_read:
            query_offset += cigar_len
    return None


def assemble_haplotypes(
    window: str,
    reads: Sequence[Read],
    config: AssemblyConfig = AssemblyConfig(),
) -> List[str]:
    """Assemble candidate haplotypes for one window from read k-mers."""
    graph = DeBruijnGraph(config.kmer_size)
    graph.add_sequence(window, is_reference=True)
    for read in reads:
        graph.add_sequence(read.seq)
    graph.prune(config.min_kmer_weight)
    source = window[: config.kmer_size - 1]
    sink = window[-(config.kmer_size - 1):]
    return graph.enumerate_haplotypes(
        source, sink, config.max_haplotypes, config.max_path_length
    )


def build_site_by_assembly(
    target: RealignmentTarget,
    reads: Sequence[Read],
    reference: ReferenceGenome,
    limits: SiteLimits = PAPER_LIMITS,
    config: AssemblyConfig = AssemblyConfig(),
) -> Optional[ConsensusWindow]:
    """Assembly-driven counterpart of :func:`repro.realign.consensus.build_site`.

    Same inputs and output type, so :class:`IndelRealigner` machinery
    and the accelerator model consume the result unchanged; only the
    consensus-generation strategy differs.
    """
    anchored = reads_for_target(target, reads)
    if not anchored:
        return None
    if len(anchored) > limits.max_reads:
        anchored = sorted(anchored, key=lambda r: (r.pos, r.name))[: limits.max_reads]
    max_read_len = max(len(read) for read in anchored)
    pad = max_read_len + 16
    window_start = max(0, min(read.pos for read in anchored) - pad)
    window_end = min(reference.length(target.chrom),
                     max(read.end for read in anchored) + pad)
    if window_end - window_start > limits.max_consensus_length:
        centre = (target.start + target.end) // 2
        half = limits.max_consensus_length // 2
        window_start = max(0, centre - half)
        window_end = min(reference.length(target.chrom),
                         window_start + limits.max_consensus_length)
    window = reference.fetch(target.chrom, window_start, window_end)

    consensuses: List[str] = [window]
    indels: List[Optional[ObservedIndel]] = [None]
    seen: Set[str] = {window}
    for haplotype in assemble_haplotypes(window, anchored, config):
        if len(consensuses) >= limits.max_consensuses:
            break
        if haplotype in seen:
            continue
        indel = _indel_from_alignment(window, haplotype, window_start,
                                      config.scoring)
        if indel is None:
            continue
        from repro.realign.consensus import apply_indel_to_window

        candidate = apply_indel_to_window(window, window_start, indel)
        if candidate is None or candidate in seen:
            continue
        if not max_read_len <= len(candidate) <= limits.max_consensus_length:
            continue
        consensuses.append(candidate)
        indels.append(indel)
        seen.add(candidate)
    if len(consensuses) < 2:
        return None
    min_cons_len = min(len(c) for c in consensuses)
    usable = [read for read in anchored if len(read) <= min_cons_len]
    if not usable:
        return None
    site = RealignmentSite(
        chrom=target.chrom,
        start=window_start,
        consensuses=tuple(consensuses),
        reads=tuple(read.seq for read in usable),
        quals=tuple(read.quals for read in usable),
        limits=limits,
    )
    return ConsensusWindow(site=site, reads=tuple(usable),
                           indels=tuple(indels))
