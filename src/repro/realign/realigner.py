"""The end-to-end software INDEL realigner (GATK3 functional baseline).

Drives the full per-contig flow: identify targets, assemble a
:class:`RealignmentSite` per target, run Algorithms 1 + 2, and rewrite the
winning reads' alignments. This is the *functional* reference against
which the accelerator model must be bit-identical; its *work counters*
(unpruned base comparisons, per-site shapes) feed the performance models
in :mod:`repro.perf` and :mod:`repro.baselines`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.realign.consensus import (
    ConsensusWindow,
    build_site,
    realigned_read_placement,
)
from repro.realign.site import RealignmentSite, SiteLimits, PAPER_LIMITS
from repro.realign.targets import (
    RealignmentTarget,
    TargetCreatorConfig,
    identify_targets,
)
from repro.realign.whd import SiteResult


@dataclass(frozen=True)
class SiteShape:
    """Structural summary of one realigned site (feeds the perf models)."""

    chrom: str
    start: int
    num_consensuses: int
    num_reads: int
    consensus_lengths: Tuple[int, ...]
    read_lengths: Tuple[int, ...]
    unpruned_comparisons: int
    reads_realigned: int

    @classmethod
    def from_site(cls, site: RealignmentSite, result: SiteResult) -> "SiteShape":
        return cls(
            chrom=site.chrom,
            start=site.start,
            num_consensuses=site.num_consensuses,
            num_reads=site.num_reads,
            consensus_lengths=tuple(len(c) for c in site.consensuses),
            read_lengths=tuple(len(r) for r in site.reads),
            unpruned_comparisons=site.unpruned_comparisons(),
            reads_realigned=result.num_realigned,
        )


@dataclass
class RealignerReport:
    """Aggregate statistics of one realignment run.

    ``reads_realigned`` counts the kernel's realign decisions;
    ``reads_moved`` counts the strict subset whose placement
    ``(pos, cigar)`` actually changed -- a read the kernel re-confirms
    at its input placement is realigned but not moved. The evaluation
    harness (:mod:`repro.evaluate`) reports both.
    """

    targets_identified: int = 0
    sites_built: int = 0
    reads_examined: int = 0
    reads_realigned: int = 0
    reads_moved: int = 0
    unpruned_comparisons: int = 0
    site_shapes: List[SiteShape] = field(default_factory=list)

    def merge(self, other: "RealignerReport") -> None:
        self.targets_identified += other.targets_identified
        self.sites_built += other.sites_built
        self.reads_examined += other.reads_examined
        self.reads_realigned += other.reads_realigned
        self.reads_moved += other.reads_moved
        self.unpruned_comparisons += other.unpruned_comparisons
        self.site_shapes.extend(other.site_shapes)


class IndelRealigner:
    """Software INDEL realigner over a reference genome."""

    def __init__(
        self,
        reference: ReferenceGenome,
        creator_config: Optional[TargetCreatorConfig] = None,
        limits: SiteLimits = PAPER_LIMITS,
        vectorized: Optional[bool] = None,
        consensus_strategy: str = "observed",
        scoring: str = "similarity",
        engine=None,
        kernel: str = "auto",
    ):
        """``consensus_strategy`` selects how alternate haplotypes are
        built: ``"observed"`` (the GATK3/paper approach -- INDELs lifted
        from read CIGARs) or ``"assembly"`` (HaplotypeCaller-style local
        de Bruijn assembly, :mod:`repro.realign.assembly`).
        ``scoring`` selects Algorithm 2's consensus-score semantics
        (see :func:`repro.realign.whd.score_and_select`).
        ``kernel`` names the WHD kernel for the per-site path
        (``auto``/``scalar``/``vector``/``fft``/``bitpack``/``native``;
        see :func:`repro.engine.autotune.dispatch_realign`) -- every
        choice is exact, so outputs are identical. ``vectorized`` is the
        deprecated spelling of ``kernel="vector"``/``"scalar"``; it
        still works but warns, and an explicit ``kernel`` wins.
        ``engine`` optionally routes the kernel through the batched
        execution engine (:mod:`repro.engine`): pass an
        :class:`repro.engine.EngineConfig` (its ``scoring`` is overridden
        by this realigner's) or a ready :class:`repro.engine.Engine`
        (used as-is; its config's scoring must match). The engine path is
        byte-identical to the per-site path (pinned by goldens)."""
        if consensus_strategy not in ("observed", "assembly"):
            raise ValueError(
                f"unknown consensus strategy {consensus_strategy!r}"
            )
        from repro.engine.autotune import KERNEL_CHOICES

        if kernel not in KERNEL_CHOICES:
            raise ValueError(
                f"unknown kernel {kernel!r}; choose from {KERNEL_CHOICES}"
            )
        if vectorized is not None:
            warnings.warn(
                "IndelRealigner(vectorized=...) is deprecated; use "
                "kernel='vector' / kernel='scalar' instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if kernel == "auto":
                kernel = "vector" if vectorized else "scalar"
        self.reference = reference
        self.creator_config = creator_config or TargetCreatorConfig(limits=limits)
        self.limits = limits
        self.vectorized = vectorized
        self.kernel = kernel
        self.consensus_strategy = consensus_strategy
        self.scoring = scoring
        self.engine = engine
        self._engine = None

    def _engine_instance(self):
        """Lazily resolve ``self.engine`` into a live engine (or None).

        With no explicit engine, ``REPRO_SHARDS=N`` (N > 1) routes the
        default per-site path through a :class:`~repro.shard.plane
        .ShardPlane` instead -- how CI reruns the whole tier-1 suite
        shard-parallel without touching any call site (the shard plane
        is byte-identical, so nothing else changes).
        """
        if self.engine is None:
            import os

            shards_text = os.environ.get("REPRO_SHARDS", "").strip()
            if shards_text and int(shards_text) > 1 \
                    and self._engine is None:
                from repro.engine import EngineConfig
                from repro.shard import ShardPlane

                self._engine = ShardPlane(
                    EngineConfig(scoring=self.scoring, kernel=self.kernel),
                    shards=int(shards_text),
                )
            return self._engine
        if self._engine is None:
            from dataclasses import replace as _replace

            from repro.engine import Engine, EngineConfig

            if isinstance(self.engine, Engine):
                self._engine = self.engine
            elif isinstance(self.engine, EngineConfig):
                self._engine = Engine(
                    _replace(self.engine, scoring=self.scoring)
                )
            elif hasattr(self.engine, "run_sites"):
                # Duck-typed engines -- the shard plane, a streaming
                # engine, anything with the run_sites contract.
                self._engine = self.engine
            else:
                raise TypeError(
                    "engine must be an EngineConfig, an Engine, an object "
                    "with run_sites(), or None"
                )
        return self._engine

    def build_sites(
        self, reads: Sequence[Read]
    ) -> Tuple[List[RealignmentTarget], List[ConsensusWindow]]:
        """Target identification + consensus generation, without realigning.

        Exposed separately because the accelerated system reuses exactly
        this front half on the host and offloads only the WHD kernel.
        """
        targets = identify_targets(reads, self.reference, self.creator_config)
        if self.consensus_strategy == "assembly":
            from repro.realign.assembly import build_site_by_assembly
            builder = build_site_by_assembly
        else:
            builder = build_site
        # A read belongs to exactly one target: consensus windows extend
        # beyond their (disjoint) target intervals, so without claiming,
        # a read anchored near two targets could be realigned twice with
        # order-dependent results.
        claimed: set = set()
        windows: List[ConsensusWindow] = []
        for target in targets:
            available = [read for read in reads if read.name not in claimed]
            built = builder(target, available, self.reference, self.limits)
            if built is not None:
                claimed.update(read.name for read in built.reads)
                windows.append(built)
        return targets, windows

    def realign(
        self, reads: Sequence[Read], telemetry=None, observer=None
    ) -> Tuple[List[Read], RealignerReport]:
        """Realign a read set; returns (updated reads, report).

        Reads keep their input order. Each read is realigned at most once
        (targets are disjoint by construction). With an ``engine``
        configured, every window's site runs through one
        :meth:`repro.engine.Engine.run_sites` call (batched kernel,
        optional prefilter/memo/worker pool) instead of the per-site
        loop; the realigned reads are byte-identical either way.
        ``telemetry`` is forwarded to whichever kernel path runs.

        ``observer``, when given, is called once per realigned site as
        ``observer(window, result, moved)`` where ``moved`` maps each
        repositioned read's name to its updated :class:`Read`. The
        evaluation harness uses this hook to attribute before/after
        outcome deltas to individual sites without re-deriving the
        window decomposition.
        """
        targets, windows = self.build_sites(reads)
        report = RealignerReport(
            targets_identified=len(targets),
            sites_built=len(windows),
            reads_examined=len(reads),
        )
        engine = self._engine_instance()
        if engine is not None:
            results = engine.run_sites(
                [window.site for window in windows], telemetry=telemetry
            )
        else:
            from repro.engine.autotune import dispatch_realign

            results = [
                dispatch_realign(window.site, kernel=self.kernel,
                                 scoring=self.scoring, telemetry=telemetry)
                for window in windows
            ]
        updates: Dict[str, Read] = {}
        for window, result in zip(windows, results):
            site = window.site
            report.unpruned_comparisons += site.unpruned_comparisons()
            report.site_shapes.append(SiteShape.from_site(site, result))
            moved: Dict[str, Read] = {}
            for j, read in enumerate(window.reads):
                if result.realign[j]:
                    updated_read = apply_realignment(
                        read, window, result.best_cons, int(result.new_pos[j])
                    )
                    updates[read.name] = updated_read
                    report.reads_realigned += 1
                    if (updated_read.pos != read.pos
                            or str(updated_read.cigar) != str(read.cigar)):
                        report.reads_moved += 1
                        moved[read.name] = updated_read
            if observer is not None:
                observer(window, result, moved)
        updated = [updates.get(read.name, read) for read in reads]
        return updated, report


def apply_realignment(
    read: Read,
    window: ConsensusWindow,
    best_cons: int,
    kernel_new_pos: int,
) -> Read:
    """Apply one kernel realignment decision to a read.

    The kernel reports ``new_pos = min_whd_idx + target_start`` (the
    read's winning offset against the picked consensus, translated by
    the window start); the host converts it into a reference-space
    position and CIGAR using the consensus's INDEL.
    """
    site = window.site
    consensus_offset = kernel_new_pos - site.start
    ref_pos, cigar = realigned_read_placement(
        window.indels[best_cons], site.start, consensus_offset, len(read)
    )
    return read.realigned(ref_pos, cigar)
