"""Fault tolerance for the host data plane (the worker process pool).

PR 1 made the *simulated accelerator* plane fault-tolerant; this module
does the same for the real multiprocess host plane that
:class:`repro.engine.parallel.Engine` and
:class:`repro.engine.stream.StreamingEngine` run on. On a cloud fleet,
host-side failure is the steady state -- spot preemption, OOM-killed
workers, hung processes -- and the unprotected pool turns each of them
into a run-wide outage: a worker SIGKILLed mid-chunk silently loses the
chunk's result and the bounded in-flight window blocks forever, a
broken pool aborts the run, a crashed worker leaks its shared-memory
arena.

The machinery mirrors the accelerator-side design piece for piece:

- :class:`WorkerFaultPlan` is the chaos injector -- the same seeded,
  order-independent keyed-generator design as
  :class:`~repro.resilience.faults.FaultPlan`, with a taxonomy of four
  worker faults (SIGKILL, hang, delay, error) drawn per
  ``(chunk, offset, attempt)`` plus scripted overrides so a test can
  kill a worker at a *chosen* chunk;
- :class:`WorkerRecovery` is the policy switch (fault plan, per-chunk
  deadline, the existing :class:`~repro.resilience.policy.RetryPolicy`
  for backoff);
- :class:`ResilientPool` is the recovery engine: a watchdog thread
  arms a deadline per dispatched chunk, detects lost results (hung or
  killed workers), resubmits under retry/backoff, respawns the pool on
  ``BrokenProcessPool``, **bisects** chunks that fail repeatedly, and
  finally quarantines unrecoverable single-site chunks to the inline
  serial realigner in the parent -- mirroring unit quarantine's drain
  to the software fallback, so output stays byte-identical to a
  fault-free run no matter what was injected.

Recovery is observable: ``worker.*`` counters (injections by kind,
deadline expirations, retries, bisections, quarantines, pool respawns)
and one ``CAT_RECOVERY`` span per recovery action
(:func:`record_recovery_spans`), next to the ``CAT_STREAM`` /
``CAT_ENGINE`` chunk timelines. See docs/RESILIENCE.md ("Host data
plane fault model").
"""

from __future__ import annotations

import enum
import logging
import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.resilience.faults import keyed_draw
from repro.resilience.policy import RetryPolicy

logger = logging.getLogger(__name__)


class WorkerFaultKind(enum.Enum):
    """Everything the chaos layer can do to a worker process."""

    KILL = "worker-kill"      # SIGKILL mid-chunk: result lost, pool broken
    HANG = "worker-hang"      # worker wedges (sleeps) holding the chunk
    DELAY = "worker-delay"    # chunk completes, but late (deadline races)
    ERROR = "worker-error"    # chunk raises InjectedWorkerError


#: The worker-fault kinds, in cumulative-draw order.
WORKER_FAULT_KINDS = (
    WorkerFaultKind.KILL,
    WorkerFaultKind.HANG,
    WorkerFaultKind.DELAY,
    WorkerFaultKind.ERROR,
)


class InjectedWorkerError(RuntimeError):
    """The error a chaos-planned ERROR fault raises inside a worker."""


@dataclass(frozen=True)
class WorkerFaultEvent:
    """One injected worker fault: what strikes which dispatch attempt.

    ``magnitude`` carries the kind-specific parameter in *seconds*: the
    sleep for ``DELAY`` and ``HANG``, 0 otherwise. ``lo`` is the site
    offset inside the chunk (non-zero only for bisected sub-chunks), so
    a bisected half draws independently of its parent chunk.
    """

    kind: WorkerFaultKind
    chunk: int
    attempt: int
    lo: int = 0
    magnitude: float = 0.0


@dataclass(frozen=True)
class ForcedWorkerFault:
    """A scripted fault: strike exactly this dispatch attempt.

    Regression tests use these to place one specific fault -- "SIGKILL
    the worker holding chunk 2 on its first attempt" -- instead of
    relying on rates to produce it.
    """

    chunk: int
    attempt: int
    kind: WorkerFaultKind
    lo: int = 0
    magnitude: float = 0.0


@dataclass(frozen=True)
class WorkerFaultPlan:
    """A seeded, order-independent schedule of worker faults.

    Rates are per-dispatch-attempt probabilities and must sum to at
    most 1. Every decision is a :func:`~repro.resilience.faults.keyed_draw`
    over ``(seed, "worker", chunk, lo, attempt)``, so the same plan
    answers the same way however many times -- and in whatever order --
    the recovery machinery asks, and a chaos run replays exactly from
    one ``--chaos-seed``. ``forced`` entries win over the rate draw for
    their exact ``(chunk, lo, attempt)`` key.

    >>> plan = WorkerFaultPlan.chaos(seed=7, rate=0.5)
    >>> outcome = plan.chunk_outcome(3, 0, 0)
    >>> outcome == plan.chunk_outcome(3, 0, 0)  # order-independent
    True
    >>> WorkerFaultPlan.none().chunk_outcome(3, 0, 0) is None
    True
    >>> scripted = WorkerFaultPlan.scripted(
    ...     ForcedWorkerFault(chunk=2, attempt=0, kind=WorkerFaultKind.KILL))
    >>> scripted.chunk_outcome(2, 0, 0).kind
    <WorkerFaultKind.KILL: 'worker-kill'>
    >>> scripted.chunk_outcome(2, 0, 1) is None  # the retry succeeds
    True
    """

    seed: int = 0
    kill_rate: float = 0.0
    hang_rate: float = 0.0
    delay_rate: float = 0.0
    error_rate: float = 0.0
    delay_range: Tuple[float, float] = (0.005, 0.05)
    hang_seconds: float = 60.0
    forced: Tuple[ForcedWorkerFault, ...] = ()

    def __post_init__(self) -> None:
        for name in ("kill_rate", "hang_rate", "delay_rate", "error_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.worker_fault_rate > 1.0:
            raise ValueError("worker fault rates sum past 1")
        lo, hi = self.delay_range
        if not 0.0 <= lo <= hi:
            raise ValueError("delay range must be non-negative and ordered")
        if self.hang_seconds <= 0.0:
            raise ValueError("hang_seconds must be positive")

    # -- construction ---------------------------------------------------
    @classmethod
    def none(cls) -> "WorkerFaultPlan":
        """The fault-free plan (every query answers 'no fault')."""
        return cls(seed=0)

    @classmethod
    def chaos(cls, seed: int, rate: float, **overrides) -> "WorkerFaultPlan":
        """Spread one scalar ``rate`` over the worker-fault taxonomy.

        ``rate`` is the per-attempt probability that a chunk dispatch
        faults, split kill 25% / hang 15% / delay 30% / error 30% --
        kills and hangs are the expensive recoveries (broken pool,
        deadline wait), so they get the smaller shares, matching the
        spot-fleet intuition that most failures are transient.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("fault rate must be in [0, 1]")
        return cls(
            seed=seed,
            kill_rate=0.25 * rate,
            hang_rate=0.15 * rate,
            delay_rate=0.30 * rate,
            error_rate=0.30 * rate,
            **overrides,
        )

    @classmethod
    def scripted(cls, *faults: ForcedWorkerFault, seed: int = 0,
                 **overrides) -> "WorkerFaultPlan":
        """A plan that strikes exactly the given dispatch attempts."""
        return cls(seed=seed, forced=tuple(faults), **overrides)

    # -- aggregate rates ------------------------------------------------
    @property
    def worker_fault_rate(self) -> float:
        return (self.kill_rate + self.hang_rate
                + self.delay_rate + self.error_rate)

    @property
    def is_fault_free(self) -> bool:
        return self.worker_fault_rate == 0.0 and not self.forced

    # -- deterministic draws --------------------------------------------
    def draw(self, domain: str, *key: int) -> float:
        """One uniform [0, 1) draw keyed by ``(seed, domain, *key)``."""
        return keyed_draw(self.seed, domain, *key)

    def chunk_outcome(
        self, chunk: int, lo: int, attempt: int
    ) -> Optional[WorkerFaultEvent]:
        """Does this chunk dispatch attempt fault in its worker, and how?

        One cumulative draw selects among the four kinds so their
        probabilities are exact and mutually exclusive; magnitudes are
        resolved here (not in the worker) so the parent can *predict*
        every injection for telemetry from the same plan.
        """
        for forced in self.forced:
            if (forced.chunk, forced.lo, forced.attempt) == (chunk, lo,
                                                             attempt):
                return WorkerFaultEvent(
                    kind=forced.kind, chunk=chunk, lo=lo, attempt=attempt,
                    magnitude=self._magnitude(forced.kind, chunk, lo,
                                              attempt, forced.magnitude),
                )
        if self.worker_fault_rate == 0.0:
            return None
        u = self.draw("worker", chunk, lo, attempt)
        edge = 0.0
        for kind, rate in zip(
            WORKER_FAULT_KINDS,
            (self.kill_rate, self.hang_rate, self.delay_rate,
             self.error_rate),
        ):
            edge += rate
            if u < edge:
                return WorkerFaultEvent(
                    kind=kind, chunk=chunk, lo=lo, attempt=attempt,
                    magnitude=self._magnitude(kind, chunk, lo, attempt, 0.0),
                )
        return None

    def _magnitude(self, kind: WorkerFaultKind, chunk: int, lo: int,
                   attempt: int, forced_magnitude: float) -> float:
        if forced_magnitude > 0.0:
            return forced_magnitude
        if kind is WorkerFaultKind.HANG:
            return self.hang_seconds
        if kind is WorkerFaultKind.DELAY:
            low, high = self.delay_range
            return low + (high - low) * self.draw("worker-delay", chunk,
                                                  lo, attempt)
        return 0.0


def perform_fault(event: WorkerFaultEvent) -> None:
    """Execute one planned fault inside a worker process."""
    if event.kind is WorkerFaultKind.KILL:
        os.kill(os.getpid(), signal.SIGKILL)
    elif event.kind in (WorkerFaultKind.HANG, WorkerFaultKind.DELAY):
        time.sleep(event.magnitude)
    elif event.kind is WorkerFaultKind.ERROR:
        raise InjectedWorkerError(
            f"injected error in chunk {event.chunk} (offset {event.lo}, "
            f"attempt {event.attempt})"
        )


@dataclass(frozen=True)
class WorkerRecovery:
    """Everything host data-plane recovery needs, in one switch.

    Pass one to :class:`repro.engine.Engine` /
    :class:`repro.engine.StreamingEngine` (or set the environment
    variables below) to run the worker pool in resilient mode.
    ``chunk_deadline`` is the wall-clock seconds a dispatched chunk may
    stay unanswered before the watchdog declares it lost; it must
    comfortably exceed the slowest real chunk, but a too-tight deadline
    only costs duplicate work -- late results are still accepted, so
    output never changes. ``cycle_seconds`` scales the shared
    :class:`~repro.resilience.policy.RetryPolicy` cycle schedule onto
    the host's wall clock.

    Environment (read by :meth:`from_env`, consulted by the engines
    when no explicit recovery is given -- this is how CI runs the whole
    tier-1 suite under injected worker faults):

    - ``REPRO_WORKER_FAULT_RATE``: scalar chaos rate for
      :meth:`WorkerFaultPlan.chaos`;
    - ``REPRO_CHAOS_SEED``: the plan seed (default 0);
    - ``REPRO_CHUNK_DEADLINE``: per-chunk deadline seconds;
    - ``REPRO_WORKER_HANG_SECONDS``: how long an injected hang sleeps.
    """

    plan: WorkerFaultPlan = field(default_factory=WorkerFaultPlan.none)
    retry: RetryPolicy = RetryPolicy()
    chunk_deadline: float = 30.0
    cycle_seconds: float = 1e-6
    watchdog_tick: float = 0.02

    def __post_init__(self) -> None:
        if self.chunk_deadline <= 0.0:
            raise ValueError("chunk_deadline must be positive")
        if self.cycle_seconds <= 0.0:
            raise ValueError("cycle_seconds must be positive")
        if self.watchdog_tick <= 0.0:
            raise ValueError("watchdog_tick must be positive")

    @classmethod
    def chaos(cls, seed: int, rate: float, **overrides) -> "WorkerRecovery":
        """Default recovery policies over a scalar-rate chaos plan."""
        return cls(plan=WorkerFaultPlan.chaos(seed, rate), **overrides)

    @classmethod
    def from_env(cls, env=None) -> Optional["WorkerRecovery"]:
        """Build a recovery config from the environment, or ``None``.

        Returns ``None`` when neither ``REPRO_WORKER_FAULT_RATE`` nor
        ``REPRO_CHUNK_DEADLINE`` is set, so the engines' default
        (unrecovered, zero-overhead) paths stay exactly as they were.
        """
        env = os.environ if env is None else env
        rate_text = env.get("REPRO_WORKER_FAULT_RATE", "").strip()
        deadline_text = env.get("REPRO_CHUNK_DEADLINE", "").strip()
        if not rate_text and not deadline_text:
            return None
        rate = float(rate_text) if rate_text else 0.0
        seed = int(env.get("REPRO_CHAOS_SEED", "0") or 0)
        plan_overrides = {}
        hang_text = env.get("REPRO_WORKER_HANG_SECONDS", "").strip()
        if hang_text:
            plan_overrides["hang_seconds"] = float(hang_text)
        overrides = {}
        if deadline_text:
            overrides["chunk_deadline"] = float(deadline_text)
        return cls(plan=WorkerFaultPlan.chaos(seed, rate, **plan_overrides),
                   **overrides)

    def completion_bound_seconds(self, batch: int, chunks: int) -> float:
        """A generous upper bound on one run's recovery time.

        Exceeding it means the recovery machinery itself deadlocked (a
        bug), so the engines use it as a backstop timeout that turns a
        silent hang into a loud :class:`ResilienceError`.
        """
        tree = 2 * max(1, batch)  # bisection tree nodes per chunk, + slack
        attempts = self.retry.max_attempts + 1
        return max(300.0,
                   self.chunk_deadline * attempts * tree * max(1, chunks))


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery action on the host plane (becomes a CAT_RECOVERY span)."""

    name: str
    start: float
    end: float
    chunk: int = -1
    attempt: int = 0


def record_recovery_spans(telemetry, events: Sequence[RecoveryEvent],
                          origin: Optional[float] = None) -> None:
    """Record recovery actions as ``CAT_RECOVERY`` spans on one track.

    Companion to :func:`repro.perf.fleet.record_stream_chunks`: events
    land on a single ``worker recovery`` track, offset from ``origin``
    on the shared ``perf_counter`` clock, so a Chrome trace shows each
    kill/retry/quarantine next to the chunk timeline it disrupted.
    Zero-length events (an instantaneous resubmit) still export -- the
    trace writer floors span durations at 1 us.
    """
    from repro.telemetry.spans import CAT_RECOVERY

    if telemetry is None or not events:
        return
    if telemetry.ticks_per_second is None:
        telemetry.ticks_per_second = 1.0
    base = origin if origin is not None else min(e.start for e in events)
    for event in events:
        telemetry.span(
            event.name, "worker recovery",
            max(0.0, event.start - base), max(0.0, event.end - base),
            CAT_RECOVERY, chunk=event.chunk, attempt=event.attempt,
        )
    telemetry.count("worker.recovery_spans", len(events))


# -- worker-side entry points -------------------------------------------

#: The fault plan installed in each pool worker by the initializer
#: (None in the parent and in fault-free workers).
_WORKER_FAULT_PLAN: Optional[WorkerFaultPlan] = None


def _init_resilient_worker(config, profile, plan) -> None:
    """Pool initializer: engine config/profile plus the fault plan."""
    global _WORKER_FAULT_PLAN
    from repro.engine import parallel

    parallel._init_worker(config, profile)
    _WORKER_FAULT_PLAN = plan if plan is not None and not plan.is_fault_free \
        else None


@dataclass(frozen=True)
class _WorkerTask:
    """One dispatch payload: a chunk (or bisected slice) of sites.

    Exactly one of ``sites`` / ``descriptor`` is set. The descriptor is
    the zero-copy shared-memory path (first attempt of a streamed
    chunk); retries and bisected slices carry sites inline -- recovery
    is rare, so the one extra pickle never shows on the fast path.
    """

    chunk_id: int
    lo: int
    attempt: int
    sites: Optional[Tuple] = None
    descriptor: Optional[object] = None


def _run_resilient_task(task: _WorkerTask):
    """Worker entry point: maybe fault, then realign the task's sites."""
    from repro.engine import parallel
    from repro.engine.shmem import unpack_chunk

    if _WORKER_FAULT_PLAN is not None:
        event = _WORKER_FAULT_PLAN.chunk_outcome(task.chunk_id, task.lo,
                                                 task.attempt)
        if event is not None:
            perform_fault(event)
    if task.descriptor is not None:
        sites = unpack_chunk(task.descriptor)
    else:
        sites = list(task.sites)
    _chunk_id, results, start, end, counters = parallel._realign_chunk(
        task.chunk_id, sites, parallel._WORKER_CONFIG
    )
    return (task.chunk_id, task.lo, len(sites), results, start, end,
            counters)


# -- parent-side recovery machinery -------------------------------------


@dataclass
class _TaskState:
    """Parent-side record of one dispatchable slice of one chunk."""

    chunk_id: int
    lo: int
    sites: List
    descriptor: Optional[object] = None
    attempt: int = 0        # next attempt number to dispatch
    epoch: int = 0          # bumps per (re)dispatch; stale futures ignored
    dispatched: bool = False
    dispatched_at: float = 0.0
    deadline: float = float("inf")
    not_before: float = 0.0
    quarantined: bool = False
    running_inline: bool = False

    @property
    def key(self) -> Tuple[int, int]:
        return (self.chunk_id, self.lo)


@dataclass
class _ChunkState:
    """Parent-side record of one submitted chunk's assembly."""

    chunk_id: int
    num_sites: int
    on_done: Callable
    submitted_at: float
    parts: Dict[int, Tuple] = field(default_factory=dict)
    covered: set = field(default_factory=set)
    recovered: bool = False
    done: bool = False


def _teardown_executor(executor, join_timeout: float = 1.0) -> None:
    """Kill an executor's workers (hung ones included) and shut it down."""
    processes = list(getattr(executor, "_processes", {}).values())
    for process in processes:
        try:
            process.kill()
        except Exception:  # pragma: no cover - already dead
            pass
    for process in processes:
        try:
            process.join(join_timeout)
        except Exception:  # pragma: no cover - platform dependent
            pass
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass


class ResilientPool:
    """A process pool that survives killed, hung, and erroring workers.

    Chunks submitted via :meth:`submit_chunk` are dispatched to a
    ``ProcessPoolExecutor`` and delivered to ``on_done`` exactly once,
    as the same ``(chunk_id, results, start, end, counters)`` outcome
    tuple the plain pool paths produce -- so
    :class:`~repro.engine.parallel.Engine` and
    :class:`~repro.engine.stream.StreamingEngine` consume recovered and
    unrecovered chunks identically. Recovery is layered:

    1. **deadline watchdog** -- every dispatched chunk gets
       ``chunk_deadline`` seconds; an overdue chunk is presumed lost
       (hung or killed worker) and resubmitted with backoff. The old
       attempt's result is *still accepted if it arrives first* --
       first completion wins, duplicates are dropped -- so a deadline
       that fires on a merely-slow chunk costs duplicate work, never
       correctness.
    2. **broken-pool respawn** -- a SIGKILLed worker breaks the whole
       executor (every pending future fails); the watchdog kills the
       carcass, forks a fresh executor, and resubmits everything that
       was in flight. Repeated deadline expiries with no completions
       (all workers hung) force the same respawn.
    3. **bisect + quarantine** -- a chunk that exhausts
       ``retry.max_attempts`` is split in half and the halves retried
       as independent tasks (fresh fault-plan keys); a single site that
       still cannot complete is quarantined to the inline serial
       realigner in the parent process, mirroring unit quarantine's
       software fallback. Results reassemble in site order, so output
       is byte-identical however a chunk was recovered.

    Real (non-injected) worker exceptions ride the same escalation and
    surface from the quarantine path with their genuine traceback.
    """

    def __init__(self, config, recovery: WorkerRecovery, profile=None):
        self.config = config
        self.recovery = recovery
        self.profile = profile
        self._lock = threading.RLock()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._generation = 0
        self._tasks: Dict[Tuple[int, int], _TaskState] = {}
        self._chunks: Dict[int, _ChunkState] = {}
        self._counters: Dict[str, int] = {}
        self._events: List[RecoveryEvent] = []
        self._expiries_since_completion = 0
        self._broken = False
        self._closed = False
        self._stop = threading.Event()
        self._watchdog: Optional[threading.Thread] = None

    # -- public API -----------------------------------------------------
    def begin_run(self) -> None:
        """Forget any state left by an abandoned previous run."""
        with self._lock:
            for task in self._tasks.values():
                task.epoch += 1
            self._tasks.clear()
            self._chunks.clear()
            self._counters.clear()
            self._events.clear()
            self._expiries_since_completion = 0

    def submit_chunk(self, chunk_id: int, sites: Sequence, on_done: Callable,
                     descriptor=None) -> None:
        """Submit one chunk; ``on_done`` receives its outcome tuple once.

        On unrecoverable failure (a genuine bug surfacing through the
        quarantine path), ``on_done`` receives the exception object
        instead -- callers re-raise it.
        """
        if not sites:
            raise ValueError("cannot submit an empty chunk")
        self._ensure_watchdog()
        with self._lock:
            if self._closed:
                raise RuntimeError("ResilientPool is closed")
            if chunk_id in self._chunks:
                raise ValueError(f"chunk {chunk_id} already submitted")
            now = time.perf_counter()
            self._chunks[chunk_id] = _ChunkState(
                chunk_id=chunk_id, num_sites=len(sites), on_done=on_done,
                submitted_at=now,
            )
            task = _TaskState(chunk_id=chunk_id, lo=0, sites=list(sites),
                              descriptor=descriptor)
            self._tasks[task.key] = task
            self._dispatch_locked(task, now)

    def drain(self) -> Tuple[Dict[str, int], List[RecoveryEvent]]:
        """Pop the accumulated recovery counters and events."""
        with self._lock:
            counters, self._counters = self._counters, {}
            events, self._events = list(self._events), []
        return counters, events

    def close(self) -> None:
        """Stop the watchdog and kill the executor (hung workers too)."""
        self._stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=5.0)
            self._watchdog = None
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
            for task in self._tasks.values():
                task.epoch += 1
            self._tasks.clear()
            self._chunks.clear()
        if executor is not None:
            _teardown_executor(executor)

    # -- internals ------------------------------------------------------
    def _count(self, name: str, delta: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + delta

    def _event(self, name: str, start: float, end: float, chunk: int = -1,
               attempt: int = 0) -> None:
        self._events.append(RecoveryEvent(name=name, start=start, end=end,
                                          chunk=chunk, attempt=attempt))

    def _ensure_watchdog(self) -> None:
        if self._watchdog is None or not self._watchdog.is_alive():
            self._stop.clear()
            self._watchdog = threading.Thread(
                target=self._watch, name="repro-worker-watchdog", daemon=True,
            )
            self._watchdog.start()

    def _ensure_executor_locked(self) -> Optional[ProcessPoolExecutor]:
        if self._broken:
            return None
        if self._executor is None:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = multiprocessing.get_context()
            plan = self.recovery.plan
            self._executor = ProcessPoolExecutor(
                max_workers=self.config.workers,
                mp_context=ctx,
                initializer=_init_resilient_worker,
                initargs=(self.config, self.profile,
                          None if plan.is_fault_free else plan),
            )
        return self._executor

    def _dispatch_locked(self, task: _TaskState, now: float) -> None:
        """Submit one task to the executor (lock held)."""
        if self._tasks.get(task.key) is not task or task.dispatched \
                or task.quarantined:
            return
        executor = self._ensure_executor_locked()
        if executor is None:
            return  # broken; the watchdog respawns and retries
        plan = self.recovery.plan
        injected = plan.chunk_outcome(task.chunk_id, task.lo, task.attempt)
        if injected is not None:
            # The parent predicts the injection from the shared plan --
            # a SIGKILLed worker cannot report its own death.
            self._count(f"worker.injected.{injected.kind.value}")
        use_descriptor = task.descriptor is not None and task.attempt == 0
        payload = _WorkerTask(
            chunk_id=task.chunk_id, lo=task.lo, attempt=task.attempt,
            sites=None if use_descriptor else tuple(task.sites),
            descriptor=task.descriptor if use_descriptor else None,
        )
        try:
            future = executor.submit(_run_resilient_task, payload)
        except (BrokenProcessPool, RuntimeError):
            self._broken = True
            return
        task.dispatched = True
        task.dispatched_at = now
        task.deadline = now + self.recovery.chunk_deadline
        epoch, generation = task.epoch, self._generation
        future.add_done_callback(
            lambda f, key=task.key, e=epoch, g=generation:
                self._on_future(key, e, g, f)
        )

    def _on_future(self, key, epoch: int, generation: int, future) -> None:
        """Executor callback: file a completion or escalate a failure."""
        try:
            if future.cancelled():
                return
            error = future.exception()
        except CancelledError:  # pragma: no cover - shutdown race
            return
        with self._lock:
            if self._closed:
                return
            if error is None:
                self._accept_locked(future.result())
                return
            task = self._tasks.get(key)
            if task is None or not task.dispatched or task.epoch != epoch:
                return  # a stale attempt we already gave up on
            if isinstance(error, BrokenProcessPool):
                # One broken future means the whole pool is gone; flag
                # it once and let the watchdog respawn + resubmit every
                # in-flight task (this callback runs on the dying
                # executor's own manager thread, which must not join it).
                self._broken = True
                return
            now = time.perf_counter()
            self._count("worker.errors")
            self._event(
                f"error chunk {task.chunk_id}"
                + (f"+{task.lo}" if task.lo else ""),
                task.dispatched_at, now, chunk=task.chunk_id,
                attempt=task.attempt,
            )
            self._fail_locked(task, now, error=error)

    def _accept_locked(self, outcome) -> None:
        """File one completed slice; first completion wins per site."""
        chunk_id, lo, n, results, start, end, counters = outcome
        chunk = self._chunks.get(chunk_id)
        if chunk is None or chunk.done:
            self._count("worker.late_results")
            return
        covered = set(range(lo, lo + n))
        if covered & chunk.covered:
            self._count("worker.late_results")
            return
        chunk.covered |= covered
        chunk.parts[lo] = (results, start, end, counters)
        self._expiries_since_completion = 0
        # Retire any task (the completing one, or sub-tasks subsumed by
        # a late full-chunk result) whose whole range is now covered.
        for task_key, task in list(self._tasks.items()):
            if task.chunk_id != chunk_id:
                continue
            span = range(task.lo, task.lo + len(task.sites))
            if all(index in chunk.covered for index in span):
                task.epoch += 1
                del self._tasks[task_key]
        if len(chunk.covered) == chunk.num_sites:
            self._deliver_locked(chunk)

    def _deliver_locked(self, chunk: _ChunkState) -> None:
        chunk.done = True
        del self._chunks[chunk.chunk_id]
        parts = [chunk.parts[lo] for lo in sorted(chunk.parts)]
        results = [result for part in parts for result in part[0]]
        merged: Dict[str, int] = {}
        for part in parts:
            for name, value in part[3].items():
                merged[name] = merged.get(name, 0) + value
        if chunk.recovered:
            merged["worker.chunks_recovered"] = (
                merged.get("worker.chunks_recovered", 0) + 1
            )
        start = min(part[1] for part in parts)
        end = max(part[2] for part in parts)
        chunk.on_done((chunk.chunk_id, results, start, end, merged))

    def _abort_locked(self, chunk_id: int, error: BaseException) -> None:
        """Deliver a genuine failure (quarantine path raised) upward."""
        chunk = self._chunks.get(chunk_id)
        if chunk is None or chunk.done:
            return
        chunk.done = True
        del self._chunks[chunk_id]
        for task_key, task in list(self._tasks.items()):
            if task.chunk_id == chunk_id:
                task.epoch += 1
                del self._tasks[task_key]
        chunk.on_done(error)

    def _fail_locked(self, task: _TaskState, now: float,
                     error: Optional[BaseException] = None) -> None:
        """Escalate one failed dispatch: retry, bisect, or quarantine."""
        task.epoch += 1
        task.dispatched = False
        task.deadline = float("inf")
        chunk = self._chunks.get(task.chunk_id)
        if chunk is None:
            self._tasks.pop(task.key, None)
            return
        chunk.recovered = True
        task.attempt += 1
        if task.attempt < self.recovery.retry.max_attempts:
            self._count("worker.retries")
            backoff = self.recovery.retry.backoff_seconds(
                task.attempt - 1, self.recovery.plan,
                target=task.chunk_id * 4096 + task.lo,
                cycle_seconds=self.recovery.cycle_seconds,
            )
            task.not_before = now + backoff
            return
        if len(task.sites) > 1:
            # Poison chunk: bisect and retry the halves independently
            # (fresh (chunk, lo) fault-plan keys and attempt budgets).
            self._count("worker.bisects")
            self._event(
                f"bisect chunk {task.chunk_id}"
                + (f"+{task.lo}" if task.lo else ""),
                now, now, chunk=task.chunk_id, attempt=task.attempt,
            )
            del self._tasks[task.key]
            mid = len(task.sites) // 2
            for lo, part in ((task.lo, task.sites[:mid]),
                             (task.lo + mid, task.sites[mid:])):
                child = _TaskState(chunk_id=task.chunk_id, lo=lo,
                                   sites=list(part))
                self._tasks[child.key] = child
                self._dispatch_locked(child, now)
            return
        # Unrecoverable single site: quarantine to the inline serial
        # realigner in the parent (the watchdog runs it outside the
        # lock), mirroring unit quarantine's software fallback.
        self._count("worker.quarantined_sites")
        self._event(
            f"quarantine chunk {task.chunk_id} site {task.lo}",
            now, now, chunk=task.chunk_id, attempt=task.attempt,
        )
        task.quarantined = True
        if error is not None:
            logger.warning(
                "site %d of chunk %d quarantined to inline realignment "
                "after %d attempts (last error: %s)",
                task.lo, task.chunk_id, task.attempt, error,
            )

    def _run_inline(self, task: _TaskState) -> None:
        """Quarantine fallback: realign one site serially in the parent."""
        from repro.engine import parallel

        start = time.perf_counter()
        try:
            _chunk_id, results, t0, t1, counters = parallel._realign_chunk(
                task.chunk_id, task.sites, self.config
            )
        except BaseException as error:
            with self._lock:
                self._abort_locked(task.chunk_id, error)
            return
        with self._lock:
            self._event(
                f"inline chunk {task.chunk_id} site {task.lo}",
                start, time.perf_counter(), chunk=task.chunk_id,
                attempt=task.attempt,
            )
            self._accept_locked((task.chunk_id, task.lo, len(task.sites),
                                 results, t0, t1, counters))

    def _watch(self) -> None:
        while not self._stop.wait(self.recovery.watchdog_tick):
            try:
                self._tick()
            except Exception:  # pragma: no cover - watchdog must survive
                logger.exception("worker-recovery watchdog tick failed")

    def _tick(self) -> None:
        teardown = None
        inline: List[_TaskState] = []
        with self._lock:
            if self._closed:
                return
            now = time.perf_counter()
            for task in list(self._tasks.values()):
                if task.dispatched and now >= task.deadline:
                    self._count("worker.deadline_expired")
                    self._event(
                        f"deadline chunk {task.chunk_id}"
                        + (f"+{task.lo}" if task.lo else ""),
                        task.dispatched_at, now, chunk=task.chunk_id,
                        attempt=task.attempt,
                    )
                    self._expiries_since_completion += 1
                    self._fail_locked(task, now)
            if self._expiries_since_completion >= max(1, self.config.workers):
                # Every worker could be wedged -- force a fresh pool.
                self._broken = True
                self._expiries_since_completion = 0
            if self._broken:
                teardown, self._executor = self._executor, None
                self._broken = False
                self._generation += 1
                self._count("worker.pool_respawns")
                self._event("respawn pool", now, time.perf_counter())
                # Every dispatched task's future died with the pool.
                for task in list(self._tasks.values()):
                    if task.dispatched:
                        self._count("worker.resubmitted")
                        self._fail_locked(task, now)
            for task in list(self._tasks.values()):
                if task.quarantined and not task.running_inline:
                    task.running_inline = True
                    inline.append(task)
            for task in list(self._tasks.values()):
                if (not task.dispatched and not task.quarantined
                        and now >= task.not_before):
                    self._dispatch_locked(task, now)
        if teardown is not None:
            _teardown_executor(teardown)
        for task in inline:
            self._run_inline(task)


__all__ = [
    "ForcedWorkerFault",
    "InjectedWorkerError",
    "RecoveryEvent",
    "ResilientPool",
    "WORKER_FAULT_KINDS",
    "WorkerFaultEvent",
    "WorkerFaultKind",
    "WorkerFaultPlan",
    "WorkerRecovery",
    "perform_fault",
    "record_recovery_spans",
]
