"""The fault taxonomy and the deterministic fault injector.

Every fault the chaos layer can inject is one of :class:`FaultKind`;
where and when they strike is decided by a :class:`FaultPlan`. The plan
is *seeded and order-independent*: each decision is drawn from a
generator keyed by ``(seed, domain, identifiers)``, so the same plan
gives the same answer no matter how many times -- or in what order --
the recovery machinery asks. That property is what makes chaos runs
reproducible from a single ``--chaos-seed`` and lets property tests
replay a fault schedule exactly.

Fault sites (see ``docs/RESILIENCE.md`` for the full taxonomy):

- **unit faults** strike one dispatch attempt of one target on one IR
  unit: the unit hangs (never responds), runs slow (clock throttling /
  fabric congestion), its RoCC completion response is dropped on the
  AXILite path, or the response arrives corrupted (caught by the CRC of
  :func:`repro.hw.axi.check_response`);
- **DMA faults** strike one transfer attempt on the PCIe channel: the
  EDMA driver reports an error mid-stream, or the transfer times out
  (:meth:`repro.hw.memory.PcieDmaModel.faulted_transfer_seconds`);
- **preemption** strikes a whole fleet instance: AWS reclaims the spot
  capacity a fraction of the way through its work
  (:func:`repro.perf.fleet.simulate_preemptions`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


def keyed_draw(seed: int, domain: str, *key: int) -> float:
    """One uniform [0, 1) draw keyed by ``(seed, domain, *key)``.

    The shared primitive behind every chaos plan (hardware
    :class:`FaultPlan`, host :class:`~repro.resilience.workers.WorkerFaultPlan`):
    identical keys give identical draws in any query order, and distinct
    domains decorrelate draws that share numeric identifiers.
    """
    digest = sum(ord(c) * 131 ** i for i, c in enumerate(domain))
    words = (seed, digest % (2**31)) + tuple(int(k) % (2**31) for k in key)
    return float(np.random.default_rng(words).random())


class FaultKind(enum.Enum):
    """Everything the chaos layer can break."""

    UNIT_HANG = "unit-hang"
    UNIT_SLOWDOWN = "unit-slowdown"
    RESPONSE_DROP = "response-drop"
    RESPONSE_CORRUPT = "response-corrupt"
    DMA_ERROR = "dma-error"
    DMA_TIMEOUT = "dma-timeout"
    PREEMPTION = "preemption"


#: The unit-attempt kinds, in cumulative-draw order.
UNIT_FAULT_KINDS = (
    FaultKind.UNIT_HANG,
    FaultKind.UNIT_SLOWDOWN,
    FaultKind.RESPONSE_DROP,
    FaultKind.RESPONSE_CORRUPT,
)

#: The DMA-attempt kinds, in cumulative-draw order.
DMA_FAULT_KINDS = (FaultKind.DMA_ERROR, FaultKind.DMA_TIMEOUT)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: what struck which attempt of which target.

    ``magnitude`` carries the kind-specific parameter: the slowdown
    factor for ``UNIT_SLOWDOWN``, the work fraction at which the
    instance dies for ``PREEMPTION``, and 0 otherwise.
    """

    kind: FaultKind
    target: int
    attempt: int
    unit: int = -1
    magnitude: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, order-independent schedule of injected faults.

    Rates are per-attempt probabilities; the four unit-fault rates must
    sum to at most 1, as must the two DMA rates. ``FaultPlan.none()``
    is the fault-free plan; ``FaultPlan.chaos(seed, rate)`` spreads a
    single scalar fault rate over the taxonomy with fixed weights.
    """

    seed: int = 0
    unit_hang_rate: float = 0.0
    unit_slowdown_rate: float = 0.0
    response_drop_rate: float = 0.0
    response_corrupt_rate: float = 0.0
    dma_error_rate: float = 0.0
    dma_timeout_rate: float = 0.0
    preemption_rate: float = 0.0
    slowdown_range: Tuple[float, float] = (2.0, 8.0)

    def __post_init__(self) -> None:
        for name in (
            "unit_hang_rate", "unit_slowdown_rate", "response_drop_rate",
            "response_corrupt_rate", "dma_error_rate", "dma_timeout_rate",
            "preemption_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.unit_fault_rate > 1.0:
            raise ValueError("unit fault rates sum past 1")
        if self.dma_fault_rate > 1.0:
            raise ValueError("DMA fault rates sum past 1")
        lo, hi = self.slowdown_range
        if not 1.0 <= lo <= hi:
            raise ValueError("slowdown factors must be >= 1 and ordered")

    # -- construction ---------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The fault-free plan (every query answers 'no fault')."""
        return cls(seed=0)

    @classmethod
    def chaos(cls, seed: int, rate: float) -> "FaultPlan":
        """Spread one scalar ``rate`` over the taxonomy.

        ``rate`` is the per-attempt probability that a hardware dispatch
        faults (split hang 20% / slowdown 30% / drop 25% / corrupt 25%);
        DMA attempts fault at ``rate / 5`` (errors 4:1 over timeouts)
        and fleet instances are preempted with probability ``rate``.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("fault rate must be in [0, 1]")
        return cls(
            seed=seed,
            unit_hang_rate=0.20 * rate,
            unit_slowdown_rate=0.30 * rate,
            response_drop_rate=0.25 * rate,
            response_corrupt_rate=0.25 * rate,
            dma_error_rate=0.16 * rate,
            dma_timeout_rate=0.04 * rate,
            preemption_rate=rate,
        )

    # -- aggregate rates ------------------------------------------------
    @property
    def unit_fault_rate(self) -> float:
        return (
            self.unit_hang_rate + self.unit_slowdown_rate
            + self.response_drop_rate + self.response_corrupt_rate
        )

    @property
    def dma_fault_rate(self) -> float:
        return self.dma_error_rate + self.dma_timeout_rate

    @property
    def is_fault_free(self) -> bool:
        return (
            self.unit_fault_rate == 0.0
            and self.dma_fault_rate == 0.0
            and self.preemption_rate == 0.0
        )

    # -- deterministic draws --------------------------------------------
    def draw(self, domain: str, *key: int) -> float:
        """One uniform [0, 1) draw keyed by ``(seed, domain, *key)``.

        Identical keys give identical draws in any query order; distinct
        domains decorrelate draws that share numeric identifiers.
        """
        return keyed_draw(self.seed, domain, *key)

    def attempt_outcome(
        self, unit: int, target: int, attempt: int
    ) -> Optional[FaultEvent]:
        """Does this dispatch attempt fault, and how?

        One cumulative draw selects among the four unit-fault kinds so
        their probabilities are exact and mutually exclusive.
        """
        if self.unit_fault_rate == 0.0:
            return None
        u = self.draw("unit", unit, target, attempt)
        edge = 0.0
        for kind, rate in zip(
            UNIT_FAULT_KINDS,
            (self.unit_hang_rate, self.unit_slowdown_rate,
             self.response_drop_rate, self.response_corrupt_rate),
        ):
            edge += rate
            if u < edge:
                magnitude = 0.0
                if kind is FaultKind.UNIT_SLOWDOWN:
                    lo, hi = self.slowdown_range
                    magnitude = lo + (hi - lo) * self.draw(
                        "slowdown", unit, target, attempt
                    )
                return FaultEvent(
                    kind=kind, target=target, attempt=attempt,
                    unit=unit, magnitude=magnitude,
                )
        return None

    def dma_outcome(self, target: int, attempt: int) -> Optional[FaultEvent]:
        """Does this target's transfer attempt fault on the PCIe channel?"""
        if self.dma_fault_rate == 0.0:
            return None
        u = self.draw("dma", target, attempt)
        edge = 0.0
        for kind, rate in zip(
            DMA_FAULT_KINDS, (self.dma_error_rate, self.dma_timeout_rate)
        ):
            edge += rate
            if u < edge:
                return FaultEvent(kind=kind, target=target, attempt=attempt)
        return None

    def preemption_fraction(self, instance: int) -> Optional[float]:
        """Is fleet instance ``instance`` preempted; if so, when?

        Returns the fraction of the instance's busy time at which AWS
        reclaims it (uniform over (0, 1)), or ``None`` if it survives.
        """
        if self.preemption_rate == 0.0:
            return None
        if self.draw("preempt", instance) >= self.preemption_rate:
            return None
        # Strictly interior: a preemption at exactly 0 or 1 degenerates
        # to "never started" / "already finished".
        return 0.01 + 0.98 * self.draw("preempt-at", instance)
