"""Fault injection and fault tolerance for the accelerated IR system.

The paper evaluates a sea of 32 IR units that never hangs, drops a RoCC
response, or loses its spot instance. Production operation (the ROADMAP
north star) makes partial hardware failure and cloud preemption the
steady state, so this package adds a deterministic chaos layer and the
recovery machinery that keeps realignment output bit-identical to a
fault-free run:

- :mod:`repro.resilience.faults` -- the fault taxonomy and the seeded,
  order-independent :class:`FaultPlan` injector;
- :mod:`repro.resilience.policy` -- retry/backoff, quarantine, and the
  :class:`ResilienceConfig` that switches the system into resilient
  operation;
- :mod:`repro.resilience.health` -- per-unit health records and
  fault-event counters threaded into ``SystemRunResult``;
- :mod:`repro.resilience.recovery` -- the watchdog-driven asynchronous
  scheduler that retries, quarantines, and degrades to the software
  realigner;
- :mod:`repro.resilience.workers` -- the same design applied to the
  *host* data plane: :class:`WorkerFaultPlan` chaos (SIGKILL / hang /
  delay / error of real worker processes) and the
  :class:`ResilientPool` watchdog (chunk deadlines, retry/bisect/
  quarantine, pool respawn) behind ``Engine``/``StreamingEngine``.

See ``docs/RESILIENCE.md`` for the taxonomy, policies, and guarantees.
"""

from repro.resilience.faults import FaultEvent, FaultKind, FaultPlan
from repro.resilience.health import (
    FaultCounters,
    ResilienceStats,
    UnitHealth,
)
from repro.resilience.policy import (
    QuarantinePolicy,
    ResilienceConfig,
    ResilienceError,
    RetryPolicy,
)
from repro.resilience.recovery import (
    ResilientScheduleResult,
    schedule_with_recovery,
)
from repro.resilience.workers import (
    ForcedWorkerFault,
    InjectedWorkerError,
    RecoveryEvent,
    ResilientPool,
    WorkerFaultEvent,
    WorkerFaultKind,
    WorkerFaultPlan,
    WorkerRecovery,
    record_recovery_spans,
)

__all__ = [
    "FaultCounters",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "ForcedWorkerFault",
    "InjectedWorkerError",
    "QuarantinePolicy",
    "RecoveryEvent",
    "ResilienceConfig",
    "ResilienceError",
    "ResilienceStats",
    "ResilientPool",
    "ResilientScheduleResult",
    "RetryPolicy",
    "UnitHealth",
    "WorkerFaultEvent",
    "WorkerFaultKind",
    "WorkerFaultPlan",
    "WorkerRecovery",
    "record_recovery_spans",
    "schedule_with_recovery",
]
