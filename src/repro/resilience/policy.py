"""Recovery policies: retry/backoff, quarantine, and the top-level config.

The policies are all deterministic. Backoff jitter is drawn from the
:class:`~repro.resilience.faults.FaultPlan`'s keyed generator, so a
chaos run's full recovery schedule -- not just its faults -- replays
exactly from one seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.host import HostWatchdog
from repro.resilience.faults import FaultPlan


class ResilienceError(RuntimeError):
    """Raised when recovery is impossible under the configured policy
    (e.g. retries exhausted with the software fallback disabled)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``max_attempts`` counts dispatches of one target (first try plus
    retries). Backoff doubles per retry from ``base_backoff_cycles`` up
    to ``max_backoff_cycles``, then +/- ``jitter_fraction`` of itself,
    with the jitter draw keyed by (target, attempt) so two targets
    backing off from the same failure wave do not re-collide on the
    dispatch channel.
    """

    max_attempts: int = 4
    base_backoff_cycles: int = 256
    max_backoff_cycles: int = 16_384
    jitter_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0 < self.base_backoff_cycles <= self.max_backoff_cycles:
            raise ValueError("backoff bounds must be positive and ordered")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter fraction must be in [0, 1]")

    def backoff_cycles(self, attempt: int, plan: FaultPlan, target: int) -> int:
        """Cycles to wait before dispatch attempt ``attempt + 1``."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        base = min(
            self.base_backoff_cycles * (2 ** attempt),
            self.max_backoff_cycles,
        )
        jitter = plan.draw("backoff", target, attempt)
        scale = 1.0 + self.jitter_fraction * (2.0 * jitter - 1.0)
        return max(1, int(round(base * scale)))

    def backoff_seconds(self, attempt: int, plan, target: int,
                        cycle_seconds: float = 1e-6) -> float:
        """Wall-clock backoff for host-side (worker pool) recovery.

        The host data plane has no cycle clock, so the cycle schedule is
        scaled by ``cycle_seconds`` (default 1 cycle = 1 microsecond --
        sub-millisecond first backoff, ~16 ms cap). ``plan`` is any
        chaos plan exposing the keyed ``draw`` method
        (:class:`~repro.resilience.faults.FaultPlan` or
        :class:`~repro.resilience.workers.WorkerFaultPlan`), so a chaos
        run's full host recovery schedule replays from one seed too.
        """
        if cycle_seconds <= 0:
            raise ValueError("cycle_seconds must be positive")
        return self.backoff_cycles(attempt, plan, target) * cycle_seconds


@dataclass(frozen=True)
class QuarantinePolicy:
    """When to pull a misbehaving unit out of the sea.

    A unit is quarantined after ``failure_threshold`` *consecutive*
    failed dispatches (a success resets the count: transient faults are
    forgiven, persistent ones are not). The sea never shrinks below
    ``min_active_units`` healthy units -- past that point the remaining
    units keep serving however flaky they are, and exhausted targets
    drain to the software fallback instead.
    """

    failure_threshold: int = 3
    min_active_units: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure threshold must be >= 1")
        if self.min_active_units < 0:
            raise ValueError("min_active_units must be non-negative")


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything the recovery machinery needs, in one switch.

    Attach one of these to :class:`repro.core.system.SystemConfig` to
    run the accelerated system in resilient mode. ``fallback_penalty``
    is the modelled cost ratio of the software realigner to one IR unit
    for the same target (the paper's per-target speedups put software in
    the tens-of-x range against a single data-parallel unit).
    """

    plan: FaultPlan = field(default_factory=FaultPlan.none)
    retry: RetryPolicy = RetryPolicy()
    quarantine: QuarantinePolicy = QuarantinePolicy()
    watchdog: HostWatchdog = HostWatchdog()
    software_fallback: bool = True
    fallback_penalty: float = 48.0

    def __post_init__(self) -> None:
        if self.fallback_penalty < 1.0:
            raise ValueError("fallback penalty must be >= 1")

    @classmethod
    def chaos(cls, seed: int, rate: float) -> "ResilienceConfig":
        """Default policies over a scalar-rate chaos plan."""
        return cls(plan=FaultPlan.chaos(seed, rate))
