"""Per-unit health tracking and fault-event counters.

These are the observability records threaded into
:class:`repro.core.system.SystemRunResult`: what was injected, what the
watchdog caught, which units degraded, and where every target finally
completed (hardware or software fallback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.resilience.faults import FaultEvent, FaultKind


@dataclass
class UnitHealth:
    """One IR unit's service record across a run."""

    unit: int
    attempts: int = 0
    successes: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    quarantined: bool = False
    busy_cycles: int = 0

    @property
    def failure_rate(self) -> float:
        if self.attempts == 0:
            return 0.0
        return self.failures / self.attempts

    def record_success(self, busy_cycles: int) -> None:
        self.attempts += 1
        self.successes += 1
        self.consecutive_failures = 0
        self.busy_cycles += busy_cycles

    def record_failure(self, busy_cycles: int) -> None:
        self.attempts += 1
        self.failures += 1
        self.consecutive_failures += 1
        self.busy_cycles += busy_cycles


@dataclass
class FaultCounters:
    """Every fault injected and every recovery action taken."""

    injected: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    watchdog_expirations: int = 0
    fallbacks: int = 0
    quarantined_units: int = 0

    def record(self, event: FaultEvent) -> None:
        key = event.kind.value
        self.injected[key] = self.injected.get(key, 0) + 1

    def count(self, kind: FaultKind) -> int:
        return self.injected.get(kind.value, 0)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())


@dataclass
class ResilienceStats:
    """A run's fault-tolerance outcome, as reported by the system.

    ``completions`` maps each scheduled position (dispatch order, so
    replicated rounds of the same site are distinct) to ``"hw"`` or
    ``"sw"``.
    """

    counters: FaultCounters
    unit_health: List[UnitHealth]
    completions: Dict[int, str]
    quarantined: List[int]
    hardware_makespan_cycles: int = 0
    fallback_cycles: int = 0

    @property
    def active_units(self) -> int:
        """Units still in service at the end of the run (N - k)."""
        return sum(1 for h in self.unit_health if not h.quarantined)

    @property
    def hardware_completions(self) -> int:
        return sum(1 for mode in self.completions.values() if mode == "hw")

    @property
    def software_completions(self) -> int:
        return sum(1 for mode in self.completions.values() if mode == "sw")

    @property
    def fallback_fraction(self) -> float:
        if not self.completions:
            return 0.0
        return self.software_completions / len(self.completions)

    def describe(self) -> str:
        injected = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(self.counters.injected.items())
        ) or "none"
        return (
            f"faults injected: {injected}; "
            f"retries {self.counters.retries}, "
            f"watchdog expirations {self.counters.watchdog_expirations}, "
            f"quarantined {self.counters.quarantined_units}, "
            f"software fallbacks {self.counters.fallbacks} "
            f"({self.fallback_fraction:.1%} of targets); "
            f"{self.active_units}/{len(self.unit_health)} units in service"
        )
