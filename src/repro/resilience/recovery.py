"""Watchdog-driven asynchronous scheduling with retry, quarantine, and
software fallback.

This is the fault-tolerant counterpart of
:func:`repro.core.scheduler.schedule_async`. It plays the same
event-driven game -- a serialized PCIe transfer channel feeding an
earliest-free heap of IR units -- but every dispatch attempt is exposed
to the :class:`~repro.resilience.faults.FaultPlan`:

- a clean attempt completes exactly as in the fault-free scheduler;
- a **slowdown** stretches the attempt; if it still beats the watchdog
  deadline it merely finishes late, otherwise the host cannot tell it
  from a hang and kills it at the deadline;
- a **hang** or **dropped response** occupies the unit until the
  watchdog fires (the host polls ``response valid`` and sees nothing);
- a **corrupted response** is caught immediately by the CRC of
  :func:`repro.hw.axi.check_response` and retried without waiting;
- a **DMA error/timeout** wastes channel cycles and retries the
  transfer.

Failed attempts retry with bounded exponential backoff and
deterministic jitter; units that fail
:attr:`~repro.resilience.policy.QuarantinePolicy.failure_threshold`
times in a row are quarantined (the sea degrades from N to N-k units);
targets that exhaust their retry budget -- or find every unit
quarantined -- drain to the software realigner on the host.

With a fault-free plan the result is *identical* (spans, makespan,
transfer total) to ``schedule_async``; property tests pin this.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.host import WatchdogBank
from repro.core.scheduler import (
    ScheduledTarget,
    ScheduleResult,
    TimelineSpan,
)
from repro.resilience.faults import FaultEvent, FaultKind
from repro.resilience.health import (
    FaultCounters,
    ResilienceStats,
    UnitHealth,
)
from repro.resilience.policy import ResilienceConfig, ResilienceError
from repro.telemetry.spans import unit_track

#: Unit id recorded on software-fallback spans (the host CPU).
HOST_UNIT = -1


@dataclass
class ResilientScheduleResult(ScheduleResult):
    """A fault-tolerant schedule: spans plus the full fault ledger.

    ``spans`` holds every hardware dispatch attempt (failed attempts
    occupy their unit until the watchdog reclaims it, so they are real
    timeline spans); ``fallback_spans`` holds software completions on
    the host CPU timeline. ``completions`` maps each scheduled position
    to ``"hw"``/``"sw"`` -- every position completes exactly once.
    """

    events: List[FaultEvent] = field(default_factory=list)
    counters: FaultCounters = field(default_factory=FaultCounters)
    unit_health: List[UnitHealth] = field(default_factory=list)
    completions: Dict[int, str] = field(default_factory=dict)
    #: Where each position completed: unit id, or HOST_UNIT for software.
    completion_units: Dict[int, int] = field(default_factory=dict)
    quarantined_units: List[int] = field(default_factory=list)
    fallback_spans: List[TimelineSpan] = field(default_factory=list)
    hardware_makespan: int = 0
    dma_penalty_cycles: int = 0

    @property
    def fallback_cycles(self) -> int:
        return sum(span.duration for span in self.fallback_spans)

    def stats(self) -> ResilienceStats:
        return ResilienceStats(
            counters=self.counters,
            unit_health=self.unit_health,
            completions=dict(self.completions),
            quarantined=list(self.quarantined_units),
            hardware_makespan_cycles=self.hardware_makespan,
            fallback_cycles=self.fallback_cycles,
        )


def schedule_with_recovery(
    targets: Sequence[ScheduledTarget],
    num_units: int,
    config: ResilienceConfig,
    dma_penalties: Optional[Sequence[Tuple[int, int]]] = None,
    telemetry=None,
) -> ResilientScheduleResult:
    """Schedule ``targets`` under ``config``'s fault plan and policies.

    ``dma_penalties`` optionally gives per-position ``(error_cycles,
    timeout_cycles)`` charged to the transfer channel when a DMA attempt
    faults (the system model derives them from
    :meth:`repro.hw.memory.PcieDmaModel.faulted_transfer_seconds`);
    without it, an error wastes the target's own transfer cycles and a
    timeout wastes the watchdog's view of them.

    ``telemetry`` optionally records the full attempt timeline: clean
    dispatches emit the *same* compute/transfer spans as
    :func:`~repro.core.scheduler.schedule_async` (a fault-free run's
    span set is identical, pinned by tests); failed attempts, faulted
    DMA transfers, software fallbacks, watchdog expirations, and
    quarantines each get their own spans/instants and counters.
    """
    if num_units <= 0:
        raise ValueError("num_units must be positive")
    if dma_penalties is not None and len(dma_penalties) != len(targets):
        raise ValueError("dma_penalties must parallel the target list")
    plan = config.plan
    retry, watchdog = config.retry, config.watchdog
    result = ResilientScheduleResult(num_units=num_units, makespan=0)
    result.unit_health = [UnitHealth(unit=u) for u in range(num_units)]
    bank = WatchdogBank()

    # (free_time, unit): earliest-free healthy unit wins, as in
    # schedule_async. Quarantined units simply never return to the heap.
    free: List[Tuple[int, int]] = [(0, u) for u in range(num_units)]
    heapq.heapify(free)
    active_units = num_units
    # (ready, seq, position, attempt): initial work in FIFO order;
    # retries get fresh sequence numbers behind everything queued.
    work: List[Tuple[int, int, int, int]] = [
        (0, pos, pos, 0) for pos in range(len(targets))
    ]
    heapq.heapify(work)
    seq = len(targets)
    channel_time = 0
    host_sw_time = 0

    def requeue(pos: int, attempt: int, not_before: int) -> None:
        nonlocal seq
        result.counters.retries += 1
        backoff = retry.backoff_cycles(attempt, plan, pos)
        heapq.heappush(work, (not_before + backoff, seq, pos, attempt + 1))
        seq += 1

    def fall_back(pos: int, ready: int) -> None:
        nonlocal host_sw_time
        if not config.software_fallback:
            raise ResilienceError(
                f"target position {pos} exhausted hardware recovery and "
                f"the software fallback is disabled"
            )
        target = targets[pos]
        cycles = int(round(target.compute_cycles * config.fallback_penalty))
        start = max(host_sw_time, ready)
        host_sw_time = start + cycles
        result.fallback_spans.append(
            TimelineSpan(target.index, HOST_UNIT, start, host_sw_time)
        )
        result.counters.fallbacks += 1
        result.completions[pos] = "sw"
        result.completion_units[pos] = HOST_UNIT
        if telemetry is not None:
            telemetry.span(f"target {target.index} (sw)", "host-sw",
                           start, host_sw_time, "fallback")
            telemetry.count("recovery.fallbacks")
            host_block = telemetry.unit(HOST_UNIT)
            host_block.busy_cycles += cycles
            host_block.targets_completed += 1

    while work:
        ready, _, pos, attempt = heapq.heappop(work)
        target = targets[pos]
        if attempt >= retry.max_attempts or not free:
            fall_back(pos, ready)
            continue

        # -- transfer attempt on the serialized PCIe channel ------------
        dma_fault = plan.dma_outcome(pos, attempt)
        if dma_fault is not None:
            result.counters.record(dma_fault)
            result.events.append(dma_fault)
            if dma_penalties is not None:
                error_cycles, timeout_cycles = dma_penalties[pos]
            else:
                error_cycles = target.transfer_cycles
                timeout_cycles = watchdog.deadline_cycles(
                    target.transfer_cycles
                )
            penalty = (
                error_cycles if dma_fault.kind is FaultKind.DMA_ERROR
                else timeout_cycles
            )
            faulted_start = max(channel_time, ready)
            channel_time = faulted_start + penalty
            result.dma_penalty_cycles += penalty
            if telemetry is not None:
                telemetry.span(
                    f"dma {dma_fault.kind.value} {target.index}",
                    "pcie-channel", faulted_start, channel_time, "faulted",
                    attempt=attempt,
                )
                telemetry.count("dma.penalty_cycles", penalty)
                telemetry.count(f"dma.faults.{dma_fault.kind.value}")
            requeue(pos, attempt, channel_time)
            continue
        xfer_start = max(channel_time, ready)
        channel_time = xfer_start + target.transfer_cycles
        result.transfer_cycles_total += target.transfer_cycles
        if telemetry is not None:
            telemetry.span(f"xfer {target.index}", "pcie-channel",
                           xfer_start, channel_time, "transfer")

        # -- dispatch attempt on the earliest-free unit -----------------
        unit_free, unit = heapq.heappop(free)
        start = max(channel_time, unit_free)
        deadline = start + watchdog.deadline_cycles(target.compute_cycles)
        bank.arm(unit, deadline)
        fault = plan.attempt_outcome(unit, pos, attempt)
        success = False
        watchdog_fired = False
        if fault is None:
            end = start + target.compute_cycles
            success = True
        else:
            result.counters.record(fault)
            result.events.append(fault)
            if fault.kind is FaultKind.UNIT_SLOWDOWN:
                end = start + int(round(
                    target.compute_cycles * fault.magnitude
                ))
                if end <= deadline:
                    success = True  # late but within the watchdog window
                else:
                    end = deadline  # indistinguishable from a hang
                    watchdog_fired = True
            elif fault.kind in (FaultKind.UNIT_HANG,
                                FaultKind.RESPONSE_DROP):
                end = deadline
                watchdog_fired = True
            else:  # RESPONSE_CORRUPT: CRC catches it on arrival
                end = start + target.compute_cycles
        result.spans.append(TimelineSpan(target.index, unit, start, end))
        health = result.unit_health[unit]
        if watchdog_fired:
            bank.expire(unit)
            result.counters.watchdog_expirations += 1
            if telemetry is not None:
                telemetry.instant("watchdog expired", unit_track(unit),
                                  end, "recovery", target=target.index,
                                  attempt=attempt)
                telemetry.count("recovery.watchdog_expirations")
        else:
            bank.disarm(unit)
        if success:
            health.record_success(end - start)
            result.completions[pos] = "hw"
            result.completion_units[pos] = unit
            heapq.heappush(free, (end, unit))
            if telemetry is not None:
                telemetry.span(f"target {target.index}", unit_track(unit),
                               start, end, "compute")
                telemetry.unit(unit).targets_completed += 1
            continue
        health.record_failure(end - start)
        freed_at = end + watchdog.reset_cycles
        requeue(pos, attempt, freed_at)
        if telemetry is not None:
            telemetry.span(
                f"target {target.index} (attempt {attempt})",
                unit_track(unit), start, end, "faulted",
                attempt=attempt,
            )
            telemetry.unit(unit).retries += 1
            telemetry.count("recovery.retries")
        if (health.consecutive_failures
                >= config.quarantine.failure_threshold
                and active_units - 1 >= config.quarantine.min_active_units):
            health.quarantined = True
            active_units -= 1
            result.counters.quarantined_units += 1
            result.quarantined_units.append(unit)
            if telemetry is not None:
                telemetry.instant("quarantined", unit_track(unit),
                                  freed_at, "recovery")
                telemetry.unit(unit).quarantined = True
                telemetry.count("recovery.quarantined_units")
        else:
            heapq.heappush(free, (freed_at, unit))

    result.hardware_makespan = max(
        (span.end for span in result.spans), default=0
    )
    result.makespan = max(result.hardware_makespan, host_sw_time)
    if telemetry is not None:
        # Busy/idle/stall from the attempt timeline (failed attempts
        # occupy their unit, so they count as busy); completions were
        # counted per successful dispatch above.
        telemetry.finalize_unit_cycles(result, count_completions=False)
        host_block = telemetry.counters.units.get(HOST_UNIT)
        if host_block is not None:
            host_block.idle_cycles = (
                result.makespan - host_block.busy_cycles
            )
    return result
