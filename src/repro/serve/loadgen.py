"""The serving load generator: many tenants against a live server.

``run_loadgen`` drives a seeded many-tenant schedule
(:mod:`repro.workloads.serving`) against a running ``repro serve``:
the input SAM is partitioned into independent region jobs
(:func:`repro.serve.jobs.partition_jobs`), each tenant gets its own
connection, requests fire at their scheduled arrivals (scalable with
``time_scale``), and client-observed latencies are collected into a
:class:`LoadReport` alongside the server's own snapshot. Because job
indices are assigned round-robin over the job list, every job is
requested at least once whenever the schedule has >= num_jobs
requests; any job that still lacks a successful response after the
scheduled wave (rejected under backpressure, expired, client instance
preempted) is re-submitted in a final sweep, so the reassembled SAM is
always complete -- and byte-identical to ``repro realign`` on the same
inputs, which ``--compare``/``--selftest`` and CI's serve smoke step
assert.

``simulate_load`` is the same schedule run through a *virtual-time*
single-server FIFO queue model instead of a socket: service time is an
affine function of a request's site count, so completion times -- and
therefore the p50/p95/p99 a seeded schedule produces -- are exact,
platform-independent numbers that tests pin to the digit.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.genomics.samlite import format_read, parse_read
from repro.serve.client import ServiceClient
from repro.serve.jobs import RegionJob, partition_jobs
from repro.serve.metrics import LatencyRecorder
from repro.serve.request import (
    DeadlineExceeded,
    ServeError,
    ServiceSaturated,
)
from repro.workloads.serving import (
    LoadProfile,
    ScheduledRequest,
    apply_preemption_replay,
    synthesize_load_schedule,
)


@dataclass
class LoadReport:
    """What one load run did: request outcomes, latency, server view."""

    requests: int = 0
    completed: int = 0
    rejected: int = 0
    expired: int = 0
    failed: int = 0
    retried_requests: int = 0
    sweep_requests: int = 0
    preempted_instances: int = 0
    jobs: int = 0
    tenants: int = 0
    wall_s: float = 0.0
    latency: Dict[str, float] = field(default_factory=dict)
    tenant_latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    server: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "expired": self.expired,
            "failed": self.failed,
            "retried_requests": self.retried_requests,
            "sweep_requests": self.sweep_requests,
            "preempted_instances": self.preempted_instances,
            "jobs": self.jobs,
            "tenants": self.tenants,
            "wall_s": self.wall_s,
            "latency": self.latency,
            "tenant_latency": self.tenant_latency,
            "server": self.server,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    def summary(self) -> str:
        latency = self.latency
        lat = (
            f"p50 {latency.get('p50_ms', 0.0):.1f}ms / "
            f"p95 {latency.get('p95_ms', 0.0):.1f}ms / "
            f"p99 {latency.get('p99_ms', 0.0):.1f}ms"
            if latency else "no completed requests"
        )
        return (
            f"loadgen: {self.requests} requests from {self.tenants} "
            f"tenant(s) over {self.jobs} job(s): {self.completed} ok, "
            f"{self.rejected} rejected, {self.expired} expired, "
            f"{self.failed} failed ({self.sweep_requests} swept); {lat}"
        )


async def run_loadgen(
    host: str,
    port: int,
    reads: Sequence,
    reference=None,
    profile: Optional[LoadProfile] = None,
    seed: int = 0,
    time_scale: float = 1.0,
) -> Tuple[List, LoadReport]:
    """Drive a scheduled load; returns (realigned reads, report).

    ``time_scale`` multiplies scheduled arrival gaps: ``0.0`` fires the
    whole schedule at once (max coalescing pressure), ``1.0`` replays
    it in real time. The returned reads are complete and in input order
    regardless of per-request rejections -- see the sweep pass.
    """
    if profile is None:
        profile = LoadProfile()
    if time_scale < 0:
        raise ValueError(f"time_scale must be >= 0, got {time_scale}")
    jobs = partition_jobs(reads, reference)
    schedule = synthesize_load_schedule(profile, len(jobs), seed)
    schedule, preempted = apply_preemption_replay(schedule, profile, seed)

    report = LoadReport(
        jobs=len(jobs),
        tenants=profile.tenants,
        preempted_instances=preempted,
        retried_requests=sum(1 for r in schedule if r.is_retry),
    )
    job_lines: Dict[int, List[str]] = {}
    recorder = LatencyRecorder()
    clients: Dict[str, ServiceClient] = {}
    loop = asyncio.get_running_loop()
    try:
        for tenant in sorted({r.tenant for r in schedule}):
            clients[tenant] = await ServiceClient.open(host, port)
        started = loop.time()

        async def issue(request: ScheduledRequest) -> str:
            delay = request.arrival_s * time_scale - (loop.time() - started)
            if delay > 0:
                await asyncio.sleep(delay)
            job = jobs[request.job]
            sent = loop.time()
            try:
                result = await clients[request.tenant].realign(
                    [format_read(read) for read in job.reads],
                    tenant=request.tenant,
                    deadline_s=request.deadline_s,
                )
            except ServiceSaturated:
                return "rejected"
            except DeadlineExceeded:
                return "expired"
            except (ServeError, ConnectionError, OSError):
                return "failed"
            recorder.record(request.tenant, loop.time() - sent)
            job_lines.setdefault(request.job, result.sam)
            return "completed"

        outcomes = await asyncio.gather(*(issue(r) for r in schedule))
        report.requests = len(schedule)
        for outcome in outcomes:
            setattr(report, outcome, getattr(report, outcome) + 1)

        # Sweep: guarantee every job completed at least once so the
        # reassembled SAM is whole even under heavy rejection.
        sweeper = next(iter(clients.values()))
        for job in jobs:
            if job.job_id in job_lines:
                continue
            result = await sweeper.realign(
                [format_read(read) for read in job.reads],
                tenant="sweep",
            )
            job_lines[job.job_id] = result.sam
            report.sweep_requests += 1
        report.server = await sweeper.stats()
    finally:
        for client in clients.values():
            await client.close()

    report.wall_s = loop.time() - started
    report.latency = recorder.summary()
    report.tenant_latency = recorder.tenant_summaries()
    return _reassemble(reads, jobs, job_lines), report


def _reassemble(reads: Sequence, jobs: List[RegionJob],
                job_lines: Dict[int, List[str]]) -> List:
    """Merge per-job responses back into input order, by input index."""
    updated = list(reads)
    for job in jobs:
        lines = job_lines[job.job_id]
        if len(lines) != len(job.indices):
            raise ServeError(
                f"job {job.job_id} returned {len(lines)} reads, "
                f"expected {len(job.indices)}"
            )
        for index, line in zip(job.indices, lines):
            updated[index] = parse_read(line)
    return updated


def simulate_load(
    profile: LoadProfile,
    job_sites: Sequence[int],
    seed: int = 0,
    per_site_s: float = 0.001,
    overhead_s: float = 0.002,
) -> LoadReport:
    """Virtual-time replay of a schedule through a FIFO queue model.

    The model is the serving plane reduced to its arithmetic: one
    server (the service's single-thread engine executor), FIFO order by
    ``(arrival, tenant, job)``, service time ``overhead_s + sites x
    per_site_s`` per request. A request whose completion would pass its
    deadline is counted ``expired`` and consumes no service time --
    admission control's effect on the queue. No clocks, no sockets:
    identical output on every platform for a given seed, so tests pin
    exact percentiles.

    >>> profile = LoadProfile(tenants=1, requests_per_tenant=3,
    ...                       mean_interarrival_s=0.01)
    >>> report = simulate_load(profile, [4, 4], seed=1)
    >>> report.requests, report.completed, report.expired
    (3, 3, 0)
    >>> report.latency == simulate_load(profile, [4, 4], seed=1).latency
    True
    """
    if per_site_s <= 0 or overhead_s < 0:
        raise ValueError("per_site_s must be > 0 and overhead_s >= 0")
    if not job_sites:
        raise ValueError("job_sites must be non-empty")
    schedule = synthesize_load_schedule(profile, len(job_sites), seed)
    schedule, preempted = apply_preemption_replay(schedule, profile, seed)
    report = LoadReport(
        jobs=len(job_sites),
        tenants=profile.tenants,
        preempted_instances=preempted,
        retried_requests=sum(1 for r in schedule if r.is_retry),
        requests=len(schedule),
    )
    recorder = LatencyRecorder()
    free_at = 0.0
    for request in schedule:
        service_s = overhead_s + job_sites[request.job] * per_site_s
        begin = max(request.arrival_s, free_at)
        completion = begin + service_s
        if completion - request.arrival_s > request.deadline_s:
            report.expired += 1
            continue
        free_at = completion
        recorder.record(request.tenant, completion - request.arrival_s)
        report.completed += 1
    report.wall_s = free_at
    report.latency = recorder.summary()
    report.tenant_latency = recorder.tenant_summaries()
    return report


__all__ = ["LoadReport", "run_loadgen", "simulate_load"]
