"""Async client for ``repro serve``: pipelined, id-matched requests.

One connection, one background reader task, many in-flight requests.
Each call stamps a fresh ``id``, registers a future, writes the frame,
and awaits its matched response -- so a tenant can keep dozens of
region jobs in flight on a single socket and the server coalesces them
into shared engine batches. Failure statuses surface as the
:mod:`repro.serve.request` exceptions they mirror, so caller-side
retry logic reads the same whether it runs in-process or over TCP.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, List, Optional, Sequence

from repro.serve.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    encode_message,
    read_message,
)
from repro.serve.request import (
    DEFAULT_TENANT,
    DeadlineExceeded,
    ServeError,
    ServiceClosed,
    ServiceSaturated,
)

_STATUS_ERRORS = {
    "rejected": ServiceSaturated,
    "expired": DeadlineExceeded,
    "closed": ServiceClosed,
}


class RealignResult:
    """One completed realign call: updated SAM lines + server timings."""

    __slots__ = ("sam", "sites", "latency_ms")

    def __init__(self, sam: List[str], sites: int, latency_ms: float):
        self.sam = sam
        self.sites = sites
        self.latency_ms = latency_ms


class ServiceClient:
    """Connect with :meth:`open`, then call :meth:`realign` freely."""

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._reader_task: Optional[asyncio.Task] = None
        self._closed = False

    @classmethod
    async def open(cls, host: str, port: int) -> "ServiceClient":
        client = cls()
        client._reader, client._writer = await asyncio.open_connection(
            host, port, limit=MAX_MESSAGE_BYTES
        )
        client._reader_task = asyncio.get_running_loop().create_task(
            client._read_loop()
        )
        return client

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                try:
                    message = await read_message(self._reader)
                except ProtocolError:
                    continue  # unparseable server line: skip, keep reading
                if message is None:
                    break
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ConnectionError, OSError, ValueError,
                asyncio.IncompleteReadError):
            pass  # ValueError: stream limit overrun -- unrecoverable too
        finally:
            # The stream is dead either way: fail what's in flight and
            # make later calls raise instead of hanging on a dead socket.
            self._closed = True
            self._fail_pending(ServiceClosed("connection lost"))

    def _fail_pending(self, error: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    async def _call(self, message: dict) -> dict:
        if self._closed or self._writer is None:
            raise ServiceClosed("client is closed")
        request_id = next(self._ids)
        message = dict(message, id=request_id)
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_message(message))
        await self._writer.drain()
        response = await future
        if response.get("ok"):
            return response
        status = response.get("status", "error")
        error = response.get("error", "request failed")
        if status == "rejected":
            raise ServiceSaturated(message=error)
        raise _STATUS_ERRORS.get(status, ServeError)(error)

    # -- operations -----------------------------------------------------
    async def realign(
        self,
        sam_lines: Sequence[str],
        tenant: str = DEFAULT_TENANT,
        deadline_s: Optional[float] = None,
    ) -> RealignResult:
        """Realign one job's reads; raises the mirrored serve errors."""
        message = {"op": "realign", "tenant": tenant,
                   "sam": list(sam_lines)}
        if deadline_s is not None:
            message["deadline_s"] = float(deadline_s)
        response = await self._call(message)
        return RealignResult(
            sam=list(response.get("sam", [])),
            sites=int(response.get("sites", 0)),
            latency_ms=float(response.get("latency_ms", 0.0)),
        )

    async def stats(self) -> dict:
        """Fetch the server's :class:`ServiceSnapshot` as a dict."""
        response = await self._call({"op": "stats"})
        return response.get("stats", {})

    async def ping(self) -> bool:
        return bool((await self._call({"op": "ping"})).get("ok"))

    async def shutdown(self) -> None:
        """Ask the server to drain and exit (best-effort)."""
        try:
            await self._call({"op": "shutdown"})
        except (ServeError, ConnectionError, OSError):
            pass

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if self._reader_task is not None:
            await asyncio.gather(self._reader_task, return_exceptions=True)
        self._fail_pending(ServiceClosed("client closed"))

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


__all__ = ["RealignResult", "ServiceClient"]
