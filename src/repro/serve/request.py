"""Request-plane vocabulary: configuration, job records, and errors.

The service works at *site* granularity -- the same unit the engines
batch and the accelerator dispatches -- so one network-level realign
request (a region's worth of reads) becomes one :class:`SiteJob`
carrying the region's built sites. Admission control counts sites, not
requests, because sites are what occupy the engine's bounded window: a
tenant submitting one 400-site request exerts the same pressure as 400
one-site requests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

#: Tenant used when a request does not name one.
DEFAULT_TENANT = "anonymous"

#: Admission policies: reject over-limit submissions immediately, or
#: park them (still counting their deadline) until the queue drains.
ADMISSION_POLICIES = ("reject", "queue")


class ServeError(RuntimeError):
    """Base class for request-plane failures."""


class ServiceSaturated(ServeError):
    """Admission control refused a submission: the queue is full.

    Carries enough context for a client to implement informed backoff.
    """

    def __init__(self, requested: int = 0, outstanding: int = 0,
                 limit: int = 0, tenant: str = DEFAULT_TENANT,
                 message: Optional[str] = None):
        # ``message`` lets the wire client re-raise a server-side
        # rejection verbatim (the counts are in the text but not
        # machine-recoverable from it).
        super().__init__(
            message if message is not None else
            f"service saturated: {requested} sites requested with "
            f"{outstanding}/{limit} outstanding (tenant {tenant})"
        )
        self.requested = requested
        self.outstanding = outstanding
        self.limit = limit
        self.tenant = tenant


class DeadlineExceeded(ServeError):
    """The request's deadline passed before its sites were realigned."""


class ServiceClosed(ServeError):
    """Submission arrived after shutdown began."""


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of the asyncio request plane.

    - ``max_queue_sites`` bounds *outstanding* sites -- accepted but not
      yet completed -- the service-level analogue of the streaming
      engine's ``queue_depth x workers`` in-flight window. Submissions
      that would exceed it are rejected (``admission="reject"``) or
      parked until room frees (``admission="queue"``); parked requests
      still expire at their deadline.
    - ``max_tenant_sites`` optionally caps one tenant's outstanding
      sites (fairness: a single tenant cannot occupy the whole queue).
      ``None`` disables the per-tenant cap.
    - ``coalesce_sites`` / ``coalesce_wait_ms``: the batcher dispatches
      an engine call once it has gathered this many sites, or when the
      oldest gathered request has lingered this long -- the same
      request-coalescing trick ``SystemConfig.dispatch_batch`` plays
      for the accelerator's transfer channel.
    - ``default_deadline_s`` applies to requests that do not carry one.
    - ``drain_timeout_s`` bounds graceful shutdown: jobs still queued
      when it expires fail with :class:`ServiceClosed`.

    >>> ServiceConfig(max_queue_sites=0)
    Traceback (most recent call last):
        ...
    ValueError: max_queue_sites must be >= 1, got 0
    >>> ServiceConfig(admission="drop")
    Traceback (most recent call last):
        ...
    ValueError: unknown admission policy 'drop'; choose from ('reject', 'queue')
    """

    max_queue_sites: int = 512
    max_tenant_sites: Optional[int] = None
    coalesce_sites: int = 32
    coalesce_wait_ms: float = 2.0
    admission: str = "reject"
    default_deadline_s: float = 30.0
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_queue_sites < 1:
            raise ValueError(
                f"max_queue_sites must be >= 1, got {self.max_queue_sites}"
            )
        if self.max_tenant_sites is not None and self.max_tenant_sites < 1:
            raise ValueError(
                f"max_tenant_sites must be >= 1 or None, "
                f"got {self.max_tenant_sites}"
            )
        if self.coalesce_sites < 1:
            raise ValueError(
                f"coalesce_sites must be >= 1, got {self.coalesce_sites}"
            )
        if self.coalesce_wait_ms < 0:
            raise ValueError(
                f"coalesce_wait_ms must be >= 0, got {self.coalesce_wait_ms}"
            )
        if self.admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {self.admission!r}; "
                f"choose from {ADMISSION_POLICIES}"
            )
        if self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be positive")
        if self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be positive")


_JOB_IDS = itertools.count()


class SiteJob:
    """One accepted submission, queued for the coalescing batcher.

    Plain class (not a dataclass): it owns a mutable asyncio future and
    identity semantics are what the queue bookkeeping wants.
    """

    __slots__ = ("job_id", "tenant", "sites", "future", "enqueued_at",
                 "deadline_at")

    def __init__(self, tenant, sites, future, enqueued_at, deadline_at):
        self.job_id = next(_JOB_IDS)
        self.tenant = tenant
        self.sites = sites
        self.future = future
        self.enqueued_at = enqueued_at
        self.deadline_at = deadline_at

    @property
    def num_sites(self) -> int:
        return len(self.sites)


__all__ = [
    "ADMISSION_POLICIES",
    "DEFAULT_TENANT",
    "DeadlineExceeded",
    "ServeError",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceSaturated",
    "SiteJob",
]
