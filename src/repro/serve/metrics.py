"""Serving metrics: latency percentiles and the service snapshot.

Latency is recorded per *request* (enqueue to completion, wall clock)
and summarized as p50/p95/p99 with deterministic linear interpolation
-- the same estimator regardless of platform or numpy version, so
seeded virtual-time simulations (:func:`repro.serve.loadgen
.simulate_load`) pin exact values in tests. Saturation is derived from
the service's counters: the fraction of uptime the admission queue
spent at or over its limit, plus the reject/expire tallies that tell a
capacity planner whether the limit or the deadline is what clipped the
load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

#: The percentiles every latency summary reports, in order.
REPORTED_PERCENTILES = (50.0, 95.0, 99.0)


def percentile(values: Sequence[float], q: float) -> float:
    """Deterministic linear-interpolation percentile (inclusive ranks).

    Equivalent to ``numpy.percentile(values, q)`` with the default
    ``linear`` interpolation, implemented locally so the serving layer
    never picks up a numpy behaviour change, and so the doctest below
    *is* the definition:

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.5
    >>> percentile([1.0, 2.0, 3.0, 4.0], 75)
    3.25
    >>> percentile([7.0], 95)
    7.0
    """
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    fraction = rank - lo
    return float(ordered[lo] + (ordered[hi] - ordered[lo]) * fraction)


def latency_summary(seconds: Sequence[float]) -> Dict[str, float]:
    """``{"p50_ms": ..., "p95_ms": ..., "p99_ms": ..., ...}`` or {}."""
    if not seconds:
        return {}
    out = {
        f"p{int(q)}_ms": percentile(seconds, q) * 1e3
        for q in REPORTED_PERCENTILES
    }
    out["mean_ms"] = sum(seconds) / len(seconds) * 1e3
    out["max_ms"] = max(seconds) * 1e3
    out["count"] = float(len(seconds))
    return out


class LatencyRecorder:
    """Accumulates per-request latencies, overall and per tenant."""

    def __init__(self) -> None:
        self._all: List[float] = []
        self._by_tenant: Dict[str, List[float]] = {}

    def record(self, tenant: str, seconds: float) -> None:
        self._all.append(seconds)
        self._by_tenant.setdefault(tenant, []).append(seconds)

    @property
    def count(self) -> int:
        return len(self._all)

    def summary(self) -> Dict[str, float]:
        return latency_summary(self._all)

    def tenant_summaries(self) -> Dict[str, Dict[str, float]]:
        return {
            tenant: latency_summary(values)
            for tenant, values in sorted(self._by_tenant.items())
        }


@dataclass
class ServiceSnapshot:
    """One observation of the request plane, derived from its counters.

    ``saturation`` is ``serve.saturated_us / uptime_us`` -- the
    fraction of the observation window during which the outstanding
    -site count sat at or above the admission limit (i.e. new work was
    being rejected or parked). ``queue_depth`` / ``outstanding_sites``
    are instantaneous; the ``*_peak`` counters carry the run's maxima.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    latency: Dict[str, float] = field(default_factory=dict)
    tenant_latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    tenant_sites: Dict[str, int] = field(default_factory=dict)
    queue_depth: int = 0
    outstanding_sites: int = 0
    uptime_s: float = 0.0
    saturation: float = 0.0
    canary: Dict[str, object] = field(default_factory=dict)
    #: Cumulative site-result cache hit rate (0.0 with no cache).
    cache_hit_rate: float = 0.0
    #: Latest run's per-shard busy fraction, ``{"shard0": 0.87, ...}``
    #: -- empty unless the engine is a shard plane.
    shard_saturation: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "latency": self.latency,
            "tenant_latency": self.tenant_latency,
            "tenant_sites": dict(sorted(self.tenant_sites.items())),
            "queue_depth": self.queue_depth,
            "outstanding_sites": self.outstanding_sites,
            "uptime_s": self.uptime_s,
            "saturation": self.saturation,
            "canary": self.canary,
            "cache_hit_rate": self.cache_hit_rate,
            "shard_saturation": dict(sorted(self.shard_saturation.items())),
        }

    def describe(self) -> str:
        """One log-friendly line of the numbers operators watch."""
        latency = self.latency
        lat = (
            f"p50 {latency.get('p50_ms', 0.0):.1f}ms / "
            f"p95 {latency.get('p95_ms', 0.0):.1f}ms / "
            f"p99 {latency.get('p99_ms', 0.0):.1f}ms"
            if latency else "no completed requests"
        )
        extras = ""
        if self.counters.get("cache.hits", 0) or \
                self.counters.get("cache.misses", 0):
            extras += f", cache {self.cache_hit_rate:.1%} hit"
        if self.shard_saturation:
            busiest = max(self.shard_saturation.values())
            extras += (f", {len(self.shard_saturation)} shards "
                       f"(busiest {busiest:.1%})")
        return (
            f"{self.counters.get('serve.requests_completed', 0)} completed "
            f"({self.counters.get('serve.requests_rejected', 0)} rejected, "
            f"{self.counters.get('serve.requests_expired', 0)} expired), "
            f"{lat}, saturation {self.saturation:.1%}, "
            f"queue {self.queue_depth} req / "
            f"{self.outstanding_sites} sites outstanding" + extras
        )


__all__ = [
    "LatencyRecorder",
    "REPORTED_PERCENTILES",
    "ServiceSnapshot",
    "latency_summary",
    "percentile",
]
