"""``repro serve``: the asyncio TCP front-end over the request plane.

One process, one engine, one :class:`~repro.serve.service
.RealignmentService`; each connection may pipeline requests, and each
request is handled as its own task so concurrent jobs -- from one
connection or fifty -- coalesce into shared engine batches. The server
owns the realigner *front half* (target identification + site
building, CPU-bound, run on the default executor so the loop stays
responsive) and the *back half* (applying kernel decisions to reads);
the kernel itself runs wherever the engine says -- inline, a worker
pool, or the streaming plane with worker-crash recovery armed.

The optional startup canary (:mod:`repro.serve.canary`) routes the toy
evaluation scenario through this exact serving path before the first
real request, so a deployment that would corrupt outcomes never starts
taking traffic.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Tuple

from repro.genomics.reference import ReferenceGenome
from repro.genomics.samlite import format_read, parse_read
from repro.realign.realigner import IndelRealigner
from repro.serve.jobs import apply_site_results
from repro.serve.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    encode_message,
    error_response,
    read_message,
)
from repro.serve.request import (
    DEFAULT_TENANT,
    DeadlineExceeded,
    ServiceClosed,
    ServiceConfig,
    ServiceSaturated,
)
from repro.serve.service import RealignmentService


class RealignmentServer:
    """Realignment-as-a-service over a reference genome.

    ``engine`` is forwarded to :class:`RealignmentService` (an
    ``EngineConfig``, a live engine, or ``None`` for the inline
    default); ``realigner_kwargs`` reach the
    :class:`~repro.realign.realigner.IndelRealigner` used for target
    identification, so a server can mirror any batch-CLI configuration
    exactly -- which is what makes served output byte-identical to
    ``repro realign`` on the same inputs.
    """

    def __init__(
        self,
        reference: ReferenceGenome,
        engine=None,
        service_config: Optional[ServiceConfig] = None,
        telemetry=None,
        realigner_kwargs: Optional[dict] = None,
        cache=None,
    ):
        from repro.engine import EngineConfig

        self.reference = reference
        self.realigner = IndelRealigner(reference,
                                        **(realigner_kwargs or {}))
        self.service = RealignmentService(
            engine if engine is not None else EngineConfig(),
            config=service_config,
            telemetry=telemetry,
            cache=cache,
        )
        self.canary_result: dict = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # -- lifecycle ------------------------------------------------------
    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        """Start the service and listen; returns the bound address.

        ``port=0`` binds an ephemeral port (tests, selftest); the bound
        port is returned either way.
        """
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, limit=MAX_MESSAGE_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def run_canary(self, scenario: str = "toy") -> dict:
        """Run the serving-path canary; stores and returns its verdict."""
        from repro.serve.canary import run_canary

        self.canary_result = await run_canary(self.service,
                                              scenario=scenario)
        return self.canary_result

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` op (or :meth:`close`) arrives."""
        await self._shutdown.wait()
        await self.close()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close(drain=True)
        self._shutdown.set()

    # -- connection handling --------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        write_lock = asyncio.Lock()
        tasks: List[asyncio.Task] = []
        try:
            while True:
                try:
                    message = await read_message(reader)
                except asyncio.CancelledError:
                    # Shutdown cancels live handlers; exit quietly (the
                    # streams machinery logs a cancelled handler task as
                    # an unretrieved exception otherwise).
                    break
                except ProtocolError as error:
                    async with write_lock:
                        writer.write(encode_message(
                            error_response(None, "error", str(error))
                        ))
                        await writer.drain()
                    continue
                if message is None:
                    break
                # Each request is its own task: a connection awaiting a
                # slow realign keeps submitting, so its later requests
                # (and other connections') coalesce with the first.
                tasks.append(asyncio.create_task(
                    self._handle_message(message, writer, write_lock)
                ))
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_message(self, message, writer, write_lock) -> None:
        request_id = message.get("id")
        op = message.get("op")
        try:
            if op == "ping":
                response = {"id": request_id, "ok": True, "status": "ok"}
            elif op == "stats":
                snapshot = self.service.snapshot()
                if self.canary_result:
                    snapshot.canary = self.canary_result
                response = {"id": request_id, "ok": True, "status": "ok",
                            "stats": snapshot.as_dict()}
            elif op == "shutdown":
                response = {"id": request_id, "ok": True, "status": "ok"}
                self._shutdown.set()
            elif op == "realign":
                response = await self._handle_realign(request_id, message)
            else:
                response = error_response(request_id, "error",
                                          f"unknown op {op!r}")
        except ServiceSaturated as error:
            response = error_response(request_id, "rejected", str(error))
        except DeadlineExceeded as error:
            response = error_response(request_id, "expired", str(error))
        except ServiceClosed as error:
            response = error_response(request_id, "closed", str(error))
        except Exception as error:  # one bad request must not kill the
            response = error_response(  # connection, let alone the server
                request_id, "error", f"{type(error).__name__}: {error}"
            )
        async with write_lock:
            writer.write(encode_message(response))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # peer went away; nothing to deliver the reply to

    async def _handle_realign(self, request_id, message) -> dict:
        loop = asyncio.get_running_loop()
        start = loop.time()
        lines = message.get("sam")
        if not isinstance(lines, list):
            raise ProtocolError("realign needs a 'sam' list of read lines")
        tenant = str(message.get("tenant", DEFAULT_TENANT))
        deadline_s = message.get("deadline_s")
        if deadline_s is not None:
            deadline_s = float(deadline_s)
            if deadline_s <= 0:
                raise ProtocolError("deadline_s must be positive")
        reads = [parse_read(line) for line in lines]
        # Front half off the loop: target identification + consensus
        # generation are pure CPU.
        _targets, windows = await loop.run_in_executor(
            None, self.realigner.build_sites, reads
        )
        results = await self.service.submit_sites(
            [window.site for window in windows],
            tenant=tenant,
            deadline_s=deadline_s,
        )
        updated = apply_site_results(reads, windows, results)
        return {
            "id": request_id,
            "ok": True,
            "status": "ok",
            "sam": [format_read(read) for read in updated],
            "sites": len(windows),
            "latency_ms": (loop.time() - start) * 1e3,
        }


__all__ = ["RealignmentServer"]
