"""The asyncio request plane over the batched/streaming engines.

``RealignmentService`` turns an engine -- the batch-CLI workhorse --
into a shared, admission-controlled server component:

- **coalescing.** Concurrent requests' sites are gathered into one
  engine dispatch (up to ``coalesce_sites`` sites, or until the oldest
  request has lingered ``coalesce_wait_ms``), exactly the batching
  trick ``SystemConfig.dispatch_batch`` plays for the accelerator's
  transfer channel. Small requests from many tenants amortize the
  engine's per-call overhead; the engine's own pool then parallelizes
  within the coalesced batch.
- **admission control + backpressure.** At most ``max_queue_sites``
  sites may be outstanding (accepted, not yet completed) -- the
  service-level extension of ``StreamingEngine``'s bounded
  ``queue_depth x workers`` in-flight window. Over-limit submissions
  are rejected (:class:`~repro.serve.request.ServiceSaturated`) or, in
  ``admission="queue"`` mode, parked until room frees -- and either
  way every request carries a deadline past which it fails with
  :class:`~repro.serve.request.DeadlineExceeded` instead of computing.
- **observability.** Per-request latency (p50/p95/p99), queue depth,
  outstanding sites, saturation (fraction of uptime at the admission
  limit), and per-tenant tallies, all from the same counter fabric the
  engines already feed (:meth:`snapshot`).

Results are byte-identical to the batch path: sites are independent
and every kernel is exact, so realigning a site inside a coalesced
batch of strangers yields the same :class:`~repro.realign.whd
.SiteResult` as realigning it alone (pinned by tests/test_serve.py).

Engine calls are blocking (multiprocessing pools underneath), so the
service runs them on a dedicated single-thread executor: the event
loop stays responsive for admission and I/O while exactly one engine
dispatch is in flight -- the engine itself is the intra-batch
parallelism, and serializing dispatches is what makes the outstanding
-site bound a real memory bound.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro.serve.metrics import LatencyRecorder, ServiceSnapshot
from repro.serve.request import (
    DEFAULT_TENANT,
    DeadlineExceeded,
    ServiceClosed,
    ServiceConfig,
    ServiceSaturated,
    SiteJob,
)

#: Sentinel queued behind the last job at shutdown.
_STOP = object()


class RealignmentService:
    """Admission-controlled, coalescing realignment over one engine.

    ``engine`` is anything with ``run_sites(sites) -> [SiteResult]``
    and (optionally) ``close()``: an
    :class:`~repro.engine.parallel.Engine`, a
    :class:`~repro.engine.stream.StreamingEngine` (with or without
    :class:`~repro.resilience.workers.WorkerRecovery`), or an
    :class:`~repro.engine.parallel.EngineConfig` (a live barrier engine
    is built from it and owned by the service). ``telemetry`` is an
    optional :class:`~repro.telemetry.Telemetry` session; engine
    counters fold into it per dispatch and the service's own
    ``serve.*`` counters fold in at :meth:`close`. ``cache`` is an
    optional :class:`~repro.shard.cache.SiteResultCache`: hits
    short-circuit whole sites before the engine dispatch (engines that
    carry their own cache -- the shard plane -- consult it themselves,
    and the service just surfaces its counters).
    """

    def __init__(self, engine, config: Optional[ServiceConfig] = None,
                 telemetry=None, cache=None):
        from repro.engine import Engine, EngineConfig

        if isinstance(engine, EngineConfig):
            engine = Engine(engine)
            self._owns_engine = True
        else:
            self._owns_engine = False
        self.engine = engine
        # The content-addressed site-result cache. A shard plane
        # consults its own cache inside run_sites; the service-level
        # splice below only activates for engines that don't, so a hit
        # is never double-counted and a site never hashed twice.
        engine_cache = getattr(engine, "cache", None)
        self.cache = cache if cache is not None else engine_cache
        self._splice_cache = cache is not None and engine_cache is None
        self.config = config if config is not None else ServiceConfig()
        self.telemetry = telemetry
        self.latencies = LatencyRecorder()
        self.counters: Dict[str, int] = {}
        self.tenant_sites: Dict[str, int] = {}
        self._queue: Optional[asyncio.Queue] = None
        self._room: Optional[asyncio.Condition] = None
        self._batcher: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._outstanding = 0
        self._outstanding_by_tenant: Dict[str, int] = {}
        self._closing = False
        self._started_at = 0.0
        self._saturated_since: Optional[float] = None
        self._saturated_us = 0

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "RealignmentService":
        """Bind to the running loop and start the coalescing batcher."""
        if self._batcher is not None:
            raise RuntimeError("service already started")
        # Pre-warm the compiled kernel tier before accepting traffic:
        # first-call JIT / shared-library compilation must never land
        # inside a served request's latency.
        kernel = getattr(getattr(self.engine, "config", None),
                         "kernel", "auto")
        if kernel in ("auto", "native"):
            from repro.engine.native import warmup_native

            warmup_native()
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._room = asyncio.Condition()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-engine"
        )
        self._started_at = time.perf_counter()
        self._batcher = asyncio.create_task(self._dispatch_loop(),
                                            name="serve-batcher")
        return self

    async def close(self, drain: bool = True) -> None:
        """Stop the service; with ``drain`` (default) finish queued work.

        New submissions fail with :class:`ServiceClosed` immediately.
        Queued and in-flight jobs complete normally unless the drain
        exceeds ``config.drain_timeout_s``, at which point the batcher
        is cancelled and the stragglers fail with ``ServiceClosed``.
        """
        if self._batcher is None or self._closing:
            return
        self._closing = True
        self._queue.put_nowait(_STOP)
        async with self._room:  # wake parked submitters -> ServiceClosed
            self._room.notify_all()
        timeout = self.config.drain_timeout_s if drain else 0.0
        try:
            await asyncio.wait_for(asyncio.shield(self._batcher), timeout)
        except (asyncio.TimeoutError, asyncio.CancelledError):
            self._batcher.cancel()
            try:
                await self._batcher
            except (asyncio.CancelledError, Exception):
                pass
            self._fail_queued(ServiceClosed("service shut down mid-drain"))
        self._note_saturation(time.perf_counter())
        if self.telemetry is not None:
            for name, value in self.counters.items():
                self.telemetry.count(name, value)
            self.telemetry.count("serve.saturated_us", self._saturated_us)
        self._executor.shutdown(wait=True)
        if self._owns_engine and hasattr(self.engine, "close"):
            self.engine.close()

    def _fail_queued(self, error: Exception) -> None:
        while self._queue is not None and not self._queue.empty():
            job = self._queue.get_nowait()
            if job is _STOP:
                continue
            if not job.future.done():
                job.future.set_exception(error)
            self._retire(job)

    # -- submission (the admission-control edge) ------------------------
    async def submit_sites(
        self,
        sites: Sequence,
        tenant: str = DEFAULT_TENANT,
        deadline_s: Optional[float] = None,
    ) -> List:
        """Realign ``sites``; returns their results in input order.

        Raises :class:`ServiceSaturated` when admission control refuses
        the submission (``admission="reject"``), or parks until room
        frees (``admission="queue"``); raises :class:`DeadlineExceeded`
        if the deadline passes while parked or queued; raises
        :class:`ServiceClosed` during/after shutdown. An empty site
        list completes immediately (no queue traffic).
        """
        if self._batcher is None:
            raise RuntimeError("service not started")
        if self._closing:
            raise ServiceClosed("service is shutting down")
        sites = list(sites)
        self._count("serve.requests", 1)
        if not sites:
            self._count("serve.requests_completed", 1)
            return []
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        now = time.perf_counter()
        deadline_at = now + deadline_s
        await self._admit(len(sites), tenant, deadline_at)
        job = SiteJob(
            tenant=tenant,
            sites=sites,
            future=self._loop.create_future(),
            enqueued_at=time.perf_counter(),
            deadline_at=deadline_at,
        )
        self._count("serve.requests_accepted", 1)
        self._count("serve.sites_accepted", len(sites))
        self.tenant_sites[tenant] = (
            self.tenant_sites.get(tenant, 0) + len(sites)
        )
        self._queue.put_nowait(job)
        self._count_peak("serve.queue_depth_peak", self._queue.qsize())
        return await job.future

    def _has_room(self, num_sites: int, tenant: str) -> bool:
        # A single job larger than a cap may run when it would run
        # *alone* under that cap -- otherwise it could never be
        # admitted at all; the bound degrades to "one oversized job at
        # a time", which is still a memory bound.
        if self._outstanding + num_sites > self.config.max_queue_sites:
            oversized = num_sites > self.config.max_queue_sites
            if not (oversized and self._outstanding == 0):
                return False
        cap = self.config.max_tenant_sites
        if cap is not None:
            held = self._outstanding_by_tenant.get(tenant, 0)
            if held + num_sites > cap and not (num_sites > cap
                                               and held == 0):
                return False
        return True

    async def _admit(self, num_sites: int, tenant: str,
                     deadline_at: float) -> None:
        now = time.perf_counter()
        if self._has_room(num_sites, tenant):
            self._take_room(num_sites, tenant, now)
            return
        self._note_saturation(now, saturated=True)
        if self.config.admission == "reject":
            self._count("serve.requests_rejected", 1)
            self._count("serve.sites_rejected", num_sites)
            raise ServiceSaturated(num_sites, self._outstanding,
                                   self.config.max_queue_sites, tenant)
        wait_start = now
        async with self._room:
            while not self._has_room(num_sites, tenant):
                if self._closing:
                    raise ServiceClosed("service is shutting down")
                remaining = deadline_at - time.perf_counter()
                if remaining <= 0:
                    self._count("serve.requests_expired", 1)
                    self._count("serve.sites_expired", num_sites)
                    raise DeadlineExceeded(
                        f"deadline passed after waiting "
                        f"{time.perf_counter() - wait_start:.3f}s "
                        f"for admission ({tenant})"
                    )
                try:
                    await asyncio.wait_for(self._room.wait(), remaining)
                except asyncio.TimeoutError:
                    continue  # re-check: deadline branch above fires
            now = time.perf_counter()
            self._take_room(num_sites, tenant, now)
        self._count("serve.admission_wait_us",
                    int((now - wait_start) * 1e6))

    def _take_room(self, num_sites: int, tenant: str, now: float) -> None:
        self._outstanding += num_sites
        self._outstanding_by_tenant[tenant] = (
            self._outstanding_by_tenant.get(tenant, 0) + num_sites
        )
        self._count_peak("serve.outstanding_peak", self._outstanding)
        self._note_saturation(
            now, saturated=self._outstanding >= self.config.max_queue_sites
        )

    def _retire(self, job: SiteJob) -> None:
        """Release a job's admission claim and wake parked submitters."""
        self._outstanding -= job.num_sites
        held = self._outstanding_by_tenant.get(job.tenant, 0) - job.num_sites
        if held > 0:
            self._outstanding_by_tenant[job.tenant] = held
        else:
            self._outstanding_by_tenant.pop(job.tenant, None)
        self._note_saturation(
            time.perf_counter(),
            saturated=self._outstanding >= self.config.max_queue_sites,
        )
        if self._room is not None and self.config.admission == "queue":
            # Only queue mode parks submitters on the condition; the
            # notify runs as a loop task so _retire itself stays sync.
            self._loop.create_task(self._notify_room())

    async def _notify_room(self) -> None:
        async with self._room:
            self._room.notify_all()

    # -- the coalescing batcher ----------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            job = await self._queue.get()
            if job is _STOP:
                return
            batch, stop = await self._gather(job)
            await self._dispatch(batch)
            if stop:
                return

    async def _gather(self, first: SiteJob):
        """Coalesce queued jobs behind ``first`` into one engine batch."""
        batch = [first]
        gathered = first.num_sites
        linger_until = (time.perf_counter()
                        + self.config.coalesce_wait_ms / 1e3)
        stop = False
        while gathered < self.config.coalesce_sites:
            timeout = linger_until - time.perf_counter()
            if timeout <= 0 and self._queue.empty():
                break
            try:
                job = await asyncio.wait_for(self._queue.get(),
                                             max(timeout, 0.0))
            except asyncio.TimeoutError:
                break
            if job is _STOP:
                stop = True
                break
            batch.append(job)
            gathered += job.num_sites
        return batch, stop

    async def _dispatch(self, batch: List[SiteJob]) -> None:
        now = time.perf_counter()
        live: List[SiteJob] = []
        for job in batch:
            if job.future.cancelled():
                self._retire(job)
            elif job.deadline_at < now:
                self._count("serve.requests_expired", 1)
                self._count("serve.sites_expired", job.num_sites)
                job.future.set_exception(DeadlineExceeded(
                    f"deadline passed while queued "
                    f"({now - job.enqueued_at:.3f}s, tenant {job.tenant})"
                ))
                self._retire(job)
            else:
                live.append(job)
        if not live:
            return
        sites = [site for job in live for site in job.sites]
        self._count("serve.batches_dispatched", 1)
        self._count("serve.sites_dispatched", len(sites))
        self._count_peak("serve.coalesced_sites_peak", len(sites))
        try:
            results = await self._loop.run_in_executor(
                self._executor,
                lambda: self._run_engine(sites),
            )
        except Exception as error:
            self._count("serve.batches_failed", 1)
            self._fold_engine_counters()
            for job in live:
                self._count("serve.requests_failed", 1)
                if not job.future.done():
                    job.future.set_exception(error)
                self._retire(job)
            return
        self._fold_engine_counters()
        done = time.perf_counter()
        offset = 0
        for job in live:
            slice_ = results[offset:offset + job.num_sites]
            offset += job.num_sites
            if not job.future.done():
                job.future.set_result(slice_)
            self._count("serve.requests_completed", 1)
            self._count("serve.sites_completed", job.num_sites)
            self.latencies.record(job.tenant, done - job.enqueued_at)
            self._retire(job)

    def _run_engine(self, sites: List):
        """One engine dispatch, through the service-level cache splice.

        Engines with their own cache (the shard plane) skip this splice
        entirely -- their ``run_sites`` already short-circuits hits.
        """
        if not self._splice_cache:
            return self.engine.run_sites(sites, telemetry=self.telemetry)
        from repro.shard.cache import lookup_sites

        engine_config = getattr(self.engine, "config", None)
        results, miss_indices, keys = lookup_sites(self.cache, sites,
                                                   engine_config)
        self._count("serve.cache_hits", len(sites) - len(miss_indices))
        self._count("serve.cache_misses", len(miss_indices))
        if miss_indices:
            computed = self.engine.run_sites(
                [sites[i] for i in miss_indices], telemetry=self.telemetry
            )
            for index, result in zip(miss_indices, computed):
                results[index] = result
                self.cache.put(keys[index], sites[index].start, result)
        return results

    # -- bookkeeping ----------------------------------------------------
    def _count(self, name: str, delta: int) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def _fold_engine_counters(self) -> None:
        """Accumulate per-dispatch engine observations into ours.

        ``recovery_counters`` describes only the *latest* run (the pool
        drains them each dispatch), so the service sums them across
        dispatches -- a snapshot then reports every injected fault and
        recovery action since start, not just the last batch's.
        """
        recovery = getattr(self.engine, "recovery_counters", None)
        if recovery:
            for name, value in recovery.items():
                self._count(name, value)

    def _count_peak(self, name: str, value: int) -> None:
        if value > self.counters.get(name, 0):
            self.counters[name] = value

    def _note_saturation(self, now: float,
                         saturated: Optional[bool] = None) -> None:
        """Accumulate time spent at/over the admission limit."""
        if self._saturated_since is not None:
            self._saturated_us += int((now - self._saturated_since) * 1e6)
            self._saturated_since = None
        if saturated:
            self._saturated_since = now

    def snapshot(self) -> ServiceSnapshot:
        """Current counters, latency percentiles, and saturation."""
        now = time.perf_counter()
        uptime = max(now - self._started_at, 1e-9)
        saturated_us = self._saturated_us
        if self._saturated_since is not None:
            saturated_us += int((now - self._saturated_since) * 1e6)
        counters = dict(self.counters)
        counters["serve.saturated_us"] = saturated_us
        if hasattr(self.engine, "stream_stats"):
            counters.update(self.engine.stream_stats or {})
        cache_hit_rate = 0.0
        if self.cache is not None:
            counters.update(self.cache.snapshot())
            cache_hit_rate = self.cache.hit_rate
        occupancy = getattr(self.engine, "occupancy", None)
        shard_saturation = occupancy() if callable(occupancy) else {}
        return ServiceSnapshot(
            counters=counters,
            latency=self.latencies.summary(),
            tenant_latency=self.latencies.tenant_summaries(),
            tenant_sites=dict(self.tenant_sites),
            queue_depth=self._queue.qsize() if self._queue else 0,
            outstanding_sites=self._outstanding,
            uptime_s=uptime,
            saturation=min(saturated_us / (uptime * 1e6), 1.0),
            cache_hit_rate=cache_hit_rate,
            shard_saturation=shard_saturation,
        )


__all__ = ["RealignmentService"]
