"""Region jobs: how a read set becomes independent serving requests.

The service realigns *sites*; a client holds a *SAM file*. The bridge
is the region decomposition proved exact for the streaming refinement
pipeline (:mod:`repro.refinement.regions`): per-contig buckets, cut
wherever a ``>= 4096``-base coverage gap guarantees no duplicate
group, pileup column, or consensus window can span the cut. Target
identification accumulates evidence per contig and consensus windows
extend at most ``flank + max_consensus_length/2`` (250 + 1024 < 4096)
beyond read-borne evidence, so realigning each region's reads in
isolation produces exactly the targets -- and exactly the realigned
placements -- the whole-file batch path produces for those reads.

Order matters twice and is preserved twice:

- **within a job**, reads keep their original file order (ascending
  input index), because consensus generation and site assembly follow
  read order -- feeding a region's reads in a different relative order
  could legally reorder consensus tuples and flip WHD ties;
- **across jobs**, the client reassembles responses by input index, so
  the final SAM's line order is the input's regardless of response
  order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.realign.realigner import apply_realignment
from repro.refinement.regions import DEFAULT_REGION_GAP


@dataclass(frozen=True)
class RegionJob:
    """One independently-realignable slice of the input read set."""

    job_id: int
    chrom: str  # "*" for the unmapped bucket
    indices: Tuple[int, ...]  # positions in the original read list
    reads: Tuple[Read, ...]  # the same reads, original relative order

    @property
    def num_reads(self) -> int:
        return len(self.reads)


def partition_jobs(
    reads: Sequence[Read],
    reference: Optional[ReferenceGenome] = None,
    region_gap: int = DEFAULT_REGION_GAP,
) -> List[RegionJob]:
    """Partition reads into independent region jobs.

    Every input index appears in exactly one job. Contigs are bucketed
    first (cross-contig structure cannot exist); within a contig, reads
    are scanned in coordinate order and cut where the next read starts
    more than ``region_gap`` bases past the furthest end seen -- the
    running-frontier rule of
    :func:`repro.refinement.regions.split_regions`. Unmapped reads form
    one final job (no coordinates, no cross-read structure, and the
    realigner passes them through untouched).
    """
    if region_gap < 0:
        raise ValueError(f"region_gap must be >= 0, got {region_gap}")
    by_contig: Dict[str, List[int]] = {}
    unmapped: List[int] = []
    for index, read in enumerate(reads):
        if read.is_mapped:
            by_contig.setdefault(read.chrom, []).append(index)
        else:
            unmapped.append(index)
    if reference is not None:
        rank = {name: i for i, name in enumerate(reference.contig_names)}
    else:
        rank = {}
    ordered = sorted(
        by_contig,
        key=lambda chrom: (0, rank[chrom]) if chrom in rank else (1, chrom),
    )
    jobs: List[RegionJob] = []
    for chrom in ordered:
        indices = by_contig[chrom]
        # Coordinate order decides the cuts; ties keep input order so
        # the scan is deterministic for any input permutation.
        scan = sorted(indices, key=lambda i: (reads[i].pos, i))
        current: List[int] = [scan[0]]
        frontier = reads[scan[0]].end
        for index in scan[1:]:
            read = reads[index]
            if read.pos > frontier + region_gap:
                jobs.append(_job(len(jobs), chrom, current, reads))
                current = []
            current.append(index)
            frontier = max(frontier, read.end)
        jobs.append(_job(len(jobs), chrom, current, reads))
    if unmapped:
        jobs.append(_job(len(jobs), "*", unmapped, reads))
    return jobs


def _job(job_id: int, chrom: str, members: List[int],
         reads: Sequence[Read]) -> RegionJob:
    members = sorted(members)  # ascending input index == original order
    return RegionJob(
        job_id=job_id,
        chrom=chrom,
        indices=tuple(members),
        reads=tuple(reads[i] for i in members),
    )


def apply_site_results(reads: Sequence[Read], windows, results) -> List[Read]:
    """Apply kernel decisions to reads -- the realigner's back half.

    Mirrors the update step of
    :meth:`repro.realign.realigner.IndelRealigner.realign` exactly
    (same :func:`~repro.realign.realigner.apply_realignment` call, same
    name-keyed update map, same input order out), so a server that ran
    ``build_sites`` locally but the kernel remotely reproduces the
    batch path byte for byte.
    """
    updates: Dict[str, Read] = {}
    for window, result in zip(windows, results):
        for j, read in enumerate(window.reads):
            if result.realign[j]:
                updates[read.name] = apply_realignment(
                    read, window, result.best_cons, int(result.new_pos[j])
                )
    return [updates.get(read.name, read) for read in reads]


__all__ = ["RegionJob", "apply_site_results", "partition_jobs"]
