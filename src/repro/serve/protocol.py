"""JSONL wire protocol between ``repro serve`` and its clients.

One message per line, UTF-8 JSON with sorted keys and no whitespace --
newline-delimited so the protocol needs no length prefix and a session
is replayable with ``nc`` or a five-line script. Requests carry a
client-chosen ``id``; responses echo it, so a client may pipeline many
requests on one connection and match completions out of order (the
server handles each request as its own task precisely so that
concurrent requests coalesce into shared engine batches).

Operations:

- ``realign``: ``{"id", "op": "realign", "tenant", "sam": [lines...],
  "deadline_s"?}`` -> ``{"id", "ok": true, "sam": [lines...],
  "sites": n, "latency_ms": x}``; read payloads travel as SAM-lite
  lines (the repo's one read serialization -- reusing it keeps the
  byte-identity argument trivial).
- ``stats``: the service snapshot (counters, percentiles, saturation).
- ``ping``: liveness probe.
- ``shutdown``: ask the server to drain and exit.

Failures come back as ``{"id", "ok": false, "status":
"rejected"|"expired"|"closed"|"error", "error": "..."}`` -- the status
string mirrors the :mod:`repro.serve.request` exception taxonomy so
clients can tell backpressure (retry later) from a real fault.
"""

from __future__ import annotations

import json
from typing import Optional

#: Connection read limit: a region job's SAM lines are at most a few
#: MB; 64 MiB leaves room for pathological pileups without letting a
#: rogue peer balloon the server.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

#: The operations the server understands.
OPERATIONS = ("realign", "stats", "ping", "shutdown")

#: Failure statuses a response may carry.
STATUSES = ("ok", "rejected", "expired", "closed", "error")


class ProtocolError(ValueError):
    """Raised for malformed frames (bad JSON, missing fields)."""


def encode_message(message: dict) -> bytes:
    """Serialize one message to its wire frame (JSON + newline)."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: bytes) -> dict:
    """Parse one wire frame; raises :class:`ProtocolError` if malformed."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed frame: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


async def read_message(reader) -> Optional[dict]:
    """Read one frame from an ``asyncio.StreamReader``; None at EOF."""
    line = await reader.readline()
    if not line:
        return None
    return decode_message(line)


def error_response(request_id, status: str, error: str) -> dict:
    if status not in STATUSES or status == "ok":
        raise ValueError(f"bad failure status {status!r}")
    return {"id": request_id, "ok": False, "status": status, "error": error}


__all__ = [
    "MAX_MESSAGE_BYTES",
    "OPERATIONS",
    "ProtocolError",
    "STATUSES",
    "decode_message",
    "encode_message",
    "error_response",
    "read_message",
]
