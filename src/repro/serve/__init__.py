"""Realignment as a service: the asyncio request plane.

The batch CLI realigns a file; this package realigns *requests*. A
:class:`~repro.serve.service.RealignmentService` wraps any engine with
admission control, request coalescing, deadlines, and latency/saturation
telemetry; :class:`~repro.serve.server.RealignmentServer` exposes it
over a JSONL TCP protocol; :class:`~repro.serve.client.ServiceClient`
and :mod:`~repro.serve.loadgen` drive it. ``docs/SERVING.md`` is the
narrative; ``repro serve`` / ``repro loadgen`` are the entry points.
"""

from repro.serve.client import RealignResult, ServiceClient
from repro.serve.jobs import RegionJob, apply_site_results, partition_jobs
from repro.serve.loadgen import LoadReport, run_loadgen, simulate_load
from repro.serve.metrics import (
    LatencyRecorder,
    ServiceSnapshot,
    latency_summary,
    percentile,
)
from repro.serve.request import (
    ADMISSION_POLICIES,
    DEFAULT_TENANT,
    DeadlineExceeded,
    ServeError,
    ServiceClosed,
    ServiceConfig,
    ServiceSaturated,
)
from repro.serve.server import RealignmentServer
from repro.serve.service import RealignmentService

__all__ = [
    "ADMISSION_POLICIES",
    "DEFAULT_TENANT",
    "DeadlineExceeded",
    "LatencyRecorder",
    "LoadReport",
    "RealignResult",
    "RealignmentServer",
    "RealignmentService",
    "RegionJob",
    "ServeError",
    "ServiceClient",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceSaturated",
    "ServiceSnapshot",
    "apply_site_results",
    "latency_summary",
    "partition_jobs",
    "percentile",
    "run_loadgen",
    "simulate_load",
]
