"""Serving-path canary: route an evaluation scenario through the service.

The accuracy harness (PR 7) scores realignment *outcomes*; the serving
plane (this PR) changes *how* sites reach the kernel. The canary closes
the loop: it realigns a known-truth scenario where the kernel calls go
through the live :class:`~repro.serve.service.RealignmentService` --
admission control, coalescing, executor hop and all -- and checks the
report against the same invariants the batch accuracy tests pin. A
deployment whose serving path would corrupt outcomes (a bad slice
boundary, a result mis-ordered across coalesced jobs) fails its canary
before taking real traffic.

The bridge is :class:`ServiceBackedEngine`: an
:class:`~repro.engine.parallel.Engine` subclass the realigner accepts
as-is, whose ``run_sites`` submits to the service from the worker
thread via ``asyncio.run_coroutine_threadsafe``.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Sequence

from repro.engine import Engine, EngineConfig


class ServiceBackedEngine(Engine):
    """An engine facade that routes ``run_sites`` through a service.

    Passing this to :class:`~repro.realign.realigner.IndelRealigner`
    (which type-checks for :class:`Engine`) makes any batch code path
    exercise the live request plane. Must be called from a thread other
    than the service's event loop (the realigner runs in an executor
    during the canary), because it blocks on the cross-thread future.
    """

    def __init__(self, service, loop: asyncio.AbstractEventLoop,
                 tenant: str = "canary",
                 deadline_s: Optional[float] = None):
        super().__init__(EngineConfig())
        self._service = service
        self._service_loop = loop
        self._tenant = tenant
        self._deadline_s = deadline_s

    def run_sites(self, sites: Sequence, telemetry=None) -> List:
        if not sites:
            return []
        future = asyncio.run_coroutine_threadsafe(
            self._service.submit_sites(
                list(sites), tenant=self._tenant,
                deadline_s=self._deadline_s,
            ),
            self._service_loop,
        )
        return future.result()


async def run_canary(service, scenario: str = "toy",
                     seed: Optional[int] = None) -> dict:
    """Run one evaluation scenario through the serving path.

    Returns a verdict dict (the report's scenario totals plus
    ``"ok"``); ``ok`` requires the outcome invariants the batch
    accuracy tests pin -- realignment moved reads, did not add
    reference mismatches, and did not lose truth concordance.
    """
    from repro.evaluate.scenarios import run_scenario

    loop = asyncio.get_running_loop()
    engine = ServiceBackedEngine(service, loop)
    report = await loop.run_in_executor(
        None, lambda: run_scenario(scenario, engine=engine, seed=seed)
    )
    totals = report.totals()
    verdict = {
        "scenario": scenario,
        "seed": report.seed,
        "ok": bool(
            totals["reads_moved"] > 0
            and totals["mismatch_after"] <= totals["mismatch_before"]
            and totals["concordance_after"] >= totals["concordance_before"]
        ),
    }
    verdict.update(totals)
    return verdict


__all__ = ["ServiceBackedEngine", "run_canary"]
