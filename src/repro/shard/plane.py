"""Horizontal shard plane: contig/region-hash dispatch over N workers.

The paper's cloud argument is fleet-level -- INDEL realignment scales
by adding accelerator-backed instances behind a partitioner, not by
making one instance infinitely fast. :class:`ShardPlane` is that
partitioner for the host software plane: realignment sites are routed
by a **stable contig/region hash** (:func:`shard_for`) to N long-lived
shard workers (processes today, any :class:`~repro.shard.transport
.ShardTransport` tomorrow), each running the same exact chunk path as
the barrier/streaming engines.

Determinism: results are merged by *original site index*, so output is
byte-identical to the serial path at any shard count, under any
work-stealing/straggler/retry schedule, and in any cache state (the
golden matrix and ``tests/test_shard_properties.py`` pin this).

Scheduling policy, in dispatch-priority order per idle shard:

1. its own home queue (region-hash locality),
2. **steal** from the tail of the longest other home queue (the same
   idle-worker stealing ``imap_unordered`` gives the barrier engine),
3. **straggler re-steal**: once every queue is empty, a chunk in
   flight longer than ``max(straggler_min_s, straggler_factor x p95)``
   of recently completed chunk walls is dispatched *again* on the idle
   shard -- first result wins, the duplicate is discarded on arrival
   (all kernels are exact, so either copy is the answer).

Resilience mirrors PR 6's unit quarantine, one level up: a dead or
hung worker (SIGKILL, wedge past the chunk deadline) is killed and
respawned and its chunk retried on another shard; a shard failing
``quarantine_after`` times is quarantined for the run; a chunk
exhausting ``max_attempts`` is *quarantined to the inline path* --
realigned in the parent, exactly -- so forward progress never depends
on any worker surviving. Chaos arrives through the same seeded
:class:`~repro.resilience.workers.WorkerFaultPlan` machinery
(``REPRO_WORKER_FAULT_RATE`` et al. reach shard workers unchanged).

Everything is observable: ``shard.*`` counters (dispatches, steals,
re-steals, retries, respawns, quarantines, per-shard chunk/site/busy
tallies) fold into the shared counter fabric, and every completed
chunk becomes a ``CAT_SHARD`` span on its executing shard's track
(:func:`repro.perf.fleet.record_shard_chunks`), so a Chrome trace
shows the shards overlapping next to the engine/stream/recovery
timelines.

An optional :class:`~repro.shard.cache.SiteResultCache` short-circuits
whole sites before partitioning -- the content-addressed layer that
makes duplicate-heavy multi-tenant traffic cheap (docs/SHARDING.md).
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.parallel import (
    EngineConfig,
    ShardStats,
    _realign_chunk,
)
from repro.realign.site import RealignmentSite
from repro.realign.whd import SiteResult
from repro.shard.cache import SiteResultCache, lookup_sites
from repro.shard.transport import (
    PipeShardTransport,
    ShardTransport,
    ShardTransportError,
    wait_ready,
)

#: Default width of one partition region, in reference bases. Matches
#: the order of the serving plane's region-job gap
#: (:data:`repro.serve.jobs.DEFAULT_REGION_GAP`): sites within one
#: locality window share a home shard, distinct windows spread.
DEFAULT_REGION_SPAN = 4096

#: The executing-"shard" id recorded for chunks quarantined inline.
INLINE_SHARD = -1


def shard_for(chrom: str, start: int, shards: int,
              region_span: int = DEFAULT_REGION_SPAN) -> int:
    """Stable home shard of a site: hash of its contig/region bucket.

    The hash is a Fowler-Noll-Vo fold of ``"{chrom}:{start //
    region_span}"`` -- deterministic across processes and Python
    invocations (no ``PYTHONHASHSEED`` dependence), so a region always
    lands on the same shard and a re-submitted cohort job reuses
    whatever per-shard locality (page cache, branch history, a future
    per-shard memo) its first submission warmed.

    >>> shard_for("22", 10_000, 4) == shard_for("22", 10_000, 4)
    True
    >>> all(0 <= shard_for("22", s, 3) < 3 for s in range(0, 100_000, 977))
    True
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    key = f"{chrom}:{start // region_span}".encode()
    digest = 0xCBF29CE484222325  # FNV-1a 64-bit offset basis
    for byte in key:
        digest ^= byte
        digest = (digest * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return digest % shards


@dataclass(frozen=True)
class ShardPlaneConfig:
    """Tuning knobs of the shard dispatch loop.

    ``straggler_factor`` scales the p95 of recently completed chunk
    wall times into the re-steal watermark; ``straggler_min_s`` floors
    it so tiny chunks cannot trigger duplicate dispatch on scheduler
    jitter. ``max_attempts`` bounds per-chunk dispatches before the
    chunk is quarantined to the inline path; ``quarantine_after``
    bounds per-shard failures before the shard is retired for the run.

    >>> ShardPlaneConfig(shards=0)
    Traceback (most recent call last):
        ...
    ValueError: shards must be >= 1, got 0
    """

    shards: int = 2
    region_span: int = DEFAULT_REGION_SPAN
    straggler_factor: float = 4.0
    straggler_min_s: float = 0.25
    max_attempts: int = 4
    quarantine_after: int = 3
    poll_tick: float = 0.02

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.region_span < 1:
            raise ValueError("region_span must be >= 1")
        if self.straggler_factor <= 0 or self.straggler_min_s <= 0:
            raise ValueError("straggler watermark terms must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        if self.poll_tick <= 0:
            raise ValueError("poll_tick must be positive")


@dataclass
class ShardChunk:
    """One dispatchable unit: a batch of sites with their input indices."""

    chunk_id: int
    home: int
    indices: List[int]
    sites: List[RealignmentSite]


class _InFlight:
    """Book-keeping for one dispatched chunk on one shard."""

    __slots__ = ("chunk", "since", "attempt")

    def __init__(self, chunk: ShardChunk, since: float, attempt: int):
        self.chunk = chunk
        self.since = since
        self.attempt = attempt


class ShardPlane:
    """Engine-compatible horizontal dispatch across N shard workers.

    Drop-in wherever an engine goes (``run_sites(sites, telemetry=)``
    plus ``close()``): :class:`~repro.realign.realigner.IndelRealigner`
    ``engine=``, :class:`~repro.serve.service.RealignmentService`, the
    CLI's ``--shards``. ``shards=1`` runs chunks inline in the parent
    (no processes), the deterministic baseline the scaling bench and
    the golden matrix compare against.

    ``recovery`` defaults to the environment
    (:meth:`~repro.resilience.workers.WorkerRecovery.from_env`) so CI
    chaos reruns reach the shard plane with no plumbing; its fault
    plan rides into every worker and its ``chunk_deadline`` arms the
    hung-shard watchdog.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        shards: Optional[int] = None,
        plane: Optional[ShardPlaneConfig] = None,
        cache: Optional[SiteResultCache] = None,
        recovery=None,
        transport_factory=None,
    ):
        from repro.resilience.workers import WorkerRecovery

        self.config = config if config is not None else EngineConfig()
        if plane is None:
            plane = ShardPlaneConfig(
                shards=shards if shards is not None else 2
            )
        elif shards is not None and shards != plane.shards:
            raise ValueError(
                f"shards={shards} contradicts plane.shards={plane.shards}"
            )
        self.plane = plane
        self.cache = cache
        self.recovery = (recovery if recovery is not None
                         else WorkerRecovery.from_env())
        self._plan = self.recovery.plan if self.recovery is not None else None
        self._deadline = (self.recovery.chunk_deadline
                          if self.recovery is not None else 30.0)
        self._factory = transport_factory
        self._profile_resolved = False
        self._profile = None
        self._transports: Dict[int, Optional[ShardTransport]] = {}
        self._spawned_once: set = set()
        #: Latest run's chunk records (executing shard, timestamps).
        self.shard_stats: List[ShardStats] = []
        #: Latest run's ``shard.*`` counters; the serving plane folds
        #: these per dispatch exactly like engine recovery counters.
        self.recovery_counters: Dict[str, int] = {}
        self._occupancy: Dict[str, float] = {}
        #: Completed chunk wall times feeding the straggler watermark.
        self._durations: deque = deque(maxlen=256)

    # -- partitioning ---------------------------------------------------
    def _partition(
        self, entries: List[Tuple[int, RealignmentSite]]
    ) -> List[ShardChunk]:
        """Group by home shard, then chunk by ``config.batch``.

        Within a shard, sites keep input order; chunk ids are assigned
        shard-major. Neither ordering is visible in the output (the
        merge is by original index) -- it only shapes locality.
        """
        per_shard: "OrderedDict[int, List[Tuple[int, RealignmentSite]]]" = (
            OrderedDict()
        )
        for index, site in entries:
            home = shard_for(site.chrom, site.start, self.plane.shards,
                             self.plane.region_span)
            per_shard.setdefault(home, []).append((index, site))
        chunks: List[ShardChunk] = []
        for home in sorted(per_shard):
            bucket = per_shard[home]
            for lo in range(0, len(bucket), self.config.batch):
                part = bucket[lo:lo + self.config.batch]
                chunks.append(ShardChunk(
                    chunk_id=len(chunks),
                    home=home,
                    indices=[index for index, _ in part],
                    sites=[site for _, site in part],
                ))
        return chunks

    # -- the public engine surface --------------------------------------
    def run_sites(
        self,
        sites: Sequence[RealignmentSite],
        telemetry=None,
    ) -> List[SiteResult]:
        """Realign ``sites``; results align index-for-index with input."""
        from repro.perf.fleet import record_shard_chunks

        sites = list(sites)
        self.shard_stats = []
        self.recovery_counters = {}
        if not sites:
            return []
        run_start = time.perf_counter()
        counters: Dict[str, int] = {}

        def count(name: str, delta: int = 1) -> None:
            counters[name] = counters.get(name, 0) + delta

        results, miss_indices, keys = lookup_sites(self.cache, sites,
                                                   self.config)
        if self.cache is not None:
            count("shard.cache_hits", len(sites) - len(miss_indices))
            count("shard.cache_misses", len(miss_indices))
        chunks = self._partition([(i, sites[i]) for i in miss_indices])
        busy: Dict[int, float] = {}
        if chunks:
            if self.plane.shards == 1:
                outcomes = {}
                for chunk in chunks:
                    cid, chunk_results, start, end, worker_counters = (
                        _realign_chunk(chunk.chunk_id, chunk.sites,
                                       self.config)
                    )
                    outcomes[cid] = (chunk_results, start, end,
                                     worker_counters, 0)
                    busy[0] = busy.get(0, 0.0) + (end - start)
                    count("shard.completed_chunks")
                    count("shard.sites", len(chunk.sites))
            else:
                outcomes = self._dispatch(chunks, count, busy)
            stats: List[ShardStats] = []
            for chunk in chunks:
                chunk_results, start, end, worker_counters, executor = (
                    outcomes[chunk.chunk_id]
                )
                for index, result in zip(chunk.indices, chunk_results):
                    results[index] = result
                    if self.cache is not None:
                        self.cache.put(keys[index], sites[index].start,
                                       result)
                stats.append(ShardStats(
                    shard=executor, sites=len(chunk.sites),
                    start=start, end=end, counters=worker_counters,
                ))
                for name, value in worker_counters.items():
                    count(name, value)
                count(f"shard.{max(executor, 0)}.chunks"
                      if executor != INLINE_SHARD else "shard.inline.chunks")
                count(f"shard.{max(executor, 0)}.sites"
                      if executor != INLINE_SHARD else "shard.inline.sites",
                      len(chunk.sites))
            self.shard_stats = stats
        wall = max(time.perf_counter() - run_start, 1e-9)
        self._occupancy = {
            f"shard{shard}": min(seconds / wall, 1.0)
            for shard, seconds in sorted(busy.items())
        }
        for shard, seconds in sorted(busy.items()):
            count(f"shard.{shard}.busy_us", int(seconds * 1e6))
        self.recovery_counters = dict(counters)
        if telemetry is not None:
            for name, value in counters.items():
                telemetry.count(name, value)
            record_shard_chunks(
                telemetry,
                [(stat.shard, chunk.chunk_id, stat.sites, stat.start,
                  stat.end)
                 for chunk, stat in zip(chunks, self.shard_stats)],
                origin=run_start,
            )
        return results

    # -- the dispatch loop ----------------------------------------------
    def _dispatch(self, chunks, count, busy):
        """Multi-shard dispatch: steal, re-steal, retry, quarantine."""
        queues: Dict[int, deque] = {
            shard: deque() for shard in range(self.plane.shards)
        }
        for chunk in chunks:
            queues[chunk.home].append(chunk)
        outcomes: Dict[int, tuple] = {}
        inflight: Dict[int, _InFlight] = {}
        attempts: Dict[int, int] = {}
        failures: Dict[int, int] = {}
        running: Dict[int, set] = {chunk.chunk_id: set() for chunk in chunks}
        quarantined: set = set()

        def note_busy(shard: int, inf: _InFlight, now: float) -> None:
            busy[shard] = busy.get(shard, 0.0) + (now - inf.since)

        def queued_ids() -> set:
            return {chunk.chunk_id for queue in queues.values()
                    for chunk in queue}

        def requeue(chunk: ShardChunk) -> None:
            """Retry elsewhere, or quarantine the chunk inline."""
            if chunk.chunk_id in outcomes:
                return
            if attempts.get(chunk.chunk_id, 0) >= self.plane.max_attempts:
                self._run_inline(chunk, outcomes, count)
                return
            healthy = [shard for shard in queues if shard not in quarantined]
            if not healthy:
                self._run_inline(chunk, outcomes, count)
                return
            target = (chunk.home if chunk.home in healthy
                      else min(healthy, key=lambda s: len(queues[s])))
            queues[target].appendleft(chunk)
            count("shard.retries")

        def quarantine(shard: int) -> None:
            if shard in quarantined:
                return
            quarantined.add(shard)
            count("shard.quarantined")
            transport = self._transports.get(shard)
            if transport is not None:
                transport.kill()
                self._transports[shard] = None

        def on_death(shard: int, now: float, expired: bool = False) -> None:
            inf = inflight.pop(shard, None)
            transport = self._transports.get(shard)
            if transport is not None:
                transport.kill()
                self._transports[shard] = None
            count("shard.worker_deaths")
            if expired:
                count("shard.deadline_expired")
            failures[shard] = failures.get(shard, 0) + 1
            if failures[shard] >= self.plane.quarantine_after:
                quarantine(shard)
            if inf is None:
                return
            note_busy(shard, inf, now)
            cid = inf.chunk.chunk_id
            running[cid].discard(shard)
            if cid not in outcomes and not running[cid] \
                    and cid not in queued_ids():
                requeue(inf.chunk)

        peak_depth = 0
        while len(outcomes) < len(chunks):
            peak_depth = max(
                peak_depth,
                sum(len(queue) for queue in queues.values()) + len(inflight),
            )
            self._feed(queues, inflight, outcomes, attempts, running,
                       quarantined, requeue, count)
            if not inflight:
                # Nothing dispatchable and nothing in flight: every
                # shard is quarantined/dead. Drain inline -- forward
                # progress must never depend on a worker surviving.
                for chunk in chunks:
                    if chunk.chunk_id not in outcomes:
                        self._run_inline(chunk, outcomes, count)
                break
            ready = wait_ready(
                [self._transports[shard] for shard in inflight
                 if self._transports.get(shard) is not None],
                self.plane.poll_tick,
            )
            now = time.perf_counter()
            by_transport = {
                id(self._transports[shard]): shard for shard in inflight
                if self._transports.get(shard) is not None
            }
            for transport in ready:
                shard = by_transport.get(id(transport))
                if shard is None:
                    continue
                try:
                    message = transport.recv()
                except (EOFError, OSError):
                    on_death(shard, now)
                    continue
                self._on_message(shard, message, inflight, outcomes,
                                 running, failures, quarantine, requeue,
                                 note_busy, count, now)
            now = time.perf_counter()
            for shard, inf in list(inflight.items()):
                if now - inf.since > self._deadline:
                    on_death(shard, now, expired=True)
                elif not self._transport_alive(shard):
                    on_death(shard, now)
        count("shard.queue_depth_peak", peak_depth)
        return outcomes

    def _feed(self, queues, inflight, outcomes, attempts, running,
              quarantined, requeue, count) -> None:
        """Hand one chunk to every idle healthy shard."""
        for shard in range(self.plane.shards):
            if shard in quarantined or shard in inflight:
                continue
            chunk = None
            if queues[shard]:
                chunk = queues[shard].popleft()
            else:
                donor = max(
                    (other for other in queues if queues[other]),
                    key=lambda other: len(queues[other]),
                    default=None,
                )
                if donor is not None:
                    chunk = queues[donor].pop()
                    count("shard.steals")
                else:
                    chunk = self._straggler_candidate(inflight, running,
                                                      outcomes)
                    if chunk is not None:
                        count("shard.resteals")
            if chunk is None:
                continue
            transport = self._ensure_transport(shard, count)
            if transport is None:
                quarantined.add(shard)
                count("shard.quarantined")
                if not running[chunk.chunk_id]:
                    requeue(chunk)
                continue
            attempt = attempts.get(chunk.chunk_id, 0)
            attempts[chunk.chunk_id] = attempt + 1
            try:
                transport.send(("chunk", chunk.chunk_id, attempt,
                                chunk.sites))
            except ShardTransportError:
                transport.kill()
                self._transports[shard] = None
                count("shard.worker_deaths")
                if not running[chunk.chunk_id]:
                    requeue(chunk)
                continue
            inflight[shard] = _InFlight(chunk, time.perf_counter(), attempt)
            running[chunk.chunk_id].add(shard)
            count("shard.dispatched_chunks")

    def _on_message(self, shard, message, inflight, outcomes, running,
                    failures, quarantine, requeue, note_busy, count,
                    now) -> None:
        inf = inflight.pop(shard, None)
        if inf is not None:
            note_busy(shard, inf, now)
        kind = message[0]
        if kind == "done":
            _, cid, _attempt, chunk_results, start, end, worker_counters = (
                message
            )
            running.get(cid, set()).discard(shard)
            if cid in outcomes:
                count("shard.duplicate_results")
                return
            outcomes[cid] = (chunk_results, start, end, worker_counters,
                             shard)
            self._durations.append(end - start)
            count("shard.completed_chunks")
            count("shard.sites", len(chunk_results))
        elif kind == "fail":
            _, cid, _attempt, _message = message
            running.get(cid, set()).discard(shard)
            count("shard.failures")
            failures[shard] = failures.get(shard, 0) + 1
            if failures[shard] >= self.plane.quarantine_after:
                quarantine(shard)
            if inf is not None and cid not in outcomes \
                    and not running.get(cid):
                requeue(inf.chunk)

    def _straggler_candidate(self, inflight, running, outcomes):
        """The oldest over-watermark in-flight chunk worth duplicating.

        Requires a few completed chunks first: the watermark is
        ``straggler_factor x p95`` of observed chunk walls (floored at
        ``straggler_min_s``), and with no history every first-wave
        chunk would look slow.
        """
        if len(self._durations) < 4:
            return None
        from repro.serve.metrics import percentile

        watermark = max(
            self.plane.straggler_min_s,
            self.plane.straggler_factor
            * percentile(list(self._durations), 95.0),
        )
        now = time.perf_counter()
        candidate = None
        for inf in inflight.values():
            cid = inf.chunk.chunk_id
            if cid in outcomes or len(running.get(cid, ())) != 1:
                continue
            if now - inf.since <= watermark:
                continue
            if candidate is None or inf.since < candidate.since:
                candidate = inf
        return candidate.chunk if candidate is not None else None

    def _run_inline(self, chunk: ShardChunk, outcomes, count) -> None:
        """Quarantine one chunk to the parent's exact inline path."""
        if chunk.chunk_id in outcomes:
            return
        cid, chunk_results, start, end, worker_counters = _realign_chunk(
            chunk.chunk_id, chunk.sites, self.config
        )
        outcomes[cid] = (chunk_results, start, end, worker_counters,
                         INLINE_SHARD)
        count("shard.inline_chunks")
        count("shard.completed_chunks")
        count("shard.sites", len(chunk.sites))

    # -- transports ------------------------------------------------------
    def _resolve_profile(self):
        if not self._profile_resolved:
            from repro.engine.autotune import resolve_profile

            self._profile = (resolve_profile()
                             if self.config.kernel == "auto" else None)
            self._profile_resolved = True
        return self._profile

    def _transport_alive(self, shard: int) -> bool:
        transport = self._transports.get(shard)
        return transport is not None and transport.alive()

    def _ensure_transport(self, shard: int, count) -> Optional[ShardTransport]:
        transport = self._transports.get(shard)
        if transport is not None and transport.alive():
            return transport
        if transport is not None:
            transport.kill()
            self._transports[shard] = None
        try:
            if self._factory is not None:
                transport = self._factory(shard)
            else:
                plan = (self._plan
                        if self._plan is not None
                        and not self._plan.is_fault_free else None)
                transport = PipeShardTransport(
                    shard, self.config, self._resolve_profile(), plan
                )
        except Exception:  # noqa: BLE001 - spawn failure -> quarantine
            return None
        if shard in self._spawned_once:
            count("shard.respawns")
        self._spawned_once.add(shard)
        self._transports[shard] = transport
        return transport

    # -- observability ---------------------------------------------------
    def occupancy(self) -> Dict[str, float]:
        """Latest run's per-shard busy fraction (dispatch to result)."""
        return dict(self._occupancy)

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        for shard, transport in list(self._transports.items()):
            if transport is not None:
                transport.close()
            self._transports[shard] = None

    def __enter__(self) -> "ShardPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


__all__ = [
    "DEFAULT_REGION_SPAN",
    "INLINE_SHARD",
    "ShardChunk",
    "ShardPlane",
    "ShardPlaneConfig",
    "shard_for",
]
