"""Horizontal shard plane + content-addressed cross-request cache.

The fleet-level scaling layer (docs/SHARDING.md): region-hash
partitioning across long-lived shard workers with byte-identical
merge, plus a canonical-hash :class:`SiteResultCache` that
short-circuits whole sites for duplicate-heavy multi-tenant traffic.
"""

from repro.shard.cache import (
    CachedSiteResult,
    SiteResultCache,
    lookup_sites,
    site_cache_key,
)
from repro.shard.plane import (
    DEFAULT_REGION_SPAN,
    INLINE_SHARD,
    ShardChunk,
    ShardPlane,
    ShardPlaneConfig,
    shard_for,
)
from repro.shard.transport import (
    PipeShardTransport,
    ShardTransport,
    ShardTransportError,
    wait_ready,
)

__all__ = [
    "CachedSiteResult",
    "DEFAULT_REGION_SPAN",
    "INLINE_SHARD",
    "PipeShardTransport",
    "ShardChunk",
    "ShardPlane",
    "ShardPlaneConfig",
    "ShardTransport",
    "ShardTransportError",
    "SiteResultCache",
    "lookup_sites",
    "shard_for",
    "site_cache_key",
    "wait_ready",
]
