"""Transport abstraction for the horizontal shard plane.

The dispatch protocol between the :class:`~repro.shard.plane
.ShardPlane` and its long-lived shard workers is four picklable
message shapes, deliberately transport-agnostic:

- parent -> shard: ``("chunk", chunk_id, attempt, sites)`` and
  ``("stop",)``;
- shard -> parent: ``("done", chunk_id, attempt, results, start, end,
  counters)`` and ``("fail", chunk_id, attempt, message)``.

:class:`ShardTransport` is the small interface the plane actually
uses -- send/poll/recv, liveness, kill -- so a socket transport to a
remote shard host can slot in later without touching the dispatch
loop. :class:`PipeShardTransport` is the in-tree implementation: one
forked long-lived worker process per shard over a duplex
``multiprocessing`` pipe, running chunks through the same
:func:`repro.engine.parallel._realign_chunk` the barrier and
streaming engines use (so every kernel, memo, and prefilter behaviour
is shared, and output stays byte-identical by construction).

Chaos integration mirrors the resilient pool: each worker carries the
run's :class:`~repro.resilience.workers.WorkerFaultPlan` and asks it
``chunk_outcome(chunk, 0, attempt)`` before computing -- the same
seeded, order-independent draw the PR 6 machinery uses, so
``REPRO_WORKER_FAULT_RATE`` chaos reaches shard workers unchanged.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
from typing import List, Optional, Sequence, Tuple


class ShardTransportError(RuntimeError):
    """Raised when a transport cannot deliver (dead peer, closed pipe)."""


class ShardTransport:
    """One bidirectional link to one long-lived shard worker.

    The plane only ever calls these methods, so any transport that
    implements them (pipes here; sockets later) can carry the shard
    protocol. ``waitable()`` may return an object accepted by
    ``multiprocessing.connection.wait`` for efficient multiplexing, or
    ``None`` to make the plane fall back to per-transport polling.
    """

    shard_id: int = -1

    def send(self, message) -> None:
        raise NotImplementedError

    def poll(self, timeout: float = 0.0) -> bool:
        raise NotImplementedError

    def recv(self):
        raise NotImplementedError

    def alive(self) -> bool:
        raise NotImplementedError

    def waitable(self):
        return None

    def kill(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


def _shard_worker_main(conn, shard_id: int, config, profile, plan) -> None:
    """The long-lived shard worker loop (child process entry point).

    Chunks run through the shared ``_realign_chunk`` path. A planned
    fault fires *before* the compute, exactly like the resilient
    pool's worker shim: KILL dies mid-chunk (the parent sees the pipe
    close), HANG/DELAY sleep (the parent's deadline or straggler
    watermark reacts), ERROR surfaces as a ``fail`` message. Real
    unexpected exceptions also surface as ``fail`` so one poisoned
    chunk cannot take the shard down.
    """
    from repro.engine import parallel
    from repro.resilience.workers import perform_fault

    parallel._init_worker(config, profile)
    if plan is not None and plan.is_fault_free:
        plan = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            return
        _, chunk_id, attempt, sites = message
        try:
            if plan is not None:
                event = plan.chunk_outcome(chunk_id, 0, attempt)
                if event is not None:
                    perform_fault(event)
            cid, results, start, end, counters = parallel._realign_chunk(
                chunk_id, sites, config
            )
            conn.send(("done", cid, attempt, results, start, end, counters))
        except Exception as error:  # noqa: BLE001 - forwarded to parent
            try:
                conn.send(("fail", chunk_id, attempt,
                           f"{type(error).__name__}: {error}"))
            except (OSError, ValueError):
                return


class PipeShardTransport(ShardTransport):
    """A forked worker process behind a duplex multiprocessing pipe."""

    def __init__(self, shard_id: int, config, profile=None, plan=None):
        self.shard_id = shard_id
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context()
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, shard_id, config, profile, plan),
            daemon=True,
            name=f"repro-shard-{shard_id}",
        )
        self._process.start()
        child_conn.close()  # the parent keeps only its own end

    def send(self, message) -> None:
        try:
            self._conn.send(message)
        except (OSError, ValueError, BrokenPipeError) as error:
            raise ShardTransportError(
                f"shard {self.shard_id} unreachable: {error}"
            ) from error

    def poll(self, timeout: float = 0.0) -> bool:
        try:
            return self._conn.poll(timeout)
        except (OSError, ValueError):
            return True  # a dead pipe is "readable": recv raises EOFError

    def recv(self):
        return self._conn.recv()

    def alive(self) -> bool:
        return self._process.is_alive()

    def waitable(self):
        return self._conn

    def kill(self) -> None:
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5.0)
            if self._process.is_alive():  # pragma: no cover - stuck child
                self._process.kill()
                self._process.join(timeout=5.0)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def close(self) -> None:
        if self._process.is_alive():
            try:
                self._conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
            self._process.join(timeout=2.0)
        self.kill()


def wait_ready(
    transports: Sequence[ShardTransport], timeout: float
) -> List[ShardTransport]:
    """Transports with a deliverable message (or a dead peer) pending.

    Uses one ``multiprocessing.connection.wait`` when every transport
    exposes a waitable handle (the pipe path); otherwise degrades to a
    per-transport poll sweep, which is what a socket transport without
    selectable handles would get.
    """
    if not transports:
        return []
    handles = {}
    for transport in transports:
        handle = transport.waitable()
        if handle is None:
            break
        handles[id(handle)] = (handle, transport)
    else:
        ready = multiprocessing.connection.wait(
            [handle for handle, _ in handles.values()], timeout
        )
        return [handles[id(handle)][1] for handle in ready]
    ready_list = []
    for transport in transports:
        if transport.poll(timeout / max(1, len(transports))):
            ready_list.append(transport)
    return ready_list


__all__ = [
    "PipeShardTransport",
    "ShardTransport",
    "ShardTransportError",
    "wait_ready",
]
