"""Content-addressed cross-request caching of whole site results.

:class:`~repro.engine.memo.PairMemo` proved that duplicate-heavy
workloads memoize extremely well at read-column granularity *within*
one engine run. Multi-tenant cohort traffic duplicates at a coarser
granularity *across* requests: two tenants re-submitting the same
cohort region produce byte-identical :class:`RealignmentSite` inputs,
so the entire :class:`~repro.realign.whd.SiteResult` can be reused --
no kernel, no dispatch, no worker round-trip.

The cache is **content-addressed**: the key is a canonical SHA-256
over exactly the inputs the WHD kernel reads --

- the consensus set (count, lengths, bases; consensus 0 is the
  reference window),
- every read's bases and quality bytes,
- the grid-shaping configuration: ``scoring`` (changes the Algorithm 2
  scores), ``prefilter`` and memo-active (both change which grid cells
  hold sentinels vs. exact values).

Deliberately **excluded** from the key:

- ``chrom`` and ``start`` -- WHD is translation-invariant: the grids,
  scores, and realign flags depend only on base/quality content, and
  the only coordinate-dependent output (``new_pos = min_whd_idx[best]
  + start``) is reconstructed at lookup time from the cached
  start-relative offsets. A cohort region re-submitted at a lifted
  coordinate (or a PCR-duplicated window on another contig) still
  hits.
- ``kernel``, ``workers``, ``batch`` -- all five kernels are exact and
  the dispatch layer never changes results (pinned by the golden
  matrix), so caching across them is sound by construction.

Capacity is a **byte budget** over the stored numpy arrays (LRU, like
PairMemo but sized in bytes, since site results vary by orders of
magnitude). Thread-safe: the serving plane consults the cache from the
event loop while the engine executor thread inserts.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.realign.site import RealignmentSite
from repro.realign.whd import SiteResult

#: Fixed per-entry bookkeeping charge (key, OrderedDict node, dataclass)
#: on top of the stored arrays' bytes.
ENTRY_OVERHEAD_BYTES = 128


def site_cache_key(site: RealignmentSite, config) -> bytes:
    """Canonical content hash of one site's kernel inputs.

    ``config`` is an :class:`~repro.engine.parallel.EngineConfig` (or
    anything with ``scoring`` / ``prefilter`` / ``memo_capacity``); see
    the module docstring for what is hashed and what is deliberately
    excluded.
    """
    digest = hashlib.sha256()
    scoring = getattr(config, "scoring", "similarity").encode()
    digest.update(struct.pack("<H", len(scoring)))
    digest.update(scoring)
    # Prefilter and an active memo both change grid sentinel content
    # (not the architecturally visible outputs), and cached values
    # carry full grids -- so both are part of the key.
    digest.update(b"\x01" if getattr(config, "prefilter", True) else b"\x00")
    digest.update(b"\x01" if getattr(config, "memo_capacity", 0) else b"\x00")
    digest.update(struct.pack("<I", site.num_consensuses))
    for consensus in site.consensuses:
        raw = consensus.encode()
        digest.update(struct.pack("<I", len(raw)))
        digest.update(raw)
    digest.update(struct.pack("<I", site.num_reads))
    for read, qual in zip(site.reads, site.quals):
        raw = read.encode()
        digest.update(struct.pack("<I", len(raw)))
        digest.update(raw)
        digest.update(qual.tobytes())
    return digest.digest()


@dataclass(frozen=True)
class CachedSiteResult:
    """One site result stored start-independently.

    ``new_pos`` is the only coordinate-dependent field of a
    :class:`SiteResult` (``min_whd_idx`` values are offsets *within* a
    consensus), so the cache stores ``new_pos_rel = new_pos - start``
    for realigned reads and rebuilds ``new_pos`` against the
    requesting site's ``start`` on every hit -- byte-identical to a
    fresh kernel run at any coordinate.
    """

    best_cons: int
    scores: np.ndarray
    min_whd: np.ndarray
    min_whd_idx: np.ndarray
    realign: np.ndarray
    new_pos_rel: np.ndarray

    @classmethod
    def from_result(cls, result: SiteResult, start: int) -> "CachedSiteResult":
        rel = np.where(result.realign, result.new_pos - np.int64(start),
                       np.int64(-1)).astype(np.int64)
        return cls(
            best_cons=int(result.best_cons),
            scores=result.scores,
            min_whd=result.min_whd,
            min_whd_idx=result.min_whd_idx,
            realign=result.realign,
            new_pos_rel=rel,
        )

    def materialize(self, start: int) -> SiteResult:
        new_pos = np.where(self.realign, self.new_pos_rel + np.int64(start),
                           np.int64(-1)).astype(np.int64)
        return SiteResult(
            best_cons=self.best_cons,
            scores=self.scores,
            min_whd=self.min_whd,
            min_whd_idx=self.min_whd_idx,
            realign=self.realign,
            new_pos=new_pos,
        )

    @property
    def nbytes(self) -> int:
        return ENTRY_OVERHEAD_BYTES + sum(
            array.nbytes for array in (
                self.scores, self.min_whd, self.min_whd_idx,
                self.realign, self.new_pos_rel,
            )
        )


class SiteResultCache:
    """Bounded LRU from canonical site keys to whole site results.

    >>> from repro.engine import EngineConfig
    >>> cache = SiteResultCache(capacity_bytes=1 << 20)
    >>> cache.hits, cache.misses, len(cache)
    (0, 0, 0)
    >>> SiteResultCache(capacity_bytes=0)
    Traceback (most recent call last):
        ...
    ValueError: cache capacity must be positive, got 0
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError(
                f"cache capacity must be positive, got {capacity_bytes}"
            )
        self.capacity_bytes = int(capacity_bytes)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.inserts = 0
        self.current_bytes = 0
        self._entries: "OrderedDict[bytes, CachedSiteResult]" = OrderedDict()
        self._lock = threading.Lock()

    @classmethod
    def from_megabytes(cls, megabytes: float) -> "SiteResultCache":
        return cls(capacity_bytes=int(megabytes * (1 << 20)))

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: bytes, start: int) -> Optional[SiteResult]:
        """The cached result rebuilt at ``start``, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        return entry.materialize(start)

    def put(self, key: bytes, start: int, result: SiteResult) -> None:
        entry = CachedSiteResult.from_result(result, start)
        if entry.nbytes > self.capacity_bytes:
            return  # one oversized site must not wipe the whole cache
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.current_bytes -= old.nbytes
            self._entries[key] = entry
            self.current_bytes += entry.nbytes
            self.inserts += 1
            while self.current_bytes > self.capacity_bytes:
                _, evicted = self._entries.popitem(last=False)
                self.current_bytes -= evicted.nbytes
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (benchmarks re-measure cold starts)."""
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, int]:
        """Cumulative counters, named for the shared counter fabric."""
        with self._lock:
            return {
                "cache.hits": self.hits,
                "cache.misses": self.misses,
                "cache.evictions": self.evictions,
                "cache.inserts": self.inserts,
                "cache.bytes": self.current_bytes,
                "cache.entries": len(self._entries),
            }


def lookup_sites(
    cache: Optional[SiteResultCache],
    sites: Sequence[RealignmentSite],
    config,
) -> Tuple[List[Optional[SiteResult]], List[int], List[Optional[bytes]]]:
    """Consult the cache for every site in one pass.

    Returns ``(results, miss_indices, keys)``: ``results[i]`` is the
    cached result or ``None``, ``miss_indices`` lists the positions
    the caller must still compute, and ``keys[i]`` is the canonical
    key (``None`` everywhere when no cache is configured) for
    inserting the computed results afterwards.
    """
    if cache is None:
        return ([None] * len(sites), list(range(len(sites))),
                [None] * len(sites))
    results: List[Optional[SiteResult]] = []
    misses: List[int] = []
    keys: List[Optional[bytes]] = []
    for index, site in enumerate(sites):
        key = site_cache_key(site, config)
        keys.append(key)
        hit = cache.get(key, site.start)
        results.append(hit)
        if hit is None:
            misses.append(index)
    return results, misses, keys


__all__ = [
    "CachedSiteResult",
    "ENTRY_OVERHEAD_BYTES",
    "SiteResultCache",
    "lookup_sites",
    "site_cache_key",
]
