"""Base quality score recalibration (refinement pipeline stage 4).

Sequencers' reported quality scores are systematically biased; BQSR
re-estimates the empirical error rate per covariate bucket and rewrites
each base's score accordingly. We implement the GATK-style two-pass
structure with the covariates that matter for the realignment study:
reported quality score and machine cycle (position in read).

Sites that mismatch the reference are counted as errors unless they look
like real variation (every-read-disagrees columns are skipped), mirroring
GATK's known-sites masking with the information available here. Both
passes are numpy-vectorized per read segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.align.pileup import pileup
from repro.genomics.cigar import CigarOp
from repro.genomics.quality import MAX_PHRED, clamp_phred
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.genomics.sequence import seq_to_array

#: Position-in-read covariate bucket width.
CYCLE_BUCKET = 32

#: Maximum cycle buckets tabulated (reads here are <= 256 bases).
MAX_CYCLE_BUCKETS = 16

#: Laplace-style prior observations per bucket, so rare buckets shrink
#: toward the reported score instead of whipsawing.
PRIOR_OBSERVATIONS = 16.0


@dataclass
class BqsrModel:
    """Empirical error-rate table keyed by (reported Q, cycle bucket)."""

    observations: np.ndarray = field(
        default_factory=lambda: np.zeros(
            (MAX_PHRED + 1, MAX_CYCLE_BUCKETS), dtype=np.int64
        )
    )
    errors: np.ndarray = field(
        default_factory=lambda: np.zeros(
            (MAX_PHRED + 1, MAX_CYCLE_BUCKETS), dtype=np.int64
        )
    )

    def observe(self, reported_q: int, cycle: int, is_error: bool) -> None:
        """Tabulate one base observation (scalar path, used by tests)."""
        bucket = min(cycle // CYCLE_BUCKET, MAX_CYCLE_BUCKETS - 1)
        self.observations[reported_q, bucket] += 1
        if is_error:
            self.errors[reported_q, bucket] += 1

    def observe_batch(self, reported_q: np.ndarray, cycles: np.ndarray,
                      is_error: np.ndarray) -> None:
        """Tabulate a vector of base observations."""
        buckets = np.minimum(cycles // CYCLE_BUCKET, MAX_CYCLE_BUCKETS - 1)
        np.add.at(self.observations, (reported_q, buckets), 1)
        np.add.at(self.errors, (reported_q, buckets),
                  is_error.astype(np.int64))

    def quality_table(self) -> np.ndarray:
        """Recalibrated quality per (reported Q, cycle bucket)."""
        reported = np.arange(MAX_PHRED + 1, dtype=np.float64)[:, None]
        prior_errors = PRIOR_OBSERVATIONS * 10.0 ** (-reported / 10.0)
        rate = (self.errors + prior_errors) / (
            self.observations + PRIOR_OBSERVATIONS
        )
        rate = np.clip(rate, 1e-9, 1.0 - 1e-9)
        return clamp_phred(np.round(-10.0 * np.log10(rate)), MAX_PHRED)

    def recalibrated_quality(self, reported_q: int, cycle: int) -> int:
        bucket = min(cycle // CYCLE_BUCKET, MAX_CYCLE_BUCKETS - 1)
        return int(self.quality_table()[reported_q, bucket])

    def bucket_count(self) -> int:
        """Number of (Q, cycle) buckets with at least one observation."""
        return int((self.observations > 0).sum())


def variant_mask(
    columns, reference: ReferenceGenome
) -> Set[Tuple[str, int]]:
    """Columns where every read disagrees with the reference: likely
    real variants, masked from error counting.

    Takes the pileup columns rather than the reads so the streaming
    pipeline can accumulate columns region-by-region (columns key on
    ``(chrom, pos)``; regions never share a position) and derive the
    identical mask at drain time.
    """
    return {
        key
        for key, col in columns.items()
        if col.depth >= 2
        # Realignment can leave a read's tail hanging past the contig
        # end; columns without a reference base cannot be compared.
        and 0 <= key[1] < reference.length(key[0])
        and all(b != reference.fetch(key[0], key[1], key[1] + 1)
                for b in col.bases)
    }


def _variant_like_positions(
    reads: Sequence[Read], reference: ReferenceGenome
) -> Set[Tuple[str, int]]:
    return variant_mask(pileup(reads), reference)


def fit_model(
    reads: Sequence[Read],
    reference: ReferenceGenome,
    masked: Optional[Set[Tuple[str, int]]] = None,
) -> BqsrModel:
    """First pass: tabulate empirical mismatch rates per covariate.

    ``masked`` optionally supplies a precomputed variant mask (from
    :func:`variant_mask` over incrementally merged columns); by default
    it is derived from ``reads`` directly.
    """
    model = BqsrModel()
    if masked is None:
        masked = _variant_like_positions(reads, reference)
    for read in reads:
        if not read.is_mapped or read.is_duplicate:
            continue
        read_arr = seq_to_array(read.seq)
        read_offset = 0
        ref_pos = read.pos
        contig_length = reference.length(read.chrom)
        for op, length in read.cigar:
            if op is CigarOp.MATCH:
                # Bases past the contig end (a realignment can shift a
                # read's tail off it) have no reference to compare to.
                usable = min(length, max(0, contig_length - ref_pos))
                window = seq_to_array(
                    reference.fetch(read.chrom, ref_pos, ref_pos + usable)
                )
                segment = slice(read_offset, read_offset + usable)
                cycles = np.arange(read_offset, read_offset + usable)
                keep = np.array(
                    [(read.chrom, ref_pos + i) not in masked
                     for i in range(usable)]
                )
                if keep.any():
                    model.observe_batch(
                        read.quals[segment][keep].astype(np.int64),
                        cycles[keep],
                        (read_arr[segment] != window)[keep],
                    )
            if op.consumes_read:
                read_offset += length
            if op.consumes_reference:
                ref_pos += length
    return model


def recalibrate(
    reads: Sequence[Read],
    reference: ReferenceGenome,
    masked: Optional[Set[Tuple[str, int]]] = None,
) -> Tuple[List[Read], BqsrModel]:
    """Two-pass BQSR: fit the table, then rewrite every read's scores."""
    model = fit_model(reads, reference, masked=masked)
    table = model.quality_table()
    updated: List[Read] = []
    for read in reads:
        cycles = np.minimum(
            np.arange(len(read)) // CYCLE_BUCKET, MAX_CYCLE_BUCKETS - 1
        )
        new_quals = table[read.quals.astype(np.int64), cycles]
        updated.append(read.with_quals(new_quals))
    return updated, model
