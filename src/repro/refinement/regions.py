"""Region partitioning for the streaming refinement pipeline.

The refinement stages are only *globally* defined -- duplicate groups,
realignment targets, and pileup columns all form over the whole read
set -- so streaming them region-by-region is exact only when regions
are cut where no cross-region structure can exist. This module owns
those cuts and the argument for why they are safe:

- **contig buckets.** Duplicate groups key on ``(chrom, unclipped
  start, strand)``, target identification accumulates evidence per
  contig, and pileup columns key on ``(chrom, pos)`` -- none of the
  three ever spans contigs, so per-contig processing concatenated in
  contig-rank order (reference declaration order, then unknown contigs
  by name, unmapped last -- exactly ``sort_reads``'s top-level key) is
  the global computation.
- **gap splits within a contig.** A sorted contig is further cut
  between consecutive reads when the next read starts more than
  ``region_gap`` bases after every earlier read has ended. With the
  default gap (4096) the cut clears every cross-read structure the
  stages build: duplicate groups reach at most one leading soft clip
  (< 256, the read-length limit) left of a member's ``pos``; pileup
  columns live strictly inside read spans; and a target's consensus
  window extends at most ``flank + max_consensus_length/2``
  (250 + 1024) beyond its evidence loci, which themselves lie inside
  read spans -- so reads on opposite sides of a 4096-base quiet zone
  can never share a group, a column, or a window.

The decomposition inherits the realigner's existing assumption that
read names are globally unique (its update map and claim set already
key on name).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome

#: Minimum coverage gap (bases) at which a contig may be cut into
#: independent regions. See the module docstring for why 4096 clears
#: every cross-read structure the refinement stages build.
DEFAULT_REGION_GAP = 4096


def contig_buckets(
    reads: Sequence[Read],
    reference: Optional[ReferenceGenome] = None,
) -> List[List[Read]]:
    """Partition reads into per-contig buckets, in final output order.

    Buckets come back in the order their reads must appear in the
    sorted output -- known contigs in reference declaration order,
    unknown contigs lexicographically after them, unmapped reads in one
    final bucket -- and each bucket preserves input order, so
    per-bucket stable sorting then concatenating reproduces the global
    stable sort byte-for-byte.
    """
    mapped: Dict[str, List[Read]] = {}
    unmapped: List[Read] = []
    for read in reads:
        if read.is_mapped:
            mapped.setdefault(read.chrom, []).append(read)
        else:
            unmapped.append(read)
    if reference is not None:
        rank = {name: i for i, name in enumerate(reference.contig_names)}
    else:
        rank = {}
    ordered = sorted(
        mapped,
        key=lambda chrom: (
            (0, rank[chrom]) if chrom in rank else (1, chrom)
        ),
    )
    buckets = [mapped[chrom] for chrom in ordered]
    if unmapped:
        buckets.append(unmapped)
    return buckets


def split_regions(
    sorted_reads: Sequence[Read],
    region_gap: int = DEFAULT_REGION_GAP,
) -> List[List[Read]]:
    """Cut one sorted contig (or the unmapped bucket) at safe gaps.

    ``sorted_reads`` must already be in coordinate order. A cut is
    placed before a read that starts more than ``region_gap`` bases
    past the furthest reference end seen so far -- tracking the running
    maximum end, not the previous read's, because a long earlier read
    can span past many short successors. Unmapped reads (no
    coordinates, no cross-read structure) stay as one region.
    """
    if region_gap < 0:
        raise ValueError(f"region_gap must be >= 0, got {region_gap}")
    if not sorted_reads:
        return []
    if not sorted_reads[0].is_mapped:
        return [list(sorted_reads)]
    regions: List[List[Read]] = []
    current: List[Read] = [sorted_reads[0]]
    frontier = sorted_reads[0].end
    for read in sorted_reads[1:]:
        if read.pos > frontier + region_gap:
            regions.append(current)
            current = []
        current.append(read)
        frontier = max(frontier, read.end)
    regions.append(current)
    return regions


__all__ = ["DEFAULT_REGION_GAP", "contig_buckets", "split_regions"]
