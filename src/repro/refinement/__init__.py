"""The alignment refinement pipeline (paper Figure 1, pipeline 2).

"We then apply several alignment refinement steps to correct errors and
biases in the reads, before identifying the sequence variants": sort,
duplicate removal, INDEL realignment (the accelerated stage), and base
quality score recalibration. The pipeline driver runs them in order and
records per-stage work so Figure 2/3-style breakdowns can be produced
from real executions, not just the analytic model.
"""

from repro.refinement.sort import sort_reads
from repro.refinement.duplicates import mark_duplicates
from repro.refinement.bqsr import BqsrModel, recalibrate
from repro.refinement.pipeline import (
    PipelineResult,
    RefinementPipeline,
    StageTiming,
)

__all__ = [
    "BqsrModel",
    "PipelineResult",
    "RefinementPipeline",
    "StageTiming",
    "mark_duplicates",
    "recalibrate",
    "sort_reads",
]
