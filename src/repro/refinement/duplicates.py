"""Duplicate marking (refinement pipeline stage 2).

PCR amplification and optical effects produce reads that are copies of
the same original DNA fragment; counting them as independent evidence
biases variant calls. Following the Picard/GATK convention, reads are
grouped by (contig, unclipped start position, strand) and every read but
the highest-quality one in each group is flagged as a duplicate.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.genomics.cigar import CigarOp
from repro.genomics.read import Read


@dataclass(frozen=True)
class DuplicateReport:
    """Outcome of one duplicate-marking pass."""

    reads_examined: int
    duplicates_marked: int

    @property
    def duplicate_fraction(self) -> float:
        if self.reads_examined == 0:
            return 0.0
        return self.duplicates_marked / self.reads_examined


def _unclipped_start(read: Read) -> int:
    """Alignment start adjusted for leading soft clips.

    Two copies of one fragment can be clipped differently; keying on the
    unclipped start keeps them in the same duplicate group.
    """
    leading = 0
    for op, length in read.cigar:
        if op is CigarOp.SOFT_CLIP:
            leading += length
        else:
            break
    return read.pos - leading


def _quality_rank(read: Read) -> Tuple[int, str]:
    """Best read in a group: highest total base quality, then by name."""
    return (-int(read.quals.sum()), read.name)


def mark_duplicates(reads: Sequence[Read]) -> Tuple[List[Read], DuplicateReport]:
    """Return reads with duplicates flagged, preserving input order.

    Unmapped reads are never marked. Reads already flagged stay flagged.
    """
    groups: Dict[Tuple[str, int, bool], List[int]] = defaultdict(list)
    for index, read in enumerate(reads):
        if read.is_mapped:
            groups[(read.chrom, _unclipped_start(read), read.is_reverse)].append(
                index
            )
    marked = list(reads)
    duplicates = 0
    for members in groups.values():
        if len(members) < 2:
            continue
        best = min(members, key=lambda i: _quality_rank(reads[i]))
        for index in members:
            if index == best or marked[index].is_duplicate:
                continue
            marked[index] = marked[index].marked_duplicate()
            duplicates += 1
    return marked, DuplicateReport(
        reads_examined=len(reads), duplicates_marked=duplicates
    )
