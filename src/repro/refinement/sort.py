"""Coordinate sort (refinement pipeline stage 1).

Sorting brings reads into reference order so downstream stages (duplicate
marking, target identification, pileups) can stream. Matches samtools
``sort`` semantics at the level the pipeline needs: contig order as given
by the reference, then position, then strand, with unmapped reads last.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome


def sort_reads(
    reads: Sequence[Read],
    reference: Optional[ReferenceGenome] = None,
) -> List[Read]:
    """Return reads in coordinate order.

    With a reference, contigs sort in reference declaration order (the
    SAM convention); otherwise lexicographically. The sort is stable, so
    reads at the same coordinate keep their input order.
    """
    if reference is not None:
        contig_rank = {name: i for i, name in enumerate(reference.contig_names)}
    else:
        contig_rank = {}

    def key(read: Read) -> Tuple:
        if not read.is_mapped:
            return (1, 0, 0, False)
        rank = contig_rank.get(read.chrom)
        if rank is None:
            # Unknown contigs sort after known ones, by name.
            return (0, (1, read.chrom), read.pos, read.is_reverse)
        return (0, (0, rank), read.pos, read.is_reverse)

    return sorted(reads, key=key)


def is_coordinate_sorted(
    reads: Sequence[Read],
    reference: Optional[ReferenceGenome] = None,
) -> bool:
    """True if ``reads`` is already in coordinate order."""
    ordered = sort_reads(reads, reference)
    return all(a is b for a, b in zip(reads, ordered))
