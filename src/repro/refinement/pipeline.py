"""The alignment refinement pipeline driver.

Runs the four Figure 1 refinement stages in order -- sort, duplicate
removal, INDEL realignment, base quality score recalibration -- over a
read set, optionally swapping the software realigner for the FPGA
system. Per-stage wall-clock and work counters feed the Figure 2/3
breakdown experiments from *executed* pipelines (complementing the
analytic census model in :mod:`repro.perf.pipelines`).
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.align.pileup import merge_columns, pileup
from repro.core.system import AcceleratedRealigner, SystemConfig
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.realign.realigner import IndelRealigner, RealignerReport
from repro.refinement.bqsr import recalibrate, variant_mask
from repro.refinement.duplicates import DuplicateReport, mark_duplicates
from repro.refinement.regions import (
    DEFAULT_REGION_GAP,
    contig_buckets,
    split_regions,
)
from repro.refinement.sort import sort_reads


@dataclass(frozen=True)
class StageTiming:
    """One stage's measured cost."""

    stage: str
    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("stage time must be non-negative")


@dataclass
class PipelineResult:
    """Everything a refinement run produced."""

    reads: List[Read]
    stages: List[StageTiming] = field(default_factory=list)
    duplicate_report: Optional[DuplicateReport] = None
    realigner_report: Optional[RealignerReport] = None

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def fraction(self, stage_name: str) -> float:
        """One stage's share of the pipeline's measured time."""
        total = self.total_seconds
        if total == 0:
            return 0.0
        return sum(
            stage.seconds for stage in self.stages if stage.stage == stage_name
        ) / total


class RefinementPipeline:
    """Sort -> duplicate marking -> INDEL realignment -> BQSR."""

    def __init__(
        self,
        reference: ReferenceGenome,
        use_accelerator: bool = False,
        system_config: Optional[SystemConfig] = None,
        kernel: str = "auto",
    ):
        """``kernel`` is forwarded to the software realigner. Profiling
        experiments pin it (an explicit kernel is never overridden by
        ``REPRO_KERNEL``) so their measured stage breakdown does not
        shift whenever the kernel tier or a CI kernel-override job
        changes which implementation ``auto`` resolves to."""
        self.reference = reference
        self.use_accelerator = use_accelerator
        self.system_config = system_config
        self.kernel = kernel

    def _timed(self, result: PipelineResult, stage: str,
               action: Callable[[], object]) -> object:
        start = time.perf_counter()
        value = action()
        result.stages.append(
            StageTiming(stage=stage, seconds=time.perf_counter() - start)
        )
        return value

    def run(self, reads: Sequence[Read]) -> PipelineResult:
        """Run the full refinement pipeline over ``reads``."""
        result = PipelineResult(reads=list(reads))

        result.reads = self._timed(
            result, "sort", lambda: sort_reads(result.reads, self.reference)
        )

        def _dupes() -> List[Read]:
            marked, report = mark_duplicates(result.reads)
            result.duplicate_report = report
            return marked

        result.reads = self._timed(result, "duplicate_marking", _dupes)

        def _realign() -> List[Read]:
            if self.use_accelerator:
                realigner = AcceleratedRealigner(
                    self.reference, self.system_config
                )
                updated, _run, report = realigner.realign(result.reads)
            else:
                updated, report = IndelRealigner(
                    self.reference, kernel=self.kernel
                ).realign(result.reads)
            result.realigner_report = report
            return updated

        result.reads = self._timed(result, "indel_realignment", _realign)

        def _bqsr() -> List[Read]:
            updated, _model = recalibrate(result.reads, self.reference)
            return updated

        result.reads = self._timed(
            result, "base_quality_score_recalibration", _bqsr
        )
        return result


#: End-of-stream marker for the inter-stage queues.
_DONE = object()


class _PipelineStop(Exception):
    """Internal: a stage observed the stop event and is unwinding."""


class StreamingRefinementPipeline(RefinementPipeline):
    """Region-granular refinement with overlapped stages.

    The barrier pipeline runs each stage over the whole read set before
    the next may start; here sort, duplicate marking, realignment, and
    the BQSR pileup pass each run in their own thread, connected by
    bounded queues, and work flows through them one *region* at a time
    (:mod:`repro.refinement.regions` owns the cuts and the argument for
    why region-at-a-time is exact). While region N is being realigned,
    region N+1 is being deduplicated and N+2 sorted -- the same
    overlap the accelerated system gets from pipelining DMA against
    compute, applied to the host pipeline itself.

    The output :class:`PipelineResult` is byte-identical to
    :meth:`RefinementPipeline.run` -- same reads in the same order with
    the same flags, positions, CIGARs, and recalibrated qualities, and
    aggregate reports with the same totals. Only the BQSR model fit and
    quality rewrite wait for the drain: its variant mask needs the
    *global* pileup, so the pileup accumulates incrementally per region
    (the expensive pass) and the fit runs once at the end (the
    documented sequential tail -- see docs/PERFORMANCE.md).

    Stage timings report per-stage *busy* seconds (summed over
    regions); with overlap, their sum exceeds wall-clock, which is the
    point. Pipeline-plane observations land in ``stream_stats`` and,
    when a telemetry session is passed to :meth:`run`, as
    ``pipeline.*`` counters and one ``CAT_STREAM`` span per region per
    stage.
    """

    #: Queue-to-stage wiring, in flow order. Stage names match the
    #: barrier pipeline so breakdown experiments read both the same.
    STAGES = (
        "sort",
        "duplicate_marking",
        "indel_realignment",
        "base_quality_score_recalibration",
    )

    def __init__(
        self,
        reference: ReferenceGenome,
        use_accelerator: bool = False,
        system_config: Optional[SystemConfig] = None,
        engine=None,
        queue_depth: int = 2,
        region_gap: int = DEFAULT_REGION_GAP,
    ):
        """``engine`` is forwarded to the realigner (an
        :class:`repro.engine.EngineConfig` or live engine -- including
        a :class:`repro.engine.StreamingEngine`); ``queue_depth``
        bounds each inter-stage queue, which bounds how many regions
        exist in flight and therefore peak memory; ``region_gap`` is
        the minimum coverage gap at which a contig may be cut."""
        super().__init__(reference, use_accelerator=use_accelerator,
                         system_config=system_config)
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.engine = engine
        self.queue_depth = queue_depth
        self.region_gap = region_gap
        #: Pipeline-plane observations from the latest run.
        self.stream_stats: Dict[str, int] = {}

    def run(self, reads: Sequence[Read], telemetry=None) -> PipelineResult:
        """Run the overlapped pipeline; byte-identical to the barrier run."""
        from repro.telemetry.spans import CAT_STREAM

        if telemetry is not None and telemetry.ticks_per_second is None:
            telemetry.ticks_per_second = 1.0
        run_start = time.perf_counter()
        busy = {stage: 0.0 for stage in self.STAGES}
        waits = {stage: 0.0 for stage in self.STAGES}
        errors: List[BaseException] = []
        # One stop event shuts the whole pipeline down: every blocking
        # queue operation is a short-timeout poll of this event, so a
        # stage error -- or a KeyboardInterrupt in the main thread --
        # unwinds every thread within one tick instead of leaving them
        # blocked on full/empty queues forever.
        stop = threading.Event()
        queues = {
            stage: queue_module.Queue(maxsize=self.queue_depth)
            for stage in self.STAGES
        }

        def _put(outbox, item) -> None:
            while True:
                if stop.is_set():
                    raise _PipelineStop()
                try:
                    outbox.put(item, timeout=0.05)
                    return
                except queue_module.Full:
                    continue

        def _get(inbox):
            while True:
                if stop.is_set():
                    raise _PipelineStop()
                try:
                    return inbox.get(timeout=0.05)
                except queue_module.Empty:
                    continue

        def _forward(stage: str, outbox, items) -> None:
            for item in items:
                wait_start = time.perf_counter()
                _put(outbox, item)
                waits[stage] += time.perf_counter() - wait_start

        def _stage(stage: str, inbox, outbox,
                   transform: Callable[[int, List[Read]], Iterable]) -> None:
            try:
                while True:
                    item = _get(inbox)
                    if item is _DONE:
                        break
                    index, payload = item
                    start = time.perf_counter()
                    produced = list(transform(index, payload))
                    end = time.perf_counter()
                    busy[stage] += end - start
                    if telemetry is not None:
                        telemetry.span(
                            f"region {index}", f"pipeline {stage}",
                            start - run_start, end - run_start, CAT_STREAM,
                        )
                    _forward(stage, outbox, produced)
            except _PipelineStop:
                return  # shutdown: everyone downstream saw stop too
            except BaseException as exc:  # propagate to the caller
                errors.append(exc)
                stop.set()
                return
            try:
                _put(outbox, _DONE)
            except _PipelineStop:
                pass

        # -- stage transforms (each runs single-threaded in its stage) --
        region_counter = [0]

        def _sort(index: int, bucket: List[Read]) -> Iterable:
            ordered = sort_reads(bucket, self.reference)
            for region in split_regions(ordered, self.region_gap):
                tag = region_counter[0]
                region_counter[0] += 1
                yield (tag, region)

        dup_examined = [0]
        dup_marked = [0]

        def _dedup(index: int, region: List[Read]) -> Iterable:
            marked, report = mark_duplicates(region)
            dup_examined[0] += report.reads_examined
            dup_marked[0] += report.duplicates_marked
            yield (index, marked)

        realigner_report = RealignerReport()
        if self.use_accelerator:
            accelerated = AcceleratedRealigner(
                self.reference, self.system_config, engine=self.engine
            )

            def _do_realign(region):
                updated, _run, report = accelerated.realign(region)
                return updated, report
        else:
            software = IndelRealigner(self.reference, engine=self.engine)

            def _do_realign(region):
                return software.realign(region)

        def _realign(index: int, region: List[Read]) -> Iterable:
            updated, report = _do_realign(region)
            realigner_report.merge(report)
            yield (index, updated)

        # -- wire the threads and feed them ----------------------------
        # The feeder must be its own thread: the sort queue is bounded,
        # so feeding from the main thread would deadlock once the
        # aggregate queue capacity fills while the sole consumer of the
        # final queue (the main thread) is still stuck in put().
        feed_wait = [0.0]

        def _feed() -> None:
            try:
                buckets = contig_buckets(reads, self.reference)
                for index, bucket in enumerate(buckets):
                    wait_start = time.perf_counter()
                    _put(queues["sort"], (index, bucket))
                    feed_wait[0] += time.perf_counter() - wait_start
            except _PipelineStop:
                return
            except BaseException as exc:  # propagate to the caller
                errors.append(exc)
                stop.set()
                return
            try:
                _put(queues["sort"], _DONE)
            except _PipelineStop:
                pass

        threads = [
            threading.Thread(target=_feed, name="refine-feed", daemon=True)
        ] + [
            threading.Thread(
                target=_stage, name=f"refine-{stage}", daemon=True,
                args=(stage, queues[stage], queues[nxt], transform),
            )
            for stage, nxt, transform in (
                ("sort", "duplicate_marking", _sort),
                ("duplicate_marking", "indel_realignment", _dedup),
                ("indel_realignment",
                 "base_quality_score_recalibration", _realign),
            )
        ]
        for thread in threads:
            thread.start()

        # -- BQSR pileup pass: this thread is the final stage ----------
        bqsr_stage = "base_quality_score_recalibration"
        refined: List[Read] = []
        columns: Dict = {}
        regions_seen = 0
        inbox = queues[bqsr_stage]
        drained = False
        try:
            while True:
                try:
                    item = inbox.get(timeout=0.05)
                except queue_module.Empty:
                    if stop.is_set():
                        break  # a stage errored and the flow stopped
                    continue
                if item is _DONE:
                    drained = True
                    break
                index, region = item
                regions_seen += 1
                start = time.perf_counter()
                merge_columns(columns, pileup(region))
                refined.extend(region)
                end = time.perf_counter()
                busy[bqsr_stage] += end - start
                if telemetry is not None:
                    telemetry.span(
                        f"region {index}", f"pipeline {bqsr_stage}",
                        start - run_start, end - run_start, CAT_STREAM,
                    )
        finally:
            # If the drain loop exited early -- a stage error, or a
            # KeyboardInterrupt landing on this (main) thread -- the
            # stop event unwinds every blocked stage within one poll
            # tick, and the joins guarantee no thread outlives the run.
            if not drained:
                stop.set()
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]

        # Sequential tail: the variant mask needs the complete pileup,
        # so the model fit + quality rewrite run once, after the drain.
        start = time.perf_counter()
        masked = variant_mask(columns, self.reference)
        refined, _model = recalibrate(refined, self.reference, masked=masked)
        busy[bqsr_stage] += time.perf_counter() - start

        result = PipelineResult(reads=refined)
        result.stages = [
            StageTiming(stage=stage, seconds=busy[stage])
            for stage in self.STAGES
        ]
        result.duplicate_report = DuplicateReport(
            reads_examined=dup_examined[0],
            duplicates_marked=dup_marked[0],
        )
        result.realigner_report = realigner_report
        backpressure_us = int((feed_wait[0] + sum(waits.values())) * 1e6)
        self.stream_stats = {
            "pipeline.regions": regions_seen,
            "pipeline.queue_depth": self.queue_depth,
            "pipeline.backpressure_us": backpressure_us,
        }
        if telemetry is not None:
            for name, value in self.stream_stats.items():
                telemetry.count(name, value)
        return result
