"""The alignment refinement pipeline driver.

Runs the four Figure 1 refinement stages in order -- sort, duplicate
removal, INDEL realignment, base quality score recalibration -- over a
read set, optionally swapping the software realigner for the FPGA
system. Per-stage wall-clock and work counters feed the Figure 2/3
breakdown experiments from *executed* pipelines (complementing the
analytic census model in :mod:`repro.perf.pipelines`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.system import AcceleratedRealigner, SystemConfig
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.realign.realigner import IndelRealigner, RealignerReport
from repro.refinement.bqsr import recalibrate
from repro.refinement.duplicates import DuplicateReport, mark_duplicates
from repro.refinement.sort import sort_reads


@dataclass(frozen=True)
class StageTiming:
    """One stage's measured cost."""

    stage: str
    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("stage time must be non-negative")


@dataclass
class PipelineResult:
    """Everything a refinement run produced."""

    reads: List[Read]
    stages: List[StageTiming] = field(default_factory=list)
    duplicate_report: Optional[DuplicateReport] = None
    realigner_report: Optional[RealignerReport] = None

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def fraction(self, stage_name: str) -> float:
        """One stage's share of the pipeline's measured time."""
        total = self.total_seconds
        if total == 0:
            return 0.0
        return sum(
            stage.seconds for stage in self.stages if stage.stage == stage_name
        ) / total


class RefinementPipeline:
    """Sort -> duplicate marking -> INDEL realignment -> BQSR."""

    def __init__(
        self,
        reference: ReferenceGenome,
        use_accelerator: bool = False,
        system_config: Optional[SystemConfig] = None,
    ):
        self.reference = reference
        self.use_accelerator = use_accelerator
        self.system_config = system_config

    def _timed(self, result: PipelineResult, stage: str,
               action: Callable[[], object]) -> object:
        start = time.perf_counter()
        value = action()
        result.stages.append(
            StageTiming(stage=stage, seconds=time.perf_counter() - start)
        )
        return value

    def run(self, reads: Sequence[Read]) -> PipelineResult:
        """Run the full refinement pipeline over ``reads``."""
        result = PipelineResult(reads=list(reads))

        result.reads = self._timed(
            result, "sort", lambda: sort_reads(result.reads, self.reference)
        )

        def _dupes() -> List[Read]:
            marked, report = mark_duplicates(result.reads)
            result.duplicate_report = report
            return marked

        result.reads = self._timed(result, "duplicate_marking", _dupes)

        def _realign() -> List[Read]:
            if self.use_accelerator:
                realigner = AcceleratedRealigner(
                    self.reference, self.system_config
                )
                updated, _run, report = realigner.realign(result.reads)
            else:
                updated, report = IndelRealigner(self.reference).realign(
                    result.reads
                )
            result.realigner_report = report
            return updated

        result.reads = self._timed(result, "indel_realignment", _realign)

        def _bqsr() -> List[Read]:
            updated, _model = recalibrate(result.reads, self.reference)
            return updated

        result.reads = self._timed(
            result, "base_quality_score_recalibration", _bqsr
        )
        return result
