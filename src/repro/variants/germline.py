"""A Bayesian diploid germline genotyper.

The paper contrasts its somatic target with germline calling ("newly
released GATK4 uses a different pipeline that does not use INDEL
realignment, but is only suitable for germline (non-cancer) variant
calling"). This module provides the germline side of that contrast: a
per-site diploid genotyper with Phred-scaled genotype likelihoods, so
the library covers both calling regimes and the somatic caller's
low-allele-fraction advantage can be demonstrated against it.

Model: at a pileup column with reference allele R and alternate A, each
genotype G in {RR, RA, AA} assigns each observed base an error-aware
probability; the genotype posterior combines the likelihoods with a
population prior on heterozygosity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.align.pileup import PileupColumn, pileup
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome


class Genotype(str, Enum):
    HOM_REF = "0/0"
    HET = "0/1"
    HOM_ALT = "1/1"


@dataclass(frozen=True)
class GermlineCall:
    """One genotyped site."""

    chrom: str
    pos: int
    ref: str
    alt: str
    genotype: Genotype
    genotype_quality: float  # Phred-scaled confidence in the genotype
    depth: int

    @property
    def is_variant(self) -> bool:
        return self.genotype is not Genotype.HOM_REF


@dataclass(frozen=True)
class GenotyperConfig:
    heterozygosity: float = 1e-3  # human SNP prior
    min_depth: int = 6
    min_genotype_quality: float = 20.0

    def __post_init__(self) -> None:
        if not 0 < self.heterozygosity < 0.5:
            raise ValueError("heterozygosity must be in (0, 0.5)")
        if self.min_depth <= 0:
            raise ValueError("min_depth must be positive")


def _allele_log_likelihoods(
    column: PileupColumn, ref_base: str, alt_base: str
) -> Dict[Genotype, float]:
    """log10 P(observed bases | genotype) under per-base error rates."""
    logs = {g: 0.0 for g in Genotype}
    for base, qual in zip(column.bases, column.quals):
        error = 10.0 ** (-qual / 10.0)
        p_ref = (1 - error) if base == ref_base else error / 3.0
        p_alt = (1 - error) if base == alt_base else error / 3.0
        logs[Genotype.HOM_REF] += math.log10(max(p_ref, 1e-300))
        logs[Genotype.HOM_ALT] += math.log10(max(p_alt, 1e-300))
        logs[Genotype.HET] += math.log10(max(0.5 * (p_ref + p_alt), 1e-300))
    return logs


class GermlineGenotyper:
    """Diploid genotyping over pileup columns."""

    def __init__(self, reference: ReferenceGenome,
                 config: Optional[GenotyperConfig] = None):
        self.reference = reference
        self.config = config or GenotyperConfig()

    def _priors(self) -> Dict[Genotype, float]:
        theta = self.config.heterozygosity
        return {
            Genotype.HOM_REF: 1.0 - 1.5 * theta,
            Genotype.HET: theta,
            Genotype.HOM_ALT: theta / 2.0,
        }

    def genotype_column(self, column: PileupColumn, ref_base: str
                        ) -> Optional[GermlineCall]:
        """Genotype one column; None below the depth floor or with no
        alternate evidence."""
        if column.depth < self.config.min_depth:
            return None
        counts = column.base_counts()
        alternates = [(count, base) for base, count in counts.items()
                      if base != ref_base and base != "N"]
        if not alternates:
            return None
        _count, alt_base = max(alternates)
        logs = _allele_log_likelihoods(column, ref_base, alt_base)
        priors = self._priors()
        posts = {
            g: logs[g] + math.log10(priors[g]) for g in Genotype
        }
        best = max(posts, key=lambda g: posts[g])
        others = [posts[g] for g in Genotype if g is not best]
        # Phred-scaled distance to the runner-up genotype.
        quality = 10.0 * (posts[best] - max(others))
        if best is Genotype.HOM_REF:
            return None
        if quality < self.config.min_genotype_quality:
            return None
        return GermlineCall(
            chrom=column.chrom, pos=column.pos,
            ref=ref_base, alt=alt_base,
            genotype=best, genotype_quality=quality,
            depth=column.depth,
        )

    def call(self, reads: Sequence[Read]) -> List[GermlineCall]:
        """Genotype every covered column; sorted by coordinate."""
        columns = pileup(reads)
        calls: List[GermlineCall] = []
        for (chrom, pos), column in columns.items():
            ref_base = self.reference.fetch(chrom, pos, pos + 1)
            result = self.genotype_column(column, ref_base)
            if result is not None:
                calls.append(result)
        return sorted(calls, key=lambda c: (c.chrom, c.pos))
