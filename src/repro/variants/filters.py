"""Post-call somatic filters.

Position-based somatic callers in the Mutect1 family apply hard filters
after candidate generation; the paper's accuracy motivation ("somatic
variant calls must contain as few errors as possible") lives or dies on
them. Implemented filters:

- ``min_depth`` / ``min_alt_reads`` / ``min_quality`` hard floors;
- ``max_allele_fraction_for_somatic``: germline-looking calls (AF ~ 0.5
  or ~ 1.0) can be excluded in tumor-only mode;
- ``strand_bias``: alt support confined to one strand is an artifact
  signature;
- ``clustered_events``: more than N calls inside one small window is
  the signature of a residual misalignment (exactly what unrealigned
  INDEL reads produce), not of independent mutations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.variants.caller import VariantCall


@dataclass(frozen=True)
class FilterConfig:
    min_depth: int = 8
    min_alt_reads: int = 3
    min_quality: float = 50.0
    max_allele_fraction_for_somatic: Optional[float] = None
    cluster_window: int = 20
    cluster_max_calls: int = 3

    def __post_init__(self) -> None:
        if self.min_depth <= 0 or self.min_alt_reads <= 0:
            raise ValueError("depth floors must be positive")
        if self.cluster_window <= 0 or self.cluster_max_calls <= 0:
            raise ValueError("cluster parameters must be positive")


@dataclass
class FilterReport:
    """Which calls survived, and why the others did not."""

    passed: List[VariantCall] = field(default_factory=list)
    rejected: List[Tuple[VariantCall, str]] = field(default_factory=list)

    @property
    def pass_fraction(self) -> float:
        total = len(self.passed) + len(self.rejected)
        return len(self.passed) / total if total else 0.0

    def rejections_by_reason(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for _call, reason in self.rejected:
            counts[reason] = counts.get(reason, 0) + 1
        return counts


def _clustered(calls: Sequence[VariantCall], config: FilterConfig
               ) -> set:
    """Indices of calls inside over-dense windows."""
    doomed = set()
    ordered = sorted(range(len(calls)),
                     key=lambda i: (calls[i].chrom, calls[i].pos))
    window: List[int] = []
    for index in ordered:
        call = calls[index]
        window = [
            j for j in window
            if calls[j].chrom == call.chrom
            and call.pos - calls[j].pos <= config.cluster_window
        ]
        window.append(index)
        if len(window) > config.cluster_max_calls:
            doomed.update(window)
    return doomed


def apply_filters(
    calls: Sequence[VariantCall],
    config: FilterConfig = FilterConfig(),
) -> FilterReport:
    """Run every filter; returns survivors plus per-call rejection reasons."""
    report = FilterReport()
    clustered = _clustered(calls, config)
    for index, call in enumerate(calls):
        if call.depth < config.min_depth:
            report.rejected.append((call, "low_depth"))
        elif call.alt_count < config.min_alt_reads:
            report.rejected.append((call, "low_alt_support"))
        elif call.quality < config.min_quality:
            report.rejected.append((call, "low_quality"))
        elif (config.max_allele_fraction_for_somatic is not None
              and call.allele_fraction
              > config.max_allele_fraction_for_somatic):
            report.rejected.append((call, "germline_fraction"))
        elif index in clustered:
            report.rejected.append((call, "clustered_events"))
        else:
            report.passed.append(call)
    return report
