"""Truth-set evaluation of variant calls.

Measures precision/recall of a call set against the simulator's truth
variants -- the quantitative form of the paper's motivation that IR
"enables diagnostic testings of cancer through error correction prior to
variant calling". The end-to-end example compares pipelines with and
without INDEL realignment on exactly this metric.

INDEL matching is *left-alignment normalized* when a reference is
available: equivalent INDELs can be reported at different anchor
positions (a one-base deletion in a homopolymer run is the classic
case -- any anchor inside the run describes the same edit), and the very
problem IR addresses is "inconsistent representations for equivalent
sequence edits". :func:`left_normalize` shifts every INDEL to its
leftmost (VCF-canonical) representation before comparing, so two
descriptions of the same edit never count as one false negative plus
one false positive. Without a reference the looser positional-tolerance
match is used, preserving the historical behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.genomics.reference import ReferenceGenome
from repro.genomics.variants import Variant, VariantKind
from repro.variants.caller import VariantCall

#: Matching tolerance for INDEL positions when no reference is available
#: for left-normalization: equivalent INDELs can be left- or
#: right-aligned a few bases apart.
INDEL_POSITION_TOLERANCE = 16


@dataclass
class EvaluationResult:
    """Precision/recall of a call set against truth."""

    true_positives: List[VariantCall] = field(default_factory=list)
    false_positives: List[VariantCall] = field(default_factory=list)
    false_negatives: List[Variant] = field(default_factory=list)

    @property
    def precision(self) -> float:
        called = len(self.true_positives) + len(self.false_positives)
        return len(self.true_positives) / called if called else 0.0

    @property
    def recall(self) -> float:
        truth = len(self.true_positives) + len(self.false_negatives)
        return len(self.true_positives) / truth if truth else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def left_normalize(
    chrom: str,
    pos: int,
    ref: str,
    alt: str,
    reference: ReferenceGenome,
) -> Tuple[int, str, str]:
    """Return the VCF-canonical leftmost representation of an allele pair.

    The standard normalization (vt/bcftools ``norm``): repeatedly trim a
    shared trailing base -- extending one base leftward from the
    reference whenever an allele would become empty -- then trim shared
    leading bases. Equivalent INDELs anchored anywhere inside a repeat
    run collapse to one identical ``(pos, ref, alt)`` triple; SNPs are
    returned unchanged.
    """
    if len(ref) == len(alt) == 1:
        return pos, ref, alt
    while True:
        if ref and alt and ref[-1] == alt[-1] and (len(ref) > 1 or len(alt) > 1):
            ref, alt = ref[:-1], alt[:-1]
            if (not ref or not alt) and pos > 0:
                pos -= 1
                base = reference.fetch(chrom, pos, pos + 1)
                ref, alt = base + ref, base + alt
            continue
        break
    while len(ref) > 1 and len(alt) > 1 and ref[0] == alt[0]:
        ref, alt = ref[1:], alt[1:]
        pos += 1
    return pos, ref, alt


def _matches(
    call: VariantCall,
    variant: Variant,
    reference: Optional[ReferenceGenome] = None,
) -> bool:
    if call.chrom != variant.chrom:
        return False
    if variant.kind is VariantKind.SNP:
        return (call.pos == variant.pos and call.kind is VariantKind.SNP
                and call.alt == variant.alt)
    if call.kind is not variant.kind:
        return False
    if reference is not None and call.chrom in reference:
        return left_normalize(
            call.chrom, call.pos, call.ref, call.alt, reference
        ) == left_normalize(
            variant.chrom, variant.pos, variant.ref, variant.alt, reference
        )
    if abs(call.pos - variant.pos) > INDEL_POSITION_TOLERANCE:
        return False
    return abs(len(call.alt) - len(call.ref)) == abs(
        len(variant.alt) - len(variant.ref)
    )


def evaluate_calls(
    calls: Sequence[VariantCall],
    truth: Sequence[Variant],
    reference: Optional[ReferenceGenome] = None,
) -> EvaluationResult:
    """Match calls to truth; each truth variant matches at most one call.

    With ``reference``, INDELs are compared by their left-normalized
    ``(pos, ref, alt)`` triples (exact equivalence of the edit); without
    it, by kind + length change within ``INDEL_POSITION_TOLERANCE``.
    """
    result = EvaluationResult()
    matched_truth: Set[int] = set()
    for call in calls:
        hit = None
        for index, variant in enumerate(truth):
            if index in matched_truth:
                continue
            if _matches(call, variant, reference):
                hit = index
                break
        if hit is None:
            result.false_positives.append(call)
        else:
            matched_truth.add(hit)
            result.true_positives.append(call)
    result.false_negatives = [
        variant for index, variant in enumerate(truth)
        if index not in matched_truth
    ]
    return result
