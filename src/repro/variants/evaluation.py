"""Truth-set evaluation of variant calls.

Measures precision/recall of a call set against the simulator's truth
variants -- the quantitative form of the paper's motivation that IR
"enables diagnostic testings of cancer through error correction prior to
variant calling". The end-to-end example compares pipelines with and
without INDEL realignment on exactly this metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

from repro.genomics.variants import Variant, VariantKind
from repro.variants.caller import VariantCall

#: Matching tolerance for INDEL positions: equivalent INDELs can be
#: left- or right-aligned a few bases apart ("inconsistent
#: representations for equivalent sequence edits" is the very problem
#: IR addresses).
INDEL_POSITION_TOLERANCE = 16


@dataclass
class EvaluationResult:
    """Precision/recall of a call set against truth."""

    true_positives: List[VariantCall] = field(default_factory=list)
    false_positives: List[VariantCall] = field(default_factory=list)
    false_negatives: List[Variant] = field(default_factory=list)

    @property
    def precision(self) -> float:
        called = len(self.true_positives) + len(self.false_positives)
        return len(self.true_positives) / called if called else 0.0

    @property
    def recall(self) -> float:
        truth = len(self.true_positives) + len(self.false_negatives)
        return len(self.true_positives) / truth if truth else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def _matches(call: VariantCall, variant: Variant) -> bool:
    if call.chrom != variant.chrom:
        return False
    if variant.kind is VariantKind.SNP:
        return (call.pos == variant.pos and call.kind is VariantKind.SNP
                and call.alt == variant.alt)
    if call.kind is not variant.kind:
        return False
    if abs(call.pos - variant.pos) > INDEL_POSITION_TOLERANCE:
        return False
    return abs(len(call.alt) - len(call.ref)) == abs(
        len(variant.alt) - len(variant.ref)
    )


def evaluate_calls(
    calls: Sequence[VariantCall],
    truth: Sequence[Variant],
) -> EvaluationResult:
    """Match calls to truth; each truth variant matches at most one call."""
    result = EvaluationResult()
    matched_truth: Set[int] = set()
    for call in calls:
        hit = None
        for index, variant in enumerate(truth):
            if index in matched_truth:
                continue
            if _matches(call, variant):
                hit = index
                break
        if hit is None:
            result.false_positives.append(call)
        else:
            matched_truth.add(hit)
            result.true_positives.append(call)
    result.false_negatives = [
        variant for index, variant in enumerate(truth)
        if index not in matched_truth
    ]
    return result
