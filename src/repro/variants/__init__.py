"""Variant calling (paper Figure 1, pipeline 3) and truth evaluation.

A position-based somatic caller in the Mutect1 family ("most
non-position-based algorithms are still being improved ... Mutect1
remains the standard"). Its purpose in the reproduction is to close the
loop the paper motivates: INDEL realignment exists so that "somatic
variant calls must contain as few errors as possible" -- the
:mod:`repro.variants.evaluation` module measures exactly how much IR
improves calls against the simulator's truth set.
"""

from repro.variants.caller import CallerConfig, SomaticCaller, VariantCall
from repro.variants.vcf import format_vcf, parse_vcf
from repro.variants.evaluation import (
    EvaluationResult,
    evaluate_calls,
    left_normalize,
)

__all__ = [
    "CallerConfig",
    "EvaluationResult",
    "SomaticCaller",
    "VariantCall",
    "evaluate_calls",
    "format_vcf",
    "left_normalize",
    "parse_vcf",
]
