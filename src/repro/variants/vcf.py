"""VCF-lite serialisation of variant calls.

Enough of VCF 4.2 to round-trip this library's calls (CHROM, POS, REF,
ALT, QUAL plus DP/AC in INFO) and be readable by standard tools.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, TextIO, Union

from repro.genomics.reference import ReferenceGenome
from repro.variants.caller import VariantCall

PathOrFile = Union[str, Path, TextIO]


class VcfError(ValueError):
    """Raised for malformed VCF-lite input."""


def _header_lines(reference: Optional[ReferenceGenome]) -> List[str]:
    lines = [
        "##fileformat=VCFv4.2",
        "##source=repro-indel-realigner",
        '##INFO=<ID=DP,Number=1,Type=Integer,Description="Read depth">',
        '##INFO=<ID=AC,Number=1,Type=Integer,Description="Alt read count">',
    ]
    if reference is not None:
        for contig in reference:
            lines.append(f"##contig=<ID={contig.name},length={len(contig)}>")
    lines.append("#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO")
    return lines


def format_vcf(
    calls: Iterable[VariantCall],
    reference: Optional[ReferenceGenome] = None,
) -> str:
    """Render calls as a VCF string (1-based POS, per the spec)."""
    lines = _header_lines(reference)
    for call in calls:
        info = f"DP={call.depth};AC={call.alt_count}"
        lines.append(
            "\t".join([
                call.chrom, str(call.pos + 1), ".", call.ref, call.alt,
                f"{call.quality:.0f}", "PASS", info,
            ])
        )
    return "\n".join(lines) + "\n"


def write_vcf(
    calls: Iterable[VariantCall],
    sink: PathOrFile,
    reference: Optional[ReferenceGenome] = None,
) -> None:
    """Write calls to a VCF file or handle."""
    text = format_vcf(calls, reference)
    if isinstance(sink, (str, Path)):
        with open(sink, "w") as handle:
            handle.write(text)
    else:
        sink.write(text)


def parse_vcf(source: PathOrFile) -> List[VariantCall]:
    """Parse a VCF-lite file back into calls."""
    if isinstance(source, (str, Path)):
        with open(source) as handle:
            lines = handle.readlines()
    else:
        lines = source.readlines()
    calls: List[VariantCall] = []
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t")
        if len(fields) < 8:
            raise VcfError(f"VCF record has {len(fields)} fields, expected >= 8")
        chrom, pos_text, _id, ref, alt, qual_text, _filter, info = fields[:8]
        info_map = {}
        for item in info.split(";"):
            if "=" in item:
                key, value = item.split("=", 1)
                info_map[key] = value
        try:
            calls.append(VariantCall(
                chrom=chrom,
                pos=int(pos_text) - 1,
                ref=ref,
                alt=alt,
                quality=float(qual_text),
                depth=int(info_map.get("DP", 0)),
                alt_count=int(info_map.get("AC", 0)),
            ))
        except ValueError as exc:
            raise VcfError(f"bad VCF record {line!r}: {exc}") from None
    return calls
