"""A position-based somatic variant caller (Mutect1-style).

Walks pileup columns and emits SNP calls where the alternate allele's
quality-weighted support clears a log-odds threshold, and INDEL calls
where gapped alignments agree. Deliberately position-based: the paper's
argument is that position-based callers (which depend on INDEL
realignment) remain the somatic standard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.align.pileup import PileupColumn, pileup
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.genomics.variants import Variant, VariantKind


@dataclass(frozen=True)
class VariantCall:
    """One emitted call."""

    chrom: str
    pos: int
    ref: str
    alt: str
    quality: float  # Phred-scaled call confidence
    depth: int
    alt_count: int

    @property
    def allele_fraction(self) -> float:
        if self.depth == 0:
            return 0.0
        return self.alt_count / self.depth

    @property
    def kind(self) -> VariantKind:
        if len(self.ref) == len(self.alt) == 1:
            return VariantKind.SNP
        if len(self.alt) > len(self.ref):
            return VariantKind.INSERTION
        return VariantKind.DELETION

    def as_variant(self) -> Variant:
        return Variant(self.chrom, self.pos, self.ref, self.alt)


@dataclass(frozen=True)
class CallerConfig:
    """Thresholds of the somatic caller."""

    min_depth: int = 4
    min_alt_reads: int = 3
    min_allele_fraction: float = 0.15
    min_quality_sum: int = 60  # summed Phred support for the alt allele
    min_indel_reads: int = 3
    min_indel_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.min_depth <= 0 or self.min_alt_reads <= 0:
            raise ValueError("depth thresholds must be positive")
        if not 0 < self.min_allele_fraction <= 1:
            raise ValueError("min_allele_fraction must be in (0, 1]")


class SomaticCaller:
    """Pileup-walking somatic caller."""

    def __init__(self, reference: ReferenceGenome,
                 config: Optional[CallerConfig] = None):
        self.reference = reference
        self.config = config or CallerConfig()

    def _call_snp(self, column: PileupColumn, ref_base: str
                  ) -> Optional[VariantCall]:
        config = self.config
        counts = column.base_counts()
        quality_sums = column.base_quality_sums()
        candidates = [
            (base, count) for base, count in counts.items()
            if base != ref_base and base != "N"
        ]
        if not candidates:
            return None
        alt, alt_count = max(candidates, key=lambda item: (item[1], item[0]))
        if alt_count < config.min_alt_reads:
            return None
        if alt_count / column.depth < config.min_allele_fraction:
            return None
        support = quality_sums.get(alt, 0)
        if support < config.min_quality_sum:
            return None
        return VariantCall(
            chrom=column.chrom, pos=column.pos, ref=ref_base, alt=alt,
            quality=float(support), depth=column.depth, alt_count=alt_count,
        )

    def _call_indels(self, column: PileupColumn, ref_base: str
                     ) -> List[VariantCall]:
        config = self.config
        calls: List[VariantCall] = []
        if column.depth == 0:
            return calls
        # Insertions: group identical inserted strings.
        by_insert: Dict[str, int] = {}
        for inserted in column.insertions:
            by_insert[inserted] = by_insert.get(inserted, 0) + 1
        for inserted, count in sorted(by_insert.items()):
            if count >= config.min_indel_reads and (
                count / column.depth >= config.min_indel_fraction
            ):
                calls.append(VariantCall(
                    chrom=column.chrom, pos=column.pos,
                    ref=ref_base, alt=ref_base + inserted,
                    quality=30.0 * count, depth=column.depth, alt_count=count,
                ))
        # Deletions: group by length.
        by_length: Dict[int, int] = {}
        for length in column.deletions:
            by_length[length] = by_length.get(length, 0) + 1
        contig_len = self.reference.length(column.chrom)
        for length, count in sorted(by_length.items()):
            if count < config.min_indel_reads:
                continue
            if count / column.depth < config.min_indel_fraction:
                continue
            end = column.pos + 1 + length
            if end > contig_len:
                continue
            ref_allele = self.reference.fetch(column.chrom, column.pos, end)
            calls.append(VariantCall(
                chrom=column.chrom, pos=column.pos,
                ref=ref_allele, alt=ref_base,
                quality=30.0 * count, depth=column.depth, alt_count=count,
            ))
        return calls

    def call(self, reads: Sequence[Read]) -> List[VariantCall]:
        """Call variants over a read set; sorted by coordinate."""
        columns = pileup(reads)
        calls: List[VariantCall] = []
        for (chrom, pos), column in columns.items():
            if column.depth < self.config.min_depth:
                continue
            ref_base = self.reference.fetch(chrom, pos, pos + 1)
            snp = self._call_snp(column, ref_base)
            if snp is not None:
                calls.append(snp)
            calls.extend(self._call_indels(column, ref_base))
        return sorted(calls, key=lambda c: (c.chrom, c.pos, c.alt))
