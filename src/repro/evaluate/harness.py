"""The before/after evaluation harness.

Runs the realigner over a simulated sample with known truth and scores
the *outcome*: mismatch totals against the reference, base-level
concordance against the simulator's truth placements, per-site
before/after deltas (collected through the realigner's ``observer``
hook), and truth-INDEL recovery through the somatic caller with
left-normalized matching. The harness is deliberately engine-agnostic:
pass any ``engine`` accepted by
:class:`repro.realign.realigner.IndelRealigner` (``None`` for the
serial path, an :class:`~repro.engine.EngineConfig`, a live
:class:`~repro.engine.Engine` or :class:`~repro.engine.StreamingEngine`)
and the report must come out score-identical -- the cross-kernel/engine
accuracy matrix in ``tests/test_evaluation.py`` enforces exactly that.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.genomics.cigar import CigarOp
from repro.genomics.read import Read
from repro.genomics.reference import ReferenceGenome
from repro.genomics.simulate import SimulatedSample, TruthPlacement
from repro.evaluate.report import (
    EvaluationReport,
    IndelRecovery,
    SampleEvaluation,
    SiteOutcome,
    TrajectoryOutcome,
)
from repro.realign.realigner import IndelRealigner
from repro.variants.caller import CallerConfig, SomaticCaller
from repro.variants.evaluation import evaluate_calls


def read_mismatches(
    read: Read, reference: ReferenceGenome
) -> Tuple[int, int]:
    """``(mismatched, aligned)`` base counts of one read vs. the reference."""
    if not read.is_mapped:
        return 0, 0
    mismatched = 0
    aligned = 0
    read_offset = 0
    ref_pos = read.pos
    for op, length in read.cigar:
        if op is CigarOp.MATCH:
            window = reference.fetch(read.chrom, ref_pos, ref_pos + length)
            segment = read.seq[read_offset : read_offset + length]
            mismatched += sum(1 for a, b in zip(segment, window) if a != b)
            aligned += length
        if op.consumes_read:
            read_offset += length
        if op.consumes_reference:
            ref_pos += length
    return mismatched, aligned


def mismatch_totals(
    reads: Sequence[Read], reference: ReferenceGenome
) -> Tuple[int, int]:
    """Summed ``(mismatched, aligned)`` base counts over a read set."""
    mismatched = 0
    aligned = 0
    for read in reads:
        m, a = read_mismatches(read, reference)
        mismatched += m
        aligned += a
    return mismatched, aligned


def truth_concordance(
    reads: Sequence[Read],
    placements: Dict[str, TruthPlacement],
) -> Tuple[int, int]:
    """``(concordant, truth_aligned)`` base counts vs. truth placements.

    A read base is concordant when the reference coordinate its current
    alignment assigns it equals the coordinate its truth placement
    assigns it. Reads without a recorded truth placement are skipped
    (they contribute to neither count).
    """
    concordant = 0
    total = 0
    for read in reads:
        placement = placements.get(read.name)
        if placement is None or not read.is_mapped:
            continue
        truth_map = dict(placement.aligned_pairs())
        total += len(truth_map)
        for read_offset, ref_offset in read.cigar.aligned_pairs():
            if truth_map.get(read_offset) == read.pos + ref_offset:
                concordant += 1
    return concordant, total


def _indel_recovery(
    reads: Sequence[Read],
    sample: SimulatedSample,
    caller_config: Optional[CallerConfig],
) -> IndelRecovery:
    """Truth-INDEL precision/recall via the caller, left-normalized."""
    caller = SomaticCaller(sample.reference, caller_config)
    calls = [c for c in caller.call(reads) if c.kind.value != "SNP"]
    truth = [v for v in sample.truth_variants if v.is_indel]
    return IndelRecovery.from_result(
        evaluate_calls(calls, truth, reference=sample.reference)
    )


def evaluate_sample(
    name: str,
    sample: SimulatedSample,
    engine=None,
    kernel: str = "auto",
    caller_config: Optional[CallerConfig] = None,
) -> Tuple[SampleEvaluation, List[Read]]:
    """Score one sample's realignment outcomes.

    Returns ``(evaluation, realigned_reads)`` -- the reads are returned
    so cohort-level metrics (allele-frequency trajectories) can be
    computed without re-running the realigner.
    """
    reference = sample.reference
    before = list(sample.reads)
    site_records: List[Tuple[object, Dict[str, Read]]] = []

    def observer(window, result, moved):
        site_records.append((window, moved))

    realigner = IndelRealigner(reference, engine=engine, kernel=kernel)
    after, report = realigner.realign(before, observer=observer)

    mismatch_before, aligned_before = mismatch_totals(before, reference)
    mismatch_after, aligned_after = mismatch_totals(after, reference)
    concordant_before, truth_bases = truth_concordance(
        before, sample.truth_placements
    )
    concordant_after, _ = truth_concordance(after, sample.truth_placements)

    after_by_name = {read.name: read for read in after}
    site_outcomes: List[SiteOutcome] = []
    for window, moved in site_records:
        site_reads_before = list(window.reads)
        site_reads_after = [
            after_by_name.get(read.name, read) for read in site_reads_before
        ]
        site_mismatch_before, _ = mismatch_totals(site_reads_before, reference)
        site_mismatch_after, _ = mismatch_totals(site_reads_after, reference)
        site_outcomes.append(SiteOutcome(
            chrom=window.site.chrom,
            start=window.site.start,
            reads=len(site_reads_before),
            moved=len(moved),
            mismatch_before=site_mismatch_before,
            mismatch_after=site_mismatch_after,
        ))

    evaluation = SampleEvaluation(
        sample=name,
        reads=len(before),
        truth_variants=len(sample.truth_variants),
        truth_indels=sum(1 for v in sample.truth_variants if v.is_indel),
        targets=report.targets_identified,
        sites=report.sites_built,
        reads_realigned=report.reads_realigned,
        reads_moved=report.reads_moved,
        aligned_bases_before=aligned_before,
        aligned_bases_after=aligned_after,
        mismatch_before=mismatch_before,
        mismatch_after=mismatch_after,
        concordant_bases_before=concordant_before,
        concordant_bases_after=concordant_after,
        truth_aligned_bases=truth_bases,
        indel_before=_indel_recovery(before, sample, caller_config),
        indel_after=_indel_recovery(after, sample, caller_config),
        site_outcomes=site_outcomes,
    )
    return evaluation, after


def cohort_trajectories(
    cohort,
    before_by_sample: Dict[str, List[Read]],
    after_by_sample: Dict[str, List[Read]],
) -> List[TrajectoryOutcome]:
    """Measured vs. truth allele-frequency trajectories for a cohort.

    ``before_by_sample`` / ``after_by_sample`` map cohort sample names
    (timepoint order) to their read sets; frequencies are measured from
    gapped reads via :func:`repro.workloads.cohort.measured_frequency`.
    """
    from repro.workloads.cohort import measured_frequency

    outcomes: List[TrajectoryOutcome] = []
    ordered = sorted(cohort.samples, key=lambda s: s.timepoint)
    for variant in cohort.shared_variants:
        if not variant.is_indel:
            continue
        key = (variant.chrom, variant.pos, variant.ref, variant.alt)
        truth = cohort.trajectories[key]
        before = tuple(
            round(measured_frequency(before_by_sample[s.name], variant), 6)
            for s in ordered
        )
        after = tuple(
            round(measured_frequency(after_by_sample[s.name], variant), 6)
            for s in ordered
        )
        outcomes.append(TrajectoryOutcome(
            chrom=variant.chrom,
            pos=variant.pos,
            kind=variant.kind.value,
            length_change=variant.length_change,
            truth=truth,
            before=before,
            after=after,
        ))
    return outcomes
