"""Accuracy evaluation: prove realignment *outcomes*, not byte-identity.

The repo's other test layers pin that every kernel, engine, worker
count, and fault schedule produces byte-identical SAM. This package
answers the question those layers cannot: is the realignment *correct*?
Given a seeded synthetic sample with known truth
(:mod:`repro.genomics.simulate` records each read's
:class:`~repro.genomics.simulate.TruthPlacement`), the harness runs the
before/after pipeline and emits a structured
:class:`~repro.evaluate.report.EvaluationReport`: mismatch totals
before vs. after, reads moved, base-level concordance against truth
placements, per-site deltas, and truth-INDEL precision/recall/F1 under
left-normalized matching.

Entry points:

- ``python -m repro evaluate --scenario {toy,cohort,adversarial}`` --
  the CLI front-end;
- :func:`repro.evaluate.scenarios.run_scenario` -- the library call the
  CLI, the goldens, and the accuracy-gate tests share;
- :func:`repro.evaluate.harness.evaluate_sample` -- score one sample
  with any engine/kernel.

See ``docs/EVALUATION.md`` for metric definitions and the scenario
catalog.
"""

from repro.evaluate.harness import (
    cohort_trajectories,
    evaluate_sample,
    mismatch_totals,
    read_mismatches,
    truth_concordance,
)
from repro.evaluate.report import (
    EvaluationReport,
    IndelRecovery,
    SampleEvaluation,
    SiteOutcome,
    TrajectoryOutcome,
)
from repro.evaluate.scenarios import (
    DEFAULT_SEEDS,
    SCENARIO_NAMES,
    ScenarioData,
    build_scenario,
    run_scenario,
)

__all__ = [
    "DEFAULT_SEEDS",
    "EvaluationReport",
    "IndelRecovery",
    "SCENARIO_NAMES",
    "SampleEvaluation",
    "ScenarioData",
    "SiteOutcome",
    "TrajectoryOutcome",
    "build_scenario",
    "cohort_trajectories",
    "evaluate_sample",
    "mismatch_totals",
    "read_mismatches",
    "run_scenario",
    "truth_concordance",
]
