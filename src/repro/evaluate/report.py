"""Structured realignment-outcome reports.

An :class:`EvaluationReport` is the unit the accuracy harness emits: a
deterministic, JSON-serialisable scorecard of what INDEL realignment
*did* to a workload -- not whether bytes matched, but whether outcomes
improved. Every number is derived from integer counts over reads and
truth data, so a report is identical across kernels, engines, worker
counts, and fault schedules (all of which are byte-identical by the
repo's core invariant); the committed goldens in ``tests/golden/`` pin
that.

Metric definitions live in ``docs/EVALUATION.md``; in brief:

- **mismatch totals** -- aligned (CIGAR M) read bases disagreeing with
  the reference, before vs. after realignment. Misaligned INDEL reads
  absorb their INDEL as a run of mismatches, so IR strictly lowers this
  on every INDEL-bearing scenario.
- **truth concordance** -- read bases whose aligned reference
  coordinate equals the coordinate under the read's
  :class:`~repro.genomics.simulate.TruthPlacement` (the alignment a
  perfect aligner would emit), over all truth-aligned bases.
- **reads moved** -- reads whose ``(pos, cigar)`` changed, a strict
  subset of the kernel's realign decisions.
- **truth-INDEL recovery** -- precision/recall/F1 of the somatic
  caller's INDEL calls against the simulator's truth INDELs, matched
  under left-alignment normalization
  (:func:`repro.variants.evaluation.left_normalize`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.variants.evaluation import EvaluationResult


def _ratio(numerator: int, denominator: int) -> float:
    return round(numerator / denominator, 6) if denominator else 0.0


@dataclass(frozen=True)
class IndelRecovery:
    """Truth-INDEL precision/recall/F1 at one pipeline stage."""

    tp: int
    fp: int
    fn: int

    @classmethod
    def from_result(cls, result: EvaluationResult) -> "IndelRecovery":
        return cls(tp=len(result.true_positives),
                   fp=len(result.false_positives),
                   fn=len(result.false_negatives))

    @property
    def precision(self) -> float:
        return _ratio(self.tp, self.tp + self.fp)

    @property
    def recall(self) -> float:
        return _ratio(self.tp, self.tp + self.fn)

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return round(2 * p * r / (p + r), 6) if (p + r) else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "tp": self.tp, "fp": self.fp, "fn": self.fn,
            "precision": self.precision, "recall": self.recall,
            "f1": self.f1,
        }


@dataclass(frozen=True)
class SiteOutcome:
    """Before/after mismatch accounting for one realignment site."""

    chrom: str
    start: int
    reads: int
    moved: int
    mismatch_before: int
    mismatch_after: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "chrom": self.chrom, "start": self.start, "reads": self.reads,
            "moved": self.moved, "mismatch_before": self.mismatch_before,
            "mismatch_after": self.mismatch_after,
        }


@dataclass(frozen=True)
class TrajectoryOutcome:
    """One truth INDEL's allele-frequency trajectory through the cohort.

    ``truth`` is the simulated allele fraction per timepoint;
    ``before``/``after`` are the frequencies measured from gapped reads
    in the pre-/post-realignment pileups. Pre-IR, misaligned INDEL
    reads are gap-free and undercount the allele, so ``after`` should
    track ``truth`` at least as closely as ``before``.
    """

    chrom: str
    pos: int
    kind: str
    length_change: int
    truth: Tuple[float, ...]
    before: Tuple[float, ...]
    after: Tuple[float, ...]

    def _mae(self, measured: Tuple[float, ...]) -> float:
        if not self.truth:
            return 0.0
        total = sum(abs(t - m) for t, m in zip(self.truth, measured))
        return round(total / len(self.truth), 6)

    @property
    def error_before(self) -> float:
        return self._mae(self.before)

    @property
    def error_after(self) -> float:
        return self._mae(self.after)

    def to_dict(self) -> Dict[str, object]:
        return {
            "chrom": self.chrom, "pos": self.pos, "kind": self.kind,
            "length_change": self.length_change,
            "truth": [round(f, 6) for f in self.truth],
            "before": [round(f, 6) for f in self.before],
            "after": [round(f, 6) for f in self.after],
            "error_before": self.error_before,
            "error_after": self.error_after,
        }


@dataclass
class SampleEvaluation:
    """One sample's realignment-outcome scorecard."""

    sample: str
    reads: int
    truth_variants: int
    truth_indels: int
    targets: int
    sites: int
    reads_realigned: int
    reads_moved: int
    aligned_bases_before: int
    aligned_bases_after: int
    mismatch_before: int
    mismatch_after: int
    concordant_bases_before: int
    concordant_bases_after: int
    truth_aligned_bases: int
    indel_before: IndelRecovery
    indel_after: IndelRecovery
    site_outcomes: List[SiteOutcome] = field(default_factory=list)

    @property
    def mismatch_rate_before(self) -> float:
        return _ratio(self.mismatch_before, self.aligned_bases_before)

    @property
    def mismatch_rate_after(self) -> float:
        return _ratio(self.mismatch_after, self.aligned_bases_after)

    @property
    def concordance_before(self) -> float:
        return _ratio(self.concordant_bases_before, self.truth_aligned_bases)

    @property
    def concordance_after(self) -> float:
        return _ratio(self.concordant_bases_after, self.truth_aligned_bases)

    def to_dict(self) -> Dict[str, object]:
        return {
            "sample": self.sample,
            "reads": self.reads,
            "truth_variants": self.truth_variants,
            "truth_indels": self.truth_indels,
            "targets": self.targets,
            "sites": self.sites,
            "reads_realigned": self.reads_realigned,
            "reads_moved": self.reads_moved,
            "aligned_bases_before": self.aligned_bases_before,
            "aligned_bases_after": self.aligned_bases_after,
            "mismatch_before": self.mismatch_before,
            "mismatch_after": self.mismatch_after,
            "mismatch_rate_before": self.mismatch_rate_before,
            "mismatch_rate_after": self.mismatch_rate_after,
            "concordant_bases_before": self.concordant_bases_before,
            "concordant_bases_after": self.concordant_bases_after,
            "truth_aligned_bases": self.truth_aligned_bases,
            "concordance_before": self.concordance_before,
            "concordance_after": self.concordance_after,
            "indel_before": self.indel_before.to_dict(),
            "indel_after": self.indel_after.to_dict(),
            "sites_detail": [s.to_dict() for s in self.site_outcomes],
        }


@dataclass
class EvaluationReport:
    """The harness's top-level output for one scenario run."""

    scenario: str
    seed: int
    params: Dict[str, object] = field(default_factory=dict)
    samples: List[SampleEvaluation] = field(default_factory=list)
    trajectories: List[TrajectoryOutcome] = field(default_factory=list)
    injected: Dict[str, int] = field(default_factory=dict)

    def totals(self) -> Dict[str, object]:
        """Scenario-level aggregates across all samples."""
        total = {
            "reads": sum(s.reads for s in self.samples),
            "reads_moved": sum(s.reads_moved for s in self.samples),
            "reads_realigned": sum(s.reads_realigned for s in self.samples),
            "mismatch_before": sum(s.mismatch_before for s in self.samples),
            "mismatch_after": sum(s.mismatch_after for s in self.samples),
            "concordant_bases_before": sum(
                s.concordant_bases_before for s in self.samples),
            "concordant_bases_after": sum(
                s.concordant_bases_after for s in self.samples),
            "truth_aligned_bases": sum(
                s.truth_aligned_bases for s in self.samples),
        }
        total["concordance_before"] = _ratio(
            total["concordant_bases_before"], total["truth_aligned_bases"])
        total["concordance_after"] = _ratio(
            total["concordant_bases_after"], total["truth_aligned_bases"])
        return total

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "scenario": self.scenario,
            "seed": self.seed,
            "params": self.params,
            "samples": [s.to_dict() for s in self.samples],
            "totals": self.totals(),
        }
        if self.trajectories:
            payload["trajectories"] = [t.to_dict() for t in self.trajectories]
        if self.injected:
            payload["injected"] = dict(sorted(self.injected.items()))
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    def summary(self) -> str:
        """The one-line outcome summary the CLI prints."""
        totals = self.totals()
        f1_after = (self.samples[0].indel_after.f1 if len(self.samples) == 1
                    else _mean_f1(self.samples))
        return (
            f"evaluate[{self.scenario}]: {len(self.samples)} sample(s), "
            f"{totals['reads']} reads, {totals['reads_moved']} moved; "
            f"mismatches {totals['mismatch_before']} -> "
            f"{totals['mismatch_after']}, concordance "
            f"{totals['concordance_before']:.4f} -> "
            f"{totals['concordance_after']:.4f}, truth-INDEL F1 "
            f"{f1_after:.4f}"
        )


def _mean_f1(samples: List[SampleEvaluation]) -> float:
    if not samples:
        return 0.0
    return round(sum(s.indel_after.f1 for s in samples) / len(samples), 6)
