"""The committed scenario catalog.

Each scenario is a seeded, fully deterministic workload with known
truth, sized so the whole catalog evaluates in seconds (the goldens
recompute inside tier-1 CI). The catalog is the repo's accuracy
backstop: perf and serving PRs gate on these reports staying
score-identical (see ``docs/EVALUATION.md`` for how to add one).

- ``toy`` -- one contig, one sample: the minimal INDEL-bearing
  workload, the first thing to check when realignment outcomes drift.
- ``cohort`` -- a longitudinal three-timepoint cohort over shared
  target loci with drifting allele-frequency trajectories
  (:mod:`repro.workloads.cohort`).
- ``adversarial`` -- a two-contig sample corrupted with contaminant
  reads, chimeras, low-quality tails, and adapter read-through
  (:mod:`repro.workloads.adversarial`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.genomics.simulate import SimulatedSample, SimulationProfile
from repro.evaluate.harness import cohort_trajectories, evaluate_sample
from repro.evaluate.report import EvaluationReport
from repro.variants.caller import CallerConfig

#: The scenario names the CLI and the goldens agree on.
SCENARIO_NAMES = ("toy", "cohort", "adversarial")

#: Default per-scenario seeds; a scenario plus its seed is the identity
#: the goldens pin.
DEFAULT_SEEDS = {"toy": 11, "cohort": 23, "adversarial": 31}


@dataclass
class ScenarioData:
    """A prepared scenario: named samples plus scenario-level context."""

    name: str
    seed: int
    params: Dict[str, object]
    samples: List[Tuple[str, SimulatedSample]]
    cohort: object = None  # repro.workloads.cohort.Cohort for "cohort"
    injected: Dict[str, int] = field(default_factory=dict)


def _toy_profile() -> SimulationProfile:
    return SimulationProfile(
        coverage=16.0,
        indel_rate=1.5e-3,
        snp_rate=5e-4,
        somatic_fraction_range=(0.5, 1.0),
    )


def build_toy(seed: int) -> ScenarioData:
    from repro.genomics.simulate import simulate_sample

    params = {"contig_lengths": {"chr22": 9_000}, "coverage": 16.0,
              "indel_rate": 1.5e-3}
    sample = simulate_sample(params["contig_lengths"],
                             profile=_toy_profile(), seed=seed)
    return ScenarioData(name="toy", seed=seed, params=params,
                        samples=[("toy", sample)])


def build_cohort(seed: int) -> ScenarioData:
    from repro.workloads.cohort import CohortProfile, simulate_cohort

    params = {"contig_lengths": {"chrC": 7_000}, "timepoints": 3,
              "coverage": 12.0, "indel_rate": 1.8e-3}
    profile = SimulationProfile(
        coverage=12.0,
        indel_rate=1.8e-3,
        snp_rate=4e-4,
        somatic_fraction_range=(0.5, 1.0),
    )
    cohort = simulate_cohort(
        params["contig_lengths"],
        cohort_profile=CohortProfile(timepoints=3),
        sim_profile=profile,
        seed=seed,
    )
    samples = [(s.name, s.sample)
               for s in sorted(cohort.samples, key=lambda s: s.timepoint)]
    return ScenarioData(name="cohort", seed=seed, params=params,
                        samples=samples, cohort=cohort)


def build_adversarial(seed: int) -> ScenarioData:
    from repro.workloads.adversarial import (
        AdversarialProfile,
        adversarial_sample,
    )

    params = {"contig_lengths": {"chrA": 6_000, "chrB": 4_000},
              "coverage": 14.0, "indel_rate": 1.5e-3,
              "contamination_rate": 0.05, "chimera_rate": 0.03,
              "low_quality_tail_rate": 0.08, "adapter_rate": 0.04}
    profile = SimulationProfile(
        coverage=14.0,
        indel_rate=1.5e-3,
        snp_rate=5e-4,
        somatic_fraction_range=(0.5, 1.0),
    )
    hostile = adversarial_sample(
        params["contig_lengths"],
        sim_profile=profile,
        adv_profile=AdversarialProfile(),
        seed=seed,
    )
    return ScenarioData(name="adversarial", seed=seed, params=params,
                        samples=[("adversarial", hostile.sample)],
                        injected=dict(hostile.counts))


_BUILDERS: Dict[str, Callable[[int], ScenarioData]] = {
    "toy": build_toy,
    "cohort": build_cohort,
    "adversarial": build_adversarial,
}


def build_scenario(name: str, seed: Optional[int] = None) -> ScenarioData:
    """Prepare one scenario's workload (no realignment yet)."""
    if name not in _BUILDERS:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {SCENARIO_NAMES}"
        )
    return _BUILDERS[name](DEFAULT_SEEDS[name] if seed is None else seed)


def run_scenario(
    name: str,
    engine=None,
    kernel: str = "auto",
    seed: Optional[int] = None,
    caller_config: Optional[CallerConfig] = None,
) -> EvaluationReport:
    """Build a scenario, realign it, and score the outcomes.

    ``engine``/``kernel`` select the execution path exactly as
    :class:`repro.realign.realigner.IndelRealigner` does; the resulting
    report must be identical for every choice (kernels are exact and
    engines are byte-identical), which the accuracy matrix test pins.
    """
    data = build_scenario(name, seed)
    report = EvaluationReport(
        scenario=data.name, seed=data.seed, params=data.params,
        injected=data.injected,
    )
    before_by_sample: Dict[str, List] = {}
    after_by_sample: Dict[str, List] = {}
    for sample_name, sample in data.samples:
        evaluation, after = evaluate_sample(
            sample_name, sample, engine=engine, kernel=kernel,
            caller_config=caller_config,
        )
        report.samples.append(evaluation)
        before_by_sample[sample_name] = list(sample.reads)
        after_by_sample[sample_name] = after
    if data.cohort is not None:
        report.trajectories = cohort_trajectories(
            data.cohort, before_by_sample, after_by_sample
        )
    return report
