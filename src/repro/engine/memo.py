"""LRU memoization of WHD grid columns for duplicate read/consensus pairs.

Sequencing workloads repeat themselves: PCR duplicates produce reads
with identical bases *and* qualities, and neighbouring sites frequently
share their consensus set. The grid column for a read --
``min_whd[:, j]`` and ``min_whd_idx[:, j]`` -- depends only on
(consensus set, read bases, read qualities), so it can be reused
verbatim whenever that key recurs inside a shard.

The memo stores only *fully exact* columns. The batched engine
therefore disables consensus-row elimination while a memo is active
(see :func:`repro.engine.batch.realign_site_batched`): a column with
sentinel entries computed under one site's elimination mask would be
unsound to splice into another site's grid.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

Column = Tuple[np.ndarray, np.ndarray]  # (min_whd[:, j], min_whd_idx[:, j])


class PairMemo:
    """Bounded LRU cache from pair keys to exact grid columns.

    >>> memo = PairMemo(capacity=2)
    >>> import numpy as np
    >>> memo.put("a", (np.array([1]), np.array([0])))
    >>> memo.get("a") is not None, memo.get("b") is not None
    (True, False)
    >>> memo.hits, memo.misses
    (1, 1)
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"memo capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._columns: "OrderedDict[Hashable, Column]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._columns)

    def get(self, key: Hashable) -> Optional[Column]:
        column = self._columns.get(key)
        if column is None:
            self.misses += 1
            return None
        self._columns.move_to_end(key)
        self.hits += 1
        return column

    def put(self, key: Hashable, column: Column) -> None:
        self._columns[key] = column
        self._columns.move_to_end(key)
        while len(self._columns) > self.capacity:
            self._columns.popitem(last=False)
            self.evictions += 1

    def snapshot(self) -> Dict[str, int]:
        return {
            "engine.memo_hits": self.hits,
            "engine.memo_misses": self.misses,
            "engine.memo_evictions": self.evictions,
            "engine.memo_size": len(self._columns),
        }
