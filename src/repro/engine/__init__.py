"""Batched, filtered, parallel execution of the realignment kernel.

The paper keeps 32 hardware units saturated; this package is the
software analogue for the repository's numpy realigner. It layers four
independent optimizations, each preserving byte-identical output:

- :mod:`repro.engine.batch` -- whole-site ``(C, R, K)`` tensor
  evaluation via FFT match counting instead of per-pair loops;
- :mod:`repro.engine.bitpack` -- GateKeeper-style bit-packed SWAR
  kernel: 2-bit bases in uint64 lanes, 32 comparisons per word op;
- :mod:`repro.engine.native` -- the same SWAR pipeline as *compiled*
  machine code (numba jit or a ctypes-loaded C library), with graceful
  degradation to bitpack when neither backend is usable;
- :mod:`repro.engine.autotune` -- a measured per-kernel cost model
  that routes every site to the cheapest exact kernel
  (``--kernel auto``), calibrated and persisted to JSON;
- :mod:`repro.engine.prefilter` -- GateKeeper-style count bounds that
  prune offsets, consensus rows, and cannot-beat-reference pairs;
- :mod:`repro.engine.memo` -- an LRU over duplicate
  (consensus set, read, quals) grid columns;
- :mod:`repro.engine.parallel` -- site sharding across a
  ``multiprocessing`` pool with work-stealing and deterministic merge;
- :mod:`repro.engine.stream` -- the streaming data plane: a bounded
  in-flight window over the same pool, zero-copy dispatch through
  :mod:`repro.engine.shmem` arenas, and an incremental reordering merge
  that emits results in deterministic chunk order as they complete.

See ``docs/ARCHITECTURE.md`` for the data flow and
``docs/PERFORMANCE.md`` for the cost model and measured speedups.
"""

from repro.engine.autotune import (
    KERNELS,
    KERNEL_CHOICES,
    CostProfile,
    SiteFeatures,
    calibrate,
    choose_kernel,
    dispatch_realign,
    resolve_profile,
)
from repro.engine.batch import (
    PackedSite,
    fast_fft_length,
    min_whd_grid_batched,
    pair_lower_bounds,
    realign_site_batched,
)
from repro.engine.bitpack import (
    PackedConsensus,
    PackedRead,
    min_whd_grid_bitpacked,
    pack_bases,
    realign_site_bitpacked,
)
from repro.engine.memo import PairMemo
from repro.engine.native import (
    min_whd_grid_native,
    native_available,
    native_backend_name,
    realign_site_native,
    warmup_native,
)
from repro.engine.parallel import Engine, EngineConfig, ShardStats
from repro.engine.shmem import (
    HAVE_SHARED_MEMORY,
    ChunkDescriptor,
    pack_chunk,
    unpack_chunk,
)
from repro.engine.stream import ReorderBuffer, StreamingEngine
from repro.engine.prefilter import (
    PREFILTER_TOLERANCE,
    PrefilterStats,
    consensus_keep_mask,
    offset_candidates,
    pair_bounds,
    pairs_cannot_beat_reference,
)

__all__ = [
    "ChunkDescriptor",
    "CostProfile",
    "Engine",
    "EngineConfig",
    "HAVE_SHARED_MEMORY",
    "KERNELS",
    "KERNEL_CHOICES",
    "PackedConsensus",
    "PackedRead",
    "PackedSite",
    "PairMemo",
    "PrefilterStats",
    "PREFILTER_TOLERANCE",
    "ReorderBuffer",
    "ShardStats",
    "SiteFeatures",
    "StreamingEngine",
    "calibrate",
    "choose_kernel",
    "consensus_keep_mask",
    "dispatch_realign",
    "fast_fft_length",
    "min_whd_grid_batched",
    "min_whd_grid_bitpacked",
    "min_whd_grid_native",
    "native_available",
    "native_backend_name",
    "offset_candidates",
    "pack_bases",
    "pack_chunk",
    "pair_bounds",
    "pair_lower_bounds",
    "pairs_cannot_beat_reference",
    "realign_site_batched",
    "realign_site_bitpacked",
    "realign_site_native",
    "unpack_chunk",
    "warmup_native",
]
