"""Calibrated per-site kernel dispatch: route each site to the
cheapest exact kernel.

The repository carries five exact WHD kernels -- scalar
(:func:`repro.realign.whd.min_whd_pair` loops), vectorized
(:func:`repro.realign.whd.whd_profile` per pair), FFT-batched
(:mod:`repro.engine.batch`), bit-packed SWAR
(:mod:`repro.engine.bitpack`), and the compiled native tier
(:mod:`repro.engine.native`, the SWAR pipeline as machine code via
numba or a ctypes-loaded C library). They produce byte-identical results but
their costs scale on *different* site dimensions: the FFT pass pays
``(C + R) * Lf log Lf`` transforms regardless of how few offsets a site
actually needs, the SWAR kernel pays per packed word and wins when the
offset range ``K`` is tiny, the vectorized kernel wins on skinny sites
where any batching setup dominates, and the scalar kernel exists as the
transcription baseline. GeneTEK (see PAPERS.md) sizes hardware units to
the site dimensions for the same reason; this module is the software
mirror: a **measured** cost model over site features, calibrated by
timing the real kernels on synthesized sites, persisted to JSON so CI
dispatch is deterministic, and consulted per site by
:func:`choose_kernel` / :func:`dispatch_realign`.

Model form: for each kernel, predicted seconds are a nonnegative linear
combination of a few structural terms (see :class:`SiteFeatures` and
``_BASES``) -- a constant (per-site setup), the pair count (per-pair
Python/numpy dispatch), and the kernel's dominant arithmetic volume.
Nonnegative least squares keeps every coefficient physically meaningful
(no negative per-op costs), so the model extrapolates sanely beyond the
calibration shapes.

Environment knobs:

- ``REPRO_KERNEL`` -- overrides *auto* dispatch with a fixed kernel
  (``scalar`` / ``vector`` / ``fft`` / ``bitpack`` / ``native``).
  Explicitly requested kernels are never overridden; CI uses this to
  force the whole tier-1 suite through one kernel.
- ``REPRO_NATIVE`` -- backend policy for the native tier (``auto`` /
  ``numba`` / ``cc`` / ``off``); see :mod:`repro.engine.native`. When
  no compiled backend is usable, routing *to* native still succeeds --
  the kernel itself degrades to bitpack and counts
  ``kernel.native.unavailable``.
- ``REPRO_AUTOTUNE_PROFILE`` -- path to a calibration profile JSON;
  falls back to the committed ``autotune_profile.json`` next to this
  module (recalibrate with ``realign --autotune`` or
  :func:`calibrate`).

Telemetry (emitted by :func:`dispatch_realign` when a session is
passed): ``kernel.chosen.<name>`` counts routing decisions;
``kernel.predicted_vs_actual`` accumulates the absolute prediction
error in microseconds (only on the ``auto`` path, where a prediction
exists), so ``predicted_vs_actual / sites`` trending up flags a stale
profile.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.realign.site import RealignmentSite
from repro.realign.whd import SiteResult

#: Dispatchable kernel names, in documentation order.
KERNELS = ("scalar", "vector", "fft", "bitpack", "native")

#: ``--kernel`` choices: the fixed kernels plus the calibrated router.
KERNEL_CHOICES = ("auto",) + KERNELS

#: Committed default profile, calibrated by ``benchmarks/bench_kernels.py
#: --calibrate`` (see docs/PERFORMANCE.md for the recalibration recipe).
DEFAULT_PROFILE_PATH = Path(__file__).with_name("autotune_profile.json")

_ENV_KERNEL = "REPRO_KERNEL"
_ENV_PROFILE = "REPRO_AUTOTUNE_PROFILE"


def user_profile_path() -> Path:
    """Per-user calibration location: ``$XDG_CACHE_HOME`` (or
    ``~/.cache``) ``/repro/autotune_profile.json``. Consulted by
    :func:`resolve_profile` after the env override and before the
    committed default, so a local ``--autotune`` survives even when the
    installed package directory is read-only."""
    cache = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache) if cache else Path.home() / ".cache"
    return base / "repro" / "autotune_profile.json"


def writable_profile_path() -> Path:
    """Where ``--autotune`` should persist its fit.

    The committed default next to this module when that directory is
    writable (editable installs, source checkouts); otherwise the user
    cache path -- non-editable installs put the package in a read-only
    ``site-packages``, and calibration must not die on PermissionError
    there. Creates the user cache directory on the fallback path.
    """
    parent = DEFAULT_PROFILE_PATH.parent
    default_writable = os.access(parent, os.W_OK) and (
        not DEFAULT_PROFILE_PATH.exists()
        or os.access(DEFAULT_PROFILE_PATH, os.W_OK)
    )
    if default_writable:
        return DEFAULT_PROFILE_PATH
    path = user_profile_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


@dataclass(frozen=True)
class SiteFeatures:
    """The structural site dimensions the cost model is defined over.

    Derived in ``O(C + R)`` from sequence lengths alone -- cheap enough
    to compute per site on the dispatch path.

    >>> from repro.experiments.figure4 import build_site
    >>> f = SiteFeatures.from_site(build_site())
    >>> (f.C, f.R, f.m_max, f.n_max, f.K, f.valid_cells)
    (3, 2, 7, 4, 4, 24)
    >>> f.read_words  # 4-base reads still occupy one 64-bit word
    1
    """

    C: int  # consensus count
    R: int  # read count
    m_max: int  # longest consensus
    n_max: int  # longest read
    K: int  # offset-axis extent: m_max - min read length + 1
    Lf: int  # FFT length covering m_max + n_max
    valid_cells: int  # total in-range offsets, sum of (m_i - n_j + 1)
    read_words: int  # packed uint64 words per read row

    @classmethod
    def from_site(cls, site: RealignmentSite) -> "SiteFeatures":
        from repro.engine.batch import fast_fft_length

        mlens = np.fromiter(
            (len(c) for c in site.consensuses), dtype=np.int64
        )
        nlens = np.fromiter((len(r) for r in site.reads), dtype=np.int64)
        m_max = int(mlens.max())
        n_max = int(nlens.max())
        return cls(
            C=int(mlens.size),
            R=int(nlens.size),
            m_max=m_max,
            n_max=n_max,
            K=m_max - int(nlens.min()) + 1,
            Lf=fast_fft_length(m_max + n_max),
            valid_cells=int((np.add.outer(mlens, -nlens) + 1).sum()),
            read_words=(n_max + 31) // 32,
        )


def _basis_scalar(f: SiteFeatures) -> List[float]:
    # Per-pair Python loop over offsets, each summing n terms.
    return [1.0, f.C * f.R, float(f.valid_cells) * f.n_max]


def _basis_vector(f: SiteFeatures) -> List[float]:
    # One numpy profile call per pair over the same comparison volume.
    return [1.0, f.C * f.R, float(f.valid_cells) * f.n_max]


def _basis_fft(f: SiteFeatures) -> List[float]:
    # Transforms + pointwise products span the padded length Lf even
    # when only a handful of offsets are in range; the exact-eval tail
    # is proportional to the (heavily prefiltered) cell count.
    lf_log = f.Lf * max(math.log2(f.Lf), 1.0)
    return [
        1.0,
        (f.C + f.R) * lf_log,
        float(f.C) * f.R * f.Lf,
        float(f.valid_cells),
    ]


def _basis_bitpack(f: SiteFeatures) -> List[float]:
    # Packing touches every base once; the screening pass costs one
    # word op per (consensus, offset, read, word) cell; the exact
    # gather is proportional to surviving offsets (~ valid_cells scaled
    # by the survival rate, folded into the coefficient).
    span = f.read_words * 32.0
    return [
        1.0,
        (f.C + f.R) * span,
        float(f.C) * f.K * f.R * f.read_words,
        float(f.valid_cells),
    ]


def _basis_native(f: SiteFeatures) -> List[float]:
    # Same pipeline as bitpack but the word loop runs as machine code:
    # the constant covers packing + the foreign-call overhead, the word
    # volume term carries a far smaller fitted coefficient, and the
    # exact tail is folded into valid_cells as for bitpack.
    span = f.read_words * 32.0
    return [
        1.0,
        (f.C + f.R) * span,
        float(f.C) * f.K * f.R * f.read_words,
        float(f.valid_cells),
    ]


_BASES: Dict[str, Callable[[SiteFeatures], List[float]]] = {
    "scalar": _basis_scalar,
    "vector": _basis_vector,
    "fft": _basis_fft,
    "bitpack": _basis_bitpack,
    "native": _basis_native,
}


def _nnls(A: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Nonnegative least squares; scipy when present, else lstsq+clip."""
    try:
        from scipy.optimize import nnls

        coef, _ = nnls(A, b)
        return coef
    except ImportError:  # pragma: no cover - exercised without scipy
        coef, *_ = np.linalg.lstsq(A, b, rcond=None)
        return np.clip(coef, 0.0, None)


@dataclass(frozen=True)
class CostProfile:
    """Fitted per-kernel cost coefficients (seconds per basis term).

    ``predict`` and ``choose`` are pure functions of the profile, so a
    committed profile makes dispatch deterministic across machines and
    CI runs (the *decisions* are pinned; every kernel is exact, so the
    outputs never depend on the decision anyway).

    >>> profile = CostProfile(coefficients={
    ...     "vector": (0.0, 1e-6, 0.0),
    ...     "fft": (1e-3, 0.0, 0.0, 0.0),
    ... })
    >>> from repro.experiments.figure4 import build_site
    >>> f = SiteFeatures.from_site(build_site())
    >>> profile.choose(f)  # 6 pairs * 1us beats a 1ms setup charge
    'vector'
    >>> round(profile.predict("fft", f), 4)
    0.001
    """

    coefficients: Dict[str, Tuple[float, ...]]
    meta: Optional[Dict[str, object]] = None

    def kernels(self) -> Tuple[str, ...]:
        return tuple(k for k in KERNELS if k in self.coefficients)

    def predict(self, kernel: str, features: SiteFeatures) -> float:
        """Predicted seconds for ``kernel`` on a site with ``features``."""
        coef = self.coefficients[kernel]
        basis = _BASES[kernel](features)
        return float(sum(c * x for c, x in zip(coef, basis)))

    def choose(self, features: SiteFeatures) -> str:
        """Cheapest predicted kernel; ties break in ``KERNELS`` order."""
        best, best_cost = None, math.inf
        for kernel in self.kernels():
            cost = self.predict(kernel, features)
            if cost < best_cost:
                best, best_cost = kernel, cost
        if best is None:
            raise ValueError("profile has no fitted kernels")
        return best

    # -- persistence ----------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "version": 1,
                "meta": self.meta or {},
                "kernels": {
                    k: list(v) for k, v in self.coefficients.items()
                },
            },
            indent=2,
            sort_keys=True,
        ) + "\n"

    def save(self, path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def from_json(cls, text: str) -> "CostProfile":
        data = json.loads(text)
        if data.get("version") != 1:
            raise ValueError(
                f"unsupported autotune profile version {data.get('version')!r}"
            )
        coefficients = {}
        for kernel, coef in data["kernels"].items():
            if kernel not in _BASES:
                raise ValueError(f"unknown kernel {kernel!r} in profile")
            coefficients[kernel] = tuple(float(c) for c in coef)
        return cls(coefficients=coefficients, meta=data.get("meta") or {})

    @classmethod
    def load(cls, path) -> "CostProfile":
        return cls.from_json(Path(path).read_text())


#: Fallback used when no profile file exists anywhere (fresh checkout
#: mid-calibration): plain asymptotic operation counts with a uniform
#: per-op cost and per-site setup charges that reflect each kernel's
#: relative overhead. Ordering-correct for the extremes (skinny ->
#: vector, huge -> fft/bitpack) even if the crossovers are unfitted.
_BUILTIN = CostProfile(
    coefficients={
        "scalar": (0.0, 2e-5, 2e-7),
        "vector": (0.0, 4e-6, 1.2e-9),
        "fft": (1.5e-4, 6e-9, 1.2e-9, 2e-8),
        "bitpack": (1.2e-4, 1e-8, 1.5e-9, 2e-8),
        "native": (8e-5, 5e-9, 2e-10, 5e-9),
    },
    meta={"source": "builtin-uncalibrated"},
)

_cached_default: Optional[CostProfile] = None


def resolve_profile(path=None) -> CostProfile:
    """Load the active profile:
    explicit path > env > user cache > committed > builtin.

    The user-cache / committed lookup is cached process-wide (dispatch
    consults it per site); explicit/env paths are re-read on every call
    so a just-written ``--autotune`` profile takes effect immediately
    (``--autotune`` also exports its output path via
    ``REPRO_AUTOTUNE_PROFILE``, which keeps worker processes and this
    cache coherent within a run).
    """
    global _cached_default
    if path is not None:
        return CostProfile.load(path)
    env = os.environ.get(_ENV_PROFILE)
    if env:
        return CostProfile.load(env)
    if _cached_default is None:
        user_path = user_profile_path()
        if user_path.exists():
            _cached_default = CostProfile.load(user_path)
        elif DEFAULT_PROFILE_PATH.exists():
            _cached_default = CostProfile.load(DEFAULT_PROFILE_PATH)
        else:  # pragma: no cover - only during initial calibration
            _cached_default = _BUILTIN
    return _cached_default


def choose_kernel(
    site: RealignmentSite, profile: Optional[CostProfile] = None
) -> str:
    """The profile's cheapest kernel for ``site`` (no env override)."""
    if profile is None:
        profile = resolve_profile()
    return profile.choose(SiteFeatures.from_site(site))


def dispatch_realign(
    site: RealignmentSite,
    kernel: str = "auto",
    scoring: str = "similarity",
    prefilter: bool = True,
    telemetry=None,
    memo=None,
    profile: Optional[CostProfile] = None,
) -> SiteResult:
    """Run Algorithms 1 + 2 on ``site`` through the selected kernel.

    ``kernel="auto"`` consults the calibration profile (and honours the
    ``REPRO_KERNEL`` environment override -- *only* auto is
    overridable; an explicitly requested kernel always runs). All
    kernels are exact, so the returned :class:`SiteResult` is
    byte-identical across choices; only the time to produce it varies.
    ``prefilter`` and ``memo`` apply to the FFT kernel alone (the
    others have no equivalent machinery; the memo is ignored
    elsewhere).

    >>> from repro.experiments.figure4 import build_site
    >>> site = build_site()
    >>> results = [dispatch_realign(site, kernel=k) for k in
    ...            ("auto", "scalar", "vector", "fft", "bitpack", "native")]
    >>> all(r.same_outputs(results[0]) for r in results)
    True
    """
    if kernel not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose from {KERNEL_CHOICES}"
        )
    predicted: Optional[float] = None
    if kernel == "auto":
        override = os.environ.get(_ENV_KERNEL)
        if override:
            if override not in KERNELS:
                raise ValueError(
                    f"{_ENV_KERNEL}={override!r} is not one of {KERNELS}"
                )
            kernel = override
        else:
            if profile is None:
                profile = resolve_profile()
            features = SiteFeatures.from_site(site)
            kernel = profile.choose(features)
            predicted = profile.predict(kernel, features)

    start = time.perf_counter() if telemetry is not None else 0.0
    result = _run_kernel(site, kernel, scoring, prefilter, telemetry, memo)
    if telemetry is not None:
        telemetry.count(f"kernel.chosen.{kernel}", 1)
        if predicted is not None:
            actual = time.perf_counter() - start
            telemetry.count(
                "kernel.predicted_vs_actual",
                int(abs(predicted - actual) * 1e6),
            )
    return result


def _run_kernel(site, kernel, scoring, prefilter, telemetry, memo):
    if kernel == "fft":
        from repro.engine.batch import realign_site_batched

        return realign_site_batched(
            site, prefilter=prefilter, scoring=scoring,
            telemetry=telemetry, memo=memo,
        )
    if kernel == "bitpack":
        from repro.engine.bitpack import realign_site_bitpacked

        return realign_site_bitpacked(
            site, scoring=scoring, telemetry=telemetry
        )
    if kernel == "native":
        from repro.engine.native import realign_site_native

        return realign_site_native(
            site, scoring=scoring, telemetry=telemetry
        )
    from repro.realign.whd import realign_site

    return realign_site(
        site, vectorized=(kernel == "vector"), scoring=scoring,
        telemetry=telemetry,
    )


# -- calibration ---------------------------------------------------------

#: Shape spread the fit runs over: the point is coverage of the feature
#: axes (pair count, offset extent, FFT length, packed words), not
#: realism of any one profile. (name, C~, R~, read-length range, slack).
_CALIBRATION_SHAPES = (
    ("skinny", 2, 3, (20, 40), 6.0),
    ("small", 3, 8, (30, 80), 10.0),
    ("medium", 6, 24, (60, 140), 20.0),
    ("wide", 8, 48, (80, 220), 48.0),
    ("deep", 12, 96, (120, 200), 16.0),
    ("uniform250", 10, 128, (250, 250), 4.0),
    ("short-deep", 8, 160, (64, 64), 3.0),
)

#: Sites whose scalar comparison volume exceeds this are not timed under
#: the scalar kernel (it would dominate calibration wall-clock); its
#: asymptote is pinned by the smaller shapes, which is all dispatch
#: needs -- scalar never wins above this volume anyway.
_SCALAR_COMPARISON_CAP = 2_000_000


def _calibration_sites(seed: int, per_shape: int):
    from repro.workloads.generator import SiteProfile, synthesize_site

    rng = np.random.default_rng(seed)
    sites = []
    for name, C, R, length_range, slack in _CALIBRATION_SHAPES:
        profile = SiteProfile(
            name=name,
            mean_consensuses=C,
            mean_reads=R,
            read_length_range=length_range,
            window_slack_mean=slack,
            read_tail_sigma=0.0 if length_range[0] == length_range[1]
            else 0.7,
        )
        sites.extend(synthesize_site(rng, profile) for _ in range(per_shape))
    return sites


def calibrate(
    sites: Optional[Sequence[RealignmentSite]] = None,
    repeats: int = 3,
    seed: int = 2024,
    per_shape: int = 3,
) -> CostProfile:
    """Time every kernel on a shape spread and fit the cost model.

    Each (site, kernel) pair is timed ``repeats`` times and the best is
    kept (measurement noise is one-sided). The scalar kernel is skipped
    on sites above ``_SCALAR_COMPARISON_CAP`` comparisons; its rows are
    fitted from the smaller shapes. The native tier is JIT-warmed
    *before* any timing (so one-time compilation cannot poison its
    rows) and left out of the fit entirely when no compiled backend is
    usable -- dispatch then simply never routes to it. Returns the
    fitted profile -- callers persist it with :meth:`CostProfile.save`.
    """
    from repro.engine.native import warmup_native

    native_ok = warmup_native()
    if sites is None:
        sites = _calibration_sites(seed, per_shape)
    features = [SiteFeatures.from_site(site) for site in sites]
    rows: Dict[str, List[List[float]]] = {k: [] for k in KERNELS}
    times: Dict[str, List[float]] = {k: [] for k in KERNELS}
    for site, f in zip(sites, features):
        for kernel in KERNELS:
            if kernel == "native" and not native_ok:
                continue
            if (kernel == "scalar"
                    and f.valid_cells * f.n_max > _SCALAR_COMPARISON_CAP):
                continue
            best = math.inf
            for _ in range(repeats):
                t0 = time.perf_counter()
                _run_kernel(site, kernel, "similarity", True, None, None)
                best = min(best, time.perf_counter() - t0)
            rows[kernel].append(_BASES[kernel](f))
            times[kernel].append(best)
    coefficients = {}
    for kernel in KERNELS:
        if not rows[kernel]:
            continue
        A = np.asarray(rows[kernel], dtype=np.float64)
        b = np.asarray(times[kernel], dtype=np.float64)
        # Weight by 1/time so small-site rows (where crossovers live)
        # are not drowned out by the large sites' absolute seconds.
        w = 1.0 / np.maximum(b, 1e-6)
        coefficients[kernel] = tuple(_nnls(A * w[:, None], b * w))
    return CostProfile(
        coefficients=coefficients,
        meta={
            "source": "calibrate",
            "sites": len(list(sites)),
            "repeats": repeats,
            "seed": seed,
        },
    )


__all__ = [
    "CostProfile",
    "DEFAULT_PROFILE_PATH",
    "KERNELS",
    "KERNEL_CHOICES",
    "SiteFeatures",
    "calibrate",
    "choose_kernel",
    "dispatch_realign",
    "resolve_profile",
    "user_profile_path",
    "writable_profile_path",
]
