"""GateKeeper-style pre-alignment filtering for the batched WHD engine.

The paper's accelerator prunes *within* a (consensus, read) offset scan
(Section IV: stop accumulating once the running WHD passes the current
minimum). The batched software engine adds the complementary idea from
pre-alignment filters such as GateKeeper (Alser et al.) and shift-based
SIMD filters: bound the weighted Hamming distance *before* computing it,
using only base-mismatch **counts**, and skip the exact evaluation
wherever the bound proves it cannot matter.

For a read with per-base qualities ``q`` and a consensus window at
offset ``k``, let ``cnt(k)`` be the number of mismatching bases. Then

    minq * cnt(k)  <=  WHD(k)  <=  maxq * cnt(k)

where ``minq``/``maxq`` are the read's minimum/maximum quality. Counts
for *every* offset of *every* pair come out of one batched FFT
cross-correlation (see :mod:`repro.engine.batch`), computed in float32
for speed. The float32 pass is rounded to integers and every bound below
carries a slack of :data:`PREFILTER_TOLERANCE` counts, which makes the
filter sound for any FFT rounding error below one count -- a naive
float32 error bound for these transforms is already ~0.6 counts, and the
property suite pins soundness empirically.

Three sound prunes are derived, all preserving byte-identical output:

- **offset candidates** -- a cell ``k`` whose lower bound exceeds the
  pair's upper bound can never be the pair's minimum (and every cell
  *achieving* the minimum always stays a candidate, so the earliest-
  minimum tie-break survives);
- **consensus elimination** -- an alternate consensus whose score lower
  bound exceeds another alternate's score upper bound can never be
  selected by ``Score_n_Select`` (strict inequality, so index-order tie
  breaks survive); its grid row is left at the sentinel;
- **cannot-beat-reference pairs** -- a pair whose WHD lower bound is at
  least the reference's exact WHD can never trigger realignment
  (Algorithm 2 realigns only on a *strictly* smaller WHD).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

#: Slack, in mismatch *counts*, absorbed by every count-derived bound.
#: Covers the float32 FFT rounding error (provably < 1 count at the
#: site-size limits) with margin to spare.
PREFILTER_TOLERANCE = 1

#: Mismatch-count sentinel for invalid offsets (read would overhang the
#: consensus). Far above the largest real count (256 bases) yet small
#: enough that ``maxq * (COUNT_SENTINEL + 1)`` fits comfortably in int64.
COUNT_SENTINEL = 1 << 20


@dataclass
class PrefilterStats:
    """Work accounting for the batched kernel, accumulated across calls.

    ``cells_valid`` counts every in-range (consensus, read, offset) cell
    the scalar kernel would evaluate; ``cells_evaluated`` counts the
    cells the engine actually evaluated exactly. Their difference is the
    work the filter (plus memoization, when enabled) avoided.
    """

    sites: int = 0
    cells_valid: int = 0
    cells_evaluated: int = 0
    rows_eliminated: int = 0
    pairs_pruned: int = 0

    @property
    def cells_pruned(self) -> int:
        return max(self.cells_valid - self.cells_evaluated, 0)

    @property
    def prune_fraction(self) -> float:
        if self.cells_valid == 0:
            return 0.0
        return self.cells_pruned / self.cells_valid

    def merge(self, other: "PrefilterStats") -> None:
        self.sites += other.sites
        self.cells_valid += other.cells_valid
        self.cells_evaluated += other.cells_evaluated
        self.rows_eliminated += other.rows_eliminated
        self.pairs_pruned += other.pairs_pruned

    def as_counters(self) -> Dict[str, int]:
        return {
            "engine.sites": self.sites,
            "engine.cells_valid": self.cells_valid,
            "engine.cells_evaluated": self.cells_evaluated,
            "engine.cells_pruned": self.cells_pruned,
            "engine.rows_eliminated": self.rows_eliminated,
            "engine.pairs_pruned": self.pairs_pruned,
        }


def pair_bounds(
    cnt: np.ndarray,
    minq: np.ndarray,
    maxq: np.ndarray,
    tol: int = PREFILTER_TOLERANCE,
) -> tuple:
    """Bounds on ``min_k WHD`` per (consensus, read) pair from counts.

    ``cnt`` is the ``(C, R, K)`` float32 mismatch-count tensor (raw FFT
    output, error < ``tol`` counts) with :data:`COUNT_SENTINEL` at
    invalid offsets; ``minq``/``maxq`` are the per-read quality
    extremes, shape ``(R,)``. Returns ``(lb, ub)`` int64 arrays of
    shape ``(C, R)`` with ``lb <= min_k WHD <= ub``.

    Soundness: at the true minimizing offset ``k*``,
    ``WHD(k*) >= minq * cnt(k*) >= minq * (cntf(k*) - tol)`` and at the
    float-count minimizer ``kc``,
    ``min_k WHD <= WHD(kc) <= maxq * cnt(kc) <= maxq * (cntf(kc) + tol)``;
    the float-to-int conversions round outward (floor for ``lb``, ceil
    for ``ub``) so the integer bounds stay conservative. Every pair has
    at least one valid offset (a site invariant), so the sentinel never
    reaches the bounds.

    One pair, one read (C=1, R=1) whose best offset has 2 mismatches,
    qualities in [10, 40], default tolerance of 1 count:

    >>> cnt = np.array([[[5.0, 2.0, 3.0]]], dtype=np.float32)
    >>> lb, ub = pair_bounds(cnt, np.array([10]), np.array([40]))
    >>> (int(lb[0, 0]), int(ub[0, 0]))  # 10*(2-1) .. 40*(2+1)
    (10, 120)
    """
    mincnt = cnt.min(axis=2).astype(np.float64)
    minq64 = minq.astype(np.float64)[None, :]
    maxq64 = maxq.astype(np.float64)[None, :]
    lb = np.floor(minq64 * np.maximum(mincnt - tol, 0)).astype(np.int64)
    ub = np.ceil(maxq64 * (mincnt + tol)).astype(np.int64)
    return lb, ub


def offset_candidates(
    cnt: np.ndarray,
    minq: np.ndarray,
    ub_pair: np.ndarray,
    tol: int = PREFILTER_TOLERANCE,
) -> np.ndarray:
    """Mask of offsets that could still hold a pair's minimum WHD.

    A cell is pruned when its WHD lower bound ``minq * (cnt - tol)``
    strictly exceeds the pair's upper bound -- such a cell cannot equal
    the minimum, so dropping it changes neither the minimum nor the
    *earliest* offset achieving it (any cell achieving the minimum
    satisfies ``lb_cell <= WHD = min <= ub_pair`` and is kept). Every
    valid pair retains at least one candidate for the same reason.

    ``cnt`` must carry :data:`COUNT_SENTINEL` at invalid offsets. The
    whole test collapses to one comparison against a per-pair count
    threshold -- for ``minq > 0``, ``cnt <= ub/minq + tol`` -- so the
    only pass over the ``(C, R, K)`` tensor is a single fused
    ``<=``. The threshold is computed in float64 with a +1e-3 count
    margin; residual rounding (including the final float32 cast, < 0.02
    counts at these magnitudes) stays far inside the >= 0.4-count slack
    that ``tol`` leaves over the worst-case FFT error, so no cell that
    could hold the minimum is ever dropped (keeping an extra borderline
    cell is always safe -- it is merely evaluated exactly). Reads with
    ``minq == 0`` bound nothing, so every valid cell stays a candidate;
    the threshold still sits below the sentinel, which keeps invalid
    offsets excluded in every case.
    """
    with np.errstate(divide="ignore"):
        thresh = ub_pair / np.maximum(minq, 1)[None, :].astype(np.float64)
    thresh = np.where(minq[None, :] > 0, thresh + tol + 1e-3,
                      float(COUNT_SENTINEL - 1))
    thresh = np.minimum(thresh, float(COUNT_SENTINEL - 1))
    return cnt <= thresh.astype(np.float32)[:, :, None]


def consensus_keep_mask(
    lb: np.ndarray,
    ub: np.ndarray,
    scoring: str = "similarity",
    ref_exact: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Alternates that could still win ``Score_n_Select``.

    An alternate is eliminated when its score *lower* bound strictly
    exceeds some other alternate's score *upper* bound: its exact score
    would then be strictly larger than that rival's, so it can never be
    the argmin -- not even on ties, which Algorithm 2 breaks toward the
    lowest index among *equal* scores. At least one alternate always
    survives (the one attaining the minimum upper bound), and the
    reference row (index 0) is always kept.

    ``"absdiff"`` scoring needs the exact reference row ``ref_exact``
    (shape ``(R,)``), because its per-pair score term is
    ``|whd - ref|``; the interval ``[lb, ub]`` maps to
    ``[max(0, lb - ref, ref - ub), max(ub - ref, ref - lb)]``.
    """
    C = lb.shape[0]
    keep = np.ones(C, dtype=bool)
    if C <= 1:
        return keep
    if scoring == "absdiff":
        if ref_exact is None:
            raise ValueError("absdiff elimination needs the exact reference row")
        r = ref_exact[None, :]
        lo_term = np.maximum(np.maximum(lb[1:] - r, r - ub[1:]), 0)
        hi_term = np.maximum(ub[1:] - r, r - lb[1:])
    else:
        lo_term = lb[1:]
        hi_term = ub[1:]
    lo = lo_term.sum(axis=1, dtype=np.int64)
    hi = hi_term.sum(axis=1, dtype=np.int64)
    keep[1:] = lo <= hi.min()
    return keep


def pairs_cannot_beat_reference(
    lb: np.ndarray, ref_exact: np.ndarray
) -> np.ndarray:
    """Pairs provably unable to trigger realignment, shape ``(C, R)``.

    Algorithm 2 realigns read ``j`` only when the picked consensus has
    ``min_whd[i, j] < min_whd[0, j]`` *strictly*; if the pair's lower
    bound already reaches the reference's exact WHD the strict
    inequality is impossible. Conversely a pair whose true WHD beats the
    reference has ``lb <= WHD < ref`` and is never flagged -- the
    property suite pins this. Row 0 (reference vs itself) is never
    flagged.
    """
    out = lb >= ref_exact[None, :].astype(np.int64)
    out[0, :] = False
    return out
