"""Shared-memory site arenas: zero-copy worker dispatch.

The barrier engine pickles every :class:`~repro.realign.site.RealignmentSite`
into the pool's task pipe and pickles every grid back -- per-chunk IPC
that grows with site size and is pure overhead (the paper's host avoids
the same cost by DMA-ing sites into FPGA DRAM once and passing the
units *addresses*). This module is the software analogue of that DMA
arena: a chunk's base strings, quality scores, and consensus windows
are packed into one contiguous ``multiprocessing.shared_memory`` block,
and the task pipe carries only a :class:`ChunkDescriptor` -- site
shapes plus one arena name, a few hundred bytes regardless of how many
megabases the chunk holds.

Workers attach the arena by name and rebuild sites with
:meth:`~repro.realign.site.RealignmentSite.trusted` (the bytes were
validated when the parent built the sites; re-validating per worker
would spend the win). Quality arrays are copied out of the arena on
unpack so no numpy view can outlive the mapping -- the *dispatch* is
what is zero-copy, not the decode (see docs/PERFORMANCE.md "Streaming
& memory model" for the full accounting).

When ``multiprocessing.shared_memory`` is unavailable (some platforms
build Python without it) -- or when the caller passes
``use_shmem=False`` (the CLI's ``--no-shmem``) -- ``pack_chunk``
transparently falls back to carrying the same packed buffer inline in
the descriptor, which pickles as one ``bytes`` object: still cheaper
than per-site object pickling, with identical unpack semantics.

Lifecycle contract: the parent owns every arena. ``pack_chunk`` returns
the descriptor plus a handle the parent must ``release()`` once the
chunk's results arrive (or on abort); workers only ever attach and
close. On POSIX, unlinking while a worker is still attached is safe --
the mapping survives until the last close.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.realign.site import PAPER_LIMITS, RealignmentSite, SiteLimits

try:  # CPython builds without POSIX shm (or _multiprocessing) lack this
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exercised only on exotic builds
    _shared_memory = None

#: True when shared-memory arenas can actually be created here.
HAVE_SHARED_MEMORY = _shared_memory is not None

logger = logging.getLogger(__name__)

#: Arena lifecycle anomalies observed since the last drain. Cleanup
#: paths must never raise (they run in __del__ and interpreter
#: teardown), but they must not be *silent* either: anomalies are
#: counted here and folded into the next run's telemetry by
#: StreamingEngine (see :func:`drain_lifecycle_counters`).
_LIFECYCLE_COUNTERS: Dict[str, int] = {}


def _lifecycle_count(name: str, delta: int = 1) -> None:
    _LIFECYCLE_COUNTERS[name] = _LIFECYCLE_COUNTERS.get(name, 0) + delta


def drain_lifecycle_counters() -> Dict[str, int]:
    """Pop the accumulated ``shmem.*`` lifecycle anomaly counters.

    - ``shmem.arena_gc_reclaimed``: an :class:`ArenaHandle` reached
      garbage collection still holding its arena -- the owner never
      called ``release()`` (the ``__del__`` safety net unlinked it);
    - ``shmem.release_failed``: a release attempt raised (the arena may
      genuinely leak until interpreter exit -- the resource tracker's
      problem after that);
    - ``shmem.unlink_missing``: the segment was already gone at unlink
      (e.g. a resource tracker reaped a crashed run's arena first);
    - ``shmem.tracker_start_failed``: the resource tracker could not be
      started ahead of the pool fork.
    """
    drained = dict(_LIFECYCLE_COUNTERS)
    _LIFECYCLE_COUNTERS.clear()
    return drained


@dataclass(frozen=True)
class SiteRecord:
    """One site's shape inside an arena: everything but the bytes.

    Offsets are relative to the start of the arena. Layout per site is
    ``consensuses | reads | quals``, each field a plain concatenation of
    the per-sequence byte runs in declaration order.
    """

    chrom: str
    start: int
    offset: int
    cons_lengths: Tuple[int, ...]
    read_lengths: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        return sum(self.cons_lengths) + 2 * sum(self.read_lengths)


@dataclass(frozen=True)
class ChunkDescriptor:
    """The picklable task payload for one chunk of sites.

    Exactly one of ``arena`` (a shared-memory block name) and
    ``payload`` (the packed bytes carried inline) is set; ``unpack_chunk``
    treats both identically.
    """

    chunk_id: int
    sites: Tuple[SiteRecord, ...]
    nbytes: int
    arena: Optional[str] = None
    payload: Optional[bytes] = None
    limits: SiteLimits = PAPER_LIMITS

    def __post_init__(self) -> None:
        if (self.arena is None) == (self.payload is None):
            raise ValueError(
                "exactly one of arena and payload must be set"
            )


class ArenaHandle:
    """Parent-side ownership of one chunk's arena (no-op for inline)."""

    def __init__(self, shm=None):
        self._shm = shm

    @property
    def nbytes(self) -> int:
        return self._shm.size if self._shm is not None else 0

    def release(self) -> None:
        """Unlink + unmap the arena; idempotent."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                _lifecycle_count("shmem.unlink_missing")
                logger.debug("arena %s was already unlinked", shm.name)

    def __del__(self):  # pragma: no cover - GC timing dependent
        if self._shm is None:
            return
        # An arena reaching GC un-released means its owner lost track of
        # it (e.g. an abandoned stream mid-exception): reclaim it, but
        # loudly -- a rising counter here is a lifecycle bug upstream.
        _lifecycle_count("shmem.arena_gc_reclaimed")
        try:
            name = self._shm.name
            self.release()
            logger.warning("arena %s reclaimed by GC, not release()", name)
        except Exception:
            _lifecycle_count("shmem.release_failed")
            logger.exception("arena release failed during GC")


def _pack_into(buffer: memoryview, sites: Sequence[RealignmentSite],
               ) -> List[SiteRecord]:
    """Lay every site's bytes into ``buffer``; return their records."""
    records: List[SiteRecord] = []
    cursor = 0
    out = np.frombuffer(buffer, dtype=np.uint8)
    for site in sites:
        offset = cursor
        for cons in site.consensuses:
            run = np.frombuffer(cons.encode("ascii"), dtype=np.uint8)
            out[cursor : cursor + run.size] = run
            cursor += run.size
        for read in site.reads:
            run = np.frombuffer(read.encode("ascii"), dtype=np.uint8)
            out[cursor : cursor + run.size] = run
            cursor += run.size
        for qual in site.quals:
            out[cursor : cursor + qual.size] = qual
            cursor += qual.size
        records.append(SiteRecord(
            chrom=site.chrom,
            start=site.start,
            offset=offset,
            cons_lengths=tuple(len(c) for c in site.consensuses),
            read_lengths=tuple(len(r) for r in site.reads),
        ))
    return records


def pack_chunk(
    chunk_id: int,
    sites: Sequence[RealignmentSite],
    use_shmem: bool = True,
) -> Tuple[ChunkDescriptor, ArenaHandle]:
    """Encode ``sites`` into one arena; returns (descriptor, handle).

    The descriptor is safe to pickle into a worker; the handle stays
    with the caller, who must ``release()`` it once the chunk's results
    are back. With ``use_shmem=False`` (or no shared-memory support)
    the bytes ride inline and the handle is a no-op.
    """
    total = sum(
        sum(len(c) for c in site.consensuses) + 2 * sum(
            len(r) for r in site.reads
        )
        for site in sites
    )
    limits = sites[0].limits if sites else PAPER_LIMITS
    if use_shmem and HAVE_SHARED_MEMORY and total > 0:
        shm = _shared_memory.SharedMemory(create=True, size=total)
        records = _pack_into(shm.buf, sites)
        return (
            ChunkDescriptor(
                chunk_id=chunk_id, sites=tuple(records), nbytes=total,
                arena=shm.name, limits=limits,
            ),
            ArenaHandle(shm),
        )
    buffer = bytearray(total)
    records = _pack_into(memoryview(buffer), sites)
    return (
        ChunkDescriptor(
            chunk_id=chunk_id, sites=tuple(records), nbytes=total,
            payload=bytes(buffer), limits=limits,
        ),
        ArenaHandle(None),
    )


def ensure_resource_tracker() -> None:
    """Start the resource tracker *before* the engine forks its pool.

    If the tracker is not yet running when the pool forks, each worker
    lazily spawns its own tracker on its first arena attach; those
    private trackers never see the parent's ``unlink`` and complain
    about (already-gone) leaked segments at exit. Starting the tracker
    in the parent first means every forked worker inherits it, so
    attach-side registrations and the parent's unlink meet in one
    cache. No-op where the tracker does not exist (Windows).
    """
    try:  # pragma: no cover - platform dependent
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:
        # Not fatal -- workers fall back to private trackers -- but
        # worth counting: exit-time "leaked segment" noise starts here.
        _lifecycle_count("shmem.tracker_start_failed")
        logger.warning("could not start the shared-memory resource "
                       "tracker before the pool fork", exc_info=True)


def _attach(name: str):
    """Attach an existing arena without adopting its lifecycle.

    ``SharedMemory(name=...)`` registers the segment with the resource
    tracker even on attach (opt-out arrives only with 3.13's
    ``track=False``). Under the engine's fork-context pool the workers
    inherit the *parent's* tracker, so the attach-side registration is
    a duplicate entry in a set -- harmless -- and must NOT be
    "corrected" with ``unregister``: that would delete the parent's own
    registration and turn every later ``unlink`` into tracker noise.
    """
    return _shared_memory.SharedMemory(name=name)


def _decode(raw, descriptor: ChunkDescriptor) -> List[RealignmentSite]:
    """Decode every site out of ``raw``; nothing returned aliases it."""
    data = np.frombuffer(raw, dtype=np.uint8)
    sites: List[RealignmentSite] = []
    for record in descriptor.sites:
        cursor = record.offset
        consensuses = []
        for length in record.cons_lengths:
            consensuses.append(
                data[cursor : cursor + length].tobytes().decode("ascii")
            )
            cursor += length
        reads = []
        for length in record.read_lengths:
            reads.append(
                data[cursor : cursor + length].tobytes().decode("ascii")
            )
            cursor += length
        quals = []
        for length in record.read_lengths:
            quals.append(data[cursor : cursor + length].copy())
            cursor += length
        sites.append(RealignmentSite.trusted(
            chrom=record.chrom,
            start=record.start,
            consensuses=tuple(consensuses),
            reads=tuple(reads),
            quals=tuple(quals),
            limits=descriptor.limits,
        ))
    return sites


def unpack_chunk(descriptor: ChunkDescriptor) -> List[RealignmentSite]:
    """Rebuild the chunk's sites from its arena (or inline payload).

    The returned sites own their memory (strings are decoded, quality
    arrays copied), so the arena can be released as soon as this
    returns -- no view escapes into the result.
    """
    if descriptor.arena is None:
        return _decode(memoryview(descriptor.payload), descriptor)
    if not HAVE_SHARED_MEMORY:  # pragma: no cover - defensive
        raise RuntimeError(
            "descriptor names a shared-memory arena but this "
            "interpreter has no multiprocessing.shared_memory"
        )
    shm = _attach(descriptor.arena)
    try:
        # _decode's temporaries are the only exports of shm.buf and die
        # with its frame, so close() cannot hit a live-view BufferError.
        return _decode(shm.buf, descriptor)
    finally:
        shm.close()


__all__ = [
    "ArenaHandle",
    "ChunkDescriptor",
    "HAVE_SHARED_MEMORY",
    "SiteRecord",
    "drain_lifecycle_counters",
    "ensure_resource_tracker",
    "pack_chunk",
    "unpack_chunk",
]
