"""Bit-packed SWAR evaluation of the WHD kernel (GateKeeper-style).

The paper's hardware wins by exploiting *bit-level* parallelism: each
WHD compute unit compares many bases per cycle with wide XOR networks.
GateKeeper (Alser et al., see PAPERS.md) showed the same base-comparison
work maps naturally onto wide bitwise operations in commodity hardware;
this module brings that idea to the software data plane as a third
exact kernel beside the scalar transcription
(:func:`repro.realign.whd.min_whd_pair`) and the FFT-batched engine
(:mod:`repro.engine.batch`).

The pipeline, per (consensus, read) pair:

1. **2-bit packing.** Bases encode as 2-bit codes (A=0, C=1, G=2, T=3)
   packed 32 per ``uint64`` word; ``N`` shares code 0 and carries a
   separate per-position flag bit, so five symbols fit the 2-bit lanes
   without widening them.
2. **SWAR mismatch masks.** For every offset ``k`` the packed read is
   XORed against a pre-shifted packed consensus window; folding the two
   code bits (``(x | x >> 1) & 0x5555...``) yields one mismatch bit per
   base, 32 bases per word op. ``N`` disagreement is ORed in from the
   flag planes (``N`` matches only ``N``, exactly like the scalar
   kernel's character comparison), and padding past the read's true
   length is masked off.
3. **Count screening.** A population count over each offset's mask
   gives its mismatch *count*; with per-read quality extremes this
   bounds every offset's WHD (``minq*cnt <= WHD <= maxq*cnt``), and
   offsets whose lower bound exceeds the best upper bound can never be
   the minimum (they exceed it *strictly*, so the earliest-minimum tie
   rule is preserved too).
4. **Bit-sliced quality gather.** Only the surviving offsets are
   evaluated exactly: read qualities are bit-sliced into 8 planes
   aligned with the mismatch lanes, and the weighted sum at the
   mismatching positions is recovered as
   ``sum_b 2^b * popcount(mask & plane_b)`` -- still pure word-wide
   ops, no per-base unpacking.

The resulting grids -- and therefore every ``SiteResult`` -- are
cell-identical to the scalar kernel's (property-tested in
``tests/test_kernel_dispatch.py``, pinned against ``tests/golden/``).
Cost scales as ``O(K * ceil(n/32))`` word ops per pair plus an ``O(m)``
per-consensus shift precompute, with none of the FFT path's transform
setup -- which is why the autotuned dispatcher
(:mod:`repro.engine.autotune`) routes small and skinny sites here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.realign.site import RealignmentSite
from repro.realign.whd import (
    SiteResult,
    reads_realignments,
    score_and_select,
)

#: Bases per 64-bit word at 2 bits per base.
BASES_PER_WORD = 32

#: Even-bit lane mask: one bit per base after the XOR fold.
_EVEN = np.uint64(0x5555_5555_5555_5555)

_ONE = np.uint64(1)

#: ASCII -> 2-bit code. ``N`` deliberately aliases ``A`` (code 0); the
#: separate N-flag plane restores exact five-symbol semantics.
_CODE_LUT = np.zeros(256, dtype=np.uint8)
for _i, _b in enumerate("ACGT"):
    _CODE_LUT[ord(_b)] = _i

#: Bit positions of the 32 base lanes within one word (base ``i`` of a
#: word occupies bits ``2i`` and ``2i+1``; flags live on bit ``2i``).
_LANE_SHIFTS = (2 * np.arange(BASES_PER_WORD, dtype=np.uint64)).astype(np.uint64)

#: Quality scores are uint8, so 8 bit-planes cover any legal score
#: (Phred caps at 93 in practice; the planes cost nothing when empty).
QUALITY_PLANES = 8

#: Byte -> popcount LUT for the numpy<2.0 fallback. Defined
#: unconditionally so the fallback stays unit-testable on numpy>=2.0
#: hosts (``tests/test_kernel_dispatch.py::TestPopcountFallback``).
_POP8 = np.array([bin(v).count("1") for v in range(256)], dtype=np.uint8)


def _popcount_rows_lut(words: np.ndarray) -> np.ndarray:
    """LUT popcount over the last axis of a ``(..., W)`` uint64 array.

    Viewing ``uint64`` words as bytes widens only the *last* axis (by
    8x), so summing over ``axis=-1`` preserves every leading dimension.
    That matters: the screening passes call this on both ``(K, W)``
    pair masks and the grouped ``(C, K, G, Wr)`` mask tensor, and
    collapsing the leading dims would silently misshape the counts the
    minima reductions run over.
    """
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return _POP8[as_bytes].sum(axis=-1, dtype=np.int64)


if hasattr(np, "bitwise_count"):  # numpy >= 2.0
    def _popcount_rows(words: np.ndarray) -> np.ndarray:
        """Per-row population count of a ``(..., W)`` uint64 array."""
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
else:  # pragma: no cover - binding taken only on numpy < 2.0
    _popcount_rows = _popcount_rows_lut


def _pack_even_bits(flags: np.ndarray) -> np.ndarray:
    """Pack 0/1 flags (one per base) onto the even bits of uint64 words."""
    length = flags.size
    words = (length + BASES_PER_WORD - 1) // BASES_PER_WORD
    padded = np.zeros(words * BASES_PER_WORD, dtype=np.uint64)
    padded[:length] = flags
    return np.bitwise_or.reduce(
        padded.reshape(words, BASES_PER_WORD) << _LANE_SHIFTS, axis=1
    )


def pack_bases(arr: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Encode ASCII bases as 2-bit-packed words plus an N-flag plane.

    Returns ``(words, nmask)``; base ``i`` occupies bits ``2(i % 32)``
    and ``2(i % 32) + 1`` of ``words[i // 32]``, and ``nmask`` carries a
    set bit at lane position ``2(i % 32)`` where the base is ``N``.
    Padding lanes past the sequence end are zero in both planes.

    Figure 4's reference consensus packs into a single word (7 bases,
    2 bits each -- ``C C T T A G A`` is ``01 01 11 11 00 10 00`` read
    low lane first):

    >>> from repro.genomics.sequence import seq_to_array
    >>> words, nmask = pack_bases(seq_to_array("CCTTAGA"))
    >>> format(int(words[0]), "014b")
    '00100011110101'
    >>> int(nmask[0])
    0
    """
    codes = _CODE_LUT[arr].astype(np.uint64)
    length = codes.size
    words = (length + BASES_PER_WORD - 1) // BASES_PER_WORD
    padded = np.zeros(words * BASES_PER_WORD, dtype=np.uint64)
    padded[:length] = codes
    packed = np.bitwise_or.reduce(
        padded.reshape(words, BASES_PER_WORD) << _LANE_SHIFTS, axis=1
    )
    nmask = _pack_even_bits((arr == ord("N")).astype(np.uint64))
    return packed, nmask


@dataclass(frozen=True)
class PackedRead:
    """One read's kernel inputs in SWAR form (shared across consensuses)."""

    words: np.ndarray  # (Wr,) uint64 2-bit base codes
    nmask: np.ndarray  # (Wr,) uint64 N flags on even bits
    valid: np.ndarray  # (Wr,) uint64 even-bit mask of true positions
    qplanes: np.ndarray  # (QUALITY_PLANES, Wr) uint64 quality bit-slices
    qlow: np.ndarray  # (n+1,) cumsum of sorted quals: tight WHD lower bound
    qhigh: np.ndarray  # (n+1,) reverse cumsum: tight WHD upper bound
    n: int
    minq: int
    maxq: int

    @classmethod
    def pack(cls, arr: np.ndarray, quals: np.ndarray) -> "PackedRead":
        words, nmask = pack_bases(arr)
        valid = _pack_even_bits(np.ones(arr.size, dtype=np.uint64))
        # All 8 quality bit-planes in one pass: (8, n) bits padded and
        # OR-folded onto the even lanes, mirroring the base packing.
        bits = (
            quals[None, :].astype(np.uint64)
            >> np.arange(QUALITY_PLANES, dtype=np.uint64)[:, None]
        ) & _ONE
        padded = np.zeros(
            (QUALITY_PLANES, words.size * BASES_PER_WORD), dtype=np.uint64
        )
        padded[:, : arr.size] = bits
        qplanes = np.bitwise_or.reduce(
            padded.reshape(QUALITY_PLANES, words.size, BASES_PER_WORD)
            << _LANE_SHIFTS,
            axis=2,
        )
        # Order statistics for count screening: with ``c`` mismatches,
        # the WHD is at least the sum of the ``c`` smallest qualities
        # and at most the sum of the ``c`` largest -- far tighter than
        # ``minq*c <= WHD <= maxq*c`` when the quality spread is narrow
        # (the common case), so far fewer offsets need the exact gather.
        ordered = np.sort(quals.astype(np.int64))
        qlow = np.concatenate(([0], np.cumsum(ordered)))
        qhigh = np.concatenate(([0], np.cumsum(ordered[::-1])))
        return cls(
            words=words, nmask=nmask, valid=valid, qplanes=qplanes,
            qlow=qlow, qhigh=qhigh,
            n=int(arr.size), minq=int(quals.min()), maxq=int(quals.max()),
        )


@dataclass(frozen=True)
class PackedConsensus:
    """One consensus pre-shifted to all 32 bit phases.

    ``shifted[p]`` is the packed encoding of the consensus suffix
    starting at base ``p``, so the window at offset ``k`` is the word
    slice ``shifted[k % 32][k // 32 : k // 32 + Wr]`` -- a pure gather,
    no per-offset bit arithmetic.
    """

    shifted: np.ndarray  # (32, W) uint64 base words
    shifted_n: np.ndarray  # (32, W) uint64 N-flag words
    m: int
    has_n: bool = False

    @classmethod
    def pack(cls, arr: np.ndarray, pad_words: int) -> "PackedConsensus":
        words, nmask = pack_bases(arr)
        return cls(
            shifted=_phase_shifts(words, pad_words),
            shifted_n=_phase_shifts(nmask, pad_words),
            m=int(arr.size),
            has_n=bool(nmask.any()),
        )

    def windows(self, K: int, read_words: int) -> Tuple[np.ndarray, np.ndarray]:
        """Packed consensus windows for offsets ``0..K-1``: ``(K, Wr)``."""
        offsets = np.arange(K)
        phase = offsets & (BASES_PER_WORD - 1)
        cols = (offsets >> 5)[:, None] + np.arange(read_words)[None, :]
        return (
            self.shifted[phase[:, None], cols],
            self.shifted_n[phase[:, None], cols],
        )


def _phase_shifts(words: np.ndarray, pad_words: int) -> np.ndarray:
    """All 32 bit-phase shifts of a packed sequence, zero-padded."""
    count = words.size
    out = np.zeros((BASES_PER_WORD, count + pad_words), dtype=np.uint64)
    out[0, :count] = words
    nxt = np.zeros(count, dtype=np.uint64)
    nxt[: count - 1] = words[1:]
    # Phases 1..31 in one vector op each way; phase 0 is handled above
    # because a 64-bit shift of the carry word would be undefined.
    shifts = _LANE_SHIFTS[1:, None]  # (31, 1): 2, 4, ..., 62
    out[1:, :count] = (words[None, :] >> shifts) | (
        nxt[None, :] << (np.uint64(64) - shifts)
    )
    return out


def mismatch_counts(cons: str, read: str) -> List[int]:
    """Per-offset mismatch counts from the SWAR mask pipeline.

    The bit-parallel analogue of counting ``cons[k + i] != read[i]``
    positions per offset -- stage 2 + 3 of the module pipeline with the
    quality gather left out.

    Figure 4, read 0 (``TGAA``) against the reference consensus
    (``CCTTAGA``): at ``k = 2`` only read bases 1 and 3 mismatch, the
    fewest of any offset (the weighted minimum lands there too):

    >>> mismatch_counts("CCTTAGA", "TGAA")
    [4, 3, 2, 2]
    """
    from repro.genomics.sequence import seq_to_array

    cons_arr = seq_to_array(cons)
    read_arr = seq_to_array(read)
    if read_arr.size == 0 or cons_arr.size < read_arr.size:
        raise ValueError(
            f"invalid pair shapes (m={cons_arr.size}, n={read_arr.size})"
        )
    packed_read = PackedRead.pack(
        read_arr, np.zeros(read_arr.size, dtype=np.uint8)
    )
    read_words = packed_read.words.size
    packed_cons = PackedConsensus.pack(cons_arr, pad_words=read_words + 1)
    K = cons_arr.size - read_arr.size + 1
    win_b, win_n = packed_cons.windows(K, read_words)
    return _offset_masks(win_b, win_n, packed_read)[1].tolist()


def _offset_masks(
    win_b: np.ndarray, win_n: np.ndarray, read: PackedRead
) -> Tuple[np.ndarray, np.ndarray]:
    """Mismatch masks ``(K, Wr)`` and their per-offset counts ``(K,)``."""
    x = win_b ^ read.words[None, :]
    masks = (x | (x >> _ONE)) & _EVEN
    masks |= win_n ^ read.nmask[None, :]
    masks &= read.valid[None, :]
    return masks, _popcount_rows(masks)


#: Soft cap, in uint64 elements, on the ``(K, G, Wr)`` mask tensor one
#: read-group evaluation materializes; groups are chunked to stay under
#: it (8 MiB of words -- small sites never chunk, paper-limit sites do).
_WORD_BUDGET = 1 << 20

#: Invalid-offset sentinel for the count bounds; any real bound is
#: at most 256 bases x Phred 93, far below this.
_BOUND_SENTINEL = np.int64(1) << 40


@dataclass(frozen=True)
class _ReadGroup:
    """Stacked planes for every read sharing one packed word count.

    Built once per site; each consensus then reuses the stacks, so the
    per-consensus cost is pure SWAR arithmetic, not re-packing.
    """

    columns: np.ndarray  # (G,) grid column of each read
    words: np.ndarray  # (G, Wr)
    nmask: np.ndarray  # (G, Wr)
    valid_last: np.ndarray  # (G,) even-bit validity of the final word
    qmat: np.ndarray  # (G, Wr*32) per-base qualities, zero-padded
    qlow: np.ndarray  # (G, n_max+1) sorted-quality prefix sums
    qhigh: np.ndarray  # (G, n_max+1)
    lengths: np.ndarray  # (G,)
    has_n: bool

    @property
    def read_words(self) -> int:
        return self.words.shape[1]

    @staticmethod
    def build(
        arrays: Sequence[np.ndarray],
        quals: Sequence[np.ndarray],
        indices: List[int],
    ) -> "_ReadGroup":
        """Pack every read in one batched pass (no per-read numpy calls).

        All members share a word count ``Wr``, so each read fills words
        ``0..Wr-2`` completely -- only the final word can be partial,
        which is why a single ``valid_last`` column suffices.
        """
        lengths = np.array([arrays[j].size for j in indices], dtype=np.int64)
        Wr = int((int(lengths.max()) + BASES_PER_WORD - 1) // BASES_PER_WORD)
        span = Wr * BASES_PER_WORD
        G = len(indices)
        mat = np.zeros((G, span), dtype=np.uint8)
        qmat = np.zeros((G, span), dtype=np.int64)
        for row, j in enumerate(indices):
            mat[row, : lengths[row]] = arrays[j]
            qmat[row, : lengths[row]] = quals[j]
        in_len = np.arange(span)[None, :] < lengths[:, None]

        def fold(flags: np.ndarray) -> np.ndarray:
            # OR the per-base 2-bit lanes of each 32-base block into one
            # word; input is (..., span) of small uint64 values.
            shaped = flags.reshape(flags.shape[:-1] + (Wr, BASES_PER_WORD))
            return np.bitwise_or.reduce(shaped << _LANE_SHIFTS, axis=-1)

        words = fold(_CODE_LUT[mat].astype(np.uint64))
        n_flags = mat == ord("N")
        has_n = bool(n_flags.any())
        nmask = fold(n_flags.astype(np.uint64))
        valid = fold(in_len.astype(np.uint64))

        # Order-statistic bound tables: with ``c`` mismatches the WHD is
        # at least the sum of the ``c`` smallest qualities and at most
        # the sum of the ``c`` largest. Padding (rows shorter than the
        # group max) is never gathered -- counts never exceed a read's
        # own length -- so the pad values only need to sort harmlessly.
        width = int(lengths.max())
        asc = np.sort(
            np.where(in_len[:, :width], qmat[:, :width], _BOUND_SENTINEL),
            axis=1,
        )
        desc = np.sort(qmat[:, :width], axis=1)[:, ::-1]  # pads are 0
        zero = np.zeros((G, 1), dtype=np.int64)
        return _ReadGroup(
            columns=np.asarray(indices, dtype=np.int64),
            words=words,
            nmask=nmask,
            valid_last=valid[:, -1],
            qmat=qmat,
            qlow=np.concatenate([zero, np.cumsum(asc, axis=1)], axis=1),
            qhigh=np.concatenate([zero, np.cumsum(desc, axis=1)], axis=1),
            lengths=lengths,
            has_n=has_n,
        )


@dataclass(frozen=True)
class _ConsensusSet:
    """Every consensus of a site pre-shifted and padded to one width.

    Stacking the per-consensus phase tables lets one fancy-indexed
    gather produce the windows of *all* consensuses at once, so the
    whole ``(C, K, G)`` screening grid for a read group comes out of a
    single set of elementwise passes -- Python-call overhead stops
    scaling with ``C``.
    """

    shifted: np.ndarray  # (C, 32, W) uint64 base words
    shifted_n: np.ndarray  # (C, 32, W) uint64 N-flag words
    m: np.ndarray  # (C,) consensus lengths
    has_n: bool

    @staticmethod
    def build(
        arrays: Sequence[np.ndarray], pad_words: int
    ) -> "_ConsensusSet":
        packed = [PackedConsensus.pack(arr, pad_words) for arr in arrays]
        width = max(p.shifted.shape[1] for p in packed)
        shifted = np.zeros((len(packed), BASES_PER_WORD, width),
                           dtype=np.uint64)
        shifted_n = np.zeros_like(shifted)
        for i, p in enumerate(packed):
            shifted[i, :, : p.shifted.shape[1]] = p.shifted
            shifted_n[i, :, : p.shifted_n.shape[1]] = p.shifted_n
        return _ConsensusSet(
            shifted=shifted,
            shifted_n=shifted_n,
            m=np.array([p.m for p in packed], dtype=np.int64),
            has_n=any(p.has_n for p in packed),
        )

    def windows(self, K: int, read_words: int, with_n: bool):
        """Windows of every consensus at offsets ``0..K-1``: ``(C, K, Wr)``."""
        offsets = np.arange(K)
        phase = (offsets & (BASES_PER_WORD - 1))[:, None]
        cols = (offsets >> 5)[:, None] + np.arange(read_words)[None, :]
        win_b = self.shifted[:, phase, cols]
        win_n = self.shifted_n[:, phase, cols] if with_n else None
        return win_b, win_n


def _group_minima(
    cset: _ConsensusSet,
    group: _ReadGroup,
    out_w: np.ndarray,
    out_i: np.ndarray,
) -> int:
    """Earliest minima of every consensus against one read group.

    All reads in the group share a word count, so one window gather and
    one broadcast XOR serve every (consensus, read) pair. Offsets are
    screened by order-statistic count bounds first (``qlow``/``qhigh``
    on :class:`_ReadGroup`); survivors get the exact bit-sliced quality
    sum. A screened-out offset satisfies
    ``WHD(k) >= qlow[cnt(k)] > min_k' qhigh[cnt(k')] >= min WHD``, i.e.
    it exceeds the true minimum *strictly*, so both the minimum value
    and its earliest offset are preserved exactly. Returns the number
    of offsets that needed the exact evaluation.
    """
    read_words = group.read_words
    C = cset.m.size
    m_max = int(cset.m.max())
    uniform_m = int(cset.m.min()) == m_max
    track_n = cset.has_n or group.has_n
    width = group.qlow.shape[1] - 1  # group's longest read length
    evaluated = 0

    # Longest reads first: a chunk's offset range is set by its
    # *shortest* member, so length-sorted chunks keep the (C, K, G, Wr)
    # tensor tight instead of paying the whole group's worst-case K.
    order = np.argsort(-group.lengths, kind="stable")
    K_per = m_max - group.lengths[order] + 1
    pos = 0
    while pos < order.size:
        # Greedy chunk sizing against the word budget: taking t reads
        # costs C * K_per[pos+t-1] * t * Wr words, monotone in t, so
        # searchsorted finds the largest affordable chunk. A chunk also
        # breaks where K would grow past ~1.25x its first member's --
        # short reads in a chunk pay the longest K of the chunk, and
        # capping that stretch keeps the sorted order's benefit.
        tail = K_per[pos:]
        cost = C * tail * np.arange(1, tail.size + 1) * read_words
        take = max(1, int(np.searchsorted(cost, _WORD_BUDGET, "right")))
        stretch = int(np.searchsorted(
            tail, tail[0] + (tail[0] >> 2) + 8, "right"
        ))
        take = max(1, min(take, stretch))
        sel = order[pos : pos + take]
        pos += take
        K = int(m_max - group.lengths[sel].min() + 1)
        win_b, win_n = cset.windows(K, read_words, track_n)
        # (C, K, G, Wr) mismatch masks, built in place.
        x = win_b[:, :, None, :] ^ group.words[None, None, sel, :]
        masks = x >> _ONE
        masks |= x
        masks &= _EVEN
        if track_n:
            # N matches only N: fold the XOR of the N-flag planes in.
            masks |= win_n[:, :, None, :] ^ group.nmask[None, None, sel, :]
        # Words 0..Wr-2 are full for every read in the group (shared
        # word count), so only the final word needs the validity mask.
        masks[..., -1] &= group.valid_last[None, None, sel]
        counts = _popcount_rows(masks)  # (C, K, G)
        uniform = uniform_m and group.lengths[sel].min() == group.lengths[sel].max()
        if uniform:
            in_range = None
            cmin = counts.min(axis=1)  # (C, G)
        else:
            # Each pair only has offsets 0..m_i-n_j; out-of-range cells
            # must not contribute to cmin (their counts are junk) --
            # the ``width`` sentinel maps them to the read's total
            # quality, an always-safe upper bound.
            Ks = cset.m[:, None] - group.lengths[None, sel] + 1  # (C, G)
            in_range = np.arange(K)[None, :, None] < Ks[:, None, :]
            cmin = np.where(in_range, counts, width).min(axis=1)
        # qhigh is nondecreasing in the count, so the pair's tightest
        # upper bound is qhigh at its *minimum* count -- one small
        # (C, G) gather instead of a full (C, K, G) bound grid.
        rows = np.arange(sel.size)
        best_upper = group.qhigh[sel][rows[None, :], cmin]  # (C, G)
        lower = group.qlow[sel][rows[None, None, :], counts]
        cand = lower <= best_upper[:, None, :]
        if in_range is not None:
            cand &= in_range

        # Candidate cells scanned (consensus, read)-major with offsets
        # ascending inside each pair, so reduceat below finds each
        # pair's earliest minimum (the strict-< update rule). Every
        # pair keeps at least one candidate (its argmin-of-count
        # offset), so the segments enumerate all C x G pairs in order.
        c_idx, g_idx, k_idx = np.nonzero(cand.transpose(0, 2, 1))
        surviving = masks[c_idx, k_idx, g_idx]  # (Ncand, Wr)
        # Exact WHD of each surviving offset: unpack the even-lane
        # mismatch bits back to per-base 0/1 and dot with the read's
        # qualities. Screening keeps survivors to a few percent of the
        # grid, so this gather touches far fewer cells than a bit-
        # sliced plane pass over the full group would.
        mism = (
            (surviving[:, :, None] >> _LANE_SHIFTS[None, None, :]) & _ONE
        ).view(np.int64).reshape(g_idx.size, -1)
        whd = np.einsum("ns,ns->n", mism, group.qmat[sel[g_idx]])
        # Encoding key = whd * K + k makes the minimum key the minimum
        # WHD at its earliest offset (same trick as engine/batch.py).
        key = whd * K + k_idx
        pairs = c_idx * sel.size + g_idx
        per_pair = np.bincount(pairs, minlength=C * sel.size)
        starts = np.concatenate(([0], np.cumsum(per_pair[:-1])))
        best = np.minimum.reduceat(key, starts).reshape(C, -1)
        out_w[:, group.columns[sel]] = best // K
        out_i[:, group.columns[sel]] = best % K
        evaluated += int(g_idx.size)
    return evaluated


def _grids_bitpacked(
    site: RealignmentSite,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Fill the ``(C, R)`` grids; returns ``(min_whd, min_idx, exact)``.

    ``exact`` counts the offsets that needed the bit-sliced quality
    gather after count screening (the kernel's analogue of the FFT
    path's ``cells_evaluated``).
    """
    C, R = site.num_consensuses, site.num_reads
    arrays = site.read_arrays()
    by_words: Dict[int, List[int]] = {}
    for j, arr in enumerate(arrays):
        words = (arr.size + BASES_PER_WORD - 1) // BASES_PER_WORD
        by_words.setdefault(words, []).append(j)
    pad_words = max(by_words) + 1
    groups = [
        _ReadGroup.build(arrays, site.quals, idx)
        for idx in by_words.values()
    ]

    cset = _ConsensusSet.build(site.consensus_arrays(), pad_words)
    min_whd = np.empty((C, R), dtype=np.int64)
    min_idx = np.empty((C, R), dtype=np.int64)
    exact_offsets = 0
    for group in groups:
        exact_offsets += _group_minima(cset, group, min_whd, min_idx)
    return min_whd, min_idx, exact_offsets


def min_whd_grid_bitpacked(
    site: RealignmentSite,
) -> Tuple[np.ndarray, np.ndarray]:
    """Algorithm 1 over SWAR words: drop-in for ``min_whd_grid``.

    Cell-for-cell identical to the scalar kernel (property-tested and
    golden-pinned), computed 32 bases per word op.

    The Figure 4 worked example (``TGAA`` / ``CCTTAGA`` and friends,
    m=7, n=4, k=0..3), identically to the scalar kernel:

    >>> from repro.experiments.figure4 import build_site
    >>> mw, mi = min_whd_grid_bitpacked(build_site())
    >>> mw.tolist()
    [[30, 20], [0, 20], [55, 30]]
    >>> mi.tolist()
    [[2, 0], [3, 1], [2, 0]]
    """
    min_whd, min_idx, _ = _grids_bitpacked(site)
    return min_whd, min_idx


def realign_site_bitpacked(
    site: RealignmentSite,
    scoring: str = "similarity",
    telemetry=None,
) -> SiteResult:
    """Run Algorithms 1 + 2 on one site through the bit-packed kernel.

    Emits the same semantic ``kernel.*`` counters as
    :func:`repro.realign.whd.realign_site` (they are defined on the
    algorithm, not the implementation) plus ``bitpack.*`` counters for
    the screening stage's effectiveness.

    End to end on the Figure 4 site, identically to the scalar kernel:

    >>> from repro.experiments.figure4 import build_site
    >>> from repro.realign.whd import realign_site
    >>> site = build_site()
    >>> realign_site_bitpacked(site).same_outputs(realign_site(site))
    True
    """
    min_whd, min_idx, exact_offsets = _grids_bitpacked(site)
    best_cons, scores = score_and_select(min_whd, method=scoring)
    realign, new_pos = reads_realignments(
        min_whd, min_idx, best_cons, site.start
    )
    if telemetry is not None:
        offsets_total = sum(
            len(cons) - len(read) + 1
            for cons in site.consensuses
            for read in site.reads
        )
        telemetry.count("kernel.sites", 1)
        telemetry.count("kernel.grid_cells", int(min_whd.size))
        telemetry.count("kernel.offsets_evaluated", offsets_total)
        telemetry.count("kernel.whd_mass", int(min_whd.sum()))
        telemetry.count("kernel.reads_realigned", int(realign.sum()))
        telemetry.count("kernel.consensus_selected", int(best_cons))
        telemetry.count("bitpack.offsets_screened", offsets_total)
        telemetry.count("bitpack.offsets_exact", exact_offsets)
    return SiteResult(
        best_cons=best_cons,
        scores=scores,
        min_whd=min_whd,
        min_whd_idx=min_idx,
        realign=realign,
        new_pos=new_pos,
    )


__all__ = [
    "BASES_PER_WORD",
    "PackedConsensus",
    "PackedRead",
    "mismatch_counts",
    "min_whd_grid_bitpacked",
    "pack_bases",
    "realign_site_bitpacked",
]
