"""Batched site-at-a-time evaluation of the WHD kernel.

:func:`repro.realign.whd.min_whd_grid` walks a site's
consensus x read grid pair by pair; this module evaluates the whole
``(C, R, K)`` offset tensor at once. The trick is classic
Fischer-Paterson "string matching with mismatches": one-hot encode the
sequences per base symbol and the number of *matching* bases at every
offset of every pair is a cross-correlation, which an FFT computes for
all offsets simultaneously --

    matches[c, r, k] = sum_b (onehot_b(cons_c) * shift_k(onehot_b(read_r)))

so a site costs ``O(B * (C + R) * L log L + C * R * L)`` instead of the
sliding-window ``O(C * R * K * n)``, with all loops inside numpy/pocketfft.

Two passes are built on this:

- a **float64 weighted pass** (``prefilter=False``): one-hot channels
  carry the quality scores, giving every WHD value directly. All values
  are integers bounded by 256 bases x Phred 93 = 23808, and the float64
  correlation error is ~1e-9 of that, so ``np.rint`` recovers the exact
  integer grid -- bit-identical to the scalar kernel (property-tested).
- a **float32 count pass** (``prefilter=True``, the default): unweighted
  channels give mismatch *counts*, from which
  :mod:`repro.engine.prefilter` bounds every WHD. Only the ~1% of cells
  the bounds cannot exclude are evaluated exactly (an integer gather,
  no floats), then a keyed ``np.minimum.reduceat`` reduces each pair's
  surviving cells to its earliest minimum.

Both passes produce grids that make ``score_and_select`` and
``reads_realignments`` decide exactly as the scalar kernel does;
eliminated consensus rows (see
:func:`repro.engine.prefilter.consensus_keep_mask`) keep
:data:`~repro.realign.whd.WHD_SENTINEL`, which can never win selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.prefilter import (
    COUNT_SENTINEL,
    PrefilterStats,
    consensus_keep_mask,
    offset_candidates,
    pair_bounds,
    pairs_cannot_beat_reference,
)
from repro.realign.site import RealignmentSite
from repro.realign.whd import (
    SiteResult,
    WHD_SENTINEL,
    reads_realignments,
    score_and_select,
)

try:  # scipy's pocketfft is ~20% faster here; numpy is the fallback
    from scipy.fft import irfft as _irfft, rfft as _rfft
except ImportError:  # pragma: no cover - exercised where scipy is absent
    _irfft, _rfft = np.fft.irfft, np.fft.rfft

#: Soft cap, in tensor *elements*, on any one intermediate the batched
#: passes materialize; reads are chunked to stay under it. Worst-case
#: site limits (32 consensuses x 2048 bases, 256 reads) stay well under
#: a gigabyte with this cap.
_CHUNK_ELEMENT_BUDGET = 48 << 20


def fast_fft_length(n: int) -> int:
    """Smallest FFT length >= ``n`` of the form ``{1,3,5,9,15} * 2**k``.

    pocketfft handles radix-3/5 efficiently, and these composite sizes
    cut transform cost by up to ~25% versus rounding up to a power of
    two (e.g. 2304 = 9*256 instead of 4096 for a 2048+256 site).

    >>> [fast_fft_length(n) for n in (1, 7, 100, 768, 769, 2304)]
    [1, 8, 120, 768, 960, 2304]
    """
    if n <= 1:
        return 1
    best = 1 << (n - 1).bit_length()
    for mult in (3, 5, 9, 15):
        size = mult
        while size < n:
            size <<= 1
        best = min(best, size)
    return best


@dataclass(frozen=True)
class PackedSite:
    """A site's sequences padded into rectangular uint8 tensors.

    Padding bytes are 0, which matches no base symbol (symbols are ASCII
    codes) and carries quality 0, so padded positions never contribute
    to any count or weighted sum. ``bases`` is the set of symbols
    actually present, so the one-hot channel count adapts to the site
    (4 for pure ACGT, 5 when ``N`` appears).
    """

    cons: np.ndarray  # (C, m_max) uint8, zero-padded consensus bases
    reads: np.ndarray  # (R, n_max) uint8, zero-padded read bases
    quals: np.ndarray  # (R, n_max) uint8, zero-padded qualities
    mlens: np.ndarray  # (C,) int64 consensus lengths
    lens: np.ndarray  # (R,) int64 read lengths
    minq: np.ndarray  # (R,) int64 min quality per read
    maxq: np.ndarray  # (R,) int64 max quality per read
    bases: np.ndarray  # (B,) uint8 symbols present
    K: int  # offset-axis extent: m_max - min(lens) + 1
    Lf: int  # FFT length covering m_max + n_max

    @property
    def C(self) -> int:
        return self.cons.shape[0]

    @property
    def R(self) -> int:
        return self.reads.shape[0]

    @property
    def n_max(self) -> int:
        return self.reads.shape[1]

    @classmethod
    def from_site(
        cls,
        site: RealignmentSite,
        read_indices: Optional[Sequence[int]] = None,
    ) -> "PackedSite":
        """Pack ``site`` (optionally a subset of its reads, for the memo)."""
        cons_arrays = site.consensus_arrays()
        read_arrays = site.read_arrays()
        if read_indices is None:
            read_indices = range(len(read_arrays))
        read_arrays = [read_arrays[j] for j in read_indices]
        qual_arrays = [site.quals[j] for j in read_indices]

        mlens = np.array([a.size for a in cons_arrays], dtype=np.int64)
        lens = np.array([a.size for a in read_arrays], dtype=np.int64)
        m_max = int(mlens.max())
        n_max = int(lens.max())
        cons = np.zeros((len(cons_arrays), m_max), dtype=np.uint8)
        for i, arr in enumerate(cons_arrays):
            cons[i, : arr.size] = arr
        reads = np.zeros((len(read_arrays), n_max), dtype=np.uint8)
        quals = np.zeros((len(read_arrays), n_max), dtype=np.uint8)
        for j, arr in enumerate(read_arrays):
            reads[j, : arr.size] = arr
            quals[j, : arr.size] = qual_arrays[j]

        present = np.zeros(256, dtype=bool)
        present[cons.ravel()] = True
        present[reads.ravel()] = True
        present[0] = False  # padding is not a symbol
        # Per-read quality extremes over the *true* length only: padding
        # (quality 0) must not pollute the minimum, so mask it to the
        # maximum representable score first.
        in_read = np.arange(n_max)[None, :] < lens[:, None]
        minq = np.where(in_read, quals, np.uint8(255)).min(axis=1)
        return cls(
            cons=cons,
            reads=reads,
            quals=quals,
            mlens=mlens,
            lens=lens,
            minq=minq.astype(np.int64),
            maxq=quals.max(axis=1).astype(np.int64),
            bases=np.flatnonzero(present).astype(np.uint8),
            K=m_max - int(lens.min()) + 1,
            Lf=fast_fft_length(m_max + n_max),
        )

    def valid_cells(self) -> int:
        """In-range offset count the scalar kernel would evaluate."""
        return int((np.add.outer(self.mlens, -self.lens) + 1).sum())

    def read_chunks(self, itemsize: int) -> List[Tuple[int, int]]:
        """Read-axis slices keeping ``(C, chunk, Lf)`` under budget."""
        per_read = self.C * max(self.Lf, self.K) * max(itemsize // 4, 1)
        chunk = max(1, _CHUNK_ELEMENT_BUDGET // max(per_read, 1))
        return [(r0, min(r0 + chunk, self.R)) for r0 in range(0, self.R, chunk)]

    def _invalid(self, r0: int, r1: int) -> np.ndarray:
        """Invalid-offset mask ``(C, r1-r0, K)``: read overhangs consensus."""
        ks = np.arange(self.K, dtype=np.int32)
        limit = (self.mlens[:, None, None]
                 - self.lens[None, r0:r1, None]).astype(np.int32)
        return ks[None, None, :] > limit


def _onehot(block: np.ndarray, bases: np.ndarray) -> np.ndarray:
    """One-hot channels ``(rows, B, cols)`` as float32; pad stays zero."""
    return (block[:, None, :] == bases[None, :, None]).astype(np.float32)


def _correlate(cons_fft: np.ndarray, read_channels: np.ndarray,
               packed: PackedSite) -> np.ndarray:
    """Cross-correlate every consensus with every read channel block.

    ``read_channels`` is ``(Rc, B, n_max)`` with the *padded* read axis
    already reversed; with the whole padded row reversed, the
    correlation value for offset ``k`` lands at column
    ``n_max - 1 + k`` for every read regardless of its true length
    (the padding contributes zero). Returns the ``(C, Rc, K)`` slice.
    """
    rf = _rfft(read_channels, n=packed.Lf, axis=2)
    # Contract the base channels per frequency as one batched matmul
    # (BLAS) rather than einsum: (F, C, B) @ (F, B, R) -> (F, C, R).
    prod = np.matmul(
        cons_fft.transpose(2, 0, 1), rf.transpose(2, 1, 0)
    ).transpose(1, 2, 0)
    conv = _irfft(prod, n=packed.Lf, axis=2)
    return conv[:, :, packed.n_max - 1 : packed.n_max - 1 + packed.K]


def _weighted_grids(packed: PackedSite) -> Tuple[np.ndarray, np.ndarray]:
    """Exact ``(min_whd, min_idx)`` via the float64 weighted pass."""
    cons_oh = _onehot(packed.cons, packed.bases).astype(np.float64)
    cons_fft = _rfft(cons_oh, n=packed.Lf, axis=2)
    total_q = packed.quals.sum(axis=1, dtype=np.int64)  # (R,)
    mw = np.empty((packed.C, packed.R), dtype=np.int64)
    mi = np.empty((packed.C, packed.R), dtype=np.int64)
    for r0, r1 in packed.read_chunks(itemsize=8):
        rev_reads = packed.reads[r0:r1, ::-1]
        rev_quals = packed.quals[r0:r1, ::-1]
        weighted = (
            (rev_reads[:, None, :] == packed.bases[None, :, None])
            * rev_quals[:, None, :].astype(np.float64)
        )
        corr = _correlate(cons_fft, weighted, packed)
        whd = np.rint(total_q[None, r0:r1, None] - corr).astype(np.int64)
        whd[packed._invalid(r0, r1)] = WHD_SENTINEL
        idx = whd.argmin(axis=2)  # np.argmin: earliest minimum, like scalar
        mw[:, r0:r1] = np.take_along_axis(whd, idx[:, :, None], axis=2)[:, :, 0]
        mi[:, r0:r1] = idx
    return mw, mi


def _count_candidates(packed: PackedSite):
    """Float32 count pass: candidate cells plus per-pair WHD bounds.

    Returns ``(c_idx, r_idx, k_idx, lb_pair, ub_pair)`` where the index
    arrays list candidate cells in pair-contiguous order (each pair's
    cells are consecutive) and the bounds are ``(C, R)`` int64.
    """
    cons_oh = _onehot(packed.cons, packed.bases)
    cons_fft = _rfft(cons_oh, n=packed.Lf, axis=2)
    lb_pair = np.empty((packed.C, packed.R), dtype=np.int64)
    ub_pair = np.empty((packed.C, packed.R), dtype=np.int64)
    chunks_c, chunks_r, chunks_k = [], [], []
    for r0, r1 in packed.read_chunks(itemsize=4):
        rev = packed.reads[r0:r1, ::-1]
        corr = _correlate(cons_fft, _onehot(rev, packed.bases), packed)
        cnt = packed.lens[None, r0:r1, None].astype(np.float32) - corr
        cnt[packed._invalid(r0, r1)] = np.float32(COUNT_SENTINEL)
        lb, ub = pair_bounds(cnt, packed.minq[r0:r1], packed.maxq[r0:r1])
        lb_pair[:, r0:r1] = lb
        ub_pair[:, r0:r1] = ub
        cand = offset_candidates(cnt, packed.minq[r0:r1], ub)
        c_idx, r_loc, k_idx = np.nonzero(cand)
        chunks_c.append(c_idx)
        chunks_r.append(r_loc + r0)
        chunks_k.append(k_idx)
    # Pairs never straddle a chunk (chunks split the read axis), so the
    # concatenation keeps every pair's cells consecutive -- exactly what
    # the reduceat in _exact_minima needs.
    return (
        np.concatenate(chunks_c),
        np.concatenate(chunks_r),
        np.concatenate(chunks_k),
        lb_pair,
        ub_pair,
    )


def _exact_minima(
    packed: PackedSite,
    c_idx: np.ndarray,
    r_idx: np.ndarray,
    k_idx: np.ndarray,
    out_w: np.ndarray,
    out_i: np.ndarray,
) -> int:
    """Evaluate candidate cells exactly; reduce to per-pair earliest min.

    The per-cell WHD is an integer gather-and-sum (no floats). Each
    pair's cells are reduced with one keyed ``np.minimum.reduceat``:
    encoding ``key = whd * K + k`` makes the minimum key the minimum WHD
    at its *earliest* offset, matching the scalar kernel's strict-``<``
    update rule. Returns the number of cells evaluated.
    """
    if c_idx.size == 0:
        return 0
    K = packed.K
    n_max = packed.n_max
    pair = c_idx * out_w.shape[1] + r_idx
    starts = np.flatnonzero(np.diff(pair, prepend=-1))
    bounds = np.append(starts, pair.size)
    col = np.arange(n_max, dtype=np.int64)
    slab_rows = max(1, _CHUNK_ELEMENT_BUDGET // n_max)
    s = 0
    while s < starts.size:
        e = s + 1
        while e < starts.size and bounds[e + 1] - bounds[s] <= slab_rows:
            e += 1
        lo, hi = int(bounds[s]), int(bounds[e])
        offs = k_idx[lo:hi, None] + col[None, :]
        np.minimum(offs, packed.cons.shape[1] - 1, out=offs)
        win = packed.cons[c_idx[lo:hi, None], offs]
        vals = (
            (win != packed.reads[r_idx[lo:hi]])
            * packed.quals[r_idx[lo:hi]]
        ).sum(axis=1, dtype=np.int64)
        key = vals * K + k_idx[lo:hi]
        best = np.minimum.reduceat(key, starts[s:e] - lo)
        slots = pair[starts[s:e]]
        out_w.flat[slots] = best // K
        out_i.flat[slots] = best % K
        s = e
    return int(c_idx.size)


def _grids(
    packed: PackedSite,
    prefilter: bool,
    scoring: str,
    allow_elimination: bool,
    stats: PrefilterStats,
) -> Tuple[np.ndarray, np.ndarray]:
    """Grid computation core shared by the public entry points."""
    valid = packed.valid_cells()
    stats.cells_valid += valid
    if not prefilter:
        stats.cells_evaluated += valid
        return _weighted_grids(packed)

    c_idx, r_idx, k_idx, lb_pair, ub_pair = _count_candidates(packed)
    mw = np.full((packed.C, packed.R), WHD_SENTINEL, dtype=np.int64)
    mi = np.zeros((packed.C, packed.R), dtype=np.int64)

    if not allow_elimination:
        keep = np.ones(packed.C, dtype=bool)
        evaluated = _exact_minima(packed, c_idx, r_idx, k_idx, mw, mi)
        ref_row = mw[0]
    elif scoring == "absdiff":
        # absdiff elimination bounds compare against the reference row,
        # so evaluate it exactly first, then the surviving alternates.
        ref_sel = c_idx == 0
        evaluated = _exact_minima(
            packed, c_idx[ref_sel], r_idx[ref_sel], k_idx[ref_sel], mw, mi
        )
        ref_row = mw[0].copy()
        keep = consensus_keep_mask(lb_pair, ub_pair, scoring,
                                   ref_exact=ref_row)
        alt_sel = keep[c_idx] & ~ref_sel
        evaluated += _exact_minima(
            packed, c_idx[alt_sel], r_idx[alt_sel], k_idx[alt_sel], mw, mi
        )
    else:
        # Similarity elimination needs only the count bounds: one gather
        # covers the reference and every surviving alternate.
        keep = consensus_keep_mask(lb_pair, ub_pair, scoring)
        sel = keep[c_idx]
        evaluated = _exact_minima(
            packed, c_idx[sel], r_idx[sel], k_idx[sel], mw, mi
        )
        ref_row = mw[0]
    stats.cells_evaluated += evaluated
    stats.rows_eliminated += int(packed.C - int(keep.sum()))
    stats.pairs_pruned += int(
        pairs_cannot_beat_reference(lb_pair, ref_row)[keep].sum()
    )
    return mw, mi


def min_whd_grid_batched(
    site: RealignmentSite,
    prefilter: bool = True,
    scoring: str = "similarity",
    stats: Optional[PrefilterStats] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched Algorithm 1: the whole ``(C, R)`` grid in one evaluation.

    Drop-in for :func:`repro.realign.whd.min_whd_grid`. With
    ``prefilter=False`` the returned grids are cell-for-cell identical
    to the scalar kernel's. With ``prefilter=True`` (default), rows of
    alternates that provably cannot win consensus selection are left at
    :data:`~repro.realign.whd.WHD_SENTINEL`; all other cells are exact,
    so selection and realignment decisions are unchanged. ``scoring``
    only affects which rows elimination may skip, not any computed value.

    The Figure 4 worked example (m=7, n=4, k=0..3), identically to the
    scalar kernel:

    >>> from repro.experiments.figure4 import build_site
    >>> mw, mi = min_whd_grid_batched(build_site(), prefilter=False)
    >>> mw.tolist()
    [[30, 20], [0, 20], [55, 30]]
    """
    st = stats if stats is not None else PrefilterStats()
    st.sites += 1
    return _grids(
        PackedSite.from_site(site), prefilter, scoring,
        allow_elimination=True, stats=st,
    )


def pair_lower_bounds(site: RealignmentSite) -> np.ndarray:
    """The prefilter's ``(C, R)`` WHD lower bounds (for tests/analysis)."""
    packed = PackedSite.from_site(site)
    _, _, _, lb_pair, _ = _count_candidates(packed)
    return lb_pair


def realign_site_batched(
    site: RealignmentSite,
    prefilter: bool = True,
    scoring: str = "similarity",
    telemetry=None,
    memo=None,
    stats: Optional[PrefilterStats] = None,
) -> SiteResult:
    """Run Algorithms 1 + 2 on one site through the batched engine.

    Functionally equivalent to :func:`repro.realign.whd.realign_site` on
    the architecturally visible outputs (picked consensus, realign
    flags, new positions) -- pinned by golden and property tests:

    >>> from repro.experiments.figure4 import build_site
    >>> from repro.realign.whd import realign_site
    >>> site = build_site()
    >>> realign_site_batched(site).same_outputs(realign_site(site))
    True

    ``memo`` is an optional :class:`repro.engine.memo.PairMemo`; hits
    reuse previously computed grid columns for identical
    (consensus set, read, quals) keys, and duplicate reads within the
    site collapse to one evaluation. Memoized columns must be fully
    exact, so consensus-row elimination is disabled whenever a memo is
    active (a column computed under one site's elimination mask would be
    unsound to reuse in another).

    ``telemetry`` gets the serial kernel's semantic ``kernel.*``
    counters plus the engine's work accounting (``kernel.cells_*`` as
    emitted by the accelerator model, and ``engine.*``). With row
    elimination active, ``kernel.whd_mass`` sums only the computed
    (non-sentinel) cells.
    """
    local = PrefilterStats()
    C, R = site.num_consensuses, site.num_reads
    mlens = np.array([len(c) for c in site.consensuses], dtype=np.int64)
    lens = np.array([len(r) for r in site.reads], dtype=np.int64)
    valid_total = int((np.add.outer(mlens, -lens) + 1).sum())
    deduped = 0

    if memo is None:
        mw, mi = _grids(
            PackedSite.from_site(site), prefilter, scoring,
            allow_elimination=True, stats=local,
        )
    else:
        mw = np.empty((C, R), dtype=np.int64)
        mi = np.empty((C, R), dtype=np.int64)
        groups: dict = {}
        for j in range(R):
            key = (site.consensuses,) + site.read_key(j)
            groups.setdefault(key, []).append(j)
        deduped = R - len(groups)
        missing = {}
        for key, js in groups.items():
            column = memo.get(key)
            if column is not None:
                mw[:, js] = column[0][:, None]
                mi[:, js] = column[1][:, None]
            else:
                missing[key] = js
        if missing:
            order = list(missing)
            packed = PackedSite.from_site(
                site, read_indices=[missing[key][0] for key in order]
            )
            sub_w, sub_i = _grids(
                packed, prefilter, scoring,
                allow_elimination=False, stats=local,
            )
            for p, key in enumerate(order):
                column = (sub_w[:, p].copy(), sub_i[:, p].copy())
                memo.put(key, column)
                js = missing[key]
                mw[:, js] = column[0][:, None]
                mi[:, js] = column[1][:, None]
        # Account against the whole site, not just the missed subset:
        # memo hits and in-site duplicates are avoided work too.
        local.cells_valid = valid_total

    local.sites = 1
    best_cons, scores = score_and_select(mw, method=scoring)
    realign, new_pos = reads_realignments(mw, mi, best_cons, site.start)

    if telemetry is not None:
        telemetry.count("kernel.sites", 1)
        telemetry.count("kernel.grid_cells", int(mw.size))
        telemetry.count("kernel.offsets_evaluated", valid_total)
        computed = mw[mw != WHD_SENTINEL]
        telemetry.count("kernel.whd_mass", int(computed.sum()))
        telemetry.count("kernel.reads_realigned", int(realign.sum()))
        telemetry.count("kernel.consensus_selected", int(best_cons))
        telemetry.count("kernel.cells_evaluated", local.cells_evaluated)
        telemetry.count("kernel.cells_pruned", local.cells_pruned)
        telemetry.count("engine.rows_eliminated", local.rows_eliminated)
        telemetry.count("engine.pairs_pruned", local.pairs_pruned)
        if deduped:
            telemetry.count("engine.reads_deduped", deduped)

    if stats is not None:
        stats.merge(local)
    return SiteResult(
        best_cons=best_cons,
        scores=scores,
        min_whd=mw,
        min_whd_idx=mi,
        realign=realign,
        new_pos=new_pos,
    )
