"""Native-speed kernel tier: the SWAR hot loop, compiled.

:mod:`repro.engine.bitpack` reproduces the GateKeeper-style 2-bit
XOR+popcount filter (see PAPERS.md), but it executes as a chain of
numpy dispatches: every screening pass materializes ``(C, K, G, Wr)``
tensors and pays interpreter overhead per elementwise op, so per-site
time is dominated by Python/numpy bookkeeping rather than the word
arithmetic the paper's hardware spends its cycles on. This module
closes that gap with a *compiled* implementation of the same pipeline
-- registered as kernel ``"native"`` in
:data:`repro.engine.autotune.KERNELS` -- so the hot loop runs as
machine code over the packed planes:

1. **2-bit pack** (host side, reusing :mod:`repro.engine.bitpack`'s
   layout): bases 32-per-``uint64``, an N-flag plane, per-word validity
   masks, bit-identical to the interpreted kernel's packing.
2. **XOR+fold SWAR mismatch masks** with the N plane folded in and
   padding lanes masked off -- one ``popcount`` per word gives each
   offset's mismatch *count*.
3. **Order-statistic screening**: with ``c`` mismatches the WHD is at
   least ``qlow[c]`` (sum of the ``c`` smallest qualities); an offset
   whose lower bound cannot *strictly* beat the running minimum is
   skipped, which preserves both the minimum and its earliest offset
   exactly (the scalar kernel's strict-``<`` update rule).
4. **Exact unpack-and-dot** for the bound-straddling offsets: iterate
   the set mismatch bits and sum the read's qualities at those lanes.

Two backends provide the compiled entry points, tried in order:

- **numba** -- ``@njit(cache=True, parallel=False)`` jit of the grid
  loops (``parallel=False`` on purpose: the engines already
  parallelize across sites with a process pool, and an inner thread
  pool would oversubscribe the workers);
- **cc** -- a small C translation of the same loops, compiled once
  with the system C compiler into a cached shared library and called
  through ``ctypes`` (hosts without numba -- this repo's CI containers
  included -- still get native speed).

Neither backend is required: when numba is missing *and* no C compiler
works, every entry point degrades to the interpreted bitpack kernel,
counting ``kernel.native.unavailable`` in telemetry and logging one
warning -- never an error (the no-numba CI job pins this). The
``REPRO_NATIVE`` environment variable forces a backend (``numba`` /
``cc``), disables the tier (``off``), or leaves the default probe
order (``auto``).

JIT warmup: the first call into a backend pays its one-time
compilation (numba jit) or shared-library build (cc). So that this
cost cannot poison a calibration fit or a served request's latency,
:func:`warmup_native` compiles and exercises both grid kernels on a
tiny site; the pool initializer in :mod:`repro.engine.parallel`, the
serving plane, and :func:`repro.engine.autotune.calibrate` all invoke
it before timing or traffic starts.

The Figure 4 worked example (``TGAA`` / ``CCTTAGA`` and friends, m=7,
n=4, k=0..3) lands identically to the scalar kernel -- through the
compiled backend when one is available, through the bitpack fallback
otherwise, which is the point:

>>> from repro.experiments.figure4 import build_site
>>> mw, mi = min_whd_grid_native(build_site())
>>> mw.tolist()
[[30, 20], [0, 20], [55, 30]]
>>> mi.tolist()
[[2, 0], [3, 1], [2, 0]]
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.bitpack import (
    BASES_PER_WORD,
    _CODE_LUT,
    _ConsensusSet,
    _LANE_SHIFTS,
    realign_site_bitpacked,
)
from repro.realign.site import RealignmentSite
from repro.realign.whd import (
    SiteResult,
    WHD_SENTINEL,
    reads_realignments,
    score_and_select,
)

logger = logging.getLogger(__name__)

_ENV_NATIVE = "REPRO_NATIVE"

#: Below this ``C * R * K * n`` comparison volume the compiled scalar
#: grid kernel runs instead of the SWAR pipeline: tiny sites spend more
#: in the host-side packing than the word ops save. Both paths are
#: exact, so the threshold affects time only, never output.
_SCALAR_VOLUME_CUTOFF = 4096

#: ``qlow`` rows are padded to the longest read; pad cells are never
#: indexed (a pair's mismatch count cannot exceed its own read length)
#: but are filled with this so an indexing bug screens loudly.
_QLOW_PAD = np.int64(1) << 40


# ---------------------------------------------------------------------
# the C translation of the grid loops (the "cc" backend)
# ---------------------------------------------------------------------

_C_SOURCE = r"""
#include <stdint.h>

static const uint64_t EVEN = 0x5555555555555555ULL;
static const int64_t WHD_SENTINEL = 2147483647;

/* SWAR grid: earliest minimum WHD per (consensus, read) pair over the
 * packed planes.  Mirrors repro.engine.bitpack stage for stage; the
 * screening skip (qlow[cnt] >= best) can only discard offsets that
 * lose to the running minimum *strictly*, so the earliest-minimum
 * update rule is preserved exactly. */
int64_t repro_native_swar_grid(
    const uint64_t *shifted,   /* C x 32 x W consensus phase tables   */
    const uint64_t *shifted_n, /* C x 32 x W consensus N-flag tables  */
    const int64_t *mlens,      /* C consensus lengths                 */
    int64_t num_cons, int64_t width,
    const uint64_t *rwords,    /* R x Wr packed read bases            */
    const uint64_t *rnmask,    /* R x Wr read N flags                 */
    const uint64_t *rvalid,    /* R x Wr even-bit validity            */
    const int64_t *rquals,     /* R x (Wr*32) qualities, zero padded  */
    const int64_t *qlow,       /* R x qstride sorted-qual prefix sums */
    const int64_t *nlens,      /* R read lengths                      */
    int64_t num_reads, int64_t wr, int64_t qstride,
    int64_t track_n,
    int64_t *out_whd,          /* C x R */
    int64_t *out_idx)          /* C x R */
{
    int64_t exact = 0;
    for (int64_t i = 0; i < num_cons; i++) {
        const uint64_t *cons = shifted + i * 32 * width;
        const uint64_t *consn = shifted_n + i * 32 * width;
        for (int64_t j = 0; j < num_reads; j++) {
            const uint64_t *rw = rwords + j * wr;
            const uint64_t *rn = rnmask + j * wr;
            const uint64_t *rv = rvalid + j * wr;
            const int64_t *rq = rquals + j * wr * 32;
            const int64_t *ql = qlow + j * qstride;
            int64_t K = mlens[i] - nlens[j] + 1;
            int64_t best = WHD_SENTINEL;
            int64_t best_idx = 0;
            for (int64_t k = 0; k < K; k++) {
                const uint64_t *win = cons + (k & 31) * width + (k >> 5);
                const uint64_t *winn = consn + (k & 31) * width + (k >> 5);
                /* pass 1: mismatch count, one popcount per word */
                int64_t cnt = 0;
                for (int64_t w = 0; w < wr; w++) {
                    uint64_t x = win[w] ^ rw[w];
                    uint64_t m = (x | (x >> 1)) & EVEN;
                    if (track_n)
                        m |= winn[w] ^ rn[w];
                    m &= rv[w];
                    cnt += __builtin_popcountll(m);
                }
                /* screen: WHD >= qlow[cnt]; a strict < update cannot
                 * fire when the bound already ties or beats it */
                if (ql[cnt] >= best)
                    continue;
                exact++;
                /* pass 2: exact weighted sum over the set lanes */
                int64_t whd = 0;
                for (int64_t w = 0; w < wr; w++) {
                    uint64_t x = win[w] ^ rw[w];
                    uint64_t m = (x | (x >> 1)) & EVEN;
                    if (track_n)
                        m |= winn[w] ^ rn[w];
                    m &= rv[w];
                    while (m) {
                        int tz = __builtin_ctzll(m);
                        whd += rq[w * 32 + (tz >> 1)];
                        m &= m - 1;
                    }
                }
                if (whd < best) {
                    best = whd;
                    best_idx = k;
                }
            }
            out_whd[i * num_reads + j] = best;
            out_idx[i * num_reads + j] = best_idx;
        }
    }
    return exact;
}

/* Scalar-fallback grid: the paper's Algorithm 1 loops over raw ASCII
 * bytes, for sites too small to amortize the packing. */
void repro_native_scalar_grid(
    const uint8_t *cons,   /* C x mstride, zero padded */
    const int64_t *mlens,
    int64_t num_cons, int64_t mstride,
    const uint8_t *reads,  /* R x nstride, zero padded */
    const int64_t *nlens,
    int64_t num_reads, int64_t nstride,
    const int64_t *rquals, /* R x nstride */
    int64_t *out_whd,
    int64_t *out_idx)
{
    for (int64_t i = 0; i < num_cons; i++) {
        const uint8_t *cr = cons + i * mstride;
        for (int64_t j = 0; j < num_reads; j++) {
            const uint8_t *rd = reads + j * nstride;
            const int64_t *rq = rquals + j * nstride;
            int64_t n = nlens[j];
            int64_t K = mlens[i] - n + 1;
            int64_t best = WHD_SENTINEL;
            int64_t best_idx = 0;
            for (int64_t k = 0; k < K; k++) {
                int64_t whd = 0;
                for (int64_t t = 0; t < n; t++) {
                    if (cr[k + t] != rd[t])
                        whd += rq[t];
                }
                if (whd < best) {
                    best = whd;
                    best_idx = k;
                }
            }
            out_whd[i * num_reads + j] = best;
            out_idx[i * num_reads + j] = best_idx;
        }
    }
}
"""

_CC_FLAGS = ["-O3", "-march=native", "-funroll-loops", "-std=c99",
             "-shared", "-fPIC", "-fno-math-errno"]


def _native_cache_dir() -> Path:
    cache = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache) if cache else Path.home() / ".cache"
    return base / "repro" / "native"


class _CcBackend:
    """The grid kernels compiled from C, called through ctypes."""

    name = "cc"

    def __init__(self, lib: ctypes.CDLL):
        self._swar = lib.repro_native_swar_grid
        self._swar.restype = ctypes.c_int64
        self._scalar = lib.repro_native_scalar_grid
        self._scalar.restype = None

    @staticmethod
    def _ptr(arr: np.ndarray):
        return arr.ctypes.data_as(ctypes.c_void_p)

    def swar_grid(self, shifted, shifted_n, mlens, width, rwords, rnmask,
                  rvalid, rquals, qlow, nlens, wr, qstride, track_n,
                  out_whd, out_idx) -> int:
        return int(self._swar(
            self._ptr(shifted), self._ptr(shifted_n), self._ptr(mlens),
            ctypes.c_int64(mlens.size), ctypes.c_int64(width),
            self._ptr(rwords), self._ptr(rnmask), self._ptr(rvalid),
            self._ptr(rquals), self._ptr(qlow), self._ptr(nlens),
            ctypes.c_int64(nlens.size), ctypes.c_int64(wr),
            ctypes.c_int64(qstride), ctypes.c_int64(int(track_n)),
            self._ptr(out_whd), self._ptr(out_idx),
        ))

    def scalar_grid(self, cons, mlens, mstride, reads, nlens, nstride,
                    rquals, out_whd, out_idx) -> None:
        self._scalar(
            self._ptr(cons), self._ptr(mlens),
            ctypes.c_int64(mlens.size), ctypes.c_int64(mstride),
            self._ptr(reads), self._ptr(nlens),
            ctypes.c_int64(nlens.size), ctypes.c_int64(nstride),
            self._ptr(rquals), self._ptr(out_whd), self._ptr(out_idx),
        )


def _find_cc() -> Optional[str]:
    from shutil import which

    for cc in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cc and which(cc):
            return cc
    return None


def _load_cc_backend() -> Optional[_CcBackend]:
    """Compile (once, cached by source hash) and load the C kernels."""
    cc = _find_cc()
    if cc is None:
        return None
    tag = hashlib.sha256(
        (_C_SOURCE + " ".join(_CC_FLAGS) + cc).encode()
    ).hexdigest()[:16]
    cache_dir = _native_cache_dir()
    lib_path = cache_dir / f"whd_{tag}.so"
    if not lib_path.exists():
        cache_dir.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache_dir) as tmp:
            src = Path(tmp) / "whd.c"
            src.write_text(_C_SOURCE)
            out = Path(tmp) / "whd.so"
            proc = subprocess.run(
                [cc, *_CC_FLAGS, str(src), "-o", str(out)],
                capture_output=True, text=True, timeout=120,
            )
            if proc.returncode != 0:
                logger.debug("native cc build failed: %s", proc.stderr)
                return None
            # Atomic publish: concurrent workers may race the build.
            os.replace(out, lib_path)
    return _CcBackend(ctypes.CDLL(str(lib_path)))


# ---------------------------------------------------------------------
# the numba translation of the same loops
# ---------------------------------------------------------------------

class _NumbaBackend:
    """The grid kernels under ``@njit``; compiled lazily, cached on disk."""

    name = "numba"

    def __init__(self, swar, scalar):
        self._swar = swar
        self._scalar = scalar

    def swar_grid(self, shifted, shifted_n, mlens, width, rwords, rnmask,
                  rvalid, rquals, qlow, nlens, wr, qstride, track_n,
                  out_whd, out_idx) -> int:
        return int(self._swar(
            shifted.reshape(-1), shifted_n.reshape(-1), mlens, width,
            rwords.reshape(-1), rnmask.reshape(-1), rvalid.reshape(-1),
            rquals.reshape(-1), qlow.reshape(-1), wr, qstride,
            nlens, track_n, out_whd, out_idx,
        ))

    def scalar_grid(self, cons, mlens, mstride, reads, nlens, nstride,
                    rquals, out_whd, out_idx) -> None:
        self._scalar(cons, mlens, reads, nlens, rquals, out_whd, out_idx)


def _load_numba_backend() -> Optional[_NumbaBackend]:
    try:
        from numba import njit
    except ImportError:
        return None

    # parallel=False on purpose: sites already fan out across a process
    # pool (repro.engine.parallel); an inner thread team would
    # oversubscribe every worker. cache=True persists the compiled
    # machine code so only the first process ever pays the jit.
    jit = njit(cache=True, parallel=False, nogil=True)

    @jit
    def _popcount64(x):
        x = x - ((x >> np.uint64(1)) & np.uint64(0x5555555555555555))
        x = ((x & np.uint64(0x3333333333333333))
             + ((x >> np.uint64(2)) & np.uint64(0x3333333333333333)))
        x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
        return (x * np.uint64(0x0101010101010101)) >> np.uint64(56)

    @jit
    def swar(shifted, shifted_n, mlens, width, rwords, rnmask, rvalid,
             rquals, qlow, wr, qstride, nlens, track_n, out_whd, out_idx):
        EVEN = np.uint64(0x5555555555555555)
        one = np.uint64(1)
        num_cons = mlens.size
        num_reads = nlens.size
        exact = 0
        for i in range(num_cons):
            cbase = i * 32 * width
            for j in range(num_reads):
                rbase = j * wr
                qbase = j * wr * 32
                K = mlens[i] - nlens[j] + 1
                best = np.int64(2147483647)
                best_idx = np.int64(0)
                for k in range(K):
                    wbase = cbase + (k & 31) * width + (k >> 5)
                    cnt = np.int64(0)
                    for w in range(wr):
                        x = shifted[wbase + w] ^ rwords[rbase + w]
                        m = (x | (x >> one)) & EVEN
                        if track_n:
                            m |= shifted_n[wbase + w] ^ rnmask[rbase + w]
                        m &= rvalid[rbase + w]
                        cnt += np.int64(_popcount64(m))
                    if qlow[j * qstride + cnt] >= best:
                        continue
                    exact += 1
                    whd = np.int64(0)
                    for w in range(wr):
                        x = shifted[wbase + w] ^ rwords[rbase + w]
                        m = (x | (x >> one)) & EVEN
                        if track_n:
                            m |= shifted_n[wbase + w] ^ rnmask[rbase + w]
                        m &= rvalid[rbase + w]
                        while m:
                            lsb = m & (np.uint64(0) - m)
                            lane = np.int64(
                                _popcount64(lsb - one)
                            ) >> 1
                            whd += rquals[qbase + w * 32 + lane]
                            m ^= lsb
                    if whd < best:
                        best = whd
                        best_idx = np.int64(k)
                out_whd[i, j] = best
                out_idx[i, j] = best_idx
        return exact

    @jit
    def scalar(cons, mlens, reads, nlens, rquals, out_whd, out_idx):
        num_cons = mlens.size
        num_reads = nlens.size
        for i in range(num_cons):
            for j in range(num_reads):
                n = nlens[j]
                K = mlens[i] - n + 1
                best = np.int64(2147483647)
                best_idx = np.int64(0)
                for k in range(K):
                    whd = np.int64(0)
                    for t in range(n):
                        if cons[i, k + t] != reads[j, t]:
                            whd += rquals[j, t]
                    if whd < best:
                        best = whd
                        best_idx = np.int64(k)
                out_whd[i, j] = best
                out_idx[i, j] = best_idx

    return _NumbaBackend(swar, scalar)


# ---------------------------------------------------------------------
# backend resolution, warmup, availability
# ---------------------------------------------------------------------

#: ``False`` = not probed yet; ``None`` = probed, nothing usable.
_backend = False
_warm = False
_fallback_warned = False


def _probe_backend():
    """Resolve the compiled backend per ``REPRO_NATIVE``; never raises."""
    mode = os.environ.get(_ENV_NATIVE, "auto").strip().lower() or "auto"
    if mode in ("off", "none", "0", "disabled"):
        return None
    loaders = {"numba": (_load_numba_backend,),
               "cc": (_load_cc_backend,)}.get(
        mode, (_load_numba_backend, _load_cc_backend)
    )
    for loader in loaders:
        try:
            backend = loader()
        except Exception as error:  # noqa: BLE001 - degrade, never raise
            logger.debug("native backend probe failed: %r", error)
            backend = None
        if backend is not None:
            return backend
    return None


def get_backend():
    """The resolved compiled backend, or ``None``. Probes at most once
    per process (call :func:`reset_backend` after changing
    ``REPRO_NATIVE`` mid-process -- tests do)."""
    global _backend
    if _backend is False:
        _backend = _probe_backend()
    return _backend


def reset_backend() -> None:
    """Forget the probed backend and warmup state (test hook)."""
    global _backend, _warm, _fallback_warned
    _backend = False
    _warm = False
    _fallback_warned = False


def native_available() -> bool:
    """Whether a compiled backend is usable in this process."""
    return get_backend() is not None


def native_backend_name() -> Optional[str]:
    """``"numba"``, ``"cc"``, or ``None``."""
    backend = get_backend()
    return None if backend is None else backend.name


def warmup_native() -> bool:
    """Compile and exercise both grid kernels once; returns availability.

    Idempotent and exception-safe. The first numba call jits (seconds,
    cold cache) and the first cc call may compile the shared library;
    running both here -- from the pool initializer, the serving plane's
    startup, or ``calibrate()`` -- keeps that one-time cost out of any
    timed region or served request.
    """
    global _backend, _warm
    if _warm:
        return native_available()
    _warm = True
    backend = get_backend()
    if backend is None:
        return False
    try:
        site = RealignmentSite(
            chrom="warmup", start=0,
            consensuses=("CCTTAGA", "CCTAGAA"),
            reads=("TGAA", "NAGA"),
            quals=(np.array([10, 20, 45, 10], dtype=np.uint8),
                   np.array([7, 7, 7, 7], dtype=np.uint8)),
        )
        _grids_native(site, backend, force_swar=True)
        _grids_native(site, backend, force_swar=False)
    except Exception as error:  # noqa: BLE001 - degrade, never raise
        logger.warning("native kernel warmup failed (%r); "
                       "falling back to bitpack", error)
        _backend = None
        return False
    return True


# ---------------------------------------------------------------------
# host-side packing + grid entry points
# ---------------------------------------------------------------------

def _pack_reads(
    arrays: Sequence[np.ndarray], quals: Sequence[np.ndarray]
) -> Tuple[np.ndarray, ...]:
    """All reads padded to one word count, planes ready for the kernel.

    Unlike :class:`repro.engine.bitpack._ReadGroup` (which groups reads
    by word count to keep numpy tensors tight), the compiled kernel
    pays per *valid* word only via the validity mask, so a single
    padded layout is simpler and just as fast.
    """
    lengths = np.array([a.size for a in arrays], dtype=np.int64)
    n_max = int(lengths.max())
    Wr = (n_max + BASES_PER_WORD - 1) // BASES_PER_WORD
    span = Wr * BASES_PER_WORD
    R = len(arrays)
    mat = np.zeros((R, span), dtype=np.uint8)
    qmat = np.zeros((R, span), dtype=np.int64)
    for row, (arr, q) in enumerate(zip(arrays, quals)):
        mat[row, : arr.size] = arr
        qmat[row, : arr.size] = np.asarray(q, dtype=np.int64)
    in_len = np.arange(span)[None, :] < lengths[:, None]

    def fold(flags: np.ndarray) -> np.ndarray:
        shaped = flags.reshape(R, Wr, BASES_PER_WORD)
        return np.bitwise_or.reduce(shaped << _LANE_SHIFTS, axis=-1)

    words = fold(_CODE_LUT[mat].astype(np.uint64))
    n_flags = mat == ord("N")
    nmask = fold(n_flags.astype(np.uint64))
    valid = fold(in_len.astype(np.uint64))
    # Sorted-quality prefix sums: qlow[c] bounds the WHD of any offset
    # with c mismatches from below. Rows are ragged in n; pad cells are
    # unreachable (counts never exceed the read's own length).
    qlow = np.full((R, n_max + 1), _QLOW_PAD, dtype=np.int64)
    for row, arr in enumerate(arrays):
        ordered = np.sort(qmat[row, : arr.size])
        qlow[row, : arr.size + 1] = np.concatenate(
            ([0], np.cumsum(ordered))
        )
    return (words, nmask, valid, qmat, qlow, lengths,
            bool(n_flags.any()), Wr)


def _grids_native(
    site: RealignmentSite, backend, force_swar: Optional[bool] = None
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Fill the ``(C, R)`` grids through the compiled backend."""
    C, R = site.num_consensuses, site.num_reads
    cons_arrays = site.consensus_arrays()
    read_arrays = site.read_arrays()
    mlens = np.array([a.size for a in cons_arrays], dtype=np.int64)
    nlens = np.array([a.size for a in read_arrays], dtype=np.int64)
    out_whd = np.empty((C, R), dtype=np.int64)
    out_idx = np.empty((C, R), dtype=np.int64)
    m_max = int(mlens.max())
    n_max = int(nlens.max())
    volume = C * R * (m_max - int(nlens.min()) + 1) * n_max
    use_swar = (volume > _SCALAR_VOLUME_CUTOFF if force_swar is None
                else force_swar)
    if not use_swar:
        cmat = np.zeros((C, m_max), dtype=np.uint8)
        for row, arr in enumerate(cons_arrays):
            cmat[row, : arr.size] = arr
        rmat = np.zeros((R, n_max), dtype=np.uint8)
        qmat = np.zeros((R, n_max), dtype=np.int64)
        for row, (arr, q) in enumerate(zip(read_arrays, site.quals)):
            rmat[row, : arr.size] = arr
            qmat[row, : arr.size] = np.asarray(q, dtype=np.int64)
        backend.scalar_grid(cmat, mlens, m_max, rmat, nlens, n_max,
                            qmat, out_whd, out_idx)
        # The scalar loops evaluate every in-range offset exactly.
        return out_whd, out_idx, int((np.add.outer(mlens, -nlens) + 1)
                                     .clip(min=0).sum())
    (words, nmask, valid, qmat, qlow, lengths, reads_have_n,
     Wr) = _pack_reads(read_arrays, site.quals)
    cset = _ConsensusSet.build(cons_arrays, pad_words=Wr + 1)
    track_n = cset.has_n or reads_have_n
    shifted = np.ascontiguousarray(cset.shifted)
    shifted_n = np.ascontiguousarray(cset.shifted_n)
    exact = backend.swar_grid(
        shifted, shifted_n, mlens, shifted.shape[2],
        np.ascontiguousarray(words), np.ascontiguousarray(nmask),
        np.ascontiguousarray(valid), np.ascontiguousarray(qmat),
        np.ascontiguousarray(qlow), nlens, Wr, qlow.shape[1],
        track_n, out_whd, out_idx,
    )
    return out_whd, out_idx, int(exact)


def min_whd_grid_native(
    site: RealignmentSite,
) -> Tuple[np.ndarray, np.ndarray]:
    """Algorithm 1 grids through the compiled tier; drop-in for
    ``min_whd_grid``. Degrades to the interpreted bitpack kernel when
    no backend is usable -- identical output either way.

    >>> from repro.experiments.figure4 import build_site
    >>> from repro.realign.whd import min_whd_grid
    >>> ref = min_whd_grid(build_site())
    >>> got = min_whd_grid_native(build_site())
    >>> bool((got[0] == ref[0]).all() and (got[1] == ref[1]).all())
    True
    """
    backend = get_backend()
    if backend is None:
        from repro.engine.bitpack import min_whd_grid_bitpacked

        return min_whd_grid_bitpacked(site)
    min_whd, min_idx, _ = _grids_native(site, backend)
    return min_whd, min_idx


def realign_site_native(
    site: RealignmentSite,
    scoring: str = "similarity",
    telemetry=None,
) -> SiteResult:
    """Run Algorithms 1 + 2 on one site through the compiled tier.

    Emits the same semantic ``kernel.*`` counters as every other kernel
    plus ``native.offsets_exact`` (offsets that survived screening into
    the exact evaluation). With no usable backend the call degrades to
    :func:`repro.engine.bitpack.realign_site_bitpacked`, counting
    ``kernel.native.unavailable`` -- callers never see an error.

    End to end on the Figure 4 site, identically to the scalar kernel:

    >>> from repro.experiments.figure4 import build_site
    >>> from repro.realign.whd import realign_site
    >>> site = build_site()
    >>> realign_site_native(site).same_outputs(realign_site(site))
    True
    """
    global _fallback_warned
    backend = get_backend()
    if backend is None:
        if telemetry is not None:
            telemetry.count("kernel.native.unavailable", 1)
        if not _fallback_warned:
            _fallback_warned = True
            logger.warning(
                "native kernel tier unavailable (no numba, no C "
                "compiler, or REPRO_NATIVE=off); serving sites through "
                "the interpreted bitpack kernel instead"
            )
        return realign_site_bitpacked(site, scoring=scoring,
                                      telemetry=telemetry)
    min_whd, min_idx, exact_offsets = _grids_native(site, backend)
    best_cons, scores = score_and_select(min_whd, method=scoring)
    realign, new_pos = reads_realignments(
        min_whd, min_idx, best_cons, site.start
    )
    if telemetry is not None:
        offsets_total = sum(
            len(cons) - len(read) + 1
            for cons in site.consensuses
            for read in site.reads
        )
        telemetry.count("kernel.sites", 1)
        telemetry.count("kernel.grid_cells", int(min_whd.size))
        telemetry.count("kernel.offsets_evaluated", offsets_total)
        telemetry.count("kernel.whd_mass", int(min_whd.sum()))
        telemetry.count("kernel.reads_realigned", int(realign.sum()))
        telemetry.count("kernel.consensus_selected", int(best_cons))
        telemetry.count("native.offsets_screened", offsets_total)
        telemetry.count("native.offsets_exact", exact_offsets)
    return SiteResult(
        best_cons=best_cons,
        scores=scores,
        min_whd=min_whd,
        min_whd_idx=min_idx,
        realign=realign,
        new_pos=new_pos,
    )


__all__ = [
    "get_backend",
    "min_whd_grid_native",
    "native_available",
    "native_backend_name",
    "realign_site_native",
    "reset_backend",
    "warmup_native",
]
