"""The streaming data plane: overlapped dispatch, incremental merge.

:class:`repro.engine.parallel.Engine` is a barrier engine: it submits
every chunk, blocks on ``list(imap_unordered(...))``, and only then
merges -- so peak memory scales with the *whole* site list's results
and the fastest workers idle through the tail. The paper's system keeps
its 32 units saturated by overlapping host DMA with on-chip compute;
:class:`StreamingEngine` is the software mirror of that dataflow:

- **bounded in-flight window.** At most ``queue_depth x workers``
  chunks are in flight or parked in the reorder buffer; the next chunk
  is submitted only when a slot truly frees (backpressure), so peak
  memory is the window, not the chromosome.
- **zero-copy dispatch.** Each submitted chunk's sequences travel
  through a shared-memory arena (:mod:`repro.engine.shmem`); the task
  pipe carries a descriptor of a few hundred bytes. ``use_shmem=False``
  (or a platform without ``multiprocessing.shared_memory``) falls back
  to carrying the packed bytes inline -- same semantics, one pickle
  copy more.
- **incremental in-order merge.** A :class:`ReorderBuffer` re-sequences
  completed chunks into submission order and ``stream_sites`` yields
  each site's result *as soon as its chunk's turn comes* -- the
  realigned SAM downstream is byte-identical to the serial kernel (the
  chunk boundaries and kernel are exactly the barrier engine's), but
  the first results emerge while later chunks are still computing, and
  nothing holds the full result list unless the caller builds one.

Telemetry (all optional, zero overhead when off): ``CAT_STREAM`` spans
-- one per chunk, overlapping across workers -- plus
``stream.chunks`` / ``stream.arena_bytes`` / ``stream.max_in_flight`` /
``stream.reorder_peak`` / ``stream.backpressure_us`` counters
(see docs/TELEMETRY.md).
"""

from __future__ import annotations

import queue as queue_module
import time
from typing import Dict, Iterator, List, Optional, Sequence

from repro.engine.parallel import (
    Engine,
    EngineConfig,
    ShardStats,
    _realign_chunk,
)
from repro.engine.shmem import (
    HAVE_SHARED_MEMORY,
    drain_lifecycle_counters,
    ensure_resource_tracker,
    pack_chunk,
    unpack_chunk,
)
from repro.realign.site import RealignmentSite
from repro.realign.whd import SiteResult
from repro.resilience.policy import ResilienceError


def _run_stream_chunk(descriptor):
    """Worker entry point: decode one arena chunk and realign it."""
    from repro.engine import parallel

    sites = unpack_chunk(descriptor)
    return _realign_chunk(descriptor.chunk_id, sites,
                          parallel._WORKER_CONFIG)


class ReorderBuffer:
    """Re-sequence out-of-order completions into submission order.

    ``push(index, value)`` files one completion and returns every value
    that became emittable (the contiguous run starting at the next
    expected index) -- the incremental analogue of the barrier engine's
    end-of-run merge. ``peak_pending`` records the deepest the buffer
    ever got: with random completion order it is bounded by the
    in-flight window, which is what bounds the stream's peak memory.

    >>> buffer = ReorderBuffer()
    >>> buffer.push(2, "c"), buffer.push(1, "b")
    ([], [])
    >>> buffer.push(0, "a")
    ['a', 'b', 'c']
    >>> buffer.pending, buffer.peak_pending
    (0, 2)
    """

    def __init__(self, start: int = 0):
        self._next = start
        self._held: Dict[int, object] = {}
        self.peak_pending = 0

    @property
    def pending(self) -> int:
        return len(self._held)

    @property
    def next_index(self) -> int:
        return self._next

    def push(self, index: int, value) -> List:
        if index < self._next or index in self._held:
            raise ValueError(f"chunk {index} already emitted or buffered")
        self._held[index] = value
        self.peak_pending = max(self.peak_pending, len(self._held))
        ready: List = []
        while self._next in self._held:
            ready.append(self._held.pop(self._next))
            self._next += 1
        return ready


class StreamingEngine(Engine):
    """Engine with streaming dispatch and incremental in-order results.

    Drop-in for :class:`~repro.engine.parallel.Engine` everywhere an
    engine is accepted (``IndelRealigner``, ``AcceleratedRealigner``,
    the CLI): :meth:`run_sites` returns the same list, byte-identical
    at any worker count, queue depth, or shmem setting. The new
    capability is :meth:`stream_sites`, a generator that yields results
    in input order as chunks complete.

    ``queue_depth`` is the number of in-flight chunks *per worker*; 2
    (the default) keeps every worker one chunk ahead -- enough to hide
    dispatch latency, small enough to bound memory and let
    work-stealing balance the tail.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        queue_depth: int = 2,
        use_shmem: bool = True,
        recovery=None,
    ):
        super().__init__(config, recovery=recovery)
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.queue_depth = queue_depth
        self.use_shmem = bool(use_shmem) and HAVE_SHARED_MEMORY
        #: Stream-plane observations from the latest run.
        self.stream_stats: Dict[str, int] = {}

    # -- public API -----------------------------------------------------
    def run_sites(
        self,
        sites: Sequence[RealignmentSite],
        telemetry=None,
    ) -> List[SiteResult]:
        """Barrier-compatible entry point over the streaming plane."""
        return list(self.stream_sites(sites, telemetry=telemetry))

    def stream_sites(
        self,
        sites: Sequence[RealignmentSite],
        telemetry=None,
    ) -> Iterator[SiteResult]:
        """Yield one :class:`SiteResult` per site, in input order.

        Results for site ``i`` are yielded as soon as every chunk up to
        ``i``'s has completed -- consumers downstream (the streaming
        refinement pipeline, an eventual service endpoint) overlap
        their work with the chunks still in flight. Abandoning the
        generator mid-stream is safe: arenas are released, the pool
        survives for the next run, and ``stream_stats`` / telemetry
        record the chunks that completed before the abandon.
        """
        self.shard_stats = []
        self.stream_stats = {}
        if not sites:
            return
        chunks = [
            (chunk_id, list(sites[lo : lo + self.config.batch]))
            for chunk_id, lo in enumerate(
                range(0, len(sites), self.config.batch)
            )
        ]
        run_start = time.perf_counter()
        if self.config.workers == 1 or len(chunks) == 1:
            yield from self._stream_inline(chunks, telemetry, run_start)
        else:
            yield from self._stream_pooled(chunks, telemetry, run_start)

    # -- single-process path --------------------------------------------
    def _stream_inline(self, chunks, telemetry, run_start):
        """workers=1: no pool, no arenas -- but still chunk-incremental."""
        merged: Dict[str, int] = {}
        try:
            for chunk_id, chunk in chunks:
                outcome = _realign_chunk(chunk_id, chunk, self.config)
                self._file_outcome(outcome, len(chunk), merged)
                yield from outcome[1]
        finally:
            # Runs on normal exhaustion AND when the consumer abandons
            # the generator: whatever completed is still observed.
            self._finish(telemetry, merged, run_start, in_flight_peak=1,
                         reorder_peak=0, backpressure_us=0, arena_bytes=0)

    # -- pooled path ----------------------------------------------------
    def _stream_pooled(self, chunks, telemetry, run_start):
        if self.use_shmem:
            # Must happen before the pool forks: workers inherit the
            # parent's resource tracker instead of spawning their own
            # (see shmem.ensure_resource_tracker).
            ensure_resource_tracker()
        recovered = self.recovery is not None
        if recovered:
            rpool = self._ensure_rpool()
            rpool.begin_run()
            # Recovery guarantees forward progress; the bound only
            # turns a recovery-machinery bug from a silent hang into a
            # loud ResilienceError.
            get_bound = self.recovery.completion_bound_seconds(
                self.config.batch, len(chunks)
            )
        else:
            pool = self._ensure_pool()
        window = self.queue_depth * self.config.workers
        done: queue_module.Queue = queue_module.Queue()
        arenas: Dict[int, object] = {}
        reorder = ReorderBuffer()
        merged: Dict[str, int] = {}
        arena_bytes = 0
        arena_recovered = 0
        backpressure_us = 0
        in_flight = 0
        in_flight_peak = 0
        submitted = 0
        completed = 0
        try:
            while completed < len(chunks):
                # Chunks held in the reorder buffer count against the
                # window: they are finished results waiting on a slower
                # predecessor, and submitting past them would let peak
                # memory grow beyond the window whenever the head chunk
                # is the slow one. No deadlock lurks here -- submission
                # is in order, so the next expected chunk is always
                # either in flight or already emitted.
                while (submitted < len(chunks)
                       and in_flight + reorder.pending < window):
                    chunk_id, chunk = chunks[submitted]
                    descriptor, handle = pack_chunk(
                        chunk_id, chunk, use_shmem=self.use_shmem
                    )
                    arenas[chunk_id] = handle
                    arena_bytes += descriptor.nbytes
                    if recovered:
                        rpool.submit_chunk(chunk_id, chunk,
                                           on_done=done.put,
                                           descriptor=descriptor)
                    else:
                        pool.apply_async(
                            _run_stream_chunk, (descriptor,),
                            callback=done.put, error_callback=done.put,
                        )
                    submitted += 1
                    in_flight += 1
                    in_flight_peak = max(in_flight_peak, in_flight)
                # The window is full (or the tail is draining): block
                # until a chunk completes. Time spent here with tasks
                # still unsubmitted is backpressure by definition.
                wait_start = time.perf_counter()
                if recovered:
                    try:
                        outcome = done.get(timeout=get_bound)
                    except queue_module.Empty:
                        raise ResilienceError(
                            "worker recovery made no progress within "
                            f"{get_bound:.0f}s ({completed}/{len(chunks)} "
                            "chunks completed)"
                        ) from None
                else:
                    outcome = done.get()
                if submitted < len(chunks):
                    backpressure_us += int(
                        (time.perf_counter() - wait_start) * 1e6
                    )
                if isinstance(outcome, BaseException):
                    raise outcome
                chunk_id = outcome[0]
                # The parent owns every arena, so even a chunk whose
                # worker was SIGKILLed mid-read is unlinked here, not
                # leaked; recovered chunks are counted separately.
                arenas.pop(chunk_id).release()
                if outcome[4].get("worker.chunks_recovered"):
                    arena_recovered += 1
                in_flight -= 1
                completed += 1
                self._file_outcome(outcome, len(chunks[chunk_id][1]),
                                   merged)
                for chunk_results in reorder.push(chunk_id, outcome[1]):
                    yield from chunk_results
        finally:
            for handle in arenas.values():
                handle.release()
            arenas.clear()
            # In the finally so an abandoned or failed stream still
            # folds the completed chunks' counters into telemetry and
            # leaves stream_stats describing the partial run.
            self._finish(telemetry, merged, run_start,
                         in_flight_peak=in_flight_peak,
                         reorder_peak=reorder.peak_pending,
                         backpressure_us=backpressure_us,
                         arena_bytes=arena_bytes,
                         arena_recovered=arena_recovered)
            self._fold_recovery(telemetry, run_start)

    # -- shared bookkeeping ---------------------------------------------
    def _file_outcome(self, outcome, num_sites: int,
                      merged: Dict[str, int]) -> None:
        chunk_id, _results, start, end, counters = outcome
        self.shard_stats.append(ShardStats(
            shard=chunk_id, sites=num_sites,
            start=start, end=end, counters=counters,
        ))
        for name, value in counters.items():
            merged[name] = merged.get(name, 0) + value

    def _finish(self, telemetry, merged, run_start, *, in_flight_peak,
                reorder_peak, backpressure_us, arena_bytes,
                arena_recovered: int = 0) -> None:
        from repro.perf.fleet import record_stream_chunks

        self.shard_stats.sort(key=lambda s: s.shard)
        self.stream_stats = {
            "stream.chunks": len(self.shard_stats),
            "stream.queue_depth": self.queue_depth,
            "stream.max_in_flight": in_flight_peak,
            "stream.reorder_peak": reorder_peak,
            "stream.backpressure_us": backpressure_us,
            "stream.arena_bytes": arena_bytes,
            "stream.arena_recovered": arena_recovered,
            "stream.shmem": int(self.use_shmem),
        }
        if telemetry is not None:
            for name, value in merged.items():
                telemetry.count(name, value)
            for name, value in self.stream_stats.items():
                telemetry.count(name, value)
            for name, value in drain_lifecycle_counters().items():
                telemetry.count(name, value)
            record_stream_chunks(telemetry, self.shard_stats,
                                 origin=run_start,
                                 workers=self.config.workers)


__all__ = ["ReorderBuffer", "StreamingEngine"]
