"""Sharded multiprocess execution of independent realignment sites.

Realignment sites are embarrassingly parallel -- target creation
guarantees a read belongs to at most one site -- so the engine shards a
site list into fixed-size chunks and feeds them to a persistent
``multiprocessing`` pool via ``imap_unordered``: idle workers steal the
next pending chunk, so stragglers (sites are Zipf-like in size) do not
serialize the tail. Results come back tagged with their chunk index and
are merged in submission order, which makes the output -- and therefore
the final SAM -- byte-identical to the serial path regardless of worker
count or completion order (pinned against ``tests/golden/``).

Within a worker, each chunk's sites run through the calibrated kernel
dispatch (:func:`repro.engine.autotune.dispatch_realign` -- per-site
choice of the scalar/vector/FFT/bitpack exact kernels, or a fixed
``EngineConfig.kernel``) with its own
:class:`~repro.engine.memo.PairMemo` (when enabled), and accumulates
telemetry counters locally; the parent folds counters into its own
telemetry session after the merge and records one wall-clock span per
shard (see :func:`repro.perf.fleet.record_engine_shards`), so a Chrome
trace shows the shards overlapping.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.autotune import (
    KERNEL_CHOICES,
    CostProfile,
    dispatch_realign,
    resolve_profile,
)
from repro.engine.memo import PairMemo
from repro.realign.site import RealignmentSite
from repro.realign.whd import SCORING_METHODS, SiteResult


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs for the batched parallel engine.

    ``workers=1`` runs shards inline (no pool, no pickling) but still
    through the batched kernel; ``batch`` is the shard size in sites --
    large enough to amortize per-task IPC, small enough that
    work-stealing can balance uneven shards. ``memo_capacity=0``
    disables the pair memo, which also keeps consensus-row elimination
    active (see :mod:`repro.engine.memo` for why they exclude each
    other). ``kernel`` routes each site through
    :func:`repro.engine.autotune.dispatch_realign`: a fixed kernel
    name, or ``"auto"`` (default) for the calibrated per-site choice.
    The pair memo is an FFT-path feature, so a nonzero
    ``memo_capacity`` pins the kernel to ``"fft"`` regardless of this
    setting.

    >>> EngineConfig(workers=2, batch=4).prefilter
    True
    >>> EngineConfig(workers=0)
    Traceback (most recent call last):
        ...
    ValueError: workers must be >= 1, got 0
    >>> EngineConfig(kernel="simd")
    Traceback (most recent call last):
        ...
    ValueError: unknown kernel 'simd'; choose from ('auto', 'scalar', 'vector', 'fft', 'bitpack', 'native')
    """

    workers: int = 1
    batch: int = 8
    prefilter: bool = True
    scoring: str = "similarity"
    memo_capacity: int = 0
    kernel: str = "auto"

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.scoring not in SCORING_METHODS:
            raise ValueError(f"unknown scoring method {self.scoring!r}")
        if self.memo_capacity < 0:
            raise ValueError(
                f"memo_capacity must be >= 0, got {self.memo_capacity}"
            )
        if self.kernel not in KERNEL_CHOICES:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; "
                f"choose from {KERNEL_CHOICES}"
            )


@dataclass
class ShardStats:
    """One shard's execution record (perf_counter timestamps)."""

    shard: int
    sites: int
    start: float
    end: float
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.end - self.start


class _CounterSink:
    """Minimal stand-in for a telemetry session inside a worker.

    The kernel only calls ``count``; the parent process folds the
    accumulated deltas into its real telemetry session after the merge
    (span clocks do not transfer between processes, counters do).
    """

    def __init__(self):
        self.counters: Dict[str, int] = {}

    def count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(delta)


#: Per-worker invariant state, set once by the pool initializer. The
#: EngineConfig (and the autotune cost profile it dispatches with)
#: never varies between chunks of one run, so shipping it in every task
#: payload (as the engine originally did) re-pickled the same bytes per
#: chunk; the initializer sends it exactly once per worker process.
_WORKER_CONFIG: Optional[EngineConfig] = None
_WORKER_PROFILE: Optional[CostProfile] = None


def _init_worker(config: EngineConfig,
                 profile: Optional[CostProfile] = None) -> None:
    """Pool initializer: install the run-invariant config + profile.

    When the run can route sites through the native tier (``kernel``
    is ``auto`` or ``native``), each worker also pre-warms the compiled
    backend here, so one-time JIT/shared-library compilation happens
    during pool startup instead of inside the first timed chunk.
    """
    global _WORKER_CONFIG, _WORKER_PROFILE
    _WORKER_CONFIG = config
    _WORKER_PROFILE = profile
    if config.kernel in ("auto", "native"):
        from repro.engine.native import warmup_native

        warmup_native()


def _run_chunk(payload) -> Tuple[int, List[SiteResult], float, float, Dict[str, int]]:
    """Worker entry point: realign one chunk of sites.

    Module-level (not a closure) so it pickles under both fork and
    spawn start methods. The payload carries only what varies per task
    -- ``(chunk_id, sites)``; the config comes from the initializer.
    """
    chunk_id, sites = payload
    return _realign_chunk(chunk_id, sites, _WORKER_CONFIG)


def _realign_chunk(
    chunk_id: int, sites: Sequence[RealignmentSite], config: EngineConfig
) -> Tuple[int, List[SiteResult], float, float, Dict[str, int]]:
    """Realign one chunk (shared by the pool, inline, and stream paths).

    ``time.perf_counter`` is CLOCK_MONOTONIC on Linux, so the returned
    timestamps are comparable across processes and the parent can lay
    shards on a shared timeline.
    """
    start = time.perf_counter()
    sink = _CounterSink()
    memo = PairMemo(config.memo_capacity) if config.memo_capacity else None
    # Memoized grid columns only exist on the FFT path; a configured
    # memo therefore pins the kernel (documented on EngineConfig).
    kernel = "fft" if memo is not None else config.kernel
    results = [
        dispatch_realign(
            site,
            kernel=kernel,
            scoring=config.scoring,
            prefilter=config.prefilter,
            telemetry=sink,
            memo=memo,
            profile=_WORKER_PROFILE,
        )
        for site in sites
    ]
    if memo is not None:
        for name, value in memo.snapshot().items():
            sink.count(name, value)
    return chunk_id, results, start, time.perf_counter(), sink.counters


class Engine:
    """Batched parallel realignment over a list of independent sites.

    The worker pool is created lazily on the first multiprocess run and
    persists across :meth:`run_sites` calls (forking a pool costs tens
    of milliseconds -- far more than a warm task round-trip), so create
    the engine once and reuse it. Usable as a context manager; the pool
    is also reaped on garbage collection.

    ``recovery`` (a :class:`~repro.resilience.workers.WorkerRecovery`)
    switches multiprocess dispatch onto the fault-tolerant
    :class:`~repro.resilience.workers.ResilientPool`: per-chunk
    deadlines, retry/bisect/quarantine of lost chunks, pool respawn on
    worker death -- with byte-identical output. When ``None`` (the
    default), the environment is consulted
    (:meth:`~repro.resilience.workers.WorkerRecovery.from_env`), so CI
    can run any engine workload under injected chaos; with no relevant
    environment either, the original unrecovered pool path runs
    unchanged.
    """

    def __init__(self, config: Optional[EngineConfig] = None,
                 recovery=None):
        from repro.resilience.workers import WorkerRecovery

        self.config = config if config is not None else EngineConfig()
        self.recovery = (recovery if recovery is not None
                         else WorkerRecovery.from_env())
        self.shard_stats: List[ShardStats] = []  # from the latest run
        #: Recovery observations from the latest run (resilient mode).
        self.recovery_counters: Dict[str, int] = {}
        self.recovery_events: List = []
        self._pool = None
        self._rpool = None

    def run_sites(
        self,
        sites: Sequence[RealignmentSite],
        telemetry=None,
    ) -> List[SiteResult]:
        """Realign ``sites``; results align index-for-index with input.

        The merge is deterministic: shard results are reassembled in
        chunk-submission order, so the output is identical for any
        ``workers`` setting.
        """
        from repro.perf.fleet import record_engine_shards

        if not sites:
            self.shard_stats = []
            return []
        run_start = time.perf_counter()
        payloads = [
            (chunk_id, list(sites[lo : lo + self.config.batch]))
            for chunk_id, lo in enumerate(
                range(0, len(sites), self.config.batch)
            )
        ]
        if self.config.workers == 1 or len(payloads) == 1:
            outcomes = [
                _realign_chunk(chunk_id, chunk, self.config)
                for chunk_id, chunk in payloads
            ]
        elif self.recovery is not None:
            outcomes = self._run_recovered(payloads)
        else:
            pool = self._ensure_pool()
            outcomes = list(pool.imap_unordered(_run_chunk, payloads))

        by_chunk = {chunk_id: rest for chunk_id, *rest in outcomes}
        results: List[SiteResult] = []
        stats: List[ShardStats] = []
        merged: Dict[str, int] = {}
        for chunk_id, payload in enumerate(payloads):
            chunk_results, start, end, counters = by_chunk[chunk_id]
            results.extend(chunk_results)
            stats.append(ShardStats(
                shard=chunk_id, sites=len(payload[1]),
                start=start, end=end, counters=counters,
            ))
            for name, value in counters.items():
                merged[name] = merged.get(name, 0) + value
        self.shard_stats = stats
        self._fold_recovery(telemetry, run_start)
        if telemetry is not None:
            for name, value in merged.items():
                telemetry.count(name, value)
            record_engine_shards(telemetry, stats, origin=run_start,
                                 workers=self.config.workers)
        return results

    def _run_recovered(self, payloads):
        """Barrier dispatch over the fault-tolerant pool."""
        import queue as queue_module

        from repro.resilience.policy import ResilienceError

        rpool = self._ensure_rpool()
        rpool.begin_run()
        done: "queue_module.Queue" = queue_module.Queue()
        for chunk_id, chunk in payloads:
            rpool.submit_chunk(chunk_id, chunk, on_done=done.put)
        # Recovery guarantees forward progress; the bound only turns a
        # recovery-machinery bug from a silent hang into a loud error.
        bound = self.recovery.completion_bound_seconds(
            self.config.batch, len(payloads)
        )
        outcomes = []
        for _ in payloads:
            try:
                outcome = done.get(timeout=bound)
            except queue_module.Empty:
                raise ResilienceError(
                    "worker recovery made no progress within "
                    f"{bound:.0f}s ({len(outcomes)}/{len(payloads)} "
                    "chunks completed)"
                ) from None
            if isinstance(outcome, BaseException):
                raise outcome
            outcomes.append(outcome)
        return outcomes

    def _fold_recovery(self, telemetry, run_start: float) -> None:
        """Drain the resilient pool's observations into telemetry."""
        if self._rpool is None:
            return
        from repro.resilience.workers import record_recovery_spans

        counters, events = self._rpool.drain()
        self.recovery_counters = counters
        self.recovery_events = events
        if telemetry is not None:
            for name, value in counters.items():
                telemetry.count(name, value)
            record_recovery_spans(telemetry, events, origin=run_start)

    def _ensure_rpool(self):
        if self._rpool is None:
            from repro.resilience.workers import ResilientPool

            profile = (resolve_profile()
                       if self.config.kernel == "auto" else None)
            self._rpool = ResilientPool(self.config, self.recovery,
                                        profile=profile)
        return self._rpool

    def _ensure_pool(self):
        if self._pool is None:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = multiprocessing.get_context()
            # Resolve the autotune profile once, in the parent, so every
            # worker dispatches with identical coefficients (and no
            # worker re-reads the profile file per process).
            profile = (resolve_profile()
                       if self.config.kernel == "auto" else None)
            self._pool = ctx.Pool(
                processes=self.config.workers,
                initializer=_init_worker,
                initargs=(self.config, profile),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._rpool is not None:
            self._rpool.close()
            self._rpool = None

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
