"""FPGA device and utilization model.

The paper deploys on the Xilinx Virtex UltraScale+ VU9P of the F1
instance and reports, for the optimized 32-unit design: block RAM
utilization 87.62% and CLB logic utilization 32.53% (Section III-A
footnote 3). This module derives those figures from the per-unit buffer
inventory (:mod:`repro.hw.bram`) plus a calibrated allowance for the AWS
shell and interconnect, and answers the sizing question "how many units
fit?" that shaped the design.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.hw.bram import Bram36Requirement, blocks_for_buffer


@dataclass(frozen=True)
class FpgaDevice:
    """Resource inventory of one FPGA part."""

    name: str
    bram36_tiles: int
    clb_luts: int
    dsp_slices: int
    logic_elements: int  # marketing figure, for Table II parity

    def __post_init__(self) -> None:
        if min(self.bram36_tiles, self.clb_luts, self.dsp_slices) <= 0:
            raise ValueError("device resources must be positive")


#: The F1 FPGA: "2.5 M logic elements, 6,800 DSPs" (paper Table II);
#: 2,160 BRAM36 tiles and ~1.18 M CLB LUTs from the UltraScale+ data sheet.
VIRTEX_ULTRASCALE_PLUS_VU9P = FpgaDevice(
    name="xcvu9p",
    bram36_tiles=2160,
    clb_luts=1_182_240,
    dsp_slices=6840,
    logic_elements=2_500_000,
)


#: BRAM36 tiles used by the AWS F1 shell, DDR controller FIFOs, the AXI
#: crossbar, and the RoCC command router. Calibrated so the deployed
#: 32-unit design reproduces the paper's 87.62% BRAM figure given the
#: 53-tile per-unit inventory derived from the documented buffer sizes.
SYSTEM_BRAM36_OVERHEAD = 197

#: CLB LUTs per IR unit (comparator array, adder trees, control FSMs) and
#: for the system infrastructure; calibrated against the paper's 32.53%.
UNIT_CLB_LUTS = 7_643
SYSTEM_CLB_LUTS = 140_006

#: The IR datapath uses fabric adders, not DSP slices.
UNIT_DSP_SLICES = 0


def ir_unit_bram_inventory(
    max_consensuses: int = 32,
    max_consensus_length: int = 2048,
    max_reads: int = 256,
    max_read_length: int = 256,
    datapath_width_bits: int = 256,
) -> List[Bram36Requirement]:
    """BRAM budget of one IR unit, buffer by buffer (Figure 6 sizes).

    Input buffers are 256 bits wide to supply 32 bytes per cycle to the
    parallel Hamming distance calculator; the selector's three
    read-length buffers and the two output buffers are narrow
    single-port memories ("the buffers only support one read or one
    write per cycle").
    """
    return [
        blocks_for_buffer(
            "consensus-bases", max_consensuses * max_consensus_length,
            datapath_width_bits,
        ),
        blocks_for_buffer(
            "read-bases", max_reads * max_read_length, datapath_width_bits
        ),
        blocks_for_buffer(
            "read-quality-scores", max_reads * max_read_length,
            datapath_width_bits,
        ),
        blocks_for_buffer("selector-ref-dist-pos", max_reads * 4, 32),
        blocks_for_buffer("selector-curr-dist-pos", max_reads * 4, 32),
        blocks_for_buffer("selector-min-dist-pos", max_reads * 4, 32),
        blocks_for_buffer("out-realign-flags", max_reads * 1, 8),
        blocks_for_buffer("out-new-positions", max_reads * 4, 32),
    ]


def ir_unit_bram36(**kwargs) -> int:
    """Total BRAM36 tiles of one IR unit."""
    return sum(req.tiles for req in ir_unit_bram_inventory(**kwargs))


@dataclass(frozen=True)
class UtilizationReport:
    """Resource utilization of an N-unit design on a device."""

    device: FpgaDevice
    num_units: int
    bram36_used: int
    clb_luts_used: int
    dsp_used: int

    @property
    def bram_utilization(self) -> float:
        return self.bram36_used / self.device.bram36_tiles

    @property
    def clb_utilization(self) -> float:
        return self.clb_luts_used / self.device.clb_luts

    @property
    def dsp_utilization(self) -> float:
        return self.dsp_used / self.device.dsp_slices

    @property
    def fits(self) -> bool:
        return (
            self.bram36_used <= self.device.bram36_tiles
            and self.clb_luts_used <= self.device.clb_luts
            and self.dsp_used <= self.device.dsp_slices
        )


def utilization(
    num_units: int,
    device: FpgaDevice = VIRTEX_ULTRASCALE_PLUS_VU9P,
) -> UtilizationReport:
    """Utilization of a sea of ``num_units`` IR accelerators."""
    if num_units < 0:
        raise ValueError("num_units must be non-negative")
    per_unit = ir_unit_bram36()
    return UtilizationReport(
        device=device,
        num_units=num_units,
        bram36_used=num_units * per_unit + SYSTEM_BRAM36_OVERHEAD,
        clb_luts_used=num_units * UNIT_CLB_LUTS + SYSTEM_CLB_LUTS,
        dsp_used=num_units * UNIT_DSP_SLICES,
    )


#: Fraction of BRAM the placer can actually use before routing fails.
#: The paper repeatedly cites "block RAM utilization close to 90%" as the
#: practical ceiling of the BRAM-bound design.
ROUTABLE_BRAM_FRACTION = 0.90


def max_units(device: FpgaDevice = VIRTEX_ULTRASCALE_PLUS_VU9P,
              routable_bram_fraction: float = ROUTABLE_BRAM_FRACTION) -> int:
    """Largest unit count that fits the device -- BRAM-bound, per the paper.

    ``routable_bram_fraction`` models the place-and-route headroom: at
    125 MHz over 90% of the critical path is already routing delay, so
    designs pushing BRAM past ~90% fail timing closure.
    """
    if not 0 < routable_bram_fraction <= 1:
        raise ValueError("routable_bram_fraction must be in (0, 1]")
    per_unit = ir_unit_bram36()
    usable = int(device.bram36_tiles * routable_bram_fraction)
    by_bram = (usable - SYSTEM_BRAM36_OVERHEAD) // per_unit
    by_clb = (device.clb_luts - SYSTEM_CLB_LUTS) // UNIT_CLB_LUTS
    return max(0, min(by_bram, by_clb))
