"""F1 clock recipes.

AWS F1 offers a fixed menu of clock recipes; the paper builds at 125 MHz
("one of the clock recipes offered by the F1 instances") and evaluates --
then rejects -- the 250 MHz recipe because >95% of the critical path at
250 MHz is routing delay through the 32-unit AXI4 memory system
(Section IV, "Frequency").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClockRecipe:
    """One FPGA clock configuration."""

    name: str
    frequency_hz: float
    # Fraction of the critical path that is routing delay at this recipe,
    # as reported in Section IV; determines whether timing closes.
    routing_delay_fraction: float
    timing_met: bool

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if not 0 <= self.routing_delay_fraction <= 1:
            raise ValueError("routing_delay_fraction must be in [0, 1]")

    @property
    def period_s(self) -> float:
        return 1.0 / self.frequency_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        if cycles < 0:
            raise ValueError("cycle count must be non-negative")
        return cycles / self.frequency_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("duration must be non-negative")
        return seconds * self.frequency_hz

    def cycles_to_microseconds(self, cycles: float) -> float:
        """Cycle timestamps in trace-viewer units (Perfetto uses us)."""
        return self.cycles_to_seconds(cycles) * 1e6


#: The deployed design point: timing closes with >90% routing delay.
F1_CLOCK_125MHZ = ClockRecipe(
    name="f1-recipe-125",
    frequency_hz=125e6,
    routing_delay_fraction=0.90,
    timing_met=True,
)

#: The rejected design point: violated paths in the AXI4 memory system.
F1_CLOCK_250MHZ = ClockRecipe(
    name="f1-recipe-250",
    frequency_hz=250e6,
    routing_delay_fraction=0.95,
    timing_met=False,
)

F1_CLOCK_RECIPES = {recipe.name: recipe for recipe in
                    (F1_CLOCK_125MHZ, F1_CLOCK_250MHZ)}
