"""Round-robin arbiters.

Figure 6's memory fabric has two arbitration levels: each IR unit's five
memory channels (three MemReaders + two MemWriters) coalesce through an
*Intra-IR Mem ARB 5:1*, and the 32 per-unit channels coalesce through the
*IR Mem ARB 32:1* before the AXI crossbar. The functional model is a
work-conserving round-robin arbiter; tests pin fairness (no starvation,
bounded wait) and work conservation, and the system model uses its
steady-state contention factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class RoundRobinArbiter:
    """N-requester, 1-grant round-robin arbiter.

    Call :meth:`grant` once per cycle with the set of asserted request
    lines; the arbiter grants one and advances its pointer past the
    winner, which yields the classic fairness bound (any continuously
    asserted request is granted within N cycles).
    """

    num_requesters: int
    _pointer: int = 0
    grants: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_requesters <= 0:
            raise ValueError("arbiter needs at least one requester")

    def grant(self, requests: Sequence[int]) -> Optional[int]:
        """Grant one of ``requests`` (requester indices); None if idle."""
        active = set(requests)
        for requester in active:
            if not 0 <= requester < self.num_requesters:
                raise ValueError(
                    f"requester {requester} outside [0, {self.num_requesters})"
                )
        if not active:
            return None
        for offset in range(self.num_requesters):
            candidate = (self._pointer + offset) % self.num_requesters
            if candidate in active:
                self._pointer = (candidate + 1) % self.num_requesters
                self.grants[candidate] = self.grants.get(candidate, 0) + 1
                return candidate
        raise AssertionError("unreachable: active set was non-empty")

    def drain(self, request_counts: Sequence[int]) -> List[int]:
        """Simulate until all queued requests are served; returns the
        grant order. Used by tests to check bounded unfairness."""
        remaining = list(request_counts)
        if len(remaining) != self.num_requesters:
            raise ValueError("one count per requester required")
        order: List[int] = []
        while any(count > 0 for count in remaining):
            active = [i for i, count in enumerate(remaining) if count > 0]
            winner = self.grant(active)
            remaining[winner] -= 1
            order.append(winner)
        return order


def contention_slowdown(active_requesters: int, capacity: int = 1) -> float:
    """Steady-state service-rate dilution behind an arbiter.

    With ``active_requesters`` continuously busy masters sharing
    ``capacity`` grant slots per cycle, each master is served at
    ``capacity / active`` of the unshared rate. The system model applies
    this to the (tiny) buffer-fill phases; compute phases hit local BRAM
    and bypass the fabric entirely, which is why the paper's design
    scales to 32 units on one DDR channel.
    """
    if active_requesters <= 0 or capacity <= 0:
        raise ValueError("arguments must be positive")
    return max(1.0, active_requesters / capacity)
