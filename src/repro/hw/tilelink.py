"""TileLink link model.

Units talk to the memory arbiter over TileLink ("One TileLink Block,
256 Bits, Bi-Directional Decoupled Interface" in Figure 6). The paper
swept interface widths with Rocket Chip's parametrized implementation and
"found that a 256-bit interface provided the best performance under the
timing constraints" -- the ablation bench reruns that sweep with this
model, where wider links cut beat counts but lengthen the critical
routing path (narrowing the achievable clock).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TileLinkLink:
    """One TileLink channel between an IR unit and the memory arbiter."""

    data_width_bits: int = 256
    # Routing-delay growth per doubling beyond 256 bits; encodes the
    # paper's observation that the 32-unit AXI/TileLink fabric is
    # routing-limited. Used only by the width-ablation bench.
    routing_penalty_per_doubling: float = 0.12

    def __post_init__(self) -> None:
        if self.data_width_bits <= 0 or self.data_width_bits % 8 != 0:
            raise ValueError("TileLink width must be a positive multiple of 8")

    @property
    def bytes_per_beat(self) -> int:
        return self.data_width_bits // 8

    def beats(self, num_bytes: int) -> int:
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return -(-num_bytes // self.bytes_per_beat)

    def achievable_frequency_hz(self, base_frequency_hz: float = 125e6,
                                base_width_bits: int = 256) -> float:
        """Clock the fabric closes timing at, for this width.

        At and below the base width the base recipe closes; each doubling
        beyond it costs ``routing_penalty_per_doubling`` of the clock.
        """
        if base_frequency_hz <= 0:
            raise ValueError("base frequency must be positive")
        width = self.data_width_bits
        frequency = base_frequency_hz
        while width > base_width_bits:
            frequency *= 1.0 - self.routing_penalty_per_doubling
            width //= 2
        return frequency


def beats_for_transfer(num_bytes: int, width_bits: int = 256) -> int:
    """Convenience: beats to move ``num_bytes`` over a ``width_bits`` link."""
    return TileLinkLink(data_width_bits=width_bits).beats(num_bytes)
