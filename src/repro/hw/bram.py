"""Block-RAM mapping arithmetic.

UltraScale+ block RAM comes in 36 Kb tiles (BRAM36) that are at most
72 bits wide; a logical buffer wider than that is built from a row of
tiles, and deeper than 1024 x 36 b from multiple ranks. The IR unit's
buffers are 256 bits wide to feed the 32-byte-per-cycle data-parallel
Hamming distance calculator, so mapping width dominates the count.

"The number of IR units that can be instantiated on a single FPGA is
limited by the number of block RAM cells available" (Section IV) -- this
module is how the reproduction derives that limit instead of asserting it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Capacity of one BRAM36 tile in bits.
BRAM36_BITS = 36 * 1024

#: Maximum data width of one BRAM36 tile (72-bit SDP mode).
BRAM36_MAX_WIDTH = 72

#: Native column geometry used for multi-tile buffers: 36 b x 1024 deep.
BRAM36_COLUMN_WIDTH = 36
BRAM36_COLUMN_DEPTH = 1024


@dataclass(frozen=True)
class Bram36Requirement:
    """BRAM36 tiles needed to realise one logical buffer."""

    name: str
    capacity_bytes: int
    width_bits: int
    columns: int
    ranks: int

    @property
    def tiles(self) -> int:
        return self.columns * self.ranks


def blocks_for_buffer(name: str, capacity_bytes: int, width_bits: int
                      ) -> Bram36Requirement:
    """Map a (capacity, width) buffer onto BRAM36 tiles.

    A buffer of width W needs ``ceil(W / 36)`` tile columns; each column
    holds 1024 entries, so depth beyond 1024 adds ranks.
    """
    if capacity_bytes <= 0 or width_bits <= 0:
        raise ValueError("capacity and width must be positive")
    if width_bits % 8 != 0:
        raise ValueError(f"width {width_bits} is not byte-aligned")
    depth = math.ceil(capacity_bytes * 8 / width_bits)
    if width_bits <= BRAM36_MAX_WIDTH:
        # Narrow buffer: a single column in the widest usable aspect.
        columns = 1
        ranks = max(1, math.ceil(capacity_bytes * 8 / BRAM36_BITS))
    else:
        columns = math.ceil(width_bits / BRAM36_COLUMN_WIDTH)
        ranks = max(1, math.ceil(depth / BRAM36_COLUMN_DEPTH))
    return Bram36Requirement(
        name=name,
        capacity_bytes=capacity_bytes,
        width_bits=width_bits,
        columns=columns,
        ranks=ranks,
    )
