"""Cycle-stepped memory-fabric simulation (Figure 6's right half).

Validates the design assumption the analytic system model leans on: that
buffer-fill traffic from 32 concurrently active IR units, funnelled
through each unit's *Intra-IR Mem ARB 5:1* and the shared *IR Mem ARB
32:1* onto one DDR4 channel, adds negligible stall time compared to
compute ("This allows us to trade memory controller area and wiring for
more IR compute units").

The simulation steps beats: each unit's five channels (three MemReaders,
two MemWriters) hold per-channel beat queues; every cycle each unit's
5:1 round-robin arbiter nominates one channel, the 32:1 arbiter grants
up to ``ddr_beats_per_cycle`` of the nominations (DDR4 at 16 GB/s
against a 125 MHz fabric serves ~4 32-byte beats per fabric cycle), and
granted beats retire. The outcome is the fill-phase stretch factor
versus an uncontended fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.buffers import BLOCK_BYTES
from repro.hw.arbiter import RoundRobinArbiter
from repro.realign.site import RealignmentSite

#: Channels per IR unit: consensus/read/qual MemReaders + 2 MemWriters.
CHANNELS_PER_UNIT = 5

#: DDR4-2400 at ~16 GB/s effective vs a 125 MHz fabric moving 32-byte
#: beats: 16e9 / 125e6 / 32 = 4 beats per fabric cycle.
DDR_BEATS_PER_CYCLE = 4


@dataclass(frozen=True)
class UnitFillRequest:
    """Beat counts one unit's five channels need for one target."""

    channel_beats: Sequence[int]

    def __post_init__(self) -> None:
        if len(self.channel_beats) != CHANNELS_PER_UNIT:
            raise ValueError(
                f"a unit has {CHANNELS_PER_UNIT} memory channels, got "
                f"{len(self.channel_beats)}"
            )
        if any(b < 0 for b in self.channel_beats):
            raise ValueError("beat counts must be non-negative")

    @property
    def total_beats(self) -> int:
        return sum(self.channel_beats)

    @classmethod
    def for_site(cls, site: RealignmentSite) -> "UnitFillRequest":
        """The Figure 6 channel loads for one target."""
        def beats(num_bytes: int) -> int:
            return -(-num_bytes // BLOCK_BYTES)

        return cls(channel_beats=(
            sum(beats(len(c)) for c in site.consensuses),
            sum(beats(len(r)) for r in site.reads),
            sum(beats(len(r)) for r in site.reads),
            beats(site.num_reads),  # realign flags writeback
            beats(4 * site.num_reads),  # new positions writeback
        ))


@dataclass
class FabricResult:
    """Outcome of one fabric simulation."""

    cycles: int
    beats_served: int
    per_unit_finish: List[int]

    @property
    def throughput_beats_per_cycle(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.beats_served / self.cycles

    def unit_stretch(self, unit: int, request_beats: int) -> float:
        """One unit's slowdown versus owning an uncontended
        1-beat/cycle port (its fill would then take ``request_beats``
        cycles)."""
        if request_beats == 0:
            return 1.0
        return self.per_unit_finish[unit] / request_beats


def simulate_fill(
    requests: Sequence[UnitFillRequest],
    ddr_beats_per_cycle: int = DDR_BEATS_PER_CYCLE,
    max_cycles: int = 10_000_000,
) -> FabricResult:
    """Step the two-level arbitration fabric until every beat retires."""
    if ddr_beats_per_cycle <= 0:
        raise ValueError("DDR must serve at least one beat per cycle")
    num_units = len(requests)
    remaining: List[List[int]] = [list(r.channel_beats) for r in requests]
    intra = [RoundRobinArbiter(CHANNELS_PER_UNIT) for _ in range(num_units)]
    system = RoundRobinArbiter(max(num_units, 1))
    finish = [0] * num_units
    served = 0
    cycle = 0
    while any(any(c > 0 for c in channels) for channels in remaining):
        cycle += 1
        if cycle > max_cycles:
            raise RuntimeError("fabric simulation exceeded the cycle guard")
        # Level 1: each unit nominates one pending channel.
        nominations: Dict[int, int] = {}
        for unit, channels in enumerate(remaining):
            pending = [i for i, beats in enumerate(channels) if beats > 0]
            if pending:
                nominations[unit] = intra[unit].grant(pending)
        # Level 2: the 32:1 arbiter grants up to the DDR beat budget.
        for _slot in range(ddr_beats_per_cycle):
            if not nominations:
                break
            unit = system.grant(list(nominations))
            channel = nominations.pop(unit)
            remaining[unit][channel] -= 1
            served += 1
            if all(beats == 0 for beats in remaining[unit]):
                finish[unit] = cycle
    return FabricResult(cycles=cycle, beats_served=served,
                        per_unit_finish=finish)


def fill_stretch_for_sites(
    sites: Sequence[RealignmentSite],
    ddr_beats_per_cycle: int = DDR_BEATS_PER_CYCLE,
) -> float:
    """Worst per-unit fill stretch when these sites fill concurrently.

    This is the factor the analytic model would have to apply to fill
    cycles if contention mattered; the resources experiment shows it is
    small and fills are a tiny slice of compute anyway.
    """
    requests = [UnitFillRequest.for_site(site) for site in sites]
    result = simulate_fill(requests, ddr_beats_per_cycle)
    return max(
        result.unit_stretch(unit, request.total_beats)
        for unit, request in enumerate(requests)
    )
