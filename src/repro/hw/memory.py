"""DDR and PCIe-DMA timing models.

F1 exposes 4 channels of DDR4 (16 GB each); the deployed design
instantiates only one -- "even the largest target does not occupy more
than 16 GB of memory. This allows us to trade memory controller area and
wiring for more IR compute units" -- and moves bulk data host->FPGA with
a 512-bit PCIe DMA that the paper measures at "only 0.01% of the total
runtime". These models produce transfer latencies for the system
simulator; both are simple bandwidth/latency channels, which matches the
level of detail the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PcieDmaModel:
    """Host <-> FPGA-DRAM bulk transfers over PCIe DMA.

    Defaults model a Gen3 x16 link with the AWS EDMA driver: ~8 GB/s
    effective streaming bandwidth and a fixed per-transfer setup cost
    (driver call + descriptor ring).
    """

    bandwidth_bytes_per_s: float = 8e9
    setup_latency_s: float = 5e-6
    # How long the EDMA driver waits on a silent descriptor before
    # declaring the transfer dead (the AWS driver's default is O(ms)).
    timeout_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.setup_latency_s < 0:
            raise ValueError("setup latency must be non-negative")
        if self.timeout_s <= 0:
            raise ValueError("timeout must be positive")

    def transfer_seconds(self, num_bytes: int) -> float:
        """Latency to move ``num_bytes`` in one DMA transaction."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.setup_latency_s + num_bytes / self.bandwidth_bytes_per_s

    def streaming_seconds(self, num_bytes: int) -> float:
        """Per-payload share of a large batched transfer.

        The control program "transfers large data chunks from the host
        to the FPGA-attached DRAM", so one DMA transaction carries many
        targets and the setup latency amortizes to nothing; this is the
        bandwidth-only cost the system model charges per target.
        """
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return num_bytes / self.bandwidth_bytes_per_s

    def streaming_cycles(self, num_bytes: int, clock) -> int:
        """:meth:`streaming_seconds` in whole cycles of ``clock``.

        The system model and the protocol-level simulator both charge
        transfers to the cycle timeline this way; the telemetry layer's
        channel spans use the same rounding so transfer spans tile the
        channel track exactly.
        """
        return int(round(clock.seconds_to_cycles(
            self.streaming_seconds(num_bytes)
        )))

    def faulted_transfer_seconds(self, num_bytes: int, outcome: str) -> float:
        """Wall-clock charged to a transfer attempt with a given fate.

        - ``"ok"`` -- the normal streaming cost;
        - ``"error"`` -- the EDMA driver aborts mid-stream and reports a
          status error: the setup plus (on average) half the payload's
          channel time is wasted before the host sees the failure;
        - ``"timeout"`` -- the descriptor goes silent and the host eats
          the full driver timeout before retrying.
        """
        if outcome == "ok":
            return self.streaming_seconds(num_bytes)
        if outcome == "error":
            return self.setup_latency_s + 0.5 * self.streaming_seconds(
                num_bytes
            )
        if outcome == "timeout":
            return self.timeout_s
        raise ValueError(f"unknown transfer outcome {outcome!r}")


@dataclass(frozen=True)
class DdrChannelModel:
    """One FPGA-attached DDR4 channel.

    Capacity 16 GB (per F1 channel). Bandwidth is the effective figure
    after controller efficiency; latency is the closed-page random access
    cost the MemReaders see on a new burst.
    """

    capacity_bytes: int = 16 * 1024**3
    bandwidth_bytes_per_s: float = 16e9
    access_latency_s: float = 60e-9

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.bandwidth_bytes_per_s <= 0:
            raise ValueError("capacity and bandwidth must be positive")
        if self.access_latency_s < 0:
            raise ValueError("access latency must be non-negative")

    def burst_seconds(self, num_bytes: int) -> float:
        """Latency of one burst read/write of ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.access_latency_s + num_bytes / self.bandwidth_bytes_per_s

    def fits(self, num_bytes: int) -> bool:
        return 0 <= num_bytes <= self.capacity_bytes


@dataclass(frozen=True)
class FpgaMemorySystem:
    """The deployed memory configuration: 1 of 4 channels instantiated."""

    channels_available: int = 4
    channels_instantiated: int = 1
    channel: DdrChannelModel = DdrChannelModel()

    def __post_init__(self) -> None:
        if not 1 <= self.channels_instantiated <= self.channels_available:
            raise ValueError(
                "instantiated channels must be within the available count"
            )

    @property
    def capacity_bytes(self) -> int:
        return self.channels_instantiated * self.channel.capacity_bytes

    @property
    def total_capacity_bytes(self) -> int:
        """All 64 GB, as listed in Table II, whether instantiated or not."""
        return self.channels_available * self.channel.capacity_bytes
