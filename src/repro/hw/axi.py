"""AXI4 / AXILite interconnect models.

The paper's system uses three AXI flavours (Figure 6): a 512-bit AXI4
path for PCIe DMA into FPGA DRAM, an AXI4 crossbar in front of the DDR
controllers, and a 32-bit AXI4Lite path through which the host issues
RoCC commands and polls responses via memory-mapped IO registers with
ready/valid queues ("the host can asynchronously add a new command to
the queue, or poll when awaiting a response").

:class:`MmioRegisterFile` is a functional model of that MMIO window --
the accelerated system's host program really does enqueue commands and
poll responses through it, so the host/accelerator handshake in the
simulation follows the same protocol as the deployed system.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional


@dataclass(frozen=True)
class AxiPort:
    """One AXI4 data port: width and clocked beat arithmetic."""

    name: str
    data_width_bits: int

    def __post_init__(self) -> None:
        if self.data_width_bits <= 0 or self.data_width_bits % 8 != 0:
            raise ValueError("AXI width must be a positive multiple of 8")

    @property
    def bytes_per_beat(self) -> int:
        return self.data_width_bits // 8

    def beats(self, num_bytes: int) -> int:
        """Beats needed to move ``num_bytes`` (partial beats round up)."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return -(-num_bytes // self.bytes_per_beat)


#: The three ports of Figure 6.
AXI4_DMA_PORT = AxiPort("pcie-dma", 512)
AXI4_MEMORY_PORT = AxiPort("axi4-memory", 512)
AXILITE_CONTROL_PORT = AxiPort("axilite-control", 32)


@dataclass(frozen=True)
class AxiLiteBus:
    """32-bit control bus with a fixed per-access cost in cycles."""

    port: AxiPort = AXILITE_CONTROL_PORT
    access_cycles: int = 4  # address + data + response phases

    def write_cycles(self, num_words: int = 1) -> int:
        if num_words < 0:
            raise ValueError("word count must be non-negative")
        return num_words * self.access_cycles

    def read_cycles(self, num_words: int = 1) -> int:
        if num_words < 0:
            raise ValueError("word count must be non-negative")
        return num_words * self.access_cycles


class QueueFullError(RuntimeError):
    """A bounded ready/valid queue rejected a push."""


@dataclass
class MmioRegisterFile:
    """Command/response queues behind the AXILite window.

    The AXI hub converts RoCC commands and responses to and from AXILite
    using these queues; ``command_ready`` and ``response_valid`` are the
    two signals the host-side control program polls.
    """

    command_depth: int = 16
    response_depth: int = 16
    _commands: Deque[int] = field(default_factory=deque)
    _responses: Deque[int] = field(default_factory=deque)

    @property
    def command_ready(self) -> bool:
        return len(self._commands) < self.command_depth

    @property
    def response_valid(self) -> bool:
        return bool(self._responses)

    def push_command(self, encoded: int) -> None:
        """Host side: enqueue one encoded RoCC command."""
        if not self.command_ready:
            raise QueueFullError("MMIO command queue full")
        self._commands.append(encoded)

    def pop_command(self) -> Optional[int]:
        """Fabric side: dequeue the next command, if any."""
        return self._commands.popleft() if self._commands else None

    def push_response(self, payload: int) -> None:
        """Fabric side: post a completion response."""
        if len(self._responses) >= self.response_depth:
            raise QueueFullError("MMIO response queue full")
        self._responses.append(payload)

    def poll_response(self) -> Optional[int]:
        """Host side: pop a response if ``response_valid``."""
        return self._responses.popleft() if self._responses else None

    def pending_commands(self) -> int:
        return len(self._commands)

    def pending_responses(self) -> int:
        return len(self._responses)
