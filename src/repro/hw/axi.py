"""AXI4 / AXILite interconnect models.

The paper's system uses three AXI flavours (Figure 6): a 512-bit AXI4
path for PCIe DMA into FPGA DRAM, an AXI4 crossbar in front of the DDR
controllers, and a 32-bit AXI4Lite path through which the host issues
RoCC commands and polls responses via memory-mapped IO registers with
ready/valid queues ("the host can asynchronously add a new command to
the queue, or poll when awaiting a response").

:class:`MmioRegisterFile` is a functional model of that MMIO window --
the accelerated system's host program really does enqueue commands and
poll responses through it, so the host/accelerator handshake in the
simulation follows the same protocol as the deployed system.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional


@dataclass(frozen=True)
class AxiPort:
    """One AXI4 data port: width and clocked beat arithmetic."""

    name: str
    data_width_bits: int

    def __post_init__(self) -> None:
        if self.data_width_bits <= 0 or self.data_width_bits % 8 != 0:
            raise ValueError("AXI width must be a positive multiple of 8")

    @property
    def bytes_per_beat(self) -> int:
        return self.data_width_bits // 8

    def beats(self, num_bytes: int) -> int:
        """Beats needed to move ``num_bytes`` (partial beats round up)."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return -(-num_bytes // self.bytes_per_beat)


#: The three ports of Figure 6.
AXI4_DMA_PORT = AxiPort("pcie-dma", 512)
AXI4_MEMORY_PORT = AxiPort("axi4-memory", 512)
AXILITE_CONTROL_PORT = AxiPort("axilite-control", 32)


@dataclass(frozen=True)
class AxiLiteBus:
    """32-bit control bus with a fixed per-access cost in cycles."""

    port: AxiPort = AXILITE_CONTROL_PORT
    access_cycles: int = 4  # address + data + response phases

    def write_cycles(self, num_words: int = 1) -> int:
        if num_words < 0:
            raise ValueError("word count must be non-negative")
        return num_words * self.access_cycles

    def read_cycles(self, num_words: int = 1) -> int:
        if num_words < 0:
            raise ValueError("word count must be non-negative")
        return num_words * self.access_cycles


class QueueFullError(RuntimeError):
    """A bounded ready/valid queue rejected a push."""


@dataclass
class MmioRegisterFile:
    """Command/response queues behind the AXILite window.

    The AXI hub converts RoCC commands and responses to and from AXILite
    using these queues; ``command_ready`` and ``response_valid`` are the
    two signals the host-side control program polls.
    """

    command_depth: int = 16
    response_depth: int = 16
    _commands: Deque[int] = field(default_factory=deque)
    _responses: Deque[int] = field(default_factory=deque)
    #: Optional repro.telemetry.Telemetry recorder; when set, every
    #: queue operation increments an ``mmio.*`` counter (None = no
    #: overhead beyond one attribute check per access).
    telemetry: Optional[object] = field(default=None, repr=False,
                                        compare=False)

    @property
    def command_ready(self) -> bool:
        return len(self._commands) < self.command_depth

    @property
    def response_valid(self) -> bool:
        return bool(self._responses)

    def push_command(self, encoded: int) -> None:
        """Host side: enqueue one encoded RoCC command."""
        if not self.command_ready:
            raise QueueFullError("MMIO command queue full")
        self._commands.append(encoded)
        if self.telemetry is not None:
            self.telemetry.count("mmio.commands_pushed")

    def pop_command(self) -> Optional[int]:
        """Fabric side: dequeue the next command, if any."""
        if not self._commands:
            return None
        if self.telemetry is not None:
            self.telemetry.count("mmio.commands_popped")
        return self._commands.popleft()

    def push_response(self, payload: int) -> None:
        """Fabric side: post a completion response."""
        if len(self._responses) >= self.response_depth:
            raise QueueFullError("MMIO response queue full")
        self._responses.append(payload)
        if self.telemetry is not None:
            self.telemetry.count("mmio.responses_pushed")

    def poll_response(self) -> Optional[int]:
        """Host side: pop a response if ``response_valid``."""
        if not self._responses:
            if self.telemetry is not None:
                self.telemetry.count("mmio.empty_polls")
            return None
        if self.telemetry is not None:
            self.telemetry.count("mmio.responses_polled")
        return self._responses.popleft()

    def pending_commands(self) -> int:
        return len(self._commands)

    def pending_responses(self) -> int:
        return len(self._responses)


# -- response integrity ------------------------------------------------
#
# A completion response that crosses the AXILite window can be silently
# corrupted (single-event upsets, marginal timing at the shell boundary)
# or never arrive at all. The resilient host protects the response word
# with a CRC-8 so corruption is *detected* (and the dispatch retried)
# rather than mis-routing a completion to the wrong unit; drops are
# caught by the host watchdog (see repro.core.host.HostWatchdog).

#: CRC-8-ATM generator polynomial (x^8 + x^2 + x + 1).
CRC8_POLY = 0x07


def crc8(value: int) -> int:
    """CRC-8 over ``value``'s bytes (big-endian, minimal width)."""
    if value < 0:
        raise ValueError("CRC input must be non-negative")
    data = value.to_bytes(max(1, (value.bit_length() + 7) // 8), "big")
    crc = 0
    for byte in data:
        crc ^= byte
        for _ in range(8):
            crc = ((crc << 1) ^ CRC8_POLY if crc & 0x80 else crc << 1) & 0xFF
    return crc


def protect_response(payload: int) -> int:
    """Frame a response payload with its CRC-8 in the low byte."""
    if payload < 0:
        raise ValueError("response payload must be non-negative")
    return (payload << 8) | crc8(payload)


def check_response(word: int) -> Optional[int]:
    """Unframe a protected response; ``None`` if the CRC disagrees."""
    payload = word >> 8
    return payload if crc8(payload) == (word & 0xFF) else None


@dataclass
class LossyMmioRegisterFile(MmioRegisterFile):
    """An MMIO register file whose response path can drop or corrupt.

    ``injector`` decides each pushed response's fate: ``"ok"`` (framed
    with its CRC and delivered), ``"drop"`` (never enqueued -- the host
    watchdog must notice), or ``"corrupt"`` (delivered with a payload
    bit flipped, so :func:`check_response` rejects it). The host side
    must poll with :func:`check_response` instead of trusting raw words.
    """

    injector: Callable[[int], str] = field(default=lambda payload: "ok")
    responses_dropped: int = 0
    responses_corrupted: int = 0

    def push_response(self, payload: int) -> None:
        fate = self.injector(payload)
        if fate == "drop":
            self.responses_dropped += 1
            return
        word = protect_response(payload)
        if fate == "corrupt":
            self.responses_corrupted += 1
            word ^= 1 << 8  # flip payload bit 0: CRC now disagrees
        elif fate != "ok":
            raise ValueError(f"unknown response fate {fate!r}")
        super().push_response(word)
