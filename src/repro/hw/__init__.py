"""FPGA substrate models.

Everything below the IR accelerator itself: clock recipes, the Virtex
UltraScale+ resource model (block RAM / CLB / DSP accounting used to show
32 units fit at ~90% BRAM), DDR4 and PCIe-DMA timing, AXI4/AXILite MMIO
plumbing, TileLink width adaptation, and the round-robin arbiters that
coalesce each unit's five memory channels (5:1) and the 32 units (32:1)
onto one DDR channel.
"""

from repro.hw.clock import ClockRecipe, F1_CLOCK_125MHZ, F1_CLOCK_250MHZ
from repro.hw.bram import Bram36Requirement, blocks_for_buffer
from repro.hw.resources import (
    FpgaDevice,
    UtilizationReport,
    VIRTEX_ULTRASCALE_PLUS_VU9P,
)
from repro.hw.memory import DdrChannelModel, PcieDmaModel
from repro.hw.axi import AxiLiteBus, AxiPort, MmioRegisterFile
from repro.hw.tilelink import TileLinkLink, beats_for_transfer
from repro.hw.arbiter import RoundRobinArbiter

__all__ = [
    "AxiLiteBus",
    "AxiPort",
    "Bram36Requirement",
    "ClockRecipe",
    "DdrChannelModel",
    "F1_CLOCK_125MHZ",
    "F1_CLOCK_250MHZ",
    "FpgaDevice",
    "MmioRegisterFile",
    "PcieDmaModel",
    "RoundRobinArbiter",
    "TileLinkLink",
    "UtilizationReport",
    "VIRTEX_ULTRASCALE_PLUS_VU9P",
    "beats_for_transfer",
    "blocks_for_buffer",
]
