"""Command-line driver: ``python -m repro <command>``.

Commands:

- ``figure2`` / ``figure3`` / ``figure4`` / ``figure7`` / ``figure9`` /
  ``tables`` / ``microarch`` / ``comparisons`` -- print one experiment's
  paper-versus-measured tables (the same code the benchmark harness
  runs).
- ``resilience`` -- chaos-mode sweep: modelled speedup vs. injected
  fault rate, with watchdog/retry/quarantine/fallback recovery.
- ``all`` -- run every experiment in order.
- ``simulate`` -- write a synthetic sample (FASTA + SAM) to a directory.
- ``realign`` -- run the software INDEL realigner over a SAM file.
- ``evaluate`` -- run an accuracy scenario (toy / cohort / adversarial)
  through the before/after pipeline and print the outcome scorecard
  (mismatch totals, concordance vs. truth, truth-INDEL F1); ``--out``
  writes the full deterministic ``EvaluationReport`` JSON.
- ``trace`` -- run a bench workload through the sync / async / recovery
  schedulers with telemetry on and write a Chrome ``trace_event`` file
  (open it at https://ui.perfetto.dev).
- ``serve`` -- run the realignment service: an asyncio TCP server with
  request coalescing, admission control, deadlines, and latency
  telemetry over any engine configuration (docs/SERVING.md).
- ``loadgen`` -- drive a seeded many-tenant load against a running
  server (or ``--selftest`` an in-process one) and report latency
  percentiles, rejections, and byte-identity vs. the batch realigner.

The full command table lives in the ``--help`` epilog (generated from
``COMMANDS`` below) and in ``docs/CLI.md``; a test keeps all three in
sync, so a new subcommand cannot silently go undocumented again the way
``evaluate`` originally did.

Output paths are validated when arguments are parsed, not at the end of
the run: a ``realign`` over a large SAM fails in milliseconds -- not
minutes -- when ``--out`` points into a missing or read-only directory.

Examples::

    python -m repro figure9 --sites 48 --replication 16
    python -m repro resilience --fault-rate 0.05 --fault-rate 0.2
    python -m repro simulate --length 30000 --out /tmp/sample
    python -m repro realign --reference /tmp/sample/reference.fa \
        --sam /tmp/sample/aligned.sam --out /tmp/sample/realigned.sam \
        --accelerated --fault-rate 0.1 --chaos-seed 7
    python -m repro realign --reference /tmp/sample/reference.fa \
        --sam /tmp/sample/aligned.sam --out /tmp/sample/realigned.sam \
        --workers 4 --batch 12
    python -m repro realign --reference /tmp/sample/reference.fa \
        --sam /tmp/sample/aligned.sam --out /tmp/sample/realigned.sam \
        --workers 4 --stream --queue-depth 3
    python -m repro realign --reference /tmp/sample/reference.fa \
        --sam /tmp/sample/aligned.sam --out /tmp/sample/realigned.sam \
        --workers 2 --stream --worker-fault-rate 0.2 --chaos-seed 7 \
        --chunk-deadline 5
    python -m repro trace --out /tmp/trace.json --fault-rate 0.1
    python -m repro trace --out /tmp/trace.json --workers 2 --stream
    python -m repro evaluate --scenario adversarial --out /tmp/report.json
    python -m repro evaluate --scenario cohort --workers 2 --stream
    python -m repro serve --reference /tmp/sample/reference.fa --port 8765
    python -m repro loadgen --host 127.0.0.1 --port 8765 \
        --reference /tmp/sample/reference.fa --sam /tmp/sample/aligned.sam \
        --tenants 4 --time-scale 0
    python -m repro loadgen --selftest --length 9000 --tenants 3
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

#: Every subcommand with its one-line description. This single table
#: feeds the subparser ``help=`` strings, the ``--help`` epilog, and
#: the generated reference in ``docs/CLI.md``
#: (``tests/test_cli_reference.py`` keeps them in sync) -- so adding a
#: subcommand without documenting it is a test failure, not a silent
#: omission.
COMMANDS = {
    "figure2": "roofline: WHD arithmetic intensity vs. the F1 ceilings",
    "figure3": "kernel microbenchmark: cycles per WHD cell vs. the paper",
    "figure4": "the paper's worked WHD example, end to end",
    "figure7": "speedup vs. software GATK across chromosome workloads",
    "figure9": "fleet cost/latency frontier for the cloud deployment",
    "tables": "the paper's configuration and result tables",
    "appendix": "appendix experiments (sensitivity sweeps)",
    "microarch": "PE microarchitecture model: occupancy and stalls",
    "comparisons": "cross-system comparisons (CPU / FPGA / cloud)",
    "all": "run every experiment in order",
    "resilience": "chaos sweep: modelled speedup vs. injected fault rate",
    "simulate": "write a synthetic sample (FASTA + SAM + truth) to a dir",
    "realign": "run the INDEL realigner over a SAM file (batch)",
    "trace": "record sync/async/recovery telemetry to a Chrome trace",
    "evaluate": "score realignment outcomes on a truth-bearing scenario",
    "serve": "serve realignment over TCP: coalescing, admission control, "
             "latency telemetry",
    "loadgen": "drive a seeded many-tenant load against a server "
               "(or --selftest)",
}


def _epilog() -> str:
    width = max(len(name) for name in COMMANDS)
    lines = [f"  {name.ljust(width)}  {text}"
             for name, text in COMMANDS.items()]
    return "commands:\n" + "\n".join(lines) + (
        "\n\nsee docs/CLI.md for the full reference, docs/SERVING.md "
        "for serve/loadgen."
    )


def _out_file(value: str) -> Path:
    """Argparse type for an output *file*: parent must be a writable dir.

    Checked at parse time so a long run cannot end in an unwritable
    ``--out`` (the realigner used to discover this only after realigning
    everything).
    """
    path = Path(value)
    parent = path.parent
    if not parent.exists():
        raise argparse.ArgumentTypeError(
            f"output directory {parent} does not exist"
        )
    if not parent.is_dir():
        raise argparse.ArgumentTypeError(
            f"output directory {parent} is not a directory"
        )
    if not os.access(parent, os.W_OK):
        raise argparse.ArgumentTypeError(
            f"output directory {parent} is not writable"
        )
    if path.is_dir():
        raise argparse.ArgumentTypeError(
            f"output path {path} is a directory, expected a file"
        )
    if path.exists() and not os.access(path, os.W_OK):
        raise argparse.ArgumentTypeError(
            f"output file {path} exists and is not writable"
        )
    return path


def _out_dir(value: str) -> Path:
    """Argparse type for an output *directory* that will be created.

    Walks up to the nearest existing ancestor and requires it to be a
    writable directory, so ``mkdir -p`` cannot fail later.
    """
    path = Path(value)
    ancestor = path
    while not ancestor.exists():
        parent = ancestor.parent
        if parent == ancestor:
            break
        ancestor = parent
    if ancestor.exists() and not ancestor.is_dir():
        raise argparse.ArgumentTypeError(
            f"cannot create {path}: {ancestor} is not a directory"
        )
    if not os.access(ancestor, os.W_OK):
        raise argparse.ArgumentTypeError(
            f"cannot create {path}: {ancestor} is not writable"
        )
    return path


def _cmd_experiment(name: str, args: argparse.Namespace) -> int:
    from repro.experiments import (
        comparisons,
        figure2,
        figure3,
        figure4,
        figure7,
        figure9,
        microarch,
        tables,
    )

    if name == "figure9":
        figure9.main(sites_per_chromosome=args.sites,
                     replication=args.replication)
        return 0
    if name == "resilience":
        from repro.experiments import resilience
        from repro.experiments.resilience import DEFAULT_FAULT_RATES

        rates = tuple(getattr(args, "fault_rate", None)
                      or DEFAULT_FAULT_RATES)
        bad = [rate for rate in rates if not 0.0 <= rate <= 1.0]
        if bad:
            print(f"error: --fault-rate must be in [0, 1], got {bad[0]}",
                  file=sys.stderr)
            return 2
        resilience.main(
            fault_rates=rates,
            sites_per_chromosome=getattr(args, "sites", 48),
            replication=getattr(args, "replication", 4),
            chaos_seed=getattr(args, "chaos_seed", 1234),
            trace_out=getattr(args, "telemetry", None),
        )
        return 0
    if name == "comparisons":
        comparisons.main()
        return 0
    from repro.experiments import appendix

    module = {
        "figure2": figure2, "figure3": figure3, "figure4": figure4,
        "figure7": figure7, "microarch": microarch, "appendix": appendix,
    }.get(name)
    if module is not None:
        module.main()
        return 0
    if name == "tables":
        tables.main()
        return 0
    if name == "all":
        for experiment in ("figure2", "figure3", "figure4", "tables",
                           "figure7", "appendix", "microarch", "figure9",
                           "resilience"):
            _cmd_experiment(experiment, args)
            print()
        return 0
    raise AssertionError(f"unhandled experiment {name}")


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.genomics.fasta import write_reference
    from repro.genomics.samlite import write_sam
    from repro.genomics.simulate import SimulationProfile, simulate_sample

    out = Path(args.out)
    try:
        out.mkdir(parents=True, exist_ok=True)
    except OSError as error:
        print(f"error: cannot create output directory {out}: {error}",
              file=sys.stderr)
        return 2
    profile = SimulationProfile(
        coverage=args.coverage, indel_rate=args.indel_rate,
    )
    sample = simulate_sample({args.contig: args.length}, profile=profile,
                             seed=args.seed)
    write_reference(sample.reference, out / "reference.fa")
    write_sam(sample.reads, out / "aligned.sam", sample.reference)
    with open(out / "truth.txt", "w") as handle:
        for variant in sample.truth_variants:
            handle.write(variant.describe() + "\n")
    print(f"wrote {len(sample.reads)} reads, "
          f"{len(sample.truth_variants)} truth variants to {out}")
    return 0


def _check_recovery_flags(args: argparse.Namespace):
    """Validate the worker-recovery flags; an error string or None."""
    if not 0.0 <= args.worker_fault_rate <= 1.0:
        return (f"error: --worker-fault-rate must be in [0, 1], "
                f"got {args.worker_fault_rate}")
    if args.worker_fault_rate > 0.0 and args.workers < 2:
        return ("error: --worker-fault-rate requires --workers >= 2 "
                "(the inline engine has no worker pool to fault)")
    if args.chunk_deadline is not None and args.chunk_deadline <= 0.0:
        return (f"error: --chunk-deadline must be positive, "
                f"got {args.chunk_deadline}")
    return None


def _make_recovery(args: argparse.Namespace):
    """The :class:`WorkerRecovery` the ``--worker-fault-rate`` /
    ``--chunk-deadline`` flags describe, or ``None`` (the engines then
    fall back to the ``REPRO_WORKER_FAULT_RATE`` environment)."""
    if args.worker_fault_rate == 0.0 and args.chunk_deadline is None:
        return None
    from repro.resilience.workers import WorkerRecovery

    overrides = {}
    if args.chunk_deadline is not None:
        overrides["chunk_deadline"] = args.chunk_deadline
    return WorkerRecovery.chaos(args.chaos_seed, args.worker_fault_rate,
                                **overrides)


def _make_engine(args: argparse.Namespace):
    """The engine the ``--workers/--batch/--stream`` flags describe:
    a plain :class:`EngineConfig` (the realigner builds its own barrier
    engine), a live :class:`StreamingEngine` when ``--stream``, a live
    :class:`Engine` when worker recovery is requested -- or a
    :class:`~repro.shard.plane.ShardPlane` when ``--shards``/``--site
    -cache-mb`` ask for horizontal dispatch or cross-request caching."""
    from repro.engine import EngineConfig

    config = EngineConfig(workers=args.workers, batch=args.batch,
                          prefilter=args.prefilter, kernel=args.kernel)
    recovery = _make_recovery(args)
    shards = getattr(args, "shards", 1)
    cache_mb = getattr(args, "site_cache_mb", 0.0)
    if shards > 1 or cache_mb > 0:
        from repro.shard import ShardPlane, SiteResultCache

        cache = (SiteResultCache.from_megabytes(cache_mb)
                 if cache_mb > 0 else None)
        return ShardPlane(config, shards=shards, cache=cache,
                          recovery=recovery)
    if not args.stream:
        if recovery is None:
            return config
        from repro.engine import Engine

        return Engine(config, recovery=recovery)
    from repro.engine import StreamingEngine

    return StreamingEngine(config, queue_depth=args.queue_depth,
                           use_shmem=args.shmem, recovery=recovery)


def _print_recovery(engine) -> None:
    """One summary line of the run's host-plane recovery activity."""
    recovery = getattr(engine, "recovery", None)
    if recovery is None:
        return
    counters = getattr(engine, "recovery_counters", {}) or {}
    injected = sum(value for name, value in counters.items()
                   if name.startswith("worker.injected."))
    print(f"recovery: deadline {recovery.chunk_deadline:g}s, "
          f"{injected} worker faults injected, "
          f"{counters.get('worker.retries', 0)} retries, "
          f"{counters.get('worker.pool_respawns', 0)} pool respawns, "
          f"{counters.get('worker.quarantined_sites', 0)} sites "
          f"quarantined inline")


def _maybe_autotune(args: argparse.Namespace) -> None:
    """``--autotune``: re-fit the kernel cost model and persist it.

    Writes to ``REPRO_AUTOTUNE_PROFILE`` when set (the profile the run
    will then load), otherwise to the committed default next to
    ``repro/engine/autotune.py`` when that directory is writable, else
    to the per-user cache (non-editable installs have a read-only
    ``site-packages``). The chosen path is exported back through
    ``REPRO_AUTOTUNE_PROFILE`` so this run -- including any worker
    processes it spawns -- dispatches on the fresh fit.
    """
    if not getattr(args, "autotune", False):
        return
    import os

    from repro.engine.autotune import calibrate, writable_profile_path

    path = os.environ.get("REPRO_AUTOTUNE_PROFILE") or writable_profile_path()
    profile = calibrate()
    profile.save(path)
    os.environ["REPRO_AUTOTUNE_PROFILE"] = str(path)
    print(f"autotune: calibrated {len(profile.kernels())} kernels -> {path}")


def _cmd_realign(args: argparse.Namespace) -> int:
    from repro.core.system import AcceleratedRealigner, SystemConfig
    from repro.genomics.fasta import read_reference
    from repro.genomics.samlite import read_sam, write_sam
    from repro.realign.realigner import IndelRealigner

    if not 0.0 <= args.fault_rate <= 1.0:
        print(f"error: --fault-rate must be in [0, 1], got {args.fault_rate}",
              file=sys.stderr)
        return 2
    if args.fault_rate > 0.0 and not args.accelerated:
        print("error: --fault-rate requires --accelerated (chaos mode "
              "injects faults into the FPGA system model)", file=sys.stderr)
        return 2
    error = _engine_flag_errors(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    _maybe_autotune(args)
    engine = _make_engine(args)
    reference = read_reference(args.reference)
    reads = read_sam(args.sam)
    if args.accelerated:
        config = SystemConfig.iracc()
        if args.fault_rate > 0.0:
            from dataclasses import replace

            from repro.resilience.policy import ResilienceConfig

            config = replace(config, resilience=ResilienceConfig.chaos(
                args.chaos_seed, args.fault_rate
            ))
        telemetry = None
        if args.telemetry is not None:
            from repro.telemetry import Telemetry

            telemetry = Telemetry(label=config.name)
        # The engine serves any targets that drain to the software
        # fallback under chaos; fault-free runs never touch it.
        realigner = AcceleratedRealigner(reference, config, engine=engine)
        updated, run, report = realigner.realign(reads, telemetry=telemetry)
        print(f"accelerated run: {run.total_seconds * 1e3:.2f} modelled ms, "
              f"{run.pruned_fraction:.0%} of comparisons pruned")
        if run.resilience is not None:
            print(f"chaos mode (seed {args.chaos_seed}, rate "
                  f"{args.fault_rate:.0%}): {run.resilience.describe()}")
        if telemetry is not None:
            from repro.telemetry import write_chrome_trace
            from repro.telemetry.metrics import derive_schedule_metrics

            write_chrome_trace(telemetry, args.telemetry)
            print(f"telemetry: {derive_schedule_metrics(telemetry).describe()}")
            print(f"trace -> {args.telemetry}")
    else:
        if args.telemetry is not None:
            print("error: --telemetry requires --accelerated (the software "
                  "realigner has no hardware timeline)", file=sys.stderr)
            return 2
        updated, report = IndelRealigner(reference,
                                         engine=engine).realign(reads)
        print(f"engine: workers={args.workers} batch={args.batch} "
              f"kernel={args.kernel} "
              f"prefilter={'on' if args.prefilter else 'off'}"
              + (f" stream(depth={args.queue_depth}, "
                 f"shmem={'on' if args.shmem else 'off'})"
                 if args.stream else ""))
    if args.stream:
        stats = engine.stream_stats
        if stats:
            print(f"stream: {stats.get('stream.chunks', 0)} chunks, "
                  f"max in-flight {stats.get('stream.max_in_flight', 0)}, "
                  f"reorder peak {stats.get('stream.reorder_peak', 0)}, "
                  f"arena bytes {stats.get('stream.arena_bytes', 0)}, "
                  f"backpressure "
                  f"{stats.get('stream.backpressure_us', 0)} us")
    if hasattr(engine, "close"):  # a live engine, not a bare config
        _print_recovery(engine)
        engine.close()
    write_sam(updated, args.out, reference)
    print(f"{report.targets_identified} targets, {report.sites_built} sites, "
          f"{report.reads_realigned} reads realigned "
          f"({report.reads_moved} moved) -> {args.out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.evaluate import run_scenario
    from repro.evaluate.scenarios import SCENARIO_NAMES

    error = _engine_flag_errors(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    _maybe_autotune(args)
    engine = _make_engine(args)
    try:
        report = run_scenario(
            args.scenario, engine=engine, kernel=args.kernel, seed=args.seed,
        )
    finally:
        if hasattr(engine, "close"):
            _print_recovery(engine)
            engine.close()
    if args.out is not None:
        args.out.write_text(report.to_json())
        print(f"report -> {args.out}")
    print(report.summary())
    totals = report.totals()
    regressed = totals["mismatch_after"] > totals["mismatch_before"]
    if regressed:
        print("error: realignment INCREASED mismatch totals -- "
              "accuracy regression", file=sys.stderr)
    if args.check and not regressed:
        # The same invariants the committed goldens gate on, runnable
        # against any engine/kernel/recovery combination from the CLI.
        moved = totals["reads_moved"]
        improved = totals["mismatch_after"] < totals["mismatch_before"]
        concordant = (totals["concordance_after"]
                      >= totals["concordance_before"])
        if moved and not improved:
            print("error: reads moved but mismatch totals did not drop",
                  file=sys.stderr)
            regressed = True
        if not concordant:
            print("error: truth concordance regressed", file=sys.stderr)
            regressed = True
    return 1 if regressed else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.system import AcceleratedIRSystem, SystemConfig
    from repro.resilience.policy import ResilienceConfig
    from repro.telemetry import Telemetry, write_chrome_trace
    from repro.telemetry.metrics import derive_schedule_metrics
    from repro.workloads.chromosomes import CHROMOSOME_CENSUS
    from repro.workloads.generator import BENCH_PROFILE, chromosome_workload

    if not 0.0 <= args.fault_rate <= 1.0:
        print(f"error: --fault-rate must be in [0, 1], got {args.fault_rate}",
              file=sys.stderr)
        return 2
    error = _engine_flag_errors(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    _maybe_autotune(args)
    census = next(c for c in CHROMOSOME_CENSUS if c.name == "21")
    sites = chromosome_workload(
        census, args.sites / census.ir_targets, BENCH_PROFILE, seed=args.seed,
    )
    sessions = []

    def record(label: str, config: SystemConfig) -> Telemetry:
        telemetry = Telemetry(label=label)
        AcceleratedIRSystem(config).run(
            sites, replication=args.replication, telemetry=telemetry,
        )
        sessions.append(telemetry)
        return telemetry

    record("sync", SystemConfig(name="IR ACC (sync)", lanes=32,
                                scheduling="sync"))
    async_session = record("async", SystemConfig.iracc())
    recovery_session = record(
        "recovery (fault-free)",
        SystemConfig(name="IR ACC", lanes=32, scheduling="async",
                     resilience=ResilienceConfig()),
    )
    if args.fault_rate > 0.0:
        record(
            f"chaos {args.fault_rate:.0%}",
            SystemConfig(
                name="IR ACC", lanes=32, scheduling="async",
                resilience=ResilienceConfig.chaos(
                    args.chaos_seed, args.fault_rate
                ),
            ),
        )
    if args.fleet > 0:
        from repro.perf.fleet import (
            FleetJob,
            plan_fleet,
            record_fleet_spans,
            simulate_preemptions,
        )

        jobs = [FleetJob(name=f"shard{i}", seconds=600.0 + 60.0 * (i % 5))
                for i in range(2 * args.fleet)]
        plan = plan_fleet(jobs, args.fleet)
        preempted = None
        if args.fault_rate > 0.0:
            from repro.resilience.faults import FaultPlan

            preempted = simulate_preemptions(
                plan,
                FaultPlan.chaos(args.chaos_seed,
                                args.fault_rate).preemption_fraction,
            )
        fleet_session = Telemetry(label="fleet")
        record_fleet_spans(fleet_session, plan, preempted)
        sessions.append(fleet_session)
    # Host-side batched engine session: the same workload through the
    # software engine, with shard spans + prefilter counters recorded.
    from repro.engine import Engine, EngineConfig

    engine_session = Telemetry(label="engine")
    recovery = _make_recovery(args)
    with Engine(EngineConfig(workers=args.workers, batch=args.batch,
                             prefilter=args.prefilter,
                             kernel=args.kernel),
                recovery=recovery) as engine:
        engine.run_sites(sites, telemetry=engine_session)
    sessions.append(engine_session)
    if args.stream:
        # Streaming data-plane session over the same workload: chunk
        # spans land on CAT_STREAM tracks with queue/backpressure
        # counters next to the barrier engine's session for comparison
        # (and, under --worker-fault-rate, CAT_RECOVERY spans beside
        # the chunks whose workers were killed/hung/errored).
        from repro.engine import StreamingEngine

        stream_session = Telemetry(label="stream")
        with StreamingEngine(
            EngineConfig(workers=args.workers, batch=args.batch,
                         prefilter=args.prefilter, kernel=args.kernel),
            queue_depth=args.queue_depth, use_shmem=args.shmem,
            recovery=recovery,
        ) as stream_engine:
            stream_engine.run_sites(sites, telemetry=stream_session)
        sessions.append(stream_session)
    write_chrome_trace(sessions, args.out)
    for session in sessions:
        if session.label == "fleet":
            flat = session.counters.flat()
            print(f"[fleet] {flat.get('fleet.jobs', 0)} jobs on "
                  f"{flat.get('fleet.instances', 0)} instances, "
                  f"{flat.get('fleet.preemptions', 0)} preemptions")
            continue
        if session.label == "engine":
            flat = session.counters.flat()
            evaluated = flat.get("kernel.cells_evaluated", 0)
            pruned = flat.get("kernel.cells_pruned", 0)
            valid = evaluated + pruned
            fraction = pruned / valid if valid else 0.0
            print(f"[engine] {flat.get('kernel.sites', 0)} sites on "
                  f"{flat.get('engine.shards', 0)} shards "
                  f"({args.workers} workers), "
                  f"{fraction:.1%} of WHD cells pruned")
            continue
        if session.label == "stream":
            flat = session.counters.flat()
            shmem = "shmem" if flat.get("stream.shmem", 0) else "pickle"
            print(f"[stream] {flat.get('stream.chunks', 0)} chunks, "
                  f"window {flat.get('stream.queue_depth', 0)}x"
                  f"{args.workers}, max in-flight "
                  f"{flat.get('stream.max_in_flight', 0)}, reorder peak "
                  f"{flat.get('stream.reorder_peak', 0)}, "
                  f"{flat.get('stream.arena_bytes', 0)} arena bytes "
                  f"({shmem}), backpressure "
                  f"{flat.get('stream.backpressure_us', 0)} us")
            continue
        metrics = derive_schedule_metrics(session)
        print(f"[{session.label}] {metrics.describe()}")
    matched = set(async_session.spans) == set(recovery_session.spans)
    if matched:
        print(f"fault-free recovery timeline is span-identical to "
              f"schedule_async ({len(async_session.spans)} spans)")
    else:
        print("warning: fault-free recovery spans diverge from "
              "schedule_async", file=sys.stderr)
    print(f"{sum(len(s.spans) for s in sessions)} spans, "
          f"{len(sessions)} sessions -> {args.out}")
    return 0 if matched else 1


def _engine_flag_errors(args: argparse.Namespace):
    """Shared validation for the engine-flag block; error string or None."""
    if args.workers < 1 or args.batch < 1:
        return "error: --workers and --batch must be >= 1"
    if args.queue_depth < 1:
        return "error: --queue-depth must be >= 1"
    if getattr(args, "shards", 1) < 1:
        return "error: --shards must be >= 1"
    if getattr(args, "site_cache_mb", 0.0) < 0:
        return "error: --site-cache-mb must be >= 0"
    if getattr(args, "shards", 1) > 1 and args.stream:
        return ("error: --shards and --stream are mutually exclusive "
                "(the shard plane owns its own dispatch)")
    return _check_recovery_flags(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.genomics.fasta import read_reference
    from repro.serve.request import ServiceConfig
    from repro.serve.server import RealignmentServer

    error = _engine_flag_errors(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    try:
        service_config = ServiceConfig(
            max_queue_sites=args.max_queue_sites,
            max_tenant_sites=args.max_tenant_sites,
            coalesce_sites=args.coalesce_sites,
            coalesce_wait_ms=args.coalesce_wait_ms,
            admission=args.admission,
            default_deadline_s=args.deadline_s,
        )
    except ValueError as bad:
        print(f"error: {bad}", file=sys.stderr)
        return 2
    _maybe_autotune(args)
    reference = read_reference(args.reference)
    engine = _make_engine(args)

    async def run() -> int:
        server = RealignmentServer(reference, engine=engine,
                                   service_config=service_config)
        host, port = await server.start(args.host, args.port)
        if args.canary:
            verdict = await server.run_canary()
            status = "ok" if verdict["ok"] else "FAILED"
            print(f"canary [{verdict['scenario']}]: {status} "
                  f"({verdict['reads_moved']} reads moved, mismatches "
                  f"{verdict['mismatch_before']} -> "
                  f"{verdict['mismatch_after']})")
            if not verdict["ok"]:
                print("error: serving-path canary failed -- refusing to "
                      "serve", file=sys.stderr)
                await server.close()
                return 1
        print(f"serving on {host}:{port} "
              f"(admission={service_config.admission}, "
              f"limit={service_config.max_queue_sites} sites, "
              f"coalesce={service_config.coalesce_sites} sites / "
              f"{service_config.coalesce_wait_ms:g}ms); "
              f"Ctrl-C or a shutdown op to stop", flush=True)
        try:
            await server.serve_until_shutdown()
        except (KeyboardInterrupt, asyncio.CancelledError):
            await server.close()
        print(f"serve: {server.service.snapshot().describe()}")
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0
    finally:
        if hasattr(engine, "close"):
            _print_recovery(engine)
            engine.close()


def _loadgen_inputs(args: argparse.Namespace):
    """The (reference, reads) a loadgen run partitions into jobs."""
    from repro.genomics.fasta import read_reference
    from repro.genomics.samlite import read_sam
    from repro.genomics.simulate import SimulationProfile, simulate_sample

    if args.sam is not None:
        if args.reference is None:
            raise ValueError("--sam requires --reference")
        return read_reference(args.reference), read_sam(args.sam)
    profile = SimulationProfile(coverage=args.coverage)
    sample = simulate_sample({"chrL": args.length}, profile=profile,
                             seed=args.seed)
    return sample.reference, sample.reads


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro.genomics.samlite import format_read, write_sam
    from repro.serve.loadgen import run_loadgen, simulate_load
    from repro.workloads.serving import LoadProfile

    try:
        profile = LoadProfile(
            tenants=args.tenants,
            requests_per_tenant=args.requests_per_tenant,
            mean_interarrival_s=args.mean_interarrival_ms / 1e3,
            deadline_s=args.deadline_s,
            preempt_rate=args.preempt_rate,
            schedule=args.schedule,
        )
        reference, reads = _loadgen_inputs(args)
    except ValueError as bad:
        print(f"error: {bad}", file=sys.stderr)
        return 2

    if args.dry_run:
        from repro.realign.realigner import IndelRealigner
        from repro.serve.jobs import partition_jobs

        realigner = IndelRealigner(reference)
        job_sites = [len(realigner.build_sites(job.reads)[1])
                     for job in partition_jobs(reads, reference)]
        report = simulate_load(profile, job_sites, seed=args.seed)
        print(report.summary())
        if args.json_out is not None:
            args.json_out.write_text(report.to_json())
            print(f"report -> {args.json_out}")
        return 0

    async def drive(host: str, port: int):
        updated, report = await run_loadgen(
            host, port, reads, reference, profile=profile,
            seed=args.seed, time_scale=args.time_scale,
        )
        if args.shutdown:
            from repro.serve.client import ServiceClient

            client = await ServiceClient.open(host, port)
            await client.shutdown()
            await client.close()
        return updated, report

    if args.selftest:
        error = _engine_flag_errors(args)
        if error is not None:
            print(error, file=sys.stderr)
            return 2
        from repro.realign.realigner import IndelRealigner
        from repro.serve.server import RealignmentServer

        engine = _make_engine(args)

        async def selftest():
            server = RealignmentServer(reference, engine=engine)
            host, port = await server.start(port=0)
            try:
                return await drive(host, port)
            finally:
                await server.close()

        try:
            updated, report = asyncio.run(selftest())
        finally:
            if hasattr(engine, "close"):
                engine.close()
        expected, _ = IndelRealigner(reference).realign(reads)
        identical = ([format_read(r) for r in updated]
                     == [format_read(r) for r in expected])
        print(report.summary())
        print(f"selftest: served output is "
              f"{'byte-identical' if identical else 'DIVERGENT'} "
              f"vs. the batch realigner ({len(updated)} reads)")
        if args.json_out is not None:
            args.json_out.write_text(report.to_json())
        if not identical:
            return 1
    else:
        updated, report = asyncio.run(drive(args.host, args.port))
        print(report.summary())
        if args.json_out is not None:
            args.json_out.write_text(report.to_json())
            print(f"report -> {args.json_out}")

    if args.out is not None:
        write_sam(updated, args.out, reference)
        print(f"{len(updated)} reads -> {args.out}")
    if args.compare is not None:
        from repro.genomics.samlite import read_sam

        expected_lines = [format_read(r) for r in read_sam(args.compare)]
        got_lines = [format_read(r) for r in updated]
        if got_lines != expected_lines:
            print(f"error: served output diverges from {args.compare}",
                  file=sys.stderr)
            return 1
        print(f"served output matches {args.compare} "
              f"({len(got_lines)} reads)")
        _print_server_planes(report.server)
    return 0


def _print_server_planes(server_stats) -> None:
    """Cache and shard-plane lines from a server's snapshot dict."""
    if not isinstance(server_stats, dict):
        return
    counters = server_stats.get("counters", {}) or {}
    if counters.get("cache.hits", 0) or counters.get("cache.misses", 0):
        rate = server_stats.get("cache_hit_rate", 0.0)
        print(f"site cache: {rate:.1%} hit rate "
              f"({counters.get('cache.hits', 0)} hits / "
              f"{counters.get('cache.misses', 0)} misses, "
              f"{counters.get('cache.evictions', 0)} evictions, "
              f"{counters.get('cache.bytes', 0)} bytes held)")
    saturation = server_stats.get("shard_saturation", {}) or {}
    if saturation:
        busy = ", ".join(f"{name} {value:.1%}"
                         for name, value in sorted(saturation.items()))
        print(f"shard saturation: {busy}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="HPCA'19 FPGA INDEL realignment reproduction driver",
        epilog=_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("figure2", "figure3", "figure4", "figure7", "tables",
                 "appendix", "microarch", "comparisons", "all"):
        sub.add_parser(name, help=COMMANDS[name])
    figure9_parser = sub.add_parser("figure9", help=COMMANDS["figure9"])
    figure9_parser.add_argument("--sites", type=int, default=96,
                                help="sites per chromosome")
    figure9_parser.add_argument("--replication", type=int, default=24,
                                help="schedule replication rounds")

    resilience_parser = sub.add_parser(
        "resilience", help=COMMANDS["resilience"],
    )
    resilience_parser.add_argument(
        "--fault-rate", type=float, action="append", dest="fault_rate",
        help="fault rate to sweep (repeatable; default 0/2/5/10/20%%)",
    )
    resilience_parser.add_argument("--chaos-seed", type=int, default=1234,
                                   help="seed for the deterministic FaultPlan")
    resilience_parser.add_argument("--sites", type=int, default=48,
                                   help="sites in the sweep workload")
    resilience_parser.add_argument("--replication", type=int, default=4,
                                   help="schedule replication rounds")
    resilience_parser.add_argument(
        "--telemetry", type=_out_file, default=None, metavar="PATH",
        help="write a Chrome trace of the sweep (one session per rate)",
    )

    simulate = sub.add_parser("simulate", help=COMMANDS["simulate"])
    simulate.add_argument("--out", required=True, type=_out_dir)
    simulate.add_argument("--contig", default="chr22")
    simulate.add_argument("--length", type=int, default=30_000)
    simulate.add_argument("--coverage", type=float, default=40.0)
    simulate.add_argument("--indel-rate", type=float, default=8e-4)
    simulate.add_argument("--seed", type=int, default=0)

    realign = sub.add_parser("realign", help=COMMANDS["realign"])
    realign.add_argument("--reference", required=True)
    realign.add_argument("--sam", required=True)
    realign.add_argument("--out", required=True, type=_out_file)
    realign.add_argument("--accelerated", action="store_true",
                         help="run the kernel on the FPGA system model")
    realign.add_argument("--fault-rate", type=float, default=0.0,
                         dest="fault_rate",
                         help="chaos mode: per-attempt fault rate "
                              "(requires --accelerated)")
    realign.add_argument("--chaos-seed", type=int, default=0,
                         dest="chaos_seed",
                         help="seed for the deterministic FaultPlan")
    realign.add_argument(
        "--telemetry", type=_out_file, default=None, metavar="PATH",
        help="write a Chrome trace of the accelerated run "
             "(requires --accelerated)",
    )
    _add_engine_flags(realign)

    trace = sub.add_parser(
        "trace", help=COMMANDS["trace"],
    )
    trace.add_argument("--out", required=True, type=_out_file,
                       help="trace_event JSON file to write")
    trace.add_argument("--sites", type=int, default=24,
                       help="sites in the traced workload")
    trace.add_argument("--replication", type=int, default=1,
                       help="schedule replication rounds")
    trace.add_argument("--seed", type=int, default=42,
                       help="workload synthesis seed")
    trace.add_argument("--fault-rate", type=float, default=0.0,
                       dest="fault_rate",
                       help="add a chaos session at this fault rate")
    trace.add_argument("--chaos-seed", type=int, default=1234,
                       dest="chaos_seed",
                       help="seed for the deterministic FaultPlan")
    trace.add_argument("--fleet", type=int, default=0,
                       help="add a fleet session with this many instances")
    _add_engine_flags(trace)

    evaluate = sub.add_parser(
        "evaluate", help=COMMANDS["evaluate"],
    )
    evaluate.add_argument(
        "--scenario", choices=("toy", "cohort", "adversarial"),
        default="toy",
        help="workload to evaluate (see docs/EVALUATION.md)",
    )
    evaluate.add_argument("--seed", type=int, default=None,
                          help="override the scenario's pinned seed")
    evaluate.add_argument("--out", type=_out_file, default=None,
                          help="write the full EvaluationReport JSON here")
    evaluate.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the accuracy invariants hold "
             "(mismatches drop, concordance does not regress)",
    )
    evaluate.add_argument("--chaos-seed", type=int, default=1234,
                          dest="chaos_seed",
                          help="seed for the deterministic FaultPlan")
    _add_engine_flags(evaluate)

    serve = sub.add_parser("serve", help=COMMANDS["serve"])
    serve.add_argument("--reference", required=True,
                       help="reference FASTA the server realigns against")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (0 = pick an ephemeral port)")
    serve.add_argument("--max-queue-sites", type=int, default=512,
                       dest="max_queue_sites",
                       help="admission limit on outstanding sites")
    serve.add_argument("--max-tenant-sites", type=int, default=None,
                       dest="max_tenant_sites",
                       help="per-tenant outstanding-site cap (fairness)")
    serve.add_argument("--coalesce-sites", type=int, default=32,
                       dest="coalesce_sites",
                       help="dispatch an engine batch at this many sites")
    serve.add_argument("--coalesce-wait-ms", type=float, default=2.0,
                       dest="coalesce_wait_ms",
                       help="max linger before dispatching a partial batch")
    serve.add_argument("--admission", choices=("reject", "queue"),
                       default="reject",
                       help="over-limit submissions: reject now, or park "
                            "until room frees (deadlines still apply)")
    serve.add_argument("--deadline-s", type=float, default=30.0,
                       dest="deadline_s",
                       help="default per-request deadline")
    serve.add_argument("--canary", action="store_true",
                       help="run the toy evaluation scenario through the "
                            "serving path before accepting traffic; "
                            "refuse to serve if outcomes regress")
    serve.add_argument("--chaos-seed", type=int, default=1234,
                       dest="chaos_seed",
                       help="seed for the deterministic FaultPlan")
    _add_engine_flags(serve)

    loadgen = sub.add_parser("loadgen", help=COMMANDS["loadgen"])
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8765)
    loadgen.add_argument("--reference", default=None,
                         help="reference FASTA (with --sam); omit to "
                              "synthesize a sample instead")
    loadgen.add_argument("--sam", default=None,
                         help="input SAM to partition into region jobs")
    loadgen.add_argument("--length", type=int, default=9_000,
                         help="synthetic contig length (no --sam)")
    loadgen.add_argument("--coverage", type=float, default=16.0,
                         help="synthetic coverage (no --sam)")
    loadgen.add_argument("--tenants", type=int, default=4)
    loadgen.add_argument("--requests-per-tenant", type=int, default=8,
                         dest="requests_per_tenant")
    loadgen.add_argument("--mean-interarrival-ms", type=float, default=10.0,
                         dest="mean_interarrival_ms",
                         help="per-tenant mean gap between requests")
    loadgen.add_argument("--deadline-s", type=float, default=30.0,
                         dest="deadline_s",
                         help="per-request deadline")
    loadgen.add_argument("--preempt-rate", type=float, default=0.0,
                         dest="preempt_rate",
                         help="client-fleet spot-preemption replay rate")
    loadgen.add_argument("--schedule",
                         choices=("uniform", "duplicate_heavy"),
                         default="uniform",
                         help="job assignment: uniform round-robin, or "
                              "duplicate_heavy (tenants re-submit a hot "
                              "set of overlapping cohort regions -- the "
                              "site-cache regime)")
    loadgen.add_argument("--time-scale", type=float, default=1.0,
                         dest="time_scale",
                         help="multiply scheduled gaps (0 = fire at once)")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="schedule synthesis seed")
    loadgen.add_argument("--out", type=_out_file, default=None,
                         help="write the reassembled realigned SAM here")
    loadgen.add_argument("--json", type=_out_file, default=None,
                         dest="json_out",
                         help="write the LoadReport JSON here")
    loadgen.add_argument("--compare", type=str, default=None,
                         metavar="SAM",
                         help="byte-compare the reassembled SAM against "
                              "this file; exit non-zero on divergence")
    loadgen.add_argument("--dry-run", action="store_true", dest="dry_run",
                         help="no server: replay the schedule through the "
                              "virtual-time queue model and report exact "
                              "percentiles")
    loadgen.add_argument("--selftest", action="store_true",
                         help="start an in-process server, drive the load "
                              "against it, and verify the output is "
                              "byte-identical to the batch realigner")
    loadgen.add_argument("--shutdown", action="store_true",
                         help="send the server a shutdown op afterwards")
    loadgen.add_argument("--chaos-seed", type=int, default=1234,
                         dest="chaos_seed",
                         help="seed for the deterministic FaultPlan")
    _add_engine_flags(loadgen)
    return parser


def _add_engine_flags(subparser: argparse.ArgumentParser) -> None:
    """Batched-engine knobs shared by ``realign`` and ``trace``."""
    subparser.add_argument(
        "--workers", type=int, default=1,
        help="engine worker processes (1 = in-process, no pool)",
    )
    subparser.add_argument(
        "--batch", type=int, default=8,
        help="sites per engine shard (work-stealing chunk size)",
    )
    subparser.add_argument(
        "--no-prefilter", dest="prefilter", action="store_false",
        help="disable the GateKeeper-style pre-alignment filter",
    )
    subparser.add_argument(
        "--stream", action="store_true",
        help="use the streaming engine: bounded in-flight window, "
             "zero-copy shared-memory dispatch, incremental in-order merge",
    )
    subparser.add_argument(
        "--queue-depth", type=int, default=2, dest="queue_depth",
        help="in-flight chunks per worker for --stream (window = "
             "depth x workers)",
    )
    subparser.add_argument(
        "--no-shmem", dest="shmem", action="store_false",
        help="disable shared-memory arenas for --stream (pickle site "
             "payloads instead)",
    )
    subparser.add_argument(
        "--kernel",
        choices=("auto", "scalar", "vector", "fft", "bitpack", "native"),
        default="auto",
        help="WHD kernel: a fixed exact kernel, or 'auto' (default) for "
             "the calibrated per-site choice; 'native' is the compiled "
             "tier and degrades to bitpack when no backend is usable "
             "(docs/PERFORMANCE.md)",
    )
    subparser.add_argument(
        "--autotune", action="store_true",
        help="re-time the kernels on this host and persist the cost "
             "profile before running (see REPRO_AUTOTUNE_PROFILE)",
    )
    subparser.add_argument(
        "--worker-fault-rate", type=float, default=0.0,
        dest="worker_fault_rate",
        help="host chaos mode: per-chunk-dispatch probability of an "
             "injected worker fault (SIGKILL/hang/delay/error), seeded "
             "by --chaos-seed; requires --workers >= 2",
    )
    subparser.add_argument(
        "--chunk-deadline", type=float, default=None, dest="chunk_deadline",
        metavar="SECONDS",
        help="per-chunk watchdog deadline; enables worker-crash "
             "recovery (retry/bisect/quarantine + pool respawn) even "
             "at fault rate 0",
    )
    subparser.add_argument(
        "--shards", type=int, default=1,
        help="horizontal shard plane: partition sites by contig/region "
             "hash across N long-lived shard workers (byte-identical "
             "output at any N; docs/SHARDING.md); incompatible with "
             "--stream",
    )
    subparser.add_argument(
        "--site-cache-mb", type=float, default=0.0, dest="site_cache_mb",
        metavar="MB",
        help="content-addressed site-result cache byte budget (LRU); "
             "duplicate sites short-circuit the kernel entirely "
             "(0 = disabled)",
    )


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "realign":
        return _cmd_realign(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "evaluate":
        return _cmd_evaluate(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if not hasattr(args, "sites"):
        args.sites = 96
        args.replication = 24
    return _cmd_experiment(args.command, args)


if __name__ == "__main__":
    sys.exit(main())
