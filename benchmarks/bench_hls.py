"""Section V-B: the SDAccel HLS build (paper: only 1.3x-3.1x over GATK3)."""

from conftest import bench_replication

from repro.experiments import comparisons


def test_hls_comparison(once):
    outcome = once(
        comparisons.main,
    )
    lo, hi = outcome.hls_range
    # The HLS build helps, but an order of magnitude less than IR ACC.
    assert 0.8 < lo <= hi < 8.0
    assert hi < outcome.figure9.gmean_speedup / 5
