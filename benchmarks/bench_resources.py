"""Sections III-IV: FPGA resources, peak throughput, and DMA share."""

from repro.experiments import microarch
from repro.hw.resources import max_units, utilization


def test_resources_and_throughput(once):
    outcome = once(microarch.run, num_sites=48, replication=16)
    report = utilization(32)
    assert abs(report.bram_utilization - 0.8762) < 0.002  # paper: 87.62%
    assert abs(report.clb_utilization - 0.3253) < 0.001  # paper: 32.53%
    assert max_units() == 32  # paper: "up to 32 IR units"
    assert outcome.peak_comparisons_per_second == 4e9  # paper: "4 billion"
    assert outcome.dma_fraction < 0.05  # paper: negligible (~0.01%)
