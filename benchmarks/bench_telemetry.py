"""Telemetry overhead benchmarks: the zero-when-disabled contract.

Every hot path takes ``telemetry=None`` and guards each event site with
a single ``is not None`` test, so the disabled cost is one branch --
the paired off/on benchmarks here make that measurable, and the
committed baselines pin it. The explicit ratio test asserts the
enabled cost stays small on an end-to-end system run (kernel compute
dominates; span recording is bookkeeping). Its bound is deliberately
loose for noisy CI machines -- measured locally the enabled overhead
is under 5% and the disabled overhead is indistinguishable from noise.
"""

import time

import numpy as np

from repro.core.scheduler import ScheduledTarget, schedule_async
from repro.core.system import AcceleratedIRSystem, SystemConfig
from repro.realign.whd import realign_site
from repro.telemetry import Telemetry
from repro.workloads.generator import BENCH_PROFILE, synthesize_site

NUM_UNITS = 32


def _targets(seed=7, n=2048):
    rng = np.random.default_rng(seed)
    compute = rng.integers(500, 20_000, n)
    transfer = rng.integers(10, 200, n)
    return [
        ScheduledTarget(index=i, transfer_cycles=int(t),
                        compute_cycles=int(c))
        for i, (t, c) in enumerate(zip(transfer, compute))
    ]


def _sites(n=8, seed=3):
    rng = np.random.default_rng(seed)
    return [synthesize_site(rng, BENCH_PROFILE) for _ in range(n)]


def test_scheduler_telemetry_disabled(benchmark):
    targets = _targets()
    result = benchmark(schedule_async, targets, NUM_UNITS, telemetry=None)
    assert result.makespan > 0


def test_scheduler_telemetry_enabled(benchmark):
    targets = _targets()

    def run():
        return schedule_async(targets, NUM_UNITS, telemetry=Telemetry())

    result = benchmark(run)
    assert result.makespan > 0


def test_kernel_telemetry_disabled(benchmark):
    site = _sites(1)[0]
    result = benchmark(realign_site, site, telemetry=None)
    assert result.min_whd.size > 0


def test_kernel_telemetry_enabled(benchmark):
    site = _sites(1)[0]

    def run():
        return realign_site(site, telemetry=Telemetry())

    result = benchmark(run)
    assert result.min_whd.size > 0


def test_system_run_telemetry_enabled_overhead_is_small():
    """End-to-end enabled overhead stays a small fraction of the run.

    Median-of-N timing of the same system run with telemetry off and
    on. The 1.25x gate is a CI-noise allowance, not the claim -- the
    measured overhead is typically under 5%.
    """
    sites = _sites(8)
    system = AcceleratedIRSystem(SystemConfig.iracc())
    system.run(sites)  # warm caches before timing

    def median_seconds(telemetry_factory, rounds=5):
        samples = []
        for _ in range(rounds):
            start = time.perf_counter()
            system.run(sites, telemetry=telemetry_factory())
            samples.append(time.perf_counter() - start)
        samples.sort()
        return samples[len(samples) // 2]

    disabled = median_seconds(lambda: None)
    enabled = median_seconds(Telemetry)
    assert enabled <= disabled * 1.25, (
        f"telemetry-enabled run took {enabled / disabled:.2f}x the "
        f"disabled run (enabled {enabled * 1e3:.1f} ms, disabled "
        f"{disabled * 1e3:.1f} ms)"
    )
