"""Ablations of the design choices DESIGN.md calls out.

Sweeps, on one chromosome-22 workload:

- data-parallel lane width (1 / 8 / 16 / 32, Section IV);
- computation pruning on/off (Section III-A);
- unit count (1-32, Section III-A / IV);
- scheduling scheme (Figure 7 at workload scale);
- TileLink interface width (Section III-B: "a 256-bit interface
  provided the best performance under the timing constraints").
"""

import numpy as np
from conftest import bench_replication

from repro.core.accelerator import IRUnit, UnitConfig
from repro.core.system import AcceleratedIRSystem, SystemConfig
from repro.experiments.reporting import format_table
from repro.hw.tilelink import TileLinkLink
from repro.workloads.chromosomes import census_for
from repro.workloads.generator import BENCH_PROFILE, chromosome_workload


def _workload(num_sites=48, seed=5):
    census = census_for("22")
    return chromosome_workload(census, num_sites / census.ir_targets,
                               BENCH_PROFILE, seed=seed)


def _run(sites, replication=None, **config_kwargs):
    config = SystemConfig(name="ablation", **config_kwargs)
    return AcceleratedIRSystem(config).run(
        sites, replication=replication or bench_replication()
    )


def test_lane_width_sweep(once):
    sites = _workload()

    def sweep():
        return {lanes: _run(sites, lanes=lanes).total_seconds
                for lanes in (1, 8, 16, 32)}

    times = once(sweep)
    print()
    print(format_table(
        ["lanes", "seconds", "speedup vs scalar"],
        [[lanes, f"{t:.4f}", f"{times[1] / t:.1f}x"]
         for lanes, t in times.items()],
    ))
    # Wider datapaths are monotonically faster; the paper observed ~15x
    # from the 32-wide calculator.
    assert times[32] < times[16] < times[8] < times[1]
    assert times[1] / times[32] > 5


def test_pruning_ablation(once):
    sites = _workload()

    def sweep():
        return (_run(sites, prune=True).total_seconds,
                _run(sites, prune=False).total_seconds)

    pruned, unpruned = once(sweep)
    print(f"\npruning on: {pruned:.4f}s  off: {unpruned:.4f}s  "
          f"gain {unpruned / pruned:.2f}x")
    # Paper: >50% of comparisons eliminated => roughly 2x on compute.
    assert unpruned / pruned > 1.3


def test_unit_count_sweep(once):
    sites = _workload()

    def sweep():
        return {n: _run(sites, num_units=n).total_seconds
                for n in (1, 4, 16, 32)}

    times = once(sweep)
    print()
    print(format_table(
        ["units", "seconds", "scaling vs 1 unit"],
        [[n, f"{t:.4f}", f"{times[1] / t:.1f}x"] for n, t in times.items()],
    ))
    # "the computation time scales (almost) linearly with the number of
    # units available" (Section IV).
    assert times[1] / times[32] > 16


def test_scheduling_ablation(once):
    sites = _workload()

    def sweep():
        return (_run(sites, scheduling="sync", lanes=1).total_seconds,
                _run(sites, scheduling="async", lanes=1).total_seconds)

    sync_time, async_time = once(sweep)
    print(f"\nsync: {sync_time:.4f}s  async: {async_time:.4f}s  "
          f"gain {sync_time / async_time:.2f}x")
    assert async_time < sync_time  # paper: ~6.2x average gain


def test_tilelink_width_tradeoff(once):
    """Wider links cut beats but lose clock: 256 bits is the sweet spot."""

    def sweep():
        best = {}
        for width in (64, 128, 256, 512, 1024):
            link = TileLinkLink(data_width_bits=width)
            frequency = link.achievable_frequency_hz()
            # Normalized fill throughput: bytes per second into a unit.
            best[width] = link.bytes_per_beat * frequency
        return best

    rates = once(sweep)
    print()
    print(format_table(
        ["width", "bytes/beat", "fill GB/s"],
        [[w, w // 8, f"{r / 1e9:.1f}"] for w, r in rates.items()],
    ))
    # Throughput grows to 256 bits; the datapath consumes 32 B/cycle, so
    # widths beyond 256 buy nothing while costing routing slack -- the
    # paper's reason for settling on 256.
    assert rates[256] > rates[128] > rates[64]
    consumed = 32 * 125e6
    assert rates[256] >= consumed
