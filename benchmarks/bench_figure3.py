"""Figure 3: IR share of refinement-pipeline time per chromosome."""

from repro.experiments import figure3


def test_figure3_ir_fraction(once):
    outcome = once(figure3.main)
    assert abs(outcome.average - 0.58) < 0.01  # paper: 58% average
    assert outcome.minimum > 0.40  # paper: 53%
    assert outcome.maximum < 0.72  # paper: 67%
    assert len(outcome.rows) == 22
