"""Shared benchmark configuration.

Each benchmark module regenerates one paper table or figure: the
pytest-benchmark fixture times the experiment's core computation, and
the captured stdout (run pytest with ``-s`` to see it live) carries the
paper-versus-measured tables recorded in EXPERIMENTS.md.

Workload sizes are controlled by the environment variables
``REPRO_BENCH_SITES`` (sites per chromosome, default 96) and
``REPRO_BENCH_REPLICATION`` (schedule replication, default 24).
"""

import os

import pytest


def bench_sites() -> int:
    return int(os.environ.get("REPRO_BENCH_SITES", "96"))


def bench_replication() -> int:
    return int(os.environ.get("REPRO_BENCH_REPLICATION", "24"))


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (workload-scale runs)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
