"""Microbenchmarks of the target schedulers (repeatable timing runs).

Times the three scheduling schemes on an identical pre-planned target
list, so their relative cost is visible in the benchmark table and the
committed ``BENCH_scheduler.json`` baseline pins the trajectory:
synchronous batching, asynchronous launch-on-response, and the
fault-tolerant scheduler in its fault-free fast path.
"""

import numpy as np

from repro.core.scheduler import (
    ScheduledTarget,
    schedule_async,
    schedule_sync,
)
from repro.resilience.policy import ResilienceConfig
from repro.resilience.recovery import schedule_with_recovery

NUM_UNITS = 32
NUM_TARGETS = 2048


def _targets(seed=7, n=NUM_TARGETS):
    rng = np.random.default_rng(seed)
    compute = rng.integers(500, 20_000, n)
    transfer = rng.integers(10, 200, n)
    return [
        ScheduledTarget(index=i, transfer_cycles=int(t),
                        compute_cycles=int(c))
        for i, (t, c) in enumerate(zip(transfer, compute))
    ]


def test_schedule_sync(benchmark):
    targets = _targets()
    result = benchmark(schedule_sync, targets, NUM_UNITS)
    assert result.makespan > 0


def test_schedule_async(benchmark):
    targets = _targets()
    result = benchmark(schedule_async, targets, NUM_UNITS)
    assert result.makespan > 0


def test_schedule_with_recovery_fault_free(benchmark):
    targets = _targets()
    config = ResilienceConfig()
    result = benchmark(schedule_with_recovery, targets, NUM_UNITS, config)
    assert result.makespan > 0
    assert not result.events


def test_schedule_with_recovery_chaos(benchmark):
    targets = _targets()
    config = ResilienceConfig.chaos(seed=11, rate=0.05)
    result = benchmark(schedule_with_recovery, targets, NUM_UNITS, config)
    assert result.makespan > 0
