"""Appendix Figure 10: target membership and the before/after pileup."""

from repro.experiments import appendix


def test_appendix_figure10(once):
    outcome = once(appendix.main)
    # A target wider than a read anchors every overlapping read.
    assert outcome.anchored_reads == outcome.spanning_reads
    assert outcome.reads_realigned > 0
    # After realignment the pileup view carries no mismatch letters
    # (only matches '.', deletions '*', and the rendered scaffolding).
    data_lines = outcome.after.splitlines()[2:]
    assert all(set(line) <= set(". *,+") for line in data_lines
               if not line.startswith("..."))
